#include "power/waveform.h"

#include <cmath>
#include <stdexcept>

namespace clockmark::power {

std::vector<double> cycle_pulse_template(const WaveformOptions& options) {
  const std::size_t s = options.samples_per_cycle;
  if (s == 0) {
    throw std::invalid_argument("cycle_pulse_template: need >= 1 sample");
  }
  std::vector<double> tpl(s, 0.0);

  // Flat baseline share.
  const double baseline = options.baseline_fraction / static_cast<double>(s);
  for (auto& v : tpl) v = baseline;

  const double edge_energy = 1.0 - options.baseline_fraction;
  const double rising = edge_energy * options.rising_edge_fraction;
  const double falling = edge_energy - rising;
  const std::size_t fall_start = s / 2;

  auto add_pulse = [&](std::size_t start, double energy) {
    // Exponentially decaying pulse truncated at the cycle end, then
    // normalised so the pulse integrates exactly to `energy`.
    double norm = 0.0;
    for (std::size_t i = start; i < s; ++i) {
      norm += std::exp(-static_cast<double>(i - start) /
                       options.decay_samples);
    }
    if (norm <= 0.0) return;
    for (std::size_t i = start; i < s; ++i) {
      tpl[i] += energy *
                std::exp(-static_cast<double>(i - start) /
                         options.decay_samples) /
                norm;
    }
  };
  add_pulse(0, rising);
  add_pulse(fall_start, falling);
  return tpl;
}

std::vector<double> expand_to_current_waveform(
    std::span<const double> cycle_power_w, double vdd_v,
    const WaveformOptions& options) {
  if (vdd_v <= 0.0) {
    throw std::invalid_argument("expand_to_current_waveform: vdd must be > 0");
  }
  const auto tpl = cycle_pulse_template(options);
  const std::size_t s = options.samples_per_cycle;
  std::vector<double> wave(cycle_power_w.size() * s, 0.0);
  for (std::size_t c = 0; c < cycle_power_w.size(); ++c) {
    // Cycle average current; template sums to 1, so multiplying by
    // (avg_current * s) preserves the per-cycle mean exactly.
    const double avg_current = cycle_power_w[c] / vdd_v;
    const double scale = avg_current * static_cast<double>(s);
    for (std::size_t i = 0; i < s; ++i) {
      wave[c * s + i] = scale * tpl[i];
    }
  }
  return wave;
}

std::vector<double> expand_to_current_waveform(
    const PowerTrace& trace, double vdd_v, const WaveformOptions& options) {
  return expand_to_current_waveform(trace.span(), vdd_v, options);
}

}  // namespace clockmark::power
