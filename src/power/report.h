// PrimeTime-PX-style text power report: hierarchical per-module dynamic /
// static / total power with percentages — the report format Section V's
// numbers come from.
#pragma once

#include <span>
#include <string>

#include "power/estimator.h"

namespace clockmark::power {

struct ReportOptions {
  std::string title = "power report";
  bool show_area = true;
  int name_width = 36;
};

/// Renders the estimator's per-module report for a run of cycles.
std::string format_power_report(const PowerEstimator& estimator,
                                std::span<const rtl::CycleActivity> cycles,
                                const ReportOptions& options = {});

}  // namespace clockmark::power
