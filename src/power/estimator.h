// Activity-based power estimation over a netlist — the simulator-side
// equivalent of the Synopsys PrimeTime-PX flow the paper uses in
// Section V. Dynamic energy is accumulated from per-cycle activity
// records; leakage comes from a census of instantiated cells.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "power/tech65.h"
#include "rtl/netlist.h"
#include "rtl/simulator.h"

namespace clockmark::power {

/// PrimeTime-style per-module power report line.
struct ModulePowerReport {
  std::string path;
  double dynamic_w = 0.0;
  double static_w = 0.0;
  double total_w() const noexcept { return dynamic_w + static_w; }
};

class PowerEstimator {
 public:
  PowerEstimator(const rtl::Netlist& netlist, TechLibrary library);

  const TechLibrary& library() const noexcept { return lib_; }

  /// Dynamic energy (J) consumed in one cycle by the given activity.
  double dynamic_cycle_energy(const rtl::ModuleActivity& a) const noexcept;

  /// Leakage power (W) of all cells under a module prefix ("" = all).
  double leakage_power(const std::string& module_prefix = "") const;

  /// Total cell area (um^2) under a module prefix.
  double area(const std::string& module_prefix = "") const;

  /// Average power (W) over a run of cycles: dynamic from the activity
  /// stream plus leakage of the whole design.
  double average_power(std::span<const rtl::CycleActivity> cycles) const;

  /// Per-module average power over a run of cycles, sorted by total
  /// descending. Modules with zero activity and zero leakage are omitted.
  std::vector<ModulePowerReport> report(
      std::span<const rtl::CycleActivity> cycles) const;

  /// Per-cycle total power trace (W): dynamic-of-cycle + design leakage.
  std::vector<double> power_trace(
      std::span<const rtl::CycleActivity> cycles,
      const std::string& module_prefix = "") const;

 private:
  const rtl::Netlist& netlist_;
  TechLibrary lib_;
};

}  // namespace clockmark::power
