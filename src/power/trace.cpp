#include "power/trace.h"

#include <algorithm>
#include <stdexcept>

namespace clockmark::power {

PowerTrace::PowerTrace(std::vector<double> cycle_power_w, double clock_hz,
                       std::string label)
    : power_w_(std::move(cycle_power_w)),
      clock_hz_(clock_hz),
      label_(std::move(label)) {
  if (clock_hz_ <= 0.0) {
    throw std::invalid_argument("PowerTrace: clock_hz must be positive");
  }
}

PowerTrace& PowerTrace::operator+=(const PowerTrace& other) {
  if (other.power_w_.size() != power_w_.size()) {
    throw std::invalid_argument("PowerTrace: length mismatch in +=");
  }
  if (other.clock_hz_ != clock_hz_) {
    throw std::invalid_argument("PowerTrace: clock mismatch in +=");
  }
  for (std::size_t i = 0; i < power_w_.size(); ++i) {
    power_w_[i] += other.power_w_[i];
  }
  return *this;
}

void PowerTrace::add_constant(double watts) noexcept {
  for (auto& p : power_w_) p += watts;
}

void PowerTrace::scale(double factor) noexcept {
  for (auto& p : power_w_) p *= factor;
}

double PowerTrace::average_w() const noexcept {
  if (power_w_.empty()) return 0.0;
  double s = 0.0;
  for (const double p : power_w_) s += p;
  return s / static_cast<double>(power_w_.size());
}

double PowerTrace::peak_w() const noexcept {
  if (power_w_.empty()) return 0.0;
  return *std::max_element(power_w_.begin(), power_w_.end());
}

std::vector<double> PowerTrace::current_a(double vdd_v) const {
  if (vdd_v <= 0.0) {
    throw std::invalid_argument("PowerTrace: vdd must be positive");
  }
  std::vector<double> i(power_w_.size());
  for (std::size_t k = 0; k < power_w_.size(); ++k) {
    i[k] = power_w_[k] / vdd_v;
  }
  return i;
}

}  // namespace clockmark::power
