// 65 nm-like technology power library. Single source of truth for every
// calibration constant in the reproduction (DESIGN.md §5).
//
// The paper reports two measured PrimeTime-PX constants at 10 MHz / 1.2 V
// in TSMC 65 nm low-leakage silicon:
//   * 1.476 uW  dynamic power of a single clock buffer   -> 147.6 fJ/cycle
//   * 1.126 uW  dynamic power of data switching in a reg -> 112.6 fJ/cycle
// Every row of Table I and Table II is linear in these two numbers, so
// carrying them as energies makes the tables reproduce by construction
// while letting the rest of the simulator run at any clock frequency.
#pragma once

#include <cstddef>

#include "rtl/cell.h"

namespace clockmark::power {

/// Per-event energies (joules) and per-cell leakage (watts).
struct TechLibrary {
  // --- headline calibration constants (paper Section V) ---
  /// Energy of one clock buffer toggling through one full clock cycle
  /// (two edges). 147.6 fJ <=> 1.476 uW at 10 MHz.
  double clock_buffer_cycle_j = 147.6e-15;
  /// Energy of one register's data toggle (Q changes) in one cycle.
  /// 112.6 fJ <=> 1.126 uW at 10 MHz.
  double flop_data_toggle_j = 112.6e-15;

  // --- secondary constants (back-solved from Table I, DESIGN.md §5) ---
  /// Active ICG: internal clock load + enable latch, per cycle.
  double icg_active_cycle_j = 120.0e-15;
  /// Gated ICG still sees its input clock toggle; small residual energy.
  double icg_idle_cycle_j = 12.0e-15;
  /// Generic combinational gate output toggle.
  double comb_toggle_j = 8.0e-15;
  /// Flop internal clock load beyond its leaf buffer (folded into the
  /// clock-buffer constant in the paper's accounting, so zero here).
  double flop_clock_cycle_j = 0.0;

  // --- leakage (watts per instance; Table I static column) ---
  /// 1024-register block leaks ~0.404 uW => ~0.394 nW per register.
  double flop_leak_w = 0.394e-9;
  double clock_buffer_leak_w = 0.0;  ///< folded into the register figure
  double icg_leak_w = 0.12e-9;
  double comb_leak_w = 0.05e-9;

  // --- cell areas (um^2, representative 65 nm values; the paper counts
  //     area in registers, which register_count() provides exactly) ---
  double flop_area_um2 = 7.2;
  double clock_buffer_area_um2 = 2.1;
  double icg_area_um2 = 6.5;
  double comb_area_um2 = 1.8;

  // --- operating point ---
  double vdd_v = 1.2;
  double clock_hz = 10.0e6;

  /// Leakage power of one instance of the given kind.
  double leakage_w(rtl::CellKind kind) const noexcept;
  /// Area of one instance of the given kind.
  double area_um2(rtl::CellKind kind) const noexcept;

  /// Dynamic power (W) of n clock buffers active every cycle at clock_hz.
  double clock_buffer_power_w(std::size_t n) const noexcept;
  /// Dynamic power (W) of n registers toggling data every cycle.
  double data_switching_power_w(std::size_t n) const noexcept;

  /// Re-derives the library at a different operating point: switching
  /// energies scale with (V/V0)^2 (CV^2), leakage roughly linearly with
  /// V in the DVFS range, and clock_hz is replaced. The paper operates
  /// at 10 MHz / 1.2 V; abl_frequency sweeps this.
  TechLibrary at_operating_point(double new_clock_hz,
                                 double new_vdd_v) const noexcept;
};

/// The default calibrated library (named for provenance in reports).
TechLibrary tsmc65lp_like();

/// Paper Table II: the number of load-circuit registers needed for a
/// detectable load power P, N = P / (flop_data + clock_buffer) per
/// register — a register in the state-of-the-art load circuit burns both
/// its clock-buffer and its data-switching energy every active cycle.
std::size_t load_circuit_registers_for_power(const TechLibrary& lib,
                                             double p_load_w) noexcept;

/// Paper Table II "Area Overhead Increase": fraction of the load-circuit
/// watermark's registers that the load circuit itself accounts for,
/// N / (N + wgc_registers). This equals the area-overhead *reduction*
/// achieved by the clock-modulation technique, which keeps only the WGC.
double area_overhead_increase(std::size_t load_registers,
                              std::size_t wgc_registers) noexcept;

}  // namespace clockmark::power
