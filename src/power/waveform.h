// Sub-cycle current waveform synthesis. The oscilloscope samples the
// supply current far faster than the clock (500 MS/s vs 10 MHz in the
// paper = 50 samples per cycle); within a cycle the current is not flat
// but spikes at the clock edges as the clock tree and logic switch. This
// module expands a per-cycle power trace into a sample-rate current
// waveform with a double-pulse (rising + falling edge) profile, which the
// measurement chain then filters, digitises and averages back down.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "power/trace.h"

namespace clockmark::power {

struct WaveformOptions {
  std::size_t samples_per_cycle = 50;  ///< f_s / f_clk (500 MHz / 10 MHz)
  /// Fraction of a cycle's switching energy released at the rising edge;
  /// the remainder is released at the falling edge (clock buffers switch
  /// on both edges — Section II of the paper).
  double rising_edge_fraction = 0.62;
  /// Current pulse decay time constant, in samples.
  double decay_samples = 4.0;
  /// Fraction of cycle energy drawn as a flat baseline rather than edge
  /// pulses (leakage + slow analog loads).
  double baseline_fraction = 0.12;
};

/// Expands per-cycle average power (W) into a current waveform (A) at
/// vdd_v. Each cycle contributes samples_per_cycle samples whose mean
/// equals the cycle's average current, preserving what CPA sees after
/// block-averaging.
std::vector<double> expand_to_current_waveform(const PowerTrace& trace,
                                               double vdd_v,
                                               const WaveformOptions& options);

/// Span overload: the expansion is per-cycle pure, so expanding a chunk
/// of a trace equals the matching slice of the whole-trace expansion —
/// the property the streaming acquisition chain relies on.
std::vector<double> expand_to_current_waveform(
    std::span<const double> cycle_power_w, double vdd_v,
    const WaveformOptions& options);

/// The normalised per-cycle pulse template used by the expansion (sums
/// to 1 over one cycle). Exposed for tests and for Fig. 3 rendering.
std::vector<double> cycle_pulse_template(const WaveformOptions& options);

}  // namespace clockmark::power
