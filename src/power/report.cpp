#include "power/report.h"

#include <iomanip>
#include <sstream>

namespace clockmark::power {

std::string format_power_report(const PowerEstimator& estimator,
                                std::span<const rtl::CycleActivity> cycles,
                                const ReportOptions& options) {
  const auto rows = estimator.report(cycles);
  double total_dyn = 0.0, total_stat = 0.0;
  for (const auto& r : rows) {
    total_dyn += r.dynamic_w;
    total_stat += r.static_w;
  }
  const double total = total_dyn + total_stat;

  std::ostringstream os;
  os << "---- " << options.title << " (" << cycles.size()
     << " cycles @ " << estimator.library().clock_hz / 1e6 << " MHz, "
     << estimator.library().vdd_v << " V) ----\n";
  os << std::left << std::setw(options.name_width) << "module"
     << std::right << std::setw(12) << "dynamic[uW]" << std::setw(12)
     << "static[uW]" << std::setw(12) << "total[uW]" << std::setw(8)
     << "%";
  if (options.show_area) os << std::setw(12) << "area[um2]";
  os << "\n";
  os << std::fixed << std::setprecision(3);
  for (const auto& r : rows) {
    const std::string name = r.path.empty() ? "<top>" : r.path;
    os << std::left << std::setw(options.name_width) << name << std::right
       << std::setw(12) << r.dynamic_w * 1e6 << std::setw(12)
       << r.static_w * 1e6 << std::setw(12) << r.total_w() * 1e6
       << std::setw(8) << std::setprecision(1)
       << (total > 0.0 ? 100.0 * r.total_w() / total : 0.0)
       << std::setprecision(3);
    if (options.show_area) {
      os << std::setw(12) << estimator.area(r.path);
    }
    os << "\n";
  }
  os << std::left << std::setw(options.name_width) << "TOTAL" << std::right
     << std::setw(12) << total_dyn * 1e6 << std::setw(12)
     << total_stat * 1e6 << std::setw(12) << total * 1e6 << "\n";
  return os.str();
}

}  // namespace clockmark::power
