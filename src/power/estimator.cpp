#include "power/estimator.h"

#include <algorithm>

namespace clockmark::power {

PowerEstimator::PowerEstimator(const rtl::Netlist& netlist,
                               TechLibrary library)
    : netlist_(netlist), lib_(library) {}

double PowerEstimator::dynamic_cycle_energy(
    const rtl::ModuleActivity& a) const noexcept {
  double e = 0.0;
  e += static_cast<double>(a.active_buffers) * lib_.clock_buffer_cycle_j;
  e += static_cast<double>(a.flop_toggles) * lib_.flop_data_toggle_j;
  e += static_cast<double>(a.clocked_flops) * lib_.flop_clock_cycle_j;
  e += static_cast<double>(a.active_icgs) * lib_.icg_active_cycle_j;
  e += static_cast<double>(a.gated_icgs) * lib_.icg_idle_cycle_j;
  e += static_cast<double>(a.comb_toggles) * lib_.comb_toggle_j;
  return e;
}

double PowerEstimator::leakage_power(const std::string& module_prefix) const {
  double w = 0.0;
  for (std::size_t i = 0; i < netlist_.cell_count(); ++i) {
    const auto id = static_cast<rtl::CellId>(i);
    if (netlist_.cell_in_module(id, module_prefix)) {
      w += lib_.leakage_w(netlist_.cell(id).kind);
    }
  }
  return w;
}

double PowerEstimator::area(const std::string& module_prefix) const {
  double a = 0.0;
  for (std::size_t i = 0; i < netlist_.cell_count(); ++i) {
    const auto id = static_cast<rtl::CellId>(i);
    if (netlist_.cell_in_module(id, module_prefix)) {
      a += lib_.area_um2(netlist_.cell(id).kind);
    }
  }
  return a;
}

double PowerEstimator::average_power(
    std::span<const rtl::CycleActivity> cycles) const {
  if (cycles.empty()) return leakage_power();
  double energy = 0.0;
  for (const auto& c : cycles) energy += dynamic_cycle_energy(c.total);
  const double time_s =
      static_cast<double>(cycles.size()) / lib_.clock_hz;
  return energy / time_s + leakage_power();
}

std::vector<ModulePowerReport> PowerEstimator::report(
    std::span<const rtl::CycleActivity> cycles) const {
  const std::size_t modules = netlist_.module_count();
  std::vector<double> energy(modules, 0.0);
  for (const auto& c : cycles) {
    const std::size_t n = std::min(modules, c.per_module.size());
    for (std::size_t m = 0; m < n; ++m) {
      energy[m] += dynamic_cycle_energy(c.per_module[m]);
    }
  }
  const double time_s =
      cycles.empty() ? 1.0
                     : static_cast<double>(cycles.size()) / lib_.clock_hz;

  std::vector<double> leak(modules, 0.0);
  for (std::size_t i = 0; i < netlist_.cell_count(); ++i) {
    const auto& cell = netlist_.cell(static_cast<rtl::CellId>(i));
    leak[cell.module] += lib_.leakage_w(cell.kind);
  }

  std::vector<ModulePowerReport> out;
  for (std::size_t m = 0; m < modules; ++m) {
    ModulePowerReport r;
    r.path = netlist_.module_path(static_cast<std::uint32_t>(m));
    r.dynamic_w = energy[m] / time_s;
    r.static_w = leak[m];
    if (r.dynamic_w > 0.0 || r.static_w > 0.0) out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(),
            [](const ModulePowerReport& a, const ModulePowerReport& b) {
              return a.total_w() > b.total_w();
            });
  return out;
}

std::vector<double> PowerEstimator::power_trace(
    std::span<const rtl::CycleActivity> cycles,
    const std::string& module_prefix) const {
  // Which modules match the prefix?
  const std::size_t modules = netlist_.module_count();
  std::vector<bool> match(modules, false);
  for (std::size_t m = 0; m < modules; ++m) {
    match[m] = netlist_.module_path(static_cast<std::uint32_t>(m))
                   .rfind(module_prefix, 0) == 0;
  }
  const double leak = leakage_power(module_prefix);
  std::vector<double> trace(cycles.size(), 0.0);
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    double e = 0.0;
    const std::size_t n = std::min(modules, cycles[i].per_module.size());
    for (std::size_t m = 0; m < n; ++m) {
      if (match[m]) e += dynamic_cycle_energy(cycles[i].per_module[m]);
    }
    trace[i] = e * lib_.clock_hz + leak;
  }
  return trace;
}

}  // namespace clockmark::power
