// Per-cycle power traces and composition. The device total power seen at
// the supply rail (paper Fig. 3) is the sum of independent per-subsystem
// traces: CPU + SoC background + watermark block. Traces carry their
// clock frequency so current conversion and sub-cycle expansion are
// unambiguous.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace clockmark::power {

class PowerTrace {
 public:
  PowerTrace() = default;
  PowerTrace(std::vector<double> cycle_power_w, double clock_hz,
             std::string label = "");

  std::size_t cycles() const noexcept { return power_w_.size(); }
  double clock_hz() const noexcept { return clock_hz_; }
  const std::string& label() const noexcept { return label_; }
  const std::vector<double>& values() const noexcept { return power_w_; }
  std::span<const double> span() const noexcept { return power_w_; }
  double operator[](std::size_t i) const { return power_w_.at(i); }

  /// Element-wise sum; lengths and clocks must match.
  PowerTrace& operator+=(const PowerTrace& other);
  friend PowerTrace operator+(PowerTrace a, const PowerTrace& b) {
    a += b;
    return a;
  }

  /// Adds a constant (e.g. leakage floor) to every cycle.
  void add_constant(double watts) noexcept;

  /// Scales every cycle (e.g. voltage-domain adjustment).
  void scale(double factor) noexcept;

  /// Average power over the trace.
  double average_w() const noexcept;
  /// Peak cycle power.
  double peak_w() const noexcept;

  /// Supply current trace I = P / V at the given rail voltage.
  std::vector<double> current_a(double vdd_v) const;

 private:
  std::vector<double> power_w_;
  double clock_hz_ = 0.0;
  std::string label_;
};

}  // namespace clockmark::power
