#include "power/tech65.h"

#include <cmath>

namespace clockmark::power {

double TechLibrary::leakage_w(rtl::CellKind kind) const noexcept {
  using rtl::CellKind;
  switch (kind) {
    case CellKind::kDff:
    case CellKind::kDffEn:
      return flop_leak_w;
    case CellKind::kClockBuffer:
      return clock_buffer_leak_w;
    case CellKind::kIcg:
      return icg_leak_w;
    case CellKind::kConst0:
    case CellKind::kConst1:
      return 0.0;
    default:
      return comb_leak_w;
  }
}

double TechLibrary::area_um2(rtl::CellKind kind) const noexcept {
  using rtl::CellKind;
  switch (kind) {
    case CellKind::kDff:
    case CellKind::kDffEn:
      return flop_area_um2;
    case CellKind::kClockBuffer:
      return clock_buffer_area_um2;
    case CellKind::kIcg:
      return icg_area_um2;
    case CellKind::kConst0:
    case CellKind::kConst1:
      return 0.0;
    default:
      return comb_area_um2;
  }
}

double TechLibrary::clock_buffer_power_w(std::size_t n) const noexcept {
  return static_cast<double>(n) * clock_buffer_cycle_j * clock_hz;
}

double TechLibrary::data_switching_power_w(std::size_t n) const noexcept {
  return static_cast<double>(n) * flop_data_toggle_j * clock_hz;
}

TechLibrary TechLibrary::at_operating_point(
    double new_clock_hz, double new_vdd_v) const noexcept {
  TechLibrary lib = *this;
  const double ve = (new_vdd_v / vdd_v) * (new_vdd_v / vdd_v);
  const double vl = new_vdd_v / vdd_v;
  lib.clock_buffer_cycle_j *= ve;
  lib.flop_data_toggle_j *= ve;
  lib.icg_active_cycle_j *= ve;
  lib.icg_idle_cycle_j *= ve;
  lib.comb_toggle_j *= ve;
  lib.flop_clock_cycle_j *= ve;
  lib.flop_leak_w *= vl;
  lib.clock_buffer_leak_w *= vl;
  lib.icg_leak_w *= vl;
  lib.comb_leak_w *= vl;
  lib.vdd_v = new_vdd_v;
  lib.clock_hz = new_clock_hz;
  return lib;
}

TechLibrary tsmc65lp_like() { return TechLibrary{}; }

std::size_t load_circuit_registers_for_power(const TechLibrary& lib,
                                             double p_load_w) noexcept {
  const double per_register_w =
      (lib.flop_data_toggle_j + lib.clock_buffer_cycle_j) * lib.clock_hz;
  if (per_register_w <= 0.0 || p_load_w <= 0.0) return 0;
  return static_cast<std::size_t>(p_load_w / per_register_w);
}

double area_overhead_increase(std::size_t load_registers,
                              std::size_t wgc_registers) noexcept {
  const double n = static_cast<double>(load_registers);
  const double w = static_cast<double>(wgc_registers);
  if (n + w <= 0.0) return 0.0;
  return n / (n + w);
}

}  // namespace clockmark::power
