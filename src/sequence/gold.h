// Gold code generation. The WGC on the test chips contains *two* sequence
// generators; combining a preferred pair of m-sequences yields Gold codes
// with bounded cross-correlation, which lets several differently-keyed
// watermarks coexist in one SoC and be detected independently (exercised
// by bench/abl_dual_watermark).
#pragma once

#include <cstdint>
#include <vector>

#include "sequence/lfsr.h"

namespace clockmark::sequence {

/// Preferred-pair tap masks for Gold code construction at a given width.
/// Supported widths: 5, 6, 7, 9, 10, 11 (widths ≡ 0 mod 4 have no
/// preferred pairs). Throws std::out_of_range for other widths.
struct PreferredPair {
  std::uint32_t taps_a;
  std::uint32_t taps_b;
};
PreferredPair preferred_pair(unsigned width);

/// Generates the Gold code g_k = a XOR (b shifted by k) of the given
/// length from a preferred pair of width-bit LFSRs. shift selects which
/// of the 2^width + 1 codes in the family is produced (shift in
/// [0, 2^width - 2]); the two underlying m-sequences themselves are also
/// family members but are not produced by this helper.
std::vector<bool> gold_code(unsigned width, std::uint32_t shift,
                            std::size_t length);

/// Peak absolute periodic cross-correlation between two ±1 mapped binary
/// sequences of equal length (in samples, not normalised).
double peak_cross_correlation(const std::vector<bool>& a,
                              const std::vector<bool>& b);

}  // namespace clockmark::sequence
