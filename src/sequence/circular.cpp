#include "sequence/circular.h"

#include <stdexcept>

namespace clockmark::sequence {

CircularShiftRegister::CircularShiftRegister(unsigned width,
                                             std::uint32_t pattern)
    : width_(width),
      mask_(width >= 32 ? 0xffffffffu : ((1u << width) - 1u)),
      state_(pattern & mask_) {
  if (width < 1 || width > 32) {
    throw std::invalid_argument(
        "CircularShiftRegister: width must be in [1, 32]");
  }
}

bool CircularShiftRegister::step() noexcept {
  const bool out = (state_ & 1u) != 0u;
  const std::uint32_t lsb = state_ & 1u;
  state_ = ((state_ >> 1u) | (lsb << (width_ - 1u))) & mask_;
  return out;
}

void CircularShiftRegister::reset(std::uint32_t pattern) noexcept {
  state_ = pattern & mask_;
}

std::vector<bool> CircularShiftRegister::generate(std::size_t n) {
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = step();
  return bits;
}

}  // namespace clockmark::sequence
