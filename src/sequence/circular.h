// Circular shift register — the WGC's alternative sequence-generator
// configuration ("simple 32-bit circular shift registers" in the paper).
// The loaded pattern rotates forever, so an arbitrary fixed watermark
// signature of up to 32 bits can be emitted.
#pragma once

#include <cstdint>
#include <vector>

namespace clockmark::sequence {

class CircularShiftRegister {
 public:
  /// width in [1, 32]; pattern is the initial register contents (bit 0
  /// is emitted first).
  CircularShiftRegister(unsigned width, std::uint32_t pattern);

  /// Output bit for the current cycle, then rotate by one.
  bool step() noexcept;

  bool output() const noexcept { return (state_ & 1u) != 0u; }
  unsigned width() const noexcept { return width_; }
  std::uint32_t state() const noexcept { return state_; }

  void reset(std::uint32_t pattern) noexcept;

  std::vector<bool> generate(std::size_t n);

 private:
  unsigned width_;
  std::uint32_t mask_;
  std::uint32_t state_;
};

}  // namespace clockmark::sequence
