// Statistical properties of binary sequences. Maximal-length sequences
// have three classic properties (balance, run-length distribution, two-
// valued autocorrelation) that make them ideal watermark carriers: the
// CPA noise floor away from the true phase is minimised because the
// off-peak autocorrelation is exactly -1/P.
#pragma once

#include <cstddef>
#include <vector>

namespace clockmark::sequence {

/// Number of ones minus number of zeros. Exactly +1 for one period of an
/// m-sequence.
long balance(const std::vector<bool>& seq) noexcept;

/// Lengths of maximal runs of equal bits, in order of appearance
/// (treating the sequence as linear, not circular).
std::vector<std::size_t> run_lengths(const std::vector<bool>& seq);

/// Periodic autocorrelation of the ±1-mapped sequence at the given shift
/// (unnormalised). For one period of an m-sequence: P at shift 0, -1
/// at every other shift.
long periodic_autocorrelation(const std::vector<bool>& seq,
                              std::size_t shift) noexcept;

/// Full periodic autocorrelation for all shifts 0..P-1.
std::vector<long> autocorrelation_spectrum(const std::vector<bool>& seq);

/// True if one period of seq satisfies all three m-sequence properties:
/// balance = +1, run-length distribution halves per extra bit, and
/// two-valued autocorrelation {P, -1}.
bool is_m_sequence_period(const std::vector<bool>& seq);

}  // namespace clockmark::sequence
