#include "sequence/polynomials.h"

#include <array>
#include <stdexcept>

namespace clockmark::sequence {
namespace {

// Primitive feedback polynomials for maximal-length LFSRs, per the classic
// Xilinx XAPP052 table: entry {n, a, b, c} denotes
//   p(x) = x^n + x^a + x^b + x^c + 1
// (two-tap entries have b = c = 0). With the Lfsr recurrence
//   o(t + n) = sum of o(t + e) over tap exponents e,
// a primitive p(x) gives the full period 2^n - 1.
struct TapEntry {
  std::array<std::uint8_t, 4> stages;
};

constexpr std::array<TapEntry, 33> kTaps = {{
    {{0, 0, 0, 0}},      // width 0 (unused)
    {{0, 0, 0, 0}},      // width 1 (unused)
    {{2, 1, 0, 0}},      // 2
    {{3, 2, 0, 0}},      // 3
    {{4, 3, 0, 0}},      // 4
    {{5, 3, 0, 0}},      // 5
    {{6, 5, 0, 0}},      // 6
    {{7, 6, 0, 0}},      // 7
    {{8, 6, 5, 4}},      // 8
    {{9, 5, 0, 0}},      // 9
    {{10, 7, 0, 0}},     // 10
    {{11, 9, 0, 0}},     // 11
    {{12, 6, 4, 1}},     // 12 — the configuration used on both test chips
    {{13, 4, 3, 1}},     // 13
    {{14, 5, 3, 1}},     // 14
    {{15, 14, 0, 0}},    // 15
    {{16, 15, 13, 4}},   // 16
    {{17, 14, 0, 0}},    // 17
    {{18, 11, 0, 0}},    // 18
    {{19, 6, 2, 1}},     // 19
    {{20, 17, 0, 0}},    // 20
    {{21, 19, 0, 0}},    // 21
    {{22, 21, 0, 0}},    // 22
    {{23, 18, 0, 0}},    // 23
    {{24, 23, 22, 17}},  // 24
    {{25, 22, 0, 0}},    // 25
    {{26, 6, 2, 1}},     // 26
    {{27, 5, 2, 1}},     // 27
    {{28, 25, 0, 0}},    // 28
    {{29, 27, 0, 0}},    // 29
    {{30, 6, 4, 1}},     // 30
    {{31, 28, 0, 0}},    // 31
    {{32, 22, 2, 1}},    // 32
}};

}  // namespace

std::uint32_t maximal_taps(unsigned width) {
  if (width < 2 || width > 32) {
    throw std::out_of_range("maximal_taps: width must be in [2, 32]");
  }
  // Constant term x^0 is always present in the feedback polynomial.
  std::uint32_t mask = 1u;
  for (const std::uint8_t stage : kTaps[width].stages) {
    if (stage != 0 && stage < width) mask |= 1u << stage;
  }
  return mask;
}

std::uint64_t maximal_period(unsigned width) noexcept {
  return (width >= 64) ? ~0ULL : ((1ULL << width) - 1ULL);
}

}  // namespace clockmark::sequence
