#include "sequence/properties.h"

#include <algorithm>

namespace clockmark::sequence {

long balance(const std::vector<bool>& seq) noexcept {
  long d = 0;
  for (const bool b : seq) d += b ? 1 : -1;
  return d;
}

std::vector<std::size_t> run_lengths(const std::vector<bool>& seq) {
  std::vector<std::size_t> runs;
  if (seq.empty()) return runs;
  std::size_t len = 1;
  for (std::size_t i = 1; i < seq.size(); ++i) {
    if (seq[i] == seq[i - 1]) {
      ++len;
    } else {
      runs.push_back(len);
      len = 1;
    }
  }
  runs.push_back(len);
  return runs;
}

long periodic_autocorrelation(const std::vector<bool>& seq,
                              std::size_t shift) noexcept {
  const std::size_t n = seq.size();
  if (n == 0) return 0;
  long acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int a = seq[i] ? 1 : -1;
    const int b = seq[(i + shift) % n] ? 1 : -1;
    acc += a * b;
  }
  return acc;
}

std::vector<long> autocorrelation_spectrum(const std::vector<bool>& seq) {
  std::vector<long> out(seq.size(), 0);
  for (std::size_t s = 0; s < seq.size(); ++s) {
    out[s] = periodic_autocorrelation(seq, s);
  }
  return out;
}

bool is_m_sequence_period(const std::vector<bool>& seq) {
  const std::size_t p = seq.size();
  // Period of an m-sequence is 2^k - 1.
  if (p < 3) return false;
  std::size_t pow2 = p + 1;
  if ((pow2 & (pow2 - 1)) != 0) return false;
  if (balance(seq) != 1) return false;
  // Two-valued autocorrelation: P at shift 0, -1 elsewhere. Checking all
  // shifts is O(P^2); fine for the widths we use in tests (<= 12 bits).
  for (std::size_t s = 1; s < p; ++s) {
    if (periodic_autocorrelation(seq, s) != -1) return false;
  }
  return true;
}

}  // namespace clockmark::sequence
