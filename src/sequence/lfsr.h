// Linear feedback shift registers. The paper's Watermark Generation
// Circuit configures a 32-bit sequence generator as a 12-bit maximal-
// length LFSR whose output bit stream is the WMARK signal (period
// 2^12 - 1 = 4095 cycles).
#pragma once

#include <cstdint>
#include <vector>

namespace clockmark::sequence {

/// Fibonacci-style LFSR: feedback is the XOR of the tapped state bits,
/// shifted in at the MSB; output is the LSB. This matches the shift-
/// register hardware the WGC implements.
class Lfsr {
 public:
  /// width: number of state bits, 2..32.
  /// taps: feedback polynomial as a bitmask over state bits (bit i set =>
  ///       state bit i participates in the XOR feedback). Use
  ///       maximal_taps(width) for a maximum-length sequence.
  /// seed: initial state, must be nonzero (all-zero is the LFSR lock-up
  ///       state); it is masked to `width` bits.
  Lfsr(unsigned width, std::uint32_t taps, std::uint32_t seed);

  /// Output bit for the current cycle, then advance one cycle.
  bool step();

  /// Current output bit (LSB of the state) without advancing.
  bool output() const noexcept { return (state_ & 1u) != 0u; }

  std::uint32_t state() const noexcept { return state_; }
  unsigned width() const noexcept { return width_; }
  std::uint32_t taps() const noexcept { return taps_; }

  /// Resets to the given seed (masked, must be nonzero).
  void reset(std::uint32_t seed);

  /// Generates the next n output bits (advances the state).
  std::vector<bool> generate(std::size_t n);

  /// The full period of this LFSR's state sequence, found by stepping
  /// until the seed state recurs. 2^width - 1 for maximal polynomials.
  std::size_t measure_period();

 private:
  unsigned width_;
  std::uint32_t taps_;
  std::uint32_t mask_;
  std::uint32_t state_;
};

}  // namespace clockmark::sequence
