#include "sequence/gold.h"

#include <cmath>
#include <stdexcept>

namespace clockmark::sequence {
namespace {

// Tap exponents below follow the same convention as polynomials.cpp:
// p(x) = x^w + (tap bits), constant term at bit 0.
constexpr std::uint32_t poly_taps(std::initializer_list<unsigned> exponents) {
  std::uint32_t mask = 1u;  // x^0
  for (const unsigned e : exponents) mask |= 1u << e;
  return mask;
}

}  // namespace

PreferredPair preferred_pair(unsigned width) {
  switch (width) {
    case 5:
      // x^5+x^2+1  /  x^5+x^4+x^3+x^2+1
      return {poly_taps({2}), poly_taps({4, 3, 2})};
    case 6:
      // x^6+x+1  /  x^6+x^5+x^2+x+1
      return {poly_taps({1}), poly_taps({5, 2, 1})};
    case 7:
      // x^7+x^3+1  /  x^7+x^3+x^2+x+1
      return {poly_taps({3}), poly_taps({3, 2, 1})};
    case 9:
      // x^9+x^4+1  /  x^9+x^6+x^4+x^3+1
      return {poly_taps({4}), poly_taps({6, 4, 3})};
    case 10:
      // The GPS C/A pair: x^10+x^3+1  /  x^10+x^9+x^8+x^6+x^3+x^2+1
      return {poly_taps({3}), poly_taps({9, 8, 6, 3, 2})};
    case 11:
      // x^11+x^2+1  /  x^11+x^8+x^5+x^2+1
      return {poly_taps({2}), poly_taps({8, 5, 2})};
    default:
      throw std::out_of_range(
          "preferred_pair: supported widths are 5, 6, 7, 9, 10, 11");
  }
}

std::vector<bool> gold_code(unsigned width, std::uint32_t shift,
                            std::size_t length) {
  const PreferredPair pair = preferred_pair(width);
  Lfsr a(width, pair.taps_a, 0xffffffffu);
  Lfsr b(width, pair.taps_b, 0xffffffffu);
  for (std::uint32_t i = 0; i < shift; ++i) b.step();
  std::vector<bool> g(length);
  for (std::size_t i = 0; i < length; ++i) g[i] = a.step() ^ b.step();
  return g;
}

double peak_cross_correlation(const std::vector<bool>& a,
                              const std::vector<bool>& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument(
        "peak_cross_correlation: sequences must be nonempty and equal");
  }
  const std::size_t n = a.size();
  double peak = 0.0;
  for (std::size_t shift = 0; shift < n; ++shift) {
    long acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const int xa = a[i] ? 1 : -1;
      const int xb = b[(i + shift) % n] ? 1 : -1;
      acc += xa * xb;
    }
    peak = std::max(peak, std::fabs(static_cast<double>(acc)));
  }
  return peak;
}

}  // namespace clockmark::sequence
