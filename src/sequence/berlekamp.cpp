#include "sequence/berlekamp.h"

#include <algorithm>

namespace clockmark::sequence {

LfsrDescription berlekamp_massey(const std::vector<bool>& bits) {
  const std::size_t n = bits.size();
  std::vector<bool> c(n + 1, false);  // current connection polynomial
  std::vector<bool> b(n + 1, false);  // previous connection polynomial
  c[0] = b[0] = true;
  std::size_t l = 0;   // current linear complexity
  std::size_t m = 1;   // steps since last length change
  for (std::size_t i = 0; i < n; ++i) {
    // Discrepancy d = s_i + sum_{j=1..L} c_j s_{i-j}.
    bool d = bits[i];
    for (std::size_t j = 1; j <= l; ++j) {
      if (c[j] && bits[i - j]) d = !d;
    }
    if (!d) {
      ++m;
      continue;
    }
    const std::vector<bool> t = c;
    // c(x) += b(x) * x^m
    for (std::size_t j = 0; j + m <= n; ++j) {
      if (b[j]) c[j + m] = !c[j + m];
    }
    if (2 * l <= i) {
      l = i + 1 - l;
      b = t;
      m = 1;
    } else {
      ++m;
    }
  }
  LfsrDescription out;
  out.length = l;
  out.connection.assign(c.begin(), c.begin() + static_cast<long>(l) + 1);
  return out;
}

std::vector<bool> predict_continuation(const LfsrDescription& lfsr,
                                       const std::vector<bool>& bits,
                                       std::size_t extra) {
  std::vector<bool> s = bits;
  const std::size_t l = lfsr.length;
  for (std::size_t k = 0; k < extra; ++k) {
    bool next = false;
    for (std::size_t j = 1; j <= l && j < lfsr.connection.size(); ++j) {
      if (lfsr.connection[j] && s.size() >= j && s[s.size() - j]) {
        next = !next;
      }
    }
    s.push_back(next);
  }
  return std::vector<bool>(s.begin() + static_cast<long>(bits.size()),
                           s.end());
}

KeyRecoveryResult attempt_key_recovery(const std::vector<bool>& observed,
                                       std::size_t train_bits,
                                       unsigned true_width) {
  KeyRecoveryResult result;
  train_bits = std::min(train_bits, observed.size());
  const std::vector<bool> train(observed.begin(),
                                observed.begin() +
                                    static_cast<long>(train_bits));
  result.recovered = berlekamp_massey(train);

  const std::size_t holdout = observed.size() - train_bits;
  if (holdout > 0 && result.recovered.length > 0) {
    const auto predicted =
        predict_continuation(result.recovered, train, holdout);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < holdout; ++i) {
      if (predicted[i] == observed[train_bits + i]) ++correct;
    }
    result.prediction_accuracy =
        static_cast<double>(correct) / static_cast<double>(holdout);
  }
  // The key counts as recovered when BM identifies an LFSR of exactly
  // the true width that predicts (essentially) the whole held-out
  // continuation — a stray bit flip in the holdout does not unrecover
  // the key.
  result.exact = result.recovered.length == true_width &&
                 result.prediction_accuracy >= 0.999;
  return result;
}

}  // namespace clockmark::sequence
