#include "sequence/lfsr.h"

#include <bit>
#include <stdexcept>

namespace clockmark::sequence {

Lfsr::Lfsr(unsigned width, std::uint32_t taps, std::uint32_t seed)
    : width_(width),
      taps_(taps),
      mask_(width >= 32 ? 0xffffffffu : ((1u << width) - 1u)),
      state_(seed & mask_) {
  if (width < 2 || width > 32) {
    throw std::invalid_argument("Lfsr: width must be in [2, 32]");
  }
  if ((taps & mask_) == 0) {
    throw std::invalid_argument("Lfsr: taps must select at least one bit");
  }
  if (state_ == 0) {
    throw std::invalid_argument("Lfsr: seed must be nonzero (lock-up state)");
  }
  taps_ &= mask_;
}

bool Lfsr::step() {
  const bool out = (state_ & 1u) != 0u;
  const auto feedback =
      static_cast<std::uint32_t>(std::popcount(state_ & taps_) & 1);
  state_ = (state_ >> 1u) | (feedback << (width_ - 1u));
  return out;
}

void Lfsr::reset(std::uint32_t seed) {
  seed &= mask_;
  if (seed == 0) {
    throw std::invalid_argument("Lfsr: seed must be nonzero (lock-up state)");
  }
  state_ = seed;
}

std::vector<bool> Lfsr::generate(std::size_t n) {
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = step();
  return bits;
}

std::size_t Lfsr::measure_period() {
  const std::uint32_t start = state_;
  std::size_t period = 0;
  do {
    step();
    ++period;
  } while (state_ != start);
  return period;
}

}  // namespace clockmark::sequence
