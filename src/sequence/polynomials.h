// Table of maximal-length LFSR feedback polynomials for widths 2..32.
#pragma once

#include <cstdint>

namespace clockmark::sequence {

/// Returns a tap mask producing a maximal-length sequence (period
/// 2^width - 1) for the given register width in [2, 32]. Throws
/// std::out_of_range otherwise. Bit i of the mask corresponds to state
/// bit i (LSB = bit 0) feeding the XOR network.
std::uint32_t maximal_taps(unsigned width);

/// Period of a maximal-length sequence of the given width: 2^width - 1.
std::uint64_t maximal_period(unsigned width) noexcept;

}  // namespace clockmark::sequence
