// Berlekamp-Massey over GF(2): recovers the shortest LFSR generating a
// bit sequence. This is the *attacker's* tool — if the WMARK stream can
// be observed cleanly for 2L bits, the watermark key (polynomial + state)
// falls out. The abl_key_recovery bench uses it to show that the power
// side channel, as measured through the paper's acquisition chain, does
// NOT leak a clean enough WMARK stream for this attack at realistic
// noise (the per-cycle SNR is far below one LSB).
#pragma once

#include <cstdint>
#include <vector>

namespace clockmark::sequence {

struct LfsrDescription {
  /// Linear complexity: length of the shortest generating LFSR.
  std::size_t length = 0;
  /// Connection polynomial C(x) = 1 + c1 x + ... + cL x^L as a bit
  /// vector, c[0] always 1. s_t = sum_{i=1..L} c_i * s_{t-i} (mod 2).
  std::vector<bool> connection;
};

/// Runs Berlekamp-Massey on the bit sequence.
LfsrDescription berlekamp_massey(const std::vector<bool>& bits);

/// Continues the sequence: given its first `bits`, predicts the next
/// `extra` bits using the recovered LFSR. Undefined if bits.size() < 2L.
std::vector<bool> predict_continuation(const LfsrDescription& lfsr,
                                       const std::vector<bool>& bits,
                                       std::size_t extra);

/// Convenience for the attack bench: tries to recover the generator from
/// a (possibly noisy) bit stream and reports how well the recovered LFSR
/// predicts a held-out continuation.
struct KeyRecoveryResult {
  LfsrDescription recovered;
  double prediction_accuracy = 0.0;  ///< on the held-out suffix
  bool exact = false;  ///< linear complexity == true width and 100 % acc.
};

KeyRecoveryResult attempt_key_recovery(const std::vector<bool>& observed,
                                       std::size_t train_bits,
                                       unsigned true_width);

}  // namespace clockmark::sequence
