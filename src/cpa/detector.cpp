#include "cpa/detector.h"

#include <cmath>
#include <sstream>

#include "cpa/confidence.h"

namespace clockmark::cpa {

Detector::Detector(const DetectorPolicy& policy) : policy_(policy) {}

DetectionResult Detector::decide(SpreadSpectrum spectrum) const {
  DetectionResult result;
  result.spectrum = std::move(spectrum);
  const SpreadSpectrum& ss = result.spectrum;

  std::ostringstream why;
  const bool z_ok = ss.peak_z >= policy_.min_peak_z;
  const bool isolated =
      ss.second_peak == 0.0 ||
      std::fabs(ss.peak_value) >= policy_.min_isolation * ss.second_peak;
  result.detected = z_ok && isolated;
  why << "peak rho=" << ss.peak_value << " at rotation "
      << ss.peak_rotation << ", z=" << ss.peak_z
      << (z_ok ? " >= " : " < ") << policy_.min_peak_z
      << "; isolation=" << ss.isolation()
      << (isolated ? " >= " : " < ") << policy_.min_isolation << " -> "
      << (result.detected ? "DETECTED" : "not detected");
  if (result.detected) {
    why << " (confidence " << detection_confidence(ss) * 100.0 << " %)";
  }
  result.reason = why.str();
  return result;
}

DetectionResult Detector::detect(std::span<const double> measurement,
                                 std::span<const double> pattern,
                                 CorrelationMethod method) const {
  return decide(
      compute_spread_spectrum(measurement, pattern, method, policy_.guard));
}

}  // namespace clockmark::cpa
