// Repeatability study (paper Fig. 6): run the full
// simulate-measure-correlate experiment many times with independent
// noise, collect the correlation at the true phase ("in phase") and the
// off-phase values, and summarise both as the paper's 95 % box plots.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "cpa/spread_spectrum.h"
#include "util/stats.h"

namespace clockmark::cpa {

/// One repetition's contribution.
struct RepetitionSample {
  double in_phase_rho = 0.0;   ///< rho at the true rotation
  double max_off_phase = 0.0;  ///< largest |rho| away from the true phase
  bool detected = false;
};

struct RepeatabilityResult {
  std::vector<RepetitionSample> samples;
  util::BoxPlot in_phase;      ///< Fig. 6: the distinctive peak box
  util::BoxPlot off_phase;     ///< Fig. 6: the near-zero boxes
  std::size_t detections = 0;  ///< how many repetitions detected
  std::size_t repetitions = 0;
};

/// Runs `experiment` `repetitions` times. The callback receives the
/// repetition index and must return that run's spread spectrum together
/// with the true rotation (phase) of the embedded watermark and the
/// detection verdict.
struct RepetitionOutcome {
  SpreadSpectrum spectrum;
  std::size_t true_rotation = 0;
  bool detected = false;
};

RepeatabilityResult run_repeatability(
    std::size_t repetitions,
    const std::function<RepetitionOutcome(std::size_t)>& experiment,
    std::size_t guard = 8);

/// Folds already-computed repetition outcomes (ordered by repetition
/// index) into the box-plot summary. This is the sequential tail of
/// run_repeatability, split out so outcomes may be produced in parallel
/// (sim::run_repeatability_study with an Executor) and still summarise
/// identically to the serial loop.
RepeatabilityResult summarize_repetitions(
    std::span<const RepetitionOutcome> outcomes, std::size_t guard = 8);

}  // namespace clockmark::cpa
