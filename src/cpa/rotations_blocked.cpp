// Register-blocked multi-rotation CPA kernel (DESIGN.md §12). Computes
// up to kRotationBlockLanes consecutive rotations of correlate_at in
// one pass over the measurement: the trace is streamed once, each lane
// keeps its sxy accumulator in a register, and the rotation-dependent
// pattern statistics are hoisted to period prefix sums. Compiled under
// CLOCKMARK_HOT_PATH_OPTIONS (see src/CMakeLists.txt) — the flags are
// value-safe (-ffp-contract=off, no reassociation), so every lane's
// accumulation chain carries exactly the bits of the scalar
// correlate_at it replaces. This file deliberately contains no
// std::complex arithmetic (the reason cm_cpa as a whole stays off the
// hot-path flag list).
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "cpa/correlation.h"

namespace clockmark::cpa {
namespace {

/// Sum of `len` (< 2 * period) cyclic pattern values starting at
/// `start` (< period), from the prefix table prefix[i] = sum x[0..i).
inline double window_sum(const std::vector<double>& prefix,
                         std::size_t period, std::size_t start,
                         std::size_t len) {
  const std::size_t end = start + len;
  if (end <= period) return prefix[end] - prefix[start];
  return (prefix[period] - prefix[start]) + prefix[end - period];
}

/// The blocked accumulation pass. Lane l models rotation
/// (first + l) mod p; per lane the operation sequence — dy shared,
/// acc[l] += (x - mx[l]) * dy in trace order — is exactly the second
/// pass of the scalar correlate_at, so lanes are bit-identical to it.
template <std::size_t B>
void correlate_block(const double* y, std::size_t n, const double* x,
                     std::size_t p, std::size_t first, const double* mx,
                     double my, double* sxy_out, double* syy_out) {
  double acc[B];
  for (std::size_t l = 0; l < B; ++l) acc[l] = 0.0;
  double syy = 0.0;
  std::size_t i = 0;
  std::size_t j0 = first;  // lane 0's pattern index, always < p
  while (i < n) {
    if (j0 + B <= p) {
      // Fast path: all lanes read the contiguous window [j0, j0 + B),
      // which slides one slot per sample until lane B-1 would wrap —
      // contiguous loads the compiler can vectorize across lanes.
      const std::size_t run = std::min(n - i, p - B + 1 - j0);
      const double* ys = y + i;
      const double* xs = x + j0;
      for (std::size_t s = 0; s < run; ++s) {
        const double dy = ys[s] - my;
        syy += dy * dy;
        for (std::size_t l = 0; l < B; ++l) {
          acc[l] += (xs[s + l] - mx[l]) * dy;
        }
      }
      i += run;
      j0 += run;
      if (j0 == p) j0 = 0;
    } else {
      // Wrap region (the last B-1 slots of the period, or p < B):
      // per-lane modular indexing for up to B-1 samples per period.
      const double dy = y[i] - my;
      syy += dy * dy;
      for (std::size_t l = 0; l < B; ++l) {
        acc[l] += (x[(j0 + l) % p] - mx[l]) * dy;
      }
      ++i;
      if (++j0 == p) j0 = 0;
    }
  }
  for (std::size_t l = 0; l < B; ++l) sxy_out[l] = acc[l];
  *syy_out = syy;
}

using BlockFn = void (*)(const double*, std::size_t, const double*,
                         std::size_t, std::size_t, const double*, double,
                         double*, double*);

constexpr BlockFn kBlockFns[kRotationBlockLanes] = {
    &correlate_block<1>, &correlate_block<2>, &correlate_block<3>,
    &correlate_block<4>, &correlate_block<5>, &correlate_block<6>,
    &correlate_block<7>, &correlate_block<8>};

}  // namespace

void correlate_rotations_blocked(std::span<const double> measurement,
                                 std::span<const double> pattern,
                                 std::size_t first_rotation,
                                 std::span<double> rho_out) {
  const std::size_t lanes = rho_out.size();
  if (lanes == 0) return;
  if (lanes > kRotationBlockLanes) {
    throw std::invalid_argument(
        "correlate_rotations_blocked: more lanes than kRotationBlockLanes");
  }
  const std::size_t n = measurement.size();
  if (n == 0) {
    for (auto& v : rho_out) v = 0.0;  // correlate_at's empty-trace value
    return;
  }
  const std::size_t p = pattern.size();
  if (p == 0) {
    throw std::invalid_argument("correlate_rotations_blocked: empty pattern");
  }

  // Rotation-invariant pattern statistics: one period of prefix sums
  // serves every lane. For the 0/1 model patterns CPA sweeps, every
  // partial sum is an exactly-representable integer, so the hoisted
  // pattern mean carries the same bits as correlate_at's historical
  // sequential first pass.
  static thread_local std::vector<double> prefix;
  static thread_local std::vector<double> prefix_sq;
  prefix.assign(p + 1, 0.0);
  prefix_sq.assign(p + 1, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    prefix[i + 1] = prefix[i] + pattern[i];
    prefix_sq[i + 1] = prefix_sq[i] + pattern[i] * pattern[i];
  }

  // Trace mean: the same accumulation chain as correlate_at's first
  // pass (the pattern-side accumulator it used to interleave was
  // independent, so dropping it leaves these adds untouched).
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) my += measurement[i];
  my /= static_cast<double>(n);

  // Per-lane model statistics over n samples: `full` whole periods plus
  // an rem-wide window starting at the lane's rotation. The centred sum
  // of squares is sxx - mx * sx (algebraically sum (x - mx)^2 up to
  // rounding); zero-variance windows give exactly 0 and keep
  // correlate_at's rho = 0 guard.
  const std::size_t full = n / p;
  const std::size_t rem = n % p;
  const auto fulld = static_cast<double>(full);
  double mx[kRotationBlockLanes];
  double sxx_c[kRotationBlockLanes];
  for (std::size_t l = 0; l < lanes; ++l) {
    const std::size_t r = (first_rotation + l) % p;
    const double sx = fulld * prefix[p] + window_sum(prefix, p, r, rem);
    const double sxx =
        fulld * prefix_sq[p] + window_sum(prefix_sq, p, r, rem);
    mx[l] = sx / static_cast<double>(n);
    sxx_c[l] = sxx - mx[l] * sx;
  }

  double sxy[kRotationBlockLanes];
  double syy = 0.0;
  kBlockFns[lanes - 1](measurement.data(), n, pattern.data(), p,
                       first_rotation % p, mx, my, sxy, &syy);

  for (std::size_t l = 0; l < lanes; ++l) {
    rho_out[l] = (sxx_c[l] <= 0.0 || syy <= 0.0)
                     ? 0.0
                     : sxy[l] / std::sqrt(sxx_c[l] * syy);
  }
}

}  // namespace clockmark::cpa
