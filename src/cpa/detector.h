// Watermark detection decision. The paper regards a watermark as
// detected when "a single significant correlation coefficient can be
// resolved" in the spread spectrum. We operationalise that as a z-score
// threshold against the off-peak noise floor plus an isolation
// requirement against the second-largest peak.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "cpa/spread_spectrum.h"

namespace clockmark::cpa {

struct DetectorPolicy {
  /// Peak must stand this many noise-floor sigmas above the mean.
  /// With P ~ 4095 rotations, a Gaussian noise floor's maximum is about
  /// sqrt(2 ln P) ~ 4.1 sigma, so 5.5 keeps the false-positive rate low.
  double min_peak_z = 5.5;
  /// |peak| must exceed the second peak by this factor.
  double min_isolation = 1.25;
  /// Rotations around the peak excluded from noise statistics.
  std::size_t guard = 8;
};

struct DetectionResult {
  bool detected = false;
  SpreadSpectrum spectrum;
  std::string reason;  ///< human-readable explanation of the decision
};

class Detector {
 public:
  explicit Detector(const DetectorPolicy& policy = {});

  DetectionResult detect(std::span<const double> measurement,
                         std::span<const double> pattern,
                         CorrelationMethod method =
                             CorrelationMethod::kFft) const;

  /// Decision on an already-computed spectrum.
  DetectionResult decide(SpreadSpectrum spectrum) const;

  const DetectorPolicy& policy() const noexcept { return policy_; }

 private:
  DetectorPolicy policy_;
};

}  // namespace clockmark::cpa
