#include "cpa/confidence.h"

#include <cmath>

namespace clockmark::cpa {

double normal_tail(double z) noexcept {
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

double false_positive_probability(double z,
                                  std::size_t rotations) noexcept {
  if (rotations == 0) return 0.0;
  // Two-sided per-rotation tail (the detector peaks on |rho|).
  const double per_rotation = 2.0 * normal_tail(z);
  if (per_rotation >= 1.0) return 1.0;
  // 1 - (1 - p)^P computed stably via log1p/expm1.
  const double log_term =
      static_cast<double>(rotations) * std::log1p(-per_rotation);
  return -std::expm1(log_term);
}

double expected_noise_peak_z(std::size_t rotations) noexcept {
  if (rotations < 2) return 0.0;
  return std::sqrt(2.0 * std::log(static_cast<double>(rotations)));
}

double detection_confidence(const SpreadSpectrum& spectrum) noexcept {
  if (spectrum.rho.empty() || spectrum.noise_std <= 0.0) return 0.0;
  return 1.0 - false_positive_probability(spectrum.peak_z,
                                          spectrum.rho.size());
}

double z_threshold_for_alpha(double alpha, std::size_t rotations) noexcept {
  if (alpha <= 0.0 || alpha >= 1.0 || rotations == 0) return 0.0;
  // Bisection on the monotone false_positive_probability.
  double lo = 0.0, hi = 12.0;
  for (int i = 0; i < 100; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (false_positive_probability(mid, rotations) > alpha) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace clockmark::cpa
