// Repetition-batched CPA sweep engine: everything compute_spread_spectrum
// recomputes per repetition, computed once per study instead.
//
// A repeatability study sweeps R traces against the *same* watermark
// pattern, and most of the FFT-path sweep does not depend on the trace:
//   * the FFT plan registry lookup (mutex + hash per transform),
//   * the forward FFT of the pattern (the fb side of the sxy circular
//     correlation),
//   * the sx / sxx circular correlations, which depend only on the
//     trace *length* — the fold's counts are n/P + (p < n mod P),
// plus a fresh allocation for the fold, the sxy vector and the rho
// sweep on every call. SpectrumEngine hoists all of it — the same
// recipe sync::CandidateEngine applies to blind-sync scoring, here
// returning the full SpreadSpectrum (rho vector included) the
// detection path consumes. Per repetition this leaves one forward +
// one inverse FFT instead of seven transforms.
//
// Bit-exactness contract (tests/test_sim_batch.cpp): sweep(y, guard)
// returns exactly compute_spread_spectrum(y, pattern(), kFft, guard) —
// same rho bits, same summary statistics, same validation errors. The
// cached pattern FFT and per-length sx/sxx come from the identical
// planned-transform arithmetic circular_cross_correlation runs inline;
// patterns beyond the plan registry's cap fall back to the planless
// rotation_correlation_fft_from_fold, again bit-identical.
//
// Thread-safety: sweep() is const and race-free — the per-length cache
// sits behind a mutex (values are immutable once built; a duplicate
// build under contention produces identical bits), scratch lives in
// thread_local arenas, and the FFT plan is immutable.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "cpa/spread_spectrum.h"
#include "dsp/fft.h"

namespace clockmark::dsp {
class FftPlan;
}

namespace clockmark::cpa {

class SpectrumEngine {
 public:
  /// Binds the watermark pattern (one period of the 0/1 model vector)
  /// and precomputes its transform tables. Throws on an empty pattern.
  explicit SpectrumEngine(std::vector<double> pattern);

  const std::vector<double>& pattern() const noexcept { return pattern_; }

  /// One repetition's sweep + summary, bit-identical to
  /// compute_spread_spectrum(y, pattern(), CorrelationMethod::kFft,
  /// guard) including its input validation.
  SpreadSpectrum sweep(std::span<const double> y, std::size_t guard) const;

 private:
  /// The rotation-sweep inputs that depend only on the trace length:
  /// sx[r] / sxx[r] as rotation_correlation_fft_from_fold computes them
  /// from the fold's counts.
  struct LengthStats {
    std::vector<double> sx;
    std::vector<double> sxx;
  };
  std::shared_ptr<const LengthStats> length_stats(std::size_t n) const;

  std::vector<double> pattern_;
  std::vector<double> pattern_sq_;
  /// Plan for the period-length transforms; nullptr when the period
  /// exceeds the registry cap (sweep() then runs the planless path).
  std::shared_ptr<const dsp::FftPlan> plan_;
  std::vector<dsp::cplx> fft_pattern_;  ///< forward FFT of the pattern

  mutable std::mutex mu_;
  mutable std::unordered_map<std::size_t,
                             std::shared_ptr<const LengthStats>>
      stats_;
};

}  // namespace clockmark::cpa
