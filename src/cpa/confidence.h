// Statistical confidence of a CPA detection. Off-peak correlation values
// over N cycles are approximately N(0, 1/N); the spread spectrum takes
// the maximum over P rotations, so the false-positive probability of a
// peak with z-score z is
//   P_fp = 1 - (1 - Q(z))^(P-1)  ~  (P-1) * Q(z)   for small Q(z),
// with Q the standard normal tail. These helpers turn a spread spectrum
// into an explicit confidence statement (and justify the default
// detector threshold of z = 5.5 for P = 4095).
#pragma once

#include <cstddef>

#include "cpa/spread_spectrum.h"

namespace clockmark::cpa {

/// Standard normal upper-tail probability Q(z) = P(X > z).
double normal_tail(double z) noexcept;

/// Probability that pure noise produces at least one |rho| with z-score
/// >= z across `rotations` independent rotations (two-sided).
double false_positive_probability(double z, std::size_t rotations) noexcept;

/// Expected maximum z-score of pure noise across `rotations` rotations
/// (approximation sqrt(2 ln P) — where the noise floor's own peaks sit).
double expected_noise_peak_z(std::size_t rotations) noexcept;

/// Detection confidence = 1 - false-positive probability of the observed
/// peak, using the spectrum's own noise statistics.
double detection_confidence(const SpreadSpectrum& spectrum) noexcept;

/// Smallest z threshold whose family-wise false-positive probability is
/// below alpha for the given number of rotations.
double z_threshold_for_alpha(double alpha, std::size_t rotations) noexcept;

}  // namespace clockmark::cpa
