// Welch's t-test detection — the TVLA-style alternative to Pearson CPA.
// Partitions the per-cycle measurements by the hypothesised WMARK bit
// (at a given rotation) and tests whether the two groups' means differ.
// For a binary model vector the t statistic and the Pearson rho carry the
// same information (t = rho * sqrt((N-2)/(1-rho^2))), but the t-test
// formulation is the standard leakage-assessment idiom, so both are
// provided and cross-checked in the tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace clockmark::cpa {

struct WelchResult {
  double t = 0.0;            ///< Welch's t statistic
  double mean_high = 0.0;    ///< mean of samples where the model bit is 1
  double mean_low = 0.0;
  std::size_t n_high = 0;
  std::size_t n_low = 0;
};

/// Welch's t-test of measurement samples split by the rotated periodic
/// binary pattern.
WelchResult welch_t_test(std::span<const double> measurement,
                         std::span<const double> pattern,
                         std::size_t rotation);

/// |t| for every rotation of the pattern (the t-test analogue of the
/// spread spectrum). O(N + P^2) via the same phase-folding trick as the
/// CPA sweep.
std::vector<double> t_sweep(std::span<const double> measurement,
                            std::span<const double> pattern);

/// The expected equivalence: t implied by a Pearson rho over N samples.
double t_from_rho(double rho, std::size_t n) noexcept;

}  // namespace clockmark::cpa
