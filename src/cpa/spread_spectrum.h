// Spread-spectrum representation of the CPA sweep (paper Fig. 5): the
// correlation coefficient at every rotation of the watermark sequence,
// plus the summary statistics the detection decision uses.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "cpa/correlation.h"

namespace clockmark::cpa {

struct SpreadSpectrum {
  std::vector<double> rho;        ///< correlation per rotation
  std::size_t peak_rotation = 0;
  double peak_value = 0.0;
  double second_peak = 0.0;       ///< largest |rho| outside the peak window
  double noise_mean = 0.0;        ///< mean of rho outside the peak window
  double noise_std = 0.0;         ///< std of rho outside the peak window
  double peak_z = 0.0;            ///< (peak - noise_mean) / noise_std

  /// Peak-to-second-peak ratio (absolute values); > 1 means resolvable.
  double isolation() const noexcept {
    return second_peak != 0.0 ? peak_value / second_peak : 0.0;
  }
};

/// Computes the spread spectrum of a measurement against the watermark
/// pattern. `guard` rotations on each side of the peak are excluded from
/// the noise statistics (the PDN filter smears the peak slightly).
SpreadSpectrum compute_spread_spectrum(
    std::span<const double> measurement, std::span<const double> pattern,
    CorrelationMethod method = CorrelationMethod::kFft,
    std::size_t guard = 8);

/// Summarises an already-computed rho sweep.
SpreadSpectrum summarize_sweep(std::vector<double> rho, std::size_t guard);

/// The summary statistics of a sweep without taking ownership of (or
/// copying) the rho vector — the shape the sync candidate engine's
/// scoring loop needs, where thousands of sweeps are summarised and
/// only peak_z survives. Field meanings and arithmetic are exactly
/// summarize_sweep's (which is implemented on top of this).
struct SweepStats {
  std::size_t peak_rotation = 0;
  double peak_value = 0.0;
  double second_peak = 0.0;
  double noise_mean = 0.0;
  double noise_std = 0.0;
  double peak_z = 0.0;
};
SweepStats summarize_stats(std::span<const double> rho, std::size_t guard);

}  // namespace clockmark::cpa
