#include "cpa/correlation.h"

#include <cmath>
#include <stdexcept>

#include "dsp/correlate.h"
#include "runtime/executor.h"

namespace clockmark::cpa {

std::vector<double> to_model_pattern(const std::vector<bool>& bits) {
  std::vector<double> p(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) p[i] = bits[i] ? 1.0 : 0.0;
  return p;
}

std::vector<double> correlate_rotations(std::span<const double> measurement,
                                        std::span<const double> pattern,
                                        CorrelationMethod method,
                                        runtime::Executor* executor) {
  switch (method) {
    case CorrelationMethod::kNaive:
      if (executor != nullptr && executor->thread_count() > 1 &&
          !pattern.empty() && measurement.size() >= pattern.size()) {
        // Chunked rotations: correlate_at reproduces exactly one row of
        // the naive sweep, so filling rho[r] per index in parallel gives
        // a bit-identical result.
        std::vector<double> rho(pattern.size(), 0.0);
        executor->parallel_for(pattern.size(), [&](std::size_t r) {
          rho[r] = correlate_at(measurement, pattern, r);
        });
        return rho;
      }
      return dsp::rotation_correlation_naive(measurement, pattern);
    case CorrelationMethod::kFolded:
      return dsp::rotation_correlation_folded(measurement, pattern);
    case CorrelationMethod::kFft:
      return dsp::rotation_correlation_fft(measurement, pattern);
  }
  throw std::invalid_argument("correlate_rotations: bad method");
}

double correlate_at(std::span<const double> measurement,
                    std::span<const double> pattern, std::size_t rotation) {
  const std::size_t n = measurement.size();
  if (n == 0) return 0.0;
  const std::size_t p = pattern.size();
  // Streaming two-pass Pearson over the virtual model vector
  // model[i] = pattern[(i + rotation) % p]: the same accumulation order
  // as util::pearson on a materialised model (bit-identical result),
  // without the O(N) allocation per rotation the parallel naive sweep
  // used to pay.
  double mx = 0.0;
  double my = 0.0;
  std::size_t j = rotation % p;
  for (std::size_t i = 0; i < n; ++i) {
    mx += pattern[j];
    my += measurement[i];
    if (++j == p) j = 0;
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  j = rotation % p;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = pattern[j] - mx;
    const double dy = measurement[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
    if (++j == p) j = 0;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace clockmark::cpa
