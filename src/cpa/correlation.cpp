#include "cpa/correlation.h"

#include <algorithm>
#include <stdexcept>

#include "dsp/correlate.h"
#include "runtime/executor.h"

namespace clockmark::cpa {

std::vector<double> to_model_pattern(const std::vector<bool>& bits) {
  std::vector<double> p(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) p[i] = bits[i] ? 1.0 : 0.0;
  return p;
}

namespace {

/// The naive sweep's shared block partition: rho[b*L, b*L + L) per
/// block, L = kRotationBlockLanes. Serial and parallel sweeps fill the
/// same blocks with the same kernel, so their outputs are bit-identical
/// at any thread count.
void naive_sweep_block(std::span<const double> measurement,
                       std::span<const double> pattern,
                       std::span<double> rho, std::size_t block) {
  const std::size_t r0 = block * kRotationBlockLanes;
  const std::size_t count =
      std::min(kRotationBlockLanes, pattern.size() - r0);
  correlate_rotations_blocked(measurement, pattern, r0,
                              rho.subspan(r0, count));
}

}  // namespace

std::vector<double> correlate_rotations(std::span<const double> measurement,
                                        std::span<const double> pattern,
                                        CorrelationMethod method,
                                        runtime::Executor* executor) {
  switch (method) {
    case CorrelationMethod::kNaive: {
      if (pattern.empty() || measurement.size() < pattern.size()) {
        // Delegate the input validation (and the degenerate shapes) to
        // the reference implementation unchanged.
        return dsp::rotation_correlation_naive(measurement, pattern);
      }
      // Blocked sweep: kRotationBlockLanes rotations per pass over the
      // measurement (one block per work item when parallel).
      const std::size_t blocks =
          (pattern.size() + kRotationBlockLanes - 1) / kRotationBlockLanes;
      std::vector<double> rho(pattern.size(), 0.0);
      if (executor != nullptr && executor->thread_count() > 1 && blocks > 1) {
        executor->parallel_for(blocks, [&](std::size_t b) {
          naive_sweep_block(measurement, pattern, rho, b);
        });
      } else {
        for (std::size_t b = 0; b < blocks; ++b) {
          naive_sweep_block(measurement, pattern, rho, b);
        }
      }
      return rho;
    }
    case CorrelationMethod::kFolded:
      return dsp::rotation_correlation_folded(measurement, pattern);
    case CorrelationMethod::kFft:
      return dsp::rotation_correlation_fft(measurement, pattern);
  }
  throw std::invalid_argument("correlate_rotations: bad method");
}

double correlate_at(std::span<const double> measurement,
                    std::span<const double> pattern, std::size_t rotation) {
  double rho = 0.0;
  correlate_rotations_blocked(measurement, pattern, rotation,
                              std::span<double>(&rho, 1));
  return rho;
}

}  // namespace clockmark::cpa
