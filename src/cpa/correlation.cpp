#include "cpa/correlation.h"

#include <stdexcept>

#include "dsp/correlate.h"
#include "runtime/executor.h"
#include "util/stats.h"

namespace clockmark::cpa {

std::vector<double> to_model_pattern(const std::vector<bool>& bits) {
  std::vector<double> p(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) p[i] = bits[i] ? 1.0 : 0.0;
  return p;
}

std::vector<double> correlate_rotations(std::span<const double> measurement,
                                        std::span<const double> pattern,
                                        CorrelationMethod method,
                                        runtime::Executor* executor) {
  switch (method) {
    case CorrelationMethod::kNaive:
      if (executor != nullptr && executor->thread_count() > 1 &&
          !pattern.empty() && measurement.size() >= pattern.size()) {
        // Chunked rotations: correlate_at reproduces exactly one row of
        // the naive sweep, so filling rho[r] per index in parallel gives
        // a bit-identical result.
        std::vector<double> rho(pattern.size(), 0.0);
        executor->parallel_for(pattern.size(), [&](std::size_t r) {
          rho[r] = correlate_at(measurement, pattern, r);
        });
        return rho;
      }
      return dsp::rotation_correlation_naive(measurement, pattern);
    case CorrelationMethod::kFolded:
      return dsp::rotation_correlation_folded(measurement, pattern);
    case CorrelationMethod::kFft:
      return dsp::rotation_correlation_fft(measurement, pattern);
  }
  throw std::invalid_argument("correlate_rotations: bad method");
}

double correlate_at(std::span<const double> measurement,
                    std::span<const double> pattern, std::size_t rotation) {
  const std::size_t p = pattern.size();
  std::vector<double> model(measurement.size());
  for (std::size_t i = 0; i < measurement.size(); ++i) {
    model[i] = pattern[(i + rotation) % p];
  }
  return util::pearson(model, measurement);
}

}  // namespace clockmark::cpa
