#include "cpa/spectrum_engine.h"

#include <complex>
#include <stdexcept>
#include <utility>

#include "dsp/correlate.h"
#include "dsp/fft_plan.h"

namespace clockmark::cpa {
namespace {

/// Per-thread scratch for the sweep loop. The rho vector is not arena'd
/// — SpreadSpectrum owns it, exactly like the reference path.
struct SweepArena {
  dsp::PhaseFold fold;
  std::vector<double> sxy;
};

SweepArena& arena() {
  thread_local SweepArena a;
  return a;
}

/// Resets a fold for reuse; after this, fold_extend over the trace is
/// bit-identical to fold_by_phase on a fresh fold.
void reset_fold(dsp::PhaseFold& fold, std::size_t period) {
  fold.sums.assign(period, 0.0);
  fold.counts.assign(period, 0);
  fold.total = 0.0;
  fold.total_sq = 0.0;
  fold.n = 0;
}

}  // namespace

SpectrumEngine::SpectrumEngine(std::vector<double> pattern)
    : pattern_(std::move(pattern)) {
  if (pattern_.empty()) {
    throw std::invalid_argument("SpectrumEngine: empty pattern");
  }
  const std::size_t period = pattern_.size();
  pattern_sq_.resize(period);
  for (std::size_t p = 0; p < period; ++p) {
    pattern_sq_[p] = pattern_[p] * pattern_[p];
  }
  plan_ = dsp::get_fft_plan(period);
  if (plan_ != nullptr) {
    // The fb side of circular_cross_correlation(fold.sums, pattern):
    // the transform is deterministic, so computing it once here yields
    // the exact bits the per-sweep transform would.
    std::vector<dsp::cplx> t(period);
    for (std::size_t p = 0; p < period; ++p) {
      t[p] = dsp::cplx(pattern_[p], 0.0);
    }
    plan_->transform(t, false, dsp::thread_fft_workspace(), fft_pattern_);
  }
}

std::shared_ptr<const SpectrumEngine::LengthStats>
SpectrumEngine::length_stats(std::size_t n) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = stats_.find(n);
    if (it != stats_.end()) return it->second;
  }
  // Build outside the lock: two threads may build the same length
  // concurrently, but the result is a deterministic function of n, so
  // whichever insert wins holds identical bits.
  const std::size_t period = pattern_.size();
  auto stats = std::make_shared<LengthStats>();
  std::vector<double> counts_d(period);
  const std::size_t full = n / period;
  const std::size_t rem = n % period;
  for (std::size_t p = 0; p < period; ++p) {
    // Exactly the fold's counts for an n-sample trace starting at
    // phase 0 — what fold_by_phase produces for every repetition.
    counts_d[p] = static_cast<double>(full + (p < rem ? 1 : 0));
  }
  stats->sx = dsp::circular_cross_correlation(counts_d, pattern_);
  stats->sxx = dsp::circular_cross_correlation(counts_d, pattern_sq_);
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.emplace(n, std::move(stats)).first->second;
}

SpreadSpectrum SpectrumEngine::sweep(std::span<const double> y,
                                     std::size_t guard) const {
  const std::size_t period = pattern_.size();
  // Same validation as rotation_correlation_fft's check_inputs (the
  // empty-pattern arm is unreachable: the constructor rejects it).
  if (y.size() < period) {
    throw std::invalid_argument(
        "rotation_correlation: trace shorter than one pattern period");
  }
  SweepArena& ar = arena();
  reset_fold(ar.fold, period);
  dsp::fold_extend(ar.fold, y, period);

  if (plan_ == nullptr) {
    // Period beyond the plan registry's cap: the historical path is
    // already planless, delegate to it unchanged.
    return summarize_sweep(
        dsp::rotation_correlation_fft_from_fold(ar.fold, pattern_), guard);
  }

  // sxy[r] = circular_cross_correlation(fold.sums, pattern)[r], with
  // the pattern's transform read from the cache: the same op sequence
  // as the planned branch of circular_cross_correlation, minus the fb
  // FFT.
  auto& ws = dsp::thread_fft_workspace();
  ws.t0.resize(period);
  for (std::size_t i = 0; i < period; ++i) {
    ws.t0[i] = dsp::cplx(ar.fold.sums[i], 0.0);
  }
  plan_->transform(ws.t0, false, ws, ws.t1);
  for (std::size_t k = 0; k < period; ++k) {
    ws.t0[k] = std::conj(ws.t1[k]) * fft_pattern_[k];
  }
  plan_->transform(ws.t0, true, ws, ws.t1);
  const double norm = 1.0 / static_cast<double>(period);
  ar.sxy.resize(period);
  for (std::size_t k = 0; k < period; ++k) {
    ar.sxy[k] = ws.t1[k].real() * norm;
  }

  const std::shared_ptr<const LengthStats> stats = length_stats(ar.fold.n);
  std::vector<double> rho(period, 0.0);
  dsp::assemble_rotation_correlations_into(ar.fold, ar.sxy, stats->sx,
                                           stats->sxx, rho);
  return summarize_sweep(std::move(rho), guard);
}

}  // namespace clockmark::cpa
