#include "cpa/accumulator.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "runtime/executor.h"

namespace clockmark::cpa {

RotationAccumulator::RotationAccumulator(std::vector<double> pattern)
    : pattern_(std::move(pattern)) {
  if (pattern_.empty()) {
    throw std::invalid_argument("RotationAccumulator: empty pattern");
  }
  fold_.sums.assign(pattern_.size(), 0.0);
  fold_.counts.assign(pattern_.size(), 0);
}

void RotationAccumulator::add(std::span<const double> y) {
  dsp::fold_extend(fold_, y, pattern_.size());
}

std::vector<double> RotationAccumulator::correlations(
    CorrelationMethod method, runtime::Executor* executor) const {
  switch (method) {
    case CorrelationMethod::kNaive:
      throw std::invalid_argument(
          "RotationAccumulator: the naive sweep needs the materialised "
          "trace; use kFolded or kFft");
    case CorrelationMethod::kFolded: {
      if (executor != nullptr && executor->thread_count() > 1) {
        // Same blocked inner loop and block partition as the serial
        // from-fold sweep, one block of kRotationBlockLanes rotations
        // per work item writing its own slots, then the shared assemble
        // stage — bit-identical at any thread count.
        const std::size_t period = pattern_.size();
        if (fold_.n < period) {
          throw std::invalid_argument(
              "rotation_correlation: trace shorter than one pattern period");
        }
        std::vector<double> sxy(period, 0.0);
        std::vector<double> sx(period, 0.0);
        std::vector<double> sxx(period, 0.0);
        const std::size_t blocks =
            (period + kRotationBlockLanes - 1) / kRotationBlockLanes;
        executor->parallel_for(blocks, [&](std::size_t b) {
          const std::size_t r0 = b * kRotationBlockLanes;
          const std::size_t count =
              std::min(kRotationBlockLanes, period - r0);
          std::array<dsp::RotationModelSums, kRotationBlockLanes> block;
          dsp::rotation_model_sums_blocked(
              fold_, pattern_, r0,
              std::span<dsp::RotationModelSums>(block.data(), count));
          for (std::size_t l = 0; l < count; ++l) {
            sxy[r0 + l] = block[l].sxy;
            sx[r0 + l] = block[l].sx;
            sxx[r0 + l] = block[l].sxx;
          }
        });
        return dsp::assemble_rotation_correlations(fold_, sxy, sx, sxx);
      }
      return dsp::rotation_correlation_folded_from_fold(fold_, pattern_);
    }
    case CorrelationMethod::kFft:
      return dsp::rotation_correlation_fft_from_fold(fold_, pattern_);
  }
  throw std::invalid_argument("RotationAccumulator: bad method");
}

SpreadSpectrum RotationAccumulator::spread_spectrum(
    CorrelationMethod method, std::size_t guard,
    runtime::Executor* executor) const {
  return summarize_sweep(correlations(method, executor), guard);
}

}  // namespace clockmark::cpa
