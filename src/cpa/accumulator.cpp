#include "cpa/accumulator.h"

#include <stdexcept>

#include "runtime/executor.h"

namespace clockmark::cpa {

RotationAccumulator::RotationAccumulator(std::vector<double> pattern)
    : pattern_(std::move(pattern)) {
  if (pattern_.empty()) {
    throw std::invalid_argument("RotationAccumulator: empty pattern");
  }
  fold_.sums.assign(pattern_.size(), 0.0);
  fold_.counts.assign(pattern_.size(), 0);
}

void RotationAccumulator::add(std::span<const double> y) {
  dsp::fold_extend(fold_, y, pattern_.size());
}

std::vector<double> RotationAccumulator::correlations(
    CorrelationMethod method, runtime::Executor* executor) const {
  switch (method) {
    case CorrelationMethod::kNaive:
      throw std::invalid_argument(
          "RotationAccumulator: the naive sweep needs the materialised "
          "trace; use kFolded or kFft");
    case CorrelationMethod::kFolded: {
      if (executor != nullptr && executor->thread_count() > 1) {
        // Same per-rotation inner loop as the serial from-fold sweep,
        // one rotation per work item writing its own slots, then the
        // shared assemble stage — bit-identical at any thread count.
        const std::size_t period = pattern_.size();
        if (fold_.n < period) {
          throw std::invalid_argument(
              "rotation_correlation: trace shorter than one pattern period");
        }
        std::vector<double> sxy(period, 0.0);
        std::vector<double> sx(period, 0.0);
        std::vector<double> sxx(period, 0.0);
        executor->parallel_for(period, [&](std::size_t r) {
          const dsp::RotationModelSums s =
              dsp::rotation_model_sums_at(fold_, pattern_, r);
          sxy[r] = s.sxy;
          sx[r] = s.sx;
          sxx[r] = s.sxx;
        });
        return dsp::assemble_rotation_correlations(fold_, sxy, sx, sxx);
      }
      return dsp::rotation_correlation_folded_from_fold(fold_, pattern_);
    }
    case CorrelationMethod::kFft:
      return dsp::rotation_correlation_fft_from_fold(fold_, pattern_);
  }
  throw std::invalid_argument("RotationAccumulator: bad method");
}

SpreadSpectrum RotationAccumulator::spread_spectrum(
    CorrelationMethod method, std::size_t guard,
    runtime::Executor* executor) const {
  return summarize_sweep(correlations(method, executor), guard);
}

}  // namespace clockmark::cpa
