#include "cpa/repeatability.h"

#include <cmath>

namespace clockmark::cpa {

RepeatabilityResult summarize_repetitions(
    std::span<const RepetitionOutcome> outcomes, std::size_t guard) {
  RepeatabilityResult result;
  result.repetitions = outcomes.size();
  std::vector<double> in_phase;
  std::vector<double> off_phase;
  in_phase.reserve(outcomes.size());

  for (const RepetitionOutcome& outcome : outcomes) {
    const auto& rho = outcome.spectrum.rho;
    RepetitionSample sample;
    if (!rho.empty()) {
      const std::size_t n = rho.size();
      const std::size_t truth = outcome.true_rotation % n;
      sample.in_phase_rho = rho[truth];
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t d = i > truth ? i - truth : truth - i;
        if (std::min(d, n - d) <= guard) continue;
        sample.max_off_phase =
            std::max(sample.max_off_phase, std::fabs(rho[i]));
        off_phase.push_back(rho[i]);
      }
    }
    sample.detected = outcome.detected;
    if (sample.detected) ++result.detections;
    in_phase.push_back(sample.in_phase_rho);
    result.samples.push_back(sample);
  }

  result.in_phase = util::box_plot(in_phase);
  result.off_phase = util::box_plot(off_phase);
  return result;
}

RepeatabilityResult run_repeatability(
    std::size_t repetitions,
    const std::function<RepetitionOutcome(std::size_t)>& experiment,
    std::size_t guard) {
  std::vector<RepetitionOutcome> outcomes;
  outcomes.reserve(repetitions);
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    outcomes.push_back(experiment(rep));
  }
  return summarize_repetitions(outcomes, guard);
}

}  // namespace clockmark::cpa
