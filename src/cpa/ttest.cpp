#include "cpa/ttest.h"

#include <cmath>
#include <stdexcept>

namespace clockmark::cpa {
namespace {

struct SquaredFold {
  std::vector<double> sum;
  std::vector<double> sum_sq;
  std::vector<std::size_t> count;
};

SquaredFold fold(std::span<const double> y, std::size_t period) {
  SquaredFold f;
  f.sum.assign(period, 0.0);
  f.sum_sq.assign(period, 0.0);
  f.count.assign(period, 0);
  std::size_t p = 0;
  for (const double v : y) {
    f.sum[p] += v;
    f.sum_sq[p] += v * v;
    ++f.count[p];
    if (++p == period) p = 0;
  }
  return f;
}

WelchResult welch_from_groups(double sum_h, double sumsq_h, std::size_t n_h,
                              double sum_l, double sumsq_l,
                              std::size_t n_l) {
  WelchResult r;
  r.n_high = n_h;
  r.n_low = n_l;
  if (n_h < 2 || n_l < 2) return r;
  r.mean_high = sum_h / static_cast<double>(n_h);
  r.mean_low = sum_l / static_cast<double>(n_l);
  const double var_h =
      (sumsq_h - static_cast<double>(n_h) * r.mean_high * r.mean_high) /
      static_cast<double>(n_h - 1);
  const double var_l =
      (sumsq_l - static_cast<double>(n_l) * r.mean_low * r.mean_low) /
      static_cast<double>(n_l - 1);
  const double denom = var_h / static_cast<double>(n_h) +
                       var_l / static_cast<double>(n_l);
  if (denom <= 0.0) return r;
  r.t = (r.mean_high - r.mean_low) / std::sqrt(denom);
  return r;
}

}  // namespace

WelchResult welch_t_test(std::span<const double> measurement,
                         std::span<const double> pattern,
                         std::size_t rotation) {
  if (pattern.empty()) {
    throw std::invalid_argument("welch_t_test: empty pattern");
  }
  const std::size_t period = pattern.size();
  double sum_h = 0.0, sumsq_h = 0.0, sum_l = 0.0, sumsq_l = 0.0;
  std::size_t n_h = 0, n_l = 0;
  for (std::size_t i = 0; i < measurement.size(); ++i) {
    const bool high = pattern[(i + rotation) % period] != 0.0;
    const double v = measurement[i];
    if (high) {
      sum_h += v;
      sumsq_h += v * v;
      ++n_h;
    } else {
      sum_l += v;
      sumsq_l += v * v;
      ++n_l;
    }
  }
  return welch_from_groups(sum_h, sumsq_h, n_h, sum_l, sumsq_l, n_l);
}

std::vector<double> t_sweep(std::span<const double> measurement,
                            std::span<const double> pattern) {
  if (pattern.empty()) {
    throw std::invalid_argument("t_sweep: empty pattern");
  }
  const std::size_t period = pattern.size();
  const SquaredFold f = fold(measurement, period);
  std::vector<double> out(period, 0.0);
  for (std::size_t r = 0; r < period; ++r) {
    double sum_h = 0.0, sumsq_h = 0.0, sum_l = 0.0, sumsq_l = 0.0;
    std::size_t n_h = 0, n_l = 0;
    for (std::size_t p = 0; p < period; ++p) {
      const bool high = pattern[(p + r) % period] != 0.0;
      if (high) {
        sum_h += f.sum[p];
        sumsq_h += f.sum_sq[p];
        n_h += f.count[p];
      } else {
        sum_l += f.sum[p];
        sumsq_l += f.sum_sq[p];
        n_l += f.count[p];
      }
    }
    out[r] = std::fabs(
        welch_from_groups(sum_h, sumsq_h, n_h, sum_l, sumsq_l, n_l).t);
  }
  return out;
}

double t_from_rho(double rho, std::size_t n) noexcept {
  if (n < 3 || std::fabs(rho) >= 1.0) return 0.0;
  return rho * std::sqrt(static_cast<double>(n - 2) / (1.0 - rho * rho));
}

}  // namespace clockmark::cpa
