#include "cpa/spread_spectrum.h"

#include <algorithm>
#include <cmath>

namespace clockmark::cpa {

SpreadSpectrum summarize_sweep(std::vector<double> rho, std::size_t guard) {
  SpreadSpectrum ss;
  ss.rho = std::move(rho);
  if (ss.rho.empty()) return ss;
  const std::size_t n = ss.rho.size();

  // Peak by absolute value (an inverted watermark correlates at -1).
  std::size_t peak = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (std::fabs(ss.rho[i]) > std::fabs(ss.rho[peak])) peak = i;
  }
  ss.peak_rotation = peak;
  ss.peak_value = ss.rho[peak];

  auto in_guard = [&](std::size_t i) {
    // Circular distance to the peak.
    const std::size_t d = i > peak ? i - peak : peak - i;
    return std::min(d, n - d) <= guard;
  };

  double sum = 0.0, sum_sq = 0.0, second = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (in_guard(i)) continue;
    sum += ss.rho[i];
    sum_sq += ss.rho[i] * ss.rho[i];
    second = std::max(second, std::fabs(ss.rho[i]));
    ++count;
  }
  if (count > 0) {
    ss.noise_mean = sum / static_cast<double>(count);
    const double var =
        sum_sq / static_cast<double>(count) - ss.noise_mean * ss.noise_mean;
    ss.noise_std = var > 0.0 ? std::sqrt(var) : 0.0;
  }
  ss.second_peak = second;
  ss.peak_z = ss.noise_std > 0.0
                  ? (std::fabs(ss.peak_value) - ss.noise_mean) / ss.noise_std
                  : 0.0;
  return ss;
}

SpreadSpectrum compute_spread_spectrum(std::span<const double> measurement,
                                       std::span<const double> pattern,
                                       CorrelationMethod method,
                                       std::size_t guard) {
  return summarize_sweep(correlate_rotations(measurement, pattern, method),
                         guard);
}

}  // namespace clockmark::cpa
