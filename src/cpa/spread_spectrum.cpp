#include "cpa/spread_spectrum.h"

#include <algorithm>
#include <cmath>

namespace clockmark::cpa {

SweepStats summarize_stats(std::span<const double> rho, std::size_t guard) {
  SweepStats st;
  if (rho.empty()) return st;
  const std::size_t n = rho.size();

  // Peak by absolute value (an inverted watermark correlates at -1).
  std::size_t peak = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (std::fabs(rho[i]) > std::fabs(rho[peak])) peak = i;
  }
  st.peak_rotation = peak;
  st.peak_value = rho[peak];

  auto in_guard = [&](std::size_t i) {
    // Circular distance to the peak.
    const std::size_t d = i > peak ? i - peak : peak - i;
    return std::min(d, n - d) <= guard;
  };

  double sum = 0.0, sum_sq = 0.0, second = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (in_guard(i)) continue;
    sum += rho[i];
    sum_sq += rho[i] * rho[i];
    second = std::max(second, std::fabs(rho[i]));
    ++count;
  }
  if (count > 0) {
    st.noise_mean = sum / static_cast<double>(count);
    const double var =
        sum_sq / static_cast<double>(count) - st.noise_mean * st.noise_mean;
    st.noise_std = var > 0.0 ? std::sqrt(var) : 0.0;
  }
  st.second_peak = second;
  st.peak_z = st.noise_std > 0.0
                  ? (std::fabs(st.peak_value) - st.noise_mean) / st.noise_std
                  : 0.0;
  return st;
}

SpreadSpectrum summarize_sweep(std::vector<double> rho, std::size_t guard) {
  SpreadSpectrum ss;
  ss.rho = std::move(rho);
  const SweepStats st = summarize_stats(ss.rho, guard);
  ss.peak_rotation = st.peak_rotation;
  ss.peak_value = st.peak_value;
  ss.second_peak = st.second_peak;
  ss.noise_mean = st.noise_mean;
  ss.noise_std = st.noise_std;
  ss.peak_z = st.peak_z;
  return ss;
}

SpreadSpectrum compute_spread_spectrum(std::span<const double> measurement,
                                       std::span<const double> pattern,
                                       CorrelationMethod method,
                                       std::size_t guard) {
  return summarize_sweep(correlate_rotations(measurement, pattern, method),
                         guard);
}

}  // namespace clockmark::cpa
