// Correlation Power Analysis front door (paper Section III). Computes
// the Pearson correlation — equation (1) — between the measured per-cycle
// power vector Y and every cyclic rotation of the binary watermark model
// vector X. Three interchangeable implementations with identical output:
//   kNaive  O(N*P/8)      register-blocked direct sweep (correlate_at
//                         lanes; dsp::rotation_correlation_naive stays
//                         the pedagogical reference)
//   kFolded O(N + P^2)    per-phase partial sums
//   kFft    O(N + PlogP)  folded sums correlated via FFT
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace clockmark::runtime {
class Executor;
}

namespace clockmark::cpa {

enum class CorrelationMethod { kNaive, kFolded, kFft };

/// Converts a WMARK bit pattern to the numeric model pattern (0/1).
std::vector<double> to_model_pattern(const std::vector<bool>& bits);

/// rho[r] for r = 0 .. pattern.size()-1, rotating the periodic pattern
/// against the measurement. The naive sweep runs in blocks of
/// kRotationBlockLanes rotations per pass over the measurement
/// (correlate_rotations_blocked); a non-null executor fans the blocks
/// out across its threads — the same blocks, the same kernel, so the
/// output stays bit-identical to the serial sweep. The folded/FFT
/// methods are already O(N + P log P) and run serially.
std::vector<double> correlate_rotations(
    std::span<const double> measurement, std::span<const double> pattern,
    CorrelationMethod method = CorrelationMethod::kFft,
    runtime::Executor* executor = nullptr);

/// Single-rotation Pearson correlation (model = pattern rotated by r,
/// tiled over the measurement length). Implemented as a one-lane call
/// of correlate_rotations_blocked, so it is bit-identical to any lane
/// of the blocked kernel by construction.
double correlate_at(std::span<const double> measurement,
                    std::span<const double> pattern, std::size_t rotation);

/// Rotations one blocked pass of correlate_rotations_blocked computes.
inline constexpr std::size_t kRotationBlockLanes = 8;

/// Register-blocked multi-rotation Pearson: rho_out.size() consecutive
/// rotations (first_rotation, first_rotation + 1, ... — taken mod the
/// pattern period) of correlate_at, accumulated in a single pass over
/// the measurement. Lane l keeps its own sxy accumulator while the
/// trace-side statistics (my, syy) are shared — their accumulation
/// chains are identical for every rotation — and the rotation-dependent
/// pattern statistics (mean, sum of squares) come from period prefix
/// sums instead of a per-rotation pass. Each lane's result is
/// bit-identical to correlate_at for that rotation (asserted by the
/// property tests). rho_out.size() must be <= kRotationBlockLanes;
/// an empty measurement yields all-zero correlations like correlate_at.
void correlate_rotations_blocked(std::span<const double> measurement,
                                 std::span<const double> pattern,
                                 std::size_t first_rotation,
                                 std::span<double> rho_out);

}  // namespace clockmark::cpa
