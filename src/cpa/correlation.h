// Correlation Power Analysis front door (paper Section III). Computes
// the Pearson correlation — equation (1) — between the measured per-cycle
// power vector Y and every cyclic rotation of the binary watermark model
// vector X. Three interchangeable implementations with identical output:
//   kNaive  O(N*P)        reference, validates the fast paths
//   kFolded O(N + P^2)    per-phase partial sums
//   kFft    O(N + PlogP)  folded sums correlated via FFT
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace clockmark::cpa {

enum class CorrelationMethod { kNaive, kFolded, kFft };

/// Converts a WMARK bit pattern to the numeric model pattern (0/1).
std::vector<double> to_model_pattern(const std::vector<bool>& bits);

/// rho[r] for r = 0 .. pattern.size()-1, rotating the periodic pattern
/// against the measurement.
std::vector<double> correlate_rotations(
    std::span<const double> measurement, std::span<const double> pattern,
    CorrelationMethod method = CorrelationMethod::kFft);

/// Single-rotation Pearson correlation (model = pattern rotated by r,
/// tiled over the measurement length).
double correlate_at(std::span<const double> measurement,
                    std::span<const double> pattern, std::size_t rotation);

}  // namespace clockmark::cpa
