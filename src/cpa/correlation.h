// Correlation Power Analysis front door (paper Section III). Computes
// the Pearson correlation — equation (1) — between the measured per-cycle
// power vector Y and every cyclic rotation of the binary watermark model
// vector X. Three interchangeable implementations with identical output:
//   kNaive  O(N*P)        reference, validates the fast paths
//   kFolded O(N + P^2)    per-phase partial sums
//   kFft    O(N + PlogP)  folded sums correlated via FFT
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace clockmark::runtime {
class Executor;
}

namespace clockmark::cpa {

enum class CorrelationMethod { kNaive, kFolded, kFft };

/// Converts a WMARK bit pattern to the numeric model pattern (0/1).
std::vector<double> to_model_pattern(const std::vector<bool>& bits);

/// rho[r] for r = 0 .. pattern.size()-1, rotating the periodic pattern
/// against the measurement. A non-null executor parallelises the O(N*P)
/// naive sweep by chunking rotations across its threads (each rho[r] is
/// independent, so the output stays bit-identical to the serial sweep);
/// the folded/FFT methods are already O(N + P log P) and run serially.
std::vector<double> correlate_rotations(
    std::span<const double> measurement, std::span<const double> pattern,
    CorrelationMethod method = CorrelationMethod::kFft,
    runtime::Executor* executor = nullptr);

/// Single-rotation Pearson correlation (model = pattern rotated by r,
/// tiled over the measurement length).
double correlate_at(std::span<const double> measurement,
                    std::span<const double> pattern, std::size_t rotation);

}  // namespace clockmark::cpa
