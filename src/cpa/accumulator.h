// Incremental CPA: per-rotation Pearson statistics accumulated chunk by
// chunk, so a detector can watch a live trace with O(P + chunk) memory
// instead of materialising the full N-cycle measurement.
//
// Exactness contract: the accumulator is the streaming half of the folded
// sweep (dsp::fold_extend); its finalisation calls the very same
// from-fold functions the batch kFolded / kFft sweeps use. Feeding a
// trace's chunks in order therefore yields correlations bit-identical to
// cpa::correlate_rotations over the concatenated trace — the guarantee
// the online detector's tests assert against cpa::detect.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cpa/correlation.h"
#include "cpa/spread_spectrum.h"
#include "dsp/correlate.h"

namespace clockmark::runtime {
class Executor;
}

namespace clockmark::cpa {

class RotationAccumulator {
 public:
  /// `pattern` is one period of the watermark model vector (0/1), as
  /// produced by to_model_pattern.
  explicit RotationAccumulator(std::vector<double> pattern);

  /// Appends the next per-cycle power values. Chunks must arrive in
  /// stream order; the phase cursor advances by the chunk length.
  void add(std::span<const double> y);

  std::size_t cycles() const noexcept { return fold_.n; }
  /// True once at least one full pattern period has been consumed (the
  /// sweep is undefined on shorter traces).
  bool ready() const noexcept { return fold_.n >= pattern_.size(); }
  const std::vector<double>& pattern() const noexcept { return pattern_; }
  const dsp::PhaseFold& fold() const noexcept { return fold_; }

  /// rho for every rotation of the pattern over everything added so far,
  /// bit-identical to correlate_rotations(Y, pattern, method) on the
  /// concatenated stream. kNaive is rejected (it needs the materialised
  /// trace); a non-null executor parallelises the kFolded O(P^2) sweep
  /// one rotation per work item with bit-identical output.
  std::vector<double> correlations(
      CorrelationMethod method = CorrelationMethod::kFft,
      runtime::Executor* executor = nullptr) const;

  /// Convenience: correlations() summarised for the detection decision.
  SpreadSpectrum spread_spectrum(
      CorrelationMethod method = CorrelationMethod::kFft,
      std::size_t guard = 8, runtime::Executor* executor = nullptr) const;

 private:
  std::vector<double> pattern_;
  dsp::PhaseFold fold_;
};

}  // namespace clockmark::cpa
