// IIR filters used by the measurement chain: the active differential probe
// and the oscilloscope front-end are modelled as single-pole low-pass
// stages; a biquad is provided for board-level supply resonances.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace clockmark::dsp {

/// First-order (single-pole) low-pass filter, bilinear-transform design.
/// Models the -3 dB bandwidth of a probe or scope front-end.
class OnePoleLowPass {
 public:
  /// cutoff_hz must be in (0, sample_rate_hz / 2).
  OnePoleLowPass(double cutoff_hz, double sample_rate_hz);

  /// y[n] = y[n-1] + alpha * (x[n] - y[n-1]), evaluated as a single fused
  /// multiply-add. Inline (and branch-free) because this recurrence is the
  /// serial backbone of the acquisition hot loops; std::fma is correctly
  /// rounded whether it lowers to an FMA instruction or to libm, so every
  /// build produces the same bits.
  double step(double x) noexcept {
    y_ = std::fma(alpha_, x - y_, y_);
    return y_;
  }
  void reset(double state = 0.0) noexcept { y_ = state; }
  /// In-place filtering. Inline so it compiles in the caller's TU: the
  /// acquisition hot paths build with FMA enabled, and an out-of-line
  /// copy in cm_dsp would run step()'s std::fma through the (correctly
  /// rounded but slow) libm fallback instead. Same bits either way.
  void process(std::span<double> signal) noexcept {
    for (double& x : signal) x = step(x);
  }

  double alpha() const noexcept { return alpha_; }
  /// Current filter state (the last output). Lets block-processing
  /// callers pull the recurrence into a register-resident local loop and
  /// write the state back afterwards.
  double state() const noexcept { return y_; }

 private:
  double alpha_;
  double y_ = 0.0;
};

/// Direct-form-I biquad. Used to model an underdamped PDN (power delivery
/// network) resonance that colours the supply-current waveform.
class Biquad {
 public:
  struct Coefficients {
    double b0, b1, b2;  // feed-forward
    double a1, a2;      // feedback (a0 normalised to 1)
  };

  explicit Biquad(const Coefficients& c) noexcept : c_(c) {}

  /// RBJ cookbook resonant low-pass.
  static Biquad low_pass(double f0_hz, double q, double sample_rate_hz);
  /// RBJ cookbook peaking filter (gain_db at f0).
  static Biquad peaking(double f0_hz, double q, double gain_db,
                        double sample_rate_hz);

  double step(double x) noexcept;
  void reset() noexcept;
  void process(std::span<double> signal) noexcept;

 private:
  Coefficients c_;
  double x1_ = 0.0, x2_ = 0.0, y1_ = 0.0, y2_ = 0.0;
};

/// Averages consecutive blocks of `factor` samples — exactly what the
/// paper does to turn 500 MS/s scope samples into one power value per
/// 10 MHz clock cycle (factor 50). Trailing partial blocks are dropped.
std::vector<double> block_average(std::span<const double> signal,
                                  std::size_t factor);

}  // namespace clockmark::dsp
