// Folded rotation-correlation: the core numerical trick behind the fast
// CPA sweep. The watermark model vector X is periodic with period P, so
// the Pearson correlation against all P rotations of X over N >> P cycles
// can be computed exactly from per-phase partial sums of Y in O(N + P^2),
// or O(N + P log P) with the FFT, instead of the naive O(N * P).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace clockmark::dsp {

/// Per-phase fold of a long vector y against period P:
///   sums[p]   = sum of y[i] for i ≡ p (mod P)
///   counts[p] = number of such i
struct PhaseFold {
  std::vector<double> sums;
  std::vector<std::size_t> counts;
  double total = 0.0;        ///< sum of all y[i]
  double total_sq = 0.0;     ///< sum of all y[i]^2
  std::size_t n = 0;         ///< original length
};

PhaseFold fold_by_phase(std::span<const double> y, std::size_t period);

/// Extends a fold with further samples in stream order. A fold built by
/// feeding a vector's chunks through fold_extend (in order, starting from
/// a default-constructed PhaseFold with sums/counts sized to `period`) is
/// bit-identical to fold_by_phase over the whole vector: the accumulation
/// loop body and its order are the same, the chunk boundaries only decide
/// where the loop pauses. This is what makes online CPA exact.
void fold_extend(PhaseFold& fold, std::span<const double> y,
                 std::size_t period);

/// One rotation's model sums against a fold — the inner loop of the
/// folded sweep, exposed so callers can parallelise the O(P^2) sweep one
/// rotation per work item without changing a single floating-point
/// operation (each rotation's sums are computed by the same sequence).
struct RotationModelSums {
  double sxy = 0.0;  ///< sum of model * y  (via per-phase sums)
  double sx = 0.0;   ///< sum of model values
  double sxx = 0.0;  ///< sum of squared model values
};
RotationModelSums rotation_model_sums_at(const PhaseFold& fold,
                                         std::span<const double> pattern,
                                         std::size_t rotation);

/// Model sums for out.size() *consecutive* rotations (first_rotation,
/// first_rotation + 1, ...) in a single traversal of the fold arrays.
/// Each lane accumulates by exactly the per-rotation sequence of
/// rotation_model_sums_at, so out[l] is bit-identical to
/// rotation_model_sums_at(fold, pattern, first_rotation + l) — the
/// blocking only changes how many rotations one pass over sums/counts
/// serves, not a single floating-point operation.
void rotation_model_sums_blocked(const PhaseFold& fold,
                                 std::span<const double> pattern,
                                 std::size_t first_rotation,
                                 std::span<RotationModelSums> out);

/// Assembles Pearson coefficients for every rotation from the
/// per-rotation model sums — the shared final stage of the folded and
/// FFT paths (sxy/sx/sxx are indexed by rotation).
std::vector<double> assemble_rotation_correlations(
    const PhaseFold& fold, std::span<const double> sxy,
    std::span<const double> sx, std::span<const double> sxx);

/// Same assembly into a caller-provided buffer (rho.size() must equal
/// sxy.size()) — the allocation-free form the sync candidate engine's
/// scoring loop uses.
void assemble_rotation_correlations_into(const PhaseFold& fold,
                                         std::span<const double> sxy,
                                         std::span<const double> sx,
                                         std::span<const double> sxx,
                                         std::span<double> rho);

/// Folded / FFT finalisation from an already-computed fold. The batch
/// sweeps below are exactly fold_by_phase + these functions, so a fold
/// accumulated chunk-by-chunk with fold_extend yields bit-identical
/// correlations to the batch sweep over the concatenated trace.
std::vector<double> rotation_correlation_folded_from_fold(
    const PhaseFold& fold, std::span<const double> pattern);
std::vector<double> rotation_correlation_fft_from_fold(
    const PhaseFold& fold, std::span<const double> pattern);

/// Pearson correlation of y against every rotation r of the periodic
/// binary pattern x (length P), where the model vector is
///   X_r[i] = x[(i + r) mod P], i = 0..N-1.
/// Exact — handles N not divisible by P. Cost O(N + P^2).
std::vector<double> rotation_correlation_folded(
    std::span<const double> y, std::span<const double> pattern);

/// Same result via FFT circular correlation of the folded sums.
/// Exact when N is divisible by P; otherwise it uses the per-phase counts
/// to correct the cross terms, remaining exact. Cost O(N + P log P).
std::vector<double> rotation_correlation_fft(std::span<const double> y,
                                             std::span<const double> pattern);

/// Reference implementation: materialises each rotated model vector and
/// calls Pearson directly. O(N * P); used to validate the fast paths.
std::vector<double> rotation_correlation_naive(
    std::span<const double> y, std::span<const double> pattern);

}  // namespace clockmark::dsp
