#include "dsp/window.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace clockmark::dsp {

std::vector<double> make_window(WindowKind kind, std::size_t n) {
  std::vector<double> w(n, 1.0);
  if (n <= 1) return w;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / denom;
    const double two_pi_x = 2.0 * std::numbers::pi * x;
    switch (kind) {
      case WindowKind::kRectangular:
        w[i] = 1.0;
        break;
      case WindowKind::kHann:
        w[i] = 0.5 * (1.0 - std::cos(two_pi_x));
        break;
      case WindowKind::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(two_pi_x);
        break;
      case WindowKind::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(two_pi_x) +
               0.08 * std::cos(2.0 * two_pi_x);
        break;
    }
  }
  return w;
}

void apply_window(std::span<double> signal, std::span<const double> window) {
  if (signal.size() != window.size()) {
    throw std::invalid_argument("apply_window: size mismatch");
  }
  for (std::size_t i = 0; i < signal.size(); ++i) signal[i] *= window[i];
}

double coherent_gain(std::span<const double> window) noexcept {
  if (window.empty()) return 1.0;
  double s = 0.0;
  for (const double v : window) s += v;
  return s / static_cast<double>(window.size());
}

}  // namespace clockmark::dsp
