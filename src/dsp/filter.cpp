#include "dsp/filter.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace clockmark::dsp {

OnePoleLowPass::OnePoleLowPass(double cutoff_hz, double sample_rate_hz) {
  if (cutoff_hz <= 0.0 || cutoff_hz >= sample_rate_hz / 2.0) {
    throw std::invalid_argument(
        "OnePoleLowPass: cutoff must be in (0, fs/2)");
  }
  // Exact pole mapping: y[n] = y[n-1] + alpha * (x[n] - y[n-1]).
  const double dt = 1.0 / sample_rate_hz;
  const double rc = 1.0 / (2.0 * std::numbers::pi * cutoff_hz);
  alpha_ = dt / (rc + dt);
}

Biquad Biquad::low_pass(double f0_hz, double q, double sample_rate_hz) {
  const double w0 = 2.0 * std::numbers::pi * f0_hz / sample_rate_hz;
  const double cw = std::cos(w0);
  const double sw = std::sin(w0);
  const double alpha = sw / (2.0 * q);
  const double a0 = 1.0 + alpha;
  Coefficients c{};
  c.b0 = (1.0 - cw) / 2.0 / a0;
  c.b1 = (1.0 - cw) / a0;
  c.b2 = (1.0 - cw) / 2.0 / a0;
  c.a1 = -2.0 * cw / a0;
  c.a2 = (1.0 - alpha) / a0;
  return Biquad(c);
}

Biquad Biquad::peaking(double f0_hz, double q, double gain_db,
                       double sample_rate_hz) {
  const double a = std::pow(10.0, gain_db / 40.0);
  const double w0 = 2.0 * std::numbers::pi * f0_hz / sample_rate_hz;
  const double cw = std::cos(w0);
  const double sw = std::sin(w0);
  const double alpha = sw / (2.0 * q);
  const double a0 = 1.0 + alpha / a;
  Coefficients c{};
  c.b0 = (1.0 + alpha * a) / a0;
  c.b1 = -2.0 * cw / a0;
  c.b2 = (1.0 - alpha * a) / a0;
  c.a1 = -2.0 * cw / a0;
  c.a2 = (1.0 - alpha / a) / a0;
  return Biquad(c);
}

double Biquad::step(double x) noexcept {
  const double y =
      c_.b0 * x + c_.b1 * x1_ + c_.b2 * x2_ - c_.a1 * y1_ - c_.a2 * y2_;
  x2_ = x1_;
  x1_ = x;
  y2_ = y1_;
  y1_ = y;
  return y;
}

void Biquad::reset() noexcept { x1_ = x2_ = y1_ = y2_ = 0.0; }

void Biquad::process(std::span<double> signal) noexcept {
  for (auto& v : signal) v = step(v);
}

std::vector<double> block_average(std::span<const double> signal,
                                  std::size_t factor) {
  if (factor == 0) {
    throw std::invalid_argument("block_average: factor must be > 0");
  }
  const std::size_t blocks = signal.size() / factor;
  std::vector<double> out(blocks, 0.0);
  for (std::size_t b = 0; b < blocks; ++b) {
    double s = 0.0;
    for (std::size_t i = 0; i < factor; ++i) {
      s += signal[b * factor + i];
    }
    out[b] = s / static_cast<double>(factor);
  }
  return out;
}

}  // namespace clockmark::dsp
