#include "dsp/fft_plan.h"

#include <cmath>
#include <map>
#include <mutex>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace clockmark::dsp {

std::vector<cplx> build_pow2_twiddles(std::size_t n, bool inverse) {
  if (!is_power_of_two(n)) {
    throw std::invalid_argument(
        "build_pow2_twiddles: size must be a power of two");
  }
  std::vector<cplx> tw;
  tw.reserve(n - 1);
  const double sign = inverse ? 1.0 : -1.0;
  // Mirror fft_pow2's inline computation op for op: one wlen per stage,
  // then the sequential product w(k+1) = w(k) * wlen. Any other way of
  // producing the factors (e.g. cos/sin per index) would differ in the
  // last bits and break the planned == planless guarantee.
  for (std::size_t len = 2; len <= n; len <<= 1u) {
    const double angle =
        sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const cplx wlen(std::cos(angle), std::sin(angle));
    cplx w(1.0, 0.0);
    for (std::size_t k = 0; k < len / 2; ++k) {
      tw.push_back(w);
      w *= wlen;
    }
  }
  return tw;
}

void fft_pow2_tabulated(std::span<cplx> data,
                        std::span<const cplx> twiddles) {
  const std::size_t n = data.size();
  if (!is_power_of_two(n)) {
    throw std::invalid_argument(
        "fft_pow2_tabulated: size must be a power of two");
  }
  if (n > 1 && twiddles.size() != n - 1) {
    throw std::invalid_argument("fft_pow2_tabulated: wrong twiddle table");
  }
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1u;
    for (; j & bit; bit >>= 1u) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  std::size_t stage = 0;
  for (std::size_t len = 2; len <= n; len <<= 1u) {
    const cplx* w_stage = twiddles.data() + stage;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx w = w_stage[k];
        const cplx u = data[i + k];
        const cplx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
      }
    }
    stage += len / 2;
  }
}

namespace {

// Bluestein chirp factors w[k] = exp(sign * i * pi * k^2 / n); the same
// formula (and k^2 mod 2n bounding) as the planless bluestein().
std::vector<cplx> build_chirp(std::size_t n, bool inverse) {
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<cplx> w(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = sign * std::numbers::pi *
                         static_cast<double>(k2) / static_cast<double>(n);
    w[k] = cplx(std::cos(angle), std::sin(angle));
  }
  return w;
}

// The convolution kernel b (conjugate chirp, wrapped), forward-FFT'd
// once at plan build instead of on every transform.
std::vector<cplx> build_kernel_fft(const std::vector<cplx>& w,
                                   std::size_t m,
                                   std::span<const cplx> tw_fwd) {
  const std::size_t n = w.size();
  std::vector<cplx> b(m, cplx(0.0, 0.0));
  b[0] = std::conj(w[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = std::conj(w[k]);
    b[m - k] = std::conj(w[k]);
  }
  fft_pow2_tabulated(b, tw_fwd);
  return b;
}

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (n_ == 0) return;
  pow2_ = is_power_of_two(n_);
  m_ = pow2_ ? n_ : next_power_of_two(2 * n_ - 1);
  if (m_ > 1) {
    tw_fwd_ = build_pow2_twiddles(m_, false);
    tw_inv_ = build_pow2_twiddles(m_, true);
  }
  if (!pow2_) {
    chirp_fwd_ = build_chirp(n_, false);
    chirp_inv_ = build_chirp(n_, true);
    fftb_fwd_ = build_kernel_fft(chirp_fwd_, m_, tw_fwd_);
    fftb_inv_ = build_kernel_fft(chirp_inv_, m_, tw_fwd_);
  }
}

void FftPlan::transform(std::span<const cplx> input, bool inverse,
                        FftWorkspace& ws, std::vector<cplx>& out) const {
  if (input.size() != n_) {
    throw std::invalid_argument("FftPlan::transform: size mismatch");
  }
  if (n_ == 0) {
    out.clear();
    return;
  }
  if (pow2_) {
    out.assign(input.begin(), input.end());
    fft_pow2_tabulated(out, inverse ? tw_inv_ : tw_fwd_);
    return;
  }
  const auto& w = inverse ? chirp_inv_ : chirp_fwd_;
  const auto& fftb = inverse ? fftb_inv_ : fftb_fwd_;
  auto& a = ws.conv;
  a.assign(m_, cplx(0.0, 0.0));
  for (std::size_t k = 0; k < n_; ++k) a[k] = input[k] * w[k];
  fft_pow2_tabulated(a, tw_fwd_);
  for (std::size_t k = 0; k < m_; ++k) a[k] *= fftb[k];
  fft_pow2_tabulated(a, tw_inv_);
  const double norm = 1.0 / static_cast<double>(m_);
  out.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) out[k] = a[k] * w[k] * norm;
}

namespace {

std::mutex g_plan_mutex;
std::map<std::size_t, std::shared_ptr<const FftPlan>>* g_plans = nullptr;

// Registry backstop far above what any study touches; beyond it plans
// are built per call but never cached.
constexpr std::size_t kMaxCachedPlans = 64;

}  // namespace

std::shared_ptr<const FftPlan> get_fft_plan(std::size_t n) {
  if (n == 0 || n > kMaxPlannedFftSize) return nullptr;
  {
    std::lock_guard<std::mutex> lock(g_plan_mutex);
    if (g_plans != nullptr) {
      const auto it = g_plans->find(n);
      if (it != g_plans->end()) return it->second;
    }
  }
  // Build outside the lock: plan construction is the expensive part and
  // must not serialise unrelated sizes. A racing thread may build the
  // same plan; first insert wins and both are bit-identical.
  auto plan = std::make_shared<const FftPlan>(n);
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  if (g_plans == nullptr) {
    g_plans = new std::map<std::size_t, std::shared_ptr<const FftPlan>>();
  }
  const auto it = g_plans->find(n);
  if (it != g_plans->end()) return it->second;
  if (g_plans->size() < kMaxCachedPlans) g_plans->emplace(n, plan);
  return plan;
}

std::size_t fft_plan_cache_size() {
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  return g_plans == nullptr ? 0 : g_plans->size();
}

FftWorkspace& thread_fft_workspace() {
  thread_local FftWorkspace ws;
  return ws;
}

}  // namespace clockmark::dsp
