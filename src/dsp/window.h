// Window functions for spectral analysis of simulated power traces.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace clockmark::dsp {

enum class WindowKind { kRectangular, kHann, kHamming, kBlackman };

/// Returns the window coefficients of the given kind and length.
std::vector<double> make_window(WindowKind kind, std::size_t n);

/// Multiplies the signal by the window in place (sizes must match).
void apply_window(std::span<double> signal, std::span<const double> window);

/// Coherent gain of a window (mean of coefficients); used to renormalise
/// amplitude estimates taken from a windowed spectrum.
double coherent_gain(std::span<const double> window) noexcept;

}  // namespace clockmark::dsp
