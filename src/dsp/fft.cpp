#include "dsp/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/fft_plan.h"

namespace clockmark::dsp {
namespace {

// Bluestein's algorithm: expresses an arbitrary-N DFT as a circular
// convolution of length M (power of two >= 2N-1), evaluated with radix-2
// FFTs. Exact for any N.
std::vector<cplx> bluestein(std::span<const cplx> input, bool inverse) {
  const std::size_t n = input.size();
  const double sign = inverse ? 1.0 : -1.0;
  // Chirp factors w[k] = exp(sign * i * pi * k^2 / n). k^2 mod 2n keeps the
  // argument bounded for large k.
  std::vector<cplx> w(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle =
        sign * std::numbers::pi * static_cast<double>(k2) /
        static_cast<double>(n);
    w[k] = cplx(std::cos(angle), std::sin(angle));
  }
  const std::size_t m = next_power_of_two(2 * n - 1);
  std::vector<cplx> a(m, cplx(0.0, 0.0));
  std::vector<cplx> b(m, cplx(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) a[k] = input[k] * w[k];
  b[0] = std::conj(w[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = std::conj(w[k]);
    b[m - k] = std::conj(w[k]);
  }
  fft_pow2(a, false);
  fft_pow2(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_pow2(a, true);
  const double norm = 1.0 / static_cast<double>(m);
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * w[k] * norm;
  return out;
}

std::vector<cplx> dft_any(std::span<const cplx> input, bool inverse) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  if (is_power_of_two(n)) {
    std::vector<cplx> data(input.begin(), input.end());
    fft_pow2(data, inverse);
    return data;
  }
  return bluestein(input, inverse);
}

}  // namespace

bool is_power_of_two(std::size_t n) noexcept {
  return n >= 1 && (n & (n - 1)) == 0;
}

std::size_t next_power_of_two(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1u;
  return p;
}

void fft_pow2(std::span<cplx> data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft_pow2: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1u;
    for (; j & bit; bit >>= 1u) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1u) {
    const double angle =
        sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const cplx wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = data[i + k];
        const cplx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<cplx> fft(std::span<const cplx> input) {
  if (const auto plan = get_fft_plan(input.size())) {
    std::vector<cplx> out;
    plan->transform(input, false, thread_fft_workspace(), out);
    return out;
  }
  return dft_any(input, false);
}

std::vector<cplx> ifft(std::span<const cplx> input) {
  std::vector<cplx> out;
  if (const auto plan = get_fft_plan(input.size())) {
    plan->transform(input, true, thread_fft_workspace(), out);
  } else {
    out = dft_any(input, true);
  }
  const double norm =
      input.empty() ? 1.0 : 1.0 / static_cast<double>(input.size());
  // Power-of-two path returns unnormalised inverse; Bluestein path is also
  // unnormalised by design of dft_any (its internal norm only covers the
  // convolution length), so normalise uniformly here.
  for (auto& v : out) v *= norm;
  return out;
}

std::vector<cplx> fft_unplanned(std::span<const cplx> input, bool inverse) {
  return dft_any(input, inverse);
}

std::vector<cplx> fft_real(std::span<const double> input) {
  std::vector<cplx> c(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) c[i] = cplx(input[i], 0.0);
  return fft(c);
}

std::vector<double> power_spectrum(std::span<const double> input) {
  const auto spec = fft_real(input);
  const std::size_t half = input.size() / 2 + 1;
  std::vector<double> p(std::min(half, spec.size()));
  for (std::size_t i = 0; i < p.size(); ++i) p[i] = std::norm(spec[i]);
  return p;
}

std::vector<double> circular_cross_correlation(std::span<const double> a,
                                               std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(
        "circular_cross_correlation: length mismatch");
  }
  const std::size_t n = a.size();
  if (n == 0) return {};
  // r = ifft(conj(fft(a)) .* fft(b)), with real inputs.
  const auto plan = get_fft_plan(n);
  if (plan == nullptr) {
    const auto fa = fft_real(a);
    const auto fb = fft_real(b);
    std::vector<cplx> prod(n);
    for (std::size_t k = 0; k < n; ++k) prod[k] = std::conj(fa[k]) * fb[k];
    const auto r = ifft(prod);
    std::vector<double> out(n);
    for (std::size_t k = 0; k < n; ++k) out[k] = r[k].real();
    return out;
  }
  // Planned path: one plan fetch, all scratch in the thread workspace.
  // Identical arithmetic to the planless branch above; the 1/N ifft
  // normalisation is applied to the extracted real part, which is
  // bit-identical because complex *= double scales each component
  // independently.
  auto& ws = thread_fft_workspace();
  ws.t0.resize(n);
  for (std::size_t i = 0; i < n; ++i) ws.t0[i] = cplx(a[i], 0.0);
  plan->transform(ws.t0, false, ws, ws.t1);  // fa
  for (std::size_t i = 0; i < n; ++i) ws.t0[i] = cplx(b[i], 0.0);
  plan->transform(ws.t0, false, ws, ws.t2);  // fb
  for (std::size_t k = 0; k < n; ++k) {
    ws.t0[k] = std::conj(ws.t1[k]) * ws.t2[k];
  }
  plan->transform(ws.t0, true, ws, ws.t1);
  const double norm = 1.0 / static_cast<double>(n);
  std::vector<double> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = ws.t1[k].real() * norm;
  return out;
}

std::vector<double> circular_cross_correlation_direct(
    std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(
        "circular_cross_correlation_direct: length mismatch");
  }
  const std::size_t n = a.size();
  std::vector<double> out(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      s += a[i] * b[(i + k) % n];
    }
    out[k] = s;
  }
  return out;
}

}  // namespace clockmark::dsp
