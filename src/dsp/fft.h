// FFT kernels used by the fast CPA correlator and by spectral analysis of
// simulated power traces. Radix-2 Cooley-Tukey for power-of-two sizes and
// Bluestein's chirp-z algorithm for arbitrary sizes (the watermark period
// 2^k - 1 is never a power of two).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace clockmark::dsp {

using cplx = std::complex<double>;

/// True if n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n) noexcept;

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n) noexcept;

/// In-place radix-2 DIT FFT. data.size() must be a power of two.
/// inverse = true computes the unnormalised inverse transform; divide by
/// N yourself (fft_inverse below does it for you).
void fft_pow2(std::span<cplx> data, bool inverse);

/// Forward DFT of arbitrary length (radix-2 when possible, Bluestein
/// otherwise). Returns a new vector of the same length. Sizes up to
/// dsp::kMaxPlannedFftSize run through the cached plan registry
/// (dsp/fft_plan.h) — bit-identical to the planless path, without
/// re-deriving twiddles/chirp tables per call.
std::vector<cplx> fft(std::span<const cplx> input);

/// Inverse DFT of arbitrary length, normalised by 1/N. Planned like
/// fft().
std::vector<cplx> ifft(std::span<const cplx> input);

/// Planless reference DFT (twiddles and Bluestein tables recomputed
/// inline, no caches). The planned transforms are bit-identical to this;
/// exposed so tests and benches can assert/measure that. The inverse
/// direction is unnormalised (like fft_pow2).
std::vector<cplx> fft_unplanned(std::span<const cplx> input, bool inverse);

/// Forward DFT of a real signal; returns full complex spectrum.
std::vector<cplx> fft_real(std::span<const double> input);

/// Power spectrum |X[k]|^2 of a real signal, first N/2+1 bins.
std::vector<double> power_spectrum(std::span<const double> input);

/// Circular cross-correlation via FFT:
///   r[k] = sum_i a[i] * b[(i + k) mod N]
/// a and b must have the same length N; runs in O(N log N).
std::vector<double> circular_cross_correlation(std::span<const double> a,
                                               std::span<const double> b);

/// Direct O(N^2) circular cross-correlation, for testing the FFT path.
std::vector<double> circular_cross_correlation_direct(
    std::span<const double> a, std::span<const double> b);

}  // namespace clockmark::dsp
