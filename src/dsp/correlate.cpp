#include "dsp/correlate.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"
#include "util/stats.h"

namespace clockmark::dsp {
namespace {

void check_inputs(std::span<const double> y, std::span<const double> pattern) {
  if (pattern.empty()) {
    throw std::invalid_argument("rotation_correlation: empty pattern");
  }
  if (y.size() < pattern.size()) {
    throw std::invalid_argument(
        "rotation_correlation: trace shorter than one pattern period");
  }
}

void check_fold(const PhaseFold& fold, std::span<const double> pattern) {
  if (pattern.empty()) {
    throw std::invalid_argument("rotation_correlation: empty pattern");
  }
  if (fold.sums.size() != pattern.size()) {
    throw std::invalid_argument(
        "rotation_correlation: fold period does not match pattern");
  }
  if (fold.n < pattern.size()) {
    throw std::invalid_argument(
        "rotation_correlation: trace shorter than one pattern period");
  }
}

}  // namespace

PhaseFold fold_by_phase(std::span<const double> y, std::size_t period) {
  PhaseFold fold;
  fold_extend(fold, y, period);
  return fold;
}

void fold_extend(PhaseFold& fold, std::span<const double> y,
                 std::size_t period) {
  if (period == 0) {
    throw std::invalid_argument("fold_by_phase: period must be > 0");
  }
  if (fold.sums.empty()) {
    fold.sums.assign(period, 0.0);
    fold.counts.assign(period, 0);
  } else if (fold.sums.size() != period) {
    throw std::invalid_argument("fold_extend: period changed mid-stream");
  }
  // The phase cursor is implied by how many samples the fold has seen;
  // chunk boundaries therefore cannot desynchronise the fold.
  std::size_t p = fold.n % period;
  fold.n += y.size();
  for (const double v : y) {
    fold.sums[p] += v;
    ++fold.counts[p];
    fold.total += v;
    fold.total_sq += v * v;
    if (++p == period) p = 0;
  }
}

RotationModelSums rotation_model_sums_at(const PhaseFold& fold,
                                         std::span<const double> pattern,
                                         std::size_t rotation) {
  const std::size_t period = pattern.size();
  RotationModelSums s;
  for (std::size_t p = 0; p < period; ++p) {
    const double xv = pattern[(p + rotation) % period];
    s.sxy += xv * fold.sums[p];
    const auto cnt = static_cast<double>(fold.counts[p]);
    s.sx += xv * cnt;
    s.sxx += xv * xv * cnt;
  }
  return s;
}

void rotation_model_sums_blocked(const PhaseFold& fold,
                                 std::span<const double> pattern,
                                 std::size_t first_rotation,
                                 std::span<RotationModelSums> out) {
  const std::size_t period = pattern.size();
  if (out.empty()) return;
  for (auto& s : out) s = RotationModelSums{};
  // One pass over sums/counts; lane l reads the pattern at the wrapped
  // window (p + first_rotation + l) % period. Per lane the accumulation
  // sequence is identical to rotation_model_sums_at's.
  for (std::size_t p = 0; p < period; ++p) {
    const double sum = fold.sums[p];
    const auto cnt = static_cast<double>(fold.counts[p]);
    std::size_t j = (p + first_rotation) % period;
    for (auto& s : out) {
      const double xv = pattern[j];
      s.sxy += xv * sum;
      s.sx += xv * cnt;
      s.sxx += xv * xv * cnt;
      if (++j == period) j = 0;
    }
  }
}

std::vector<double> assemble_rotation_correlations(
    const PhaseFold& fold, std::span<const double> sxy,
    std::span<const double> sx, std::span<const double> sxx) {
  std::vector<double> rho(sxy.size(), 0.0);
  assemble_rotation_correlations_into(fold, sxy, sx, sxx, rho);
  return rho;
}

void assemble_rotation_correlations_into(const PhaseFold& fold,
                                         std::span<const double> sxy,
                                         std::span<const double> sx,
                                         std::span<const double> sxx,
                                         std::span<double> rho) {
  if (rho.size() != sxy.size()) {
    throw std::invalid_argument(
        "assemble_rotation_correlations: rho/sxy size mismatch");
  }
  const auto n = static_cast<double>(fold.n);
  const double sy = fold.total;
  const double syy = fold.total_sq;
  const double denom_y = n * syy - sy * sy;
  for (auto& v : rho) v = 0.0;
  if (denom_y <= 0.0) return;  // constant trace: no relationship
  const double sqrt_denom_y = std::sqrt(denom_y);
  for (std::size_t r = 0; r < sxy.size(); ++r) {
    const double denom_x = n * sxx[r] - sx[r] * sx[r];
    if (denom_x <= 0.0) continue;  // constant model vector
    rho[r] = (n * sxy[r] - sx[r] * sy) / (std::sqrt(denom_x) * sqrt_denom_y);
  }
}

std::vector<double> rotation_correlation_folded_from_fold(
    const PhaseFold& fold, std::span<const double> pattern) {
  check_fold(fold, pattern);
  const std::size_t period = pattern.size();
  std::vector<double> sxy(period, 0.0);
  std::vector<double> sx(period, 0.0);
  std::vector<double> sxx(period, 0.0);
  std::array<RotationModelSums, 8> block;
  for (std::size_t r0 = 0; r0 < period; r0 += block.size()) {
    const std::size_t count = std::min(block.size(), period - r0);
    rotation_model_sums_blocked(
        fold, pattern, r0, std::span<RotationModelSums>(block.data(), count));
    for (std::size_t l = 0; l < count; ++l) {
      sxy[r0 + l] = block[l].sxy;
      sx[r0 + l] = block[l].sx;
      sxx[r0 + l] = block[l].sxx;
    }
  }
  return assemble_rotation_correlations(fold, sxy, sx, sxx);
}

std::vector<double> rotation_correlation_fft_from_fold(
    const PhaseFold& fold, std::span<const double> pattern) {
  check_fold(fold, pattern);
  const std::size_t period = pattern.size();
  std::vector<double> counts_d(period);
  std::vector<double> pattern_sq(period);
  for (std::size_t p = 0; p < period; ++p) {
    counts_d[p] = static_cast<double>(fold.counts[p]);
    pattern_sq[p] = pattern[p] * pattern[p];
  }
  // r[k] = sum_p a[p] * b[(p + k) mod P] — matches the model-sum shape.
  const auto sxy = circular_cross_correlation(fold.sums, pattern);
  const auto sx = circular_cross_correlation(counts_d, pattern);
  const auto sxx = circular_cross_correlation(counts_d, pattern_sq);
  return assemble_rotation_correlations(fold, sxy, sx, sxx);
}

std::vector<double> rotation_correlation_folded(
    std::span<const double> y, std::span<const double> pattern) {
  check_inputs(y, pattern);
  return rotation_correlation_folded_from_fold(
      fold_by_phase(y, pattern.size()), pattern);
}

std::vector<double> rotation_correlation_fft(std::span<const double> y,
                                             std::span<const double> pattern) {
  check_inputs(y, pattern);
  return rotation_correlation_fft_from_fold(fold_by_phase(y, pattern.size()),
                                            pattern);
}

std::vector<double> rotation_correlation_naive(
    std::span<const double> y, std::span<const double> pattern) {
  check_inputs(y, pattern);
  const std::size_t period = pattern.size();
  std::vector<double> model(y.size());
  std::vector<double> rho(period, 0.0);
  for (std::size_t r = 0; r < period; ++r) {
    for (std::size_t i = 0; i < y.size(); ++i) {
      model[i] = pattern[(i + r) % period];
    }
    rho[r] = util::pearson(model, y);
  }
  return rho;
}

}  // namespace clockmark::dsp
