#include "dsp/correlate.h"

#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"
#include "util/stats.h"

namespace clockmark::dsp {
namespace {

void check_inputs(std::span<const double> y, std::span<const double> pattern) {
  if (pattern.empty()) {
    throw std::invalid_argument("rotation_correlation: empty pattern");
  }
  if (y.size() < pattern.size()) {
    throw std::invalid_argument(
        "rotation_correlation: trace shorter than one pattern period");
  }
}

// Assembles Pearson coefficients for every rotation from the per-rotation
// model sums. sxy/sx/sxx are indexed by rotation r.
std::vector<double> assemble(const PhaseFold& fold,
                             std::span<const double> sxy,
                             std::span<const double> sx,
                             std::span<const double> sxx) {
  const auto n = static_cast<double>(fold.n);
  const double sy = fold.total;
  const double syy = fold.total_sq;
  const double denom_y = n * syy - sy * sy;
  std::vector<double> rho(sxy.size(), 0.0);
  if (denom_y <= 0.0) return rho;  // constant trace: no relationship
  const double sqrt_denom_y = std::sqrt(denom_y);
  for (std::size_t r = 0; r < sxy.size(); ++r) {
    const double denom_x = n * sxx[r] - sx[r] * sx[r];
    if (denom_x <= 0.0) continue;  // constant model vector
    rho[r] = (n * sxy[r] - sx[r] * sy) / (std::sqrt(denom_x) * sqrt_denom_y);
  }
  return rho;
}

}  // namespace

PhaseFold fold_by_phase(std::span<const double> y, std::size_t period) {
  if (period == 0) {
    throw std::invalid_argument("fold_by_phase: period must be > 0");
  }
  PhaseFold fold;
  fold.sums.assign(period, 0.0);
  fold.counts.assign(period, 0);
  fold.n = y.size();
  std::size_t p = 0;
  for (const double v : y) {
    fold.sums[p] += v;
    ++fold.counts[p];
    fold.total += v;
    fold.total_sq += v * v;
    if (++p == period) p = 0;
  }
  return fold;
}

std::vector<double> rotation_correlation_folded(
    std::span<const double> y, std::span<const double> pattern) {
  check_inputs(y, pattern);
  const std::size_t period = pattern.size();
  const PhaseFold fold = fold_by_phase(y, period);

  std::vector<double> sxy(period, 0.0);
  std::vector<double> sx(period, 0.0);
  std::vector<double> sxx(period, 0.0);
  for (std::size_t r = 0; r < period; ++r) {
    double a = 0.0, b = 0.0, c = 0.0;
    for (std::size_t p = 0; p < period; ++p) {
      const double xv = pattern[(p + r) % period];
      a += xv * fold.sums[p];
      const auto cnt = static_cast<double>(fold.counts[p]);
      b += xv * cnt;
      c += xv * xv * cnt;
    }
    sxy[r] = a;
    sx[r] = b;
    sxx[r] = c;
  }
  return assemble(fold, sxy, sx, sxx);
}

std::vector<double> rotation_correlation_fft(std::span<const double> y,
                                             std::span<const double> pattern) {
  check_inputs(y, pattern);
  const std::size_t period = pattern.size();
  const PhaseFold fold = fold_by_phase(y, period);

  std::vector<double> counts_d(period);
  std::vector<double> pattern_sq(period);
  for (std::size_t p = 0; p < period; ++p) {
    counts_d[p] = static_cast<double>(fold.counts[p]);
    pattern_sq[p] = pattern[p] * pattern[p];
  }
  // r[k] = sum_p a[p] * b[(p + k) mod P] — matches the model-sum shape.
  const auto sxy = circular_cross_correlation(fold.sums, pattern);
  const auto sx = circular_cross_correlation(counts_d, pattern);
  const auto sxx = circular_cross_correlation(counts_d, pattern_sq);
  return assemble(fold, sxy, sx, sxx);
}

std::vector<double> rotation_correlation_naive(
    std::span<const double> y, std::span<const double> pattern) {
  check_inputs(y, pattern);
  const std::size_t period = pattern.size();
  std::vector<double> model(y.size());
  std::vector<double> rho(period, 0.0);
  for (std::size_t r = 0; r < period; ++r) {
    for (std::size_t i = 0; i < y.size(); ++i) {
      model[i] = pattern[(i + r) % period];
    }
    rho[r] = util::pearson(model, y);
  }
  return rho;
}

}  // namespace clockmark::dsp
