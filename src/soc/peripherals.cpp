#include "soc/peripherals.h"

namespace clockmark::soc {

cpu::BusInterface::Access Uart::read(std::uint32_t offset, unsigned bytes) {
  (void)bytes;
  if (offset == 0x4) return {1, 0, false};  // STATUS: always ready
  return {0, 0, false};
}

cpu::BusInterface::Access Uart::write(std::uint32_t offset,
                                      std::uint32_t data, unsigned bytes) {
  (void)bytes;
  if (offset == 0x0) {
    tx_.push_back(static_cast<char>(data & 0xffu));
    return {0, 0, false};
  }
  return {0, 0, true};
}

cpu::BusInterface::Access Timer::read(std::uint32_t offset, unsigned bytes) {
  (void)bytes;
  if (offset == 0x0) return {count_, 0, false};
  if (offset == 0x4) return {enabled_ ? 1u : 0u, 0, false};
  return {0, 0, true};
}

cpu::BusInterface::Access Timer::write(std::uint32_t offset,
                                       std::uint32_t data, unsigned bytes) {
  (void)bytes;
  if (offset == 0x0) {
    count_ = data;
    return {0, 0, false};
  }
  if (offset == 0x4) {
    enabled_ = (data & 1u) != 0u;
    return {0, 0, false};
  }
  return {0, 0, true};
}

void Timer::tick() {
  if (enabled_) ++count_;
}

}  // namespace clockmark::soc
