// DMA engine model: programmable block copies that generate bus traffic
// independent of the CPU. Register map (word access):
//   +0x0 SRC   +0x4 DST   +0x8 LEN(bytes)   +0xC CTRL(bit0 start, reads
//   bit0 = busy)
// Each active cycle moves up to `bytes_per_cycle` through the bus,
// producing the bursty background traffic that colours the supply
// current of DMA-heavy SoCs.
#pragma once

#include <cstdint>
#include <string>

#include "soc/bus.h"

namespace clockmark::soc {

class DmaEngine final : public Device {
 public:
  /// The engine masters `bus` for its transfers; map() it on the same
  /// bus as a slave for its register file.
  explicit DmaEngine(Bus& bus, unsigned bytes_per_cycle = 4);

  cpu::BusInterface::Access read(std::uint32_t offset,
                                 unsigned bytes) override;
  cpu::BusInterface::Access write(std::uint32_t offset, std::uint32_t data,
                                  unsigned bytes) override;
  void tick() override;
  std::string name() const override { return "dma"; }

  bool busy() const noexcept { return remaining_ > 0; }
  std::uint64_t transfers_completed() const noexcept { return done_; }
  /// Bus words moved during the most recent tick (for the power model).
  unsigned last_cycle_beats() const noexcept { return last_beats_; }

 private:
  Bus& bus_;
  unsigned bytes_per_cycle_;
  std::uint32_t src_ = 0;
  std::uint32_t dst_ = 0;
  std::uint32_t remaining_ = 0;
  std::uint64_t done_ = 0;
  unsigned last_beats_ = 0;
};

}  // namespace clockmark::soc
