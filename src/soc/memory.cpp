#include "soc/memory.h"

#include <stdexcept>

namespace clockmark::soc {
namespace {

cpu::BusInterface::Access read_le(const std::vector<std::uint8_t>& bytes,
                                  std::uint32_t offset, unsigned n) {
  if (offset + n > bytes.size()) return {0, 0, true};
  std::uint32_t v = 0;
  for (unsigned i = 0; i < n; ++i) {
    v |= static_cast<std::uint32_t>(bytes[offset + i]) << (8u * i);
  }
  return {v, 0, false};
}

}  // namespace

Ram::Ram(std::uint32_t size, std::string name)
    : bytes_(size, 0), name_(std::move(name)) {}

cpu::BusInterface::Access Ram::read(std::uint32_t offset, unsigned bytes) {
  ++stats_.reads;
  return read_le(bytes_, offset, bytes);
}

cpu::BusInterface::Access Ram::write(std::uint32_t offset, std::uint32_t data,
                                     unsigned bytes) {
  if (offset + bytes > bytes_.size()) return {0, 0, true};
  ++stats_.writes;
  for (unsigned i = 0; i < bytes; ++i) {
    bytes_[offset + i] = static_cast<std::uint8_t>(data >> (8u * i));
  }
  return {0, 0, false};
}

Rom::Rom(std::uint32_t size, std::string name)
    : bytes_(size, 0), name_(std::move(name)) {}

void Rom::load(const cpu::ProgramImage& image, std::uint32_t rom_base) {
  const std::size_t needed = rom_base + image.words.size() * 4;
  if (needed > bytes_.size()) {
    throw std::out_of_range("Rom::load: image does not fit");
  }
  for (std::size_t i = 0; i < image.words.size(); ++i) {
    const std::uint32_t w = image.words[i];
    for (unsigned b = 0; b < 4; ++b) {
      bytes_[rom_base + i * 4 + b] = static_cast<std::uint8_t>(w >> (8u * b));
    }
  }
}

cpu::BusInterface::Access Rom::read(std::uint32_t offset, unsigned bytes) {
  ++stats_.reads;
  return read_le(bytes_, offset, bytes);
}

cpu::BusInterface::Access Rom::write(std::uint32_t offset, std::uint32_t data,
                                     unsigned bytes) {
  (void)offset;
  (void)data;
  (void)bytes;
  return {0, 0, true};  // ROM is not writable
}

}  // namespace clockmark::soc
