#include "soc/chip2.h"

namespace clockmark::soc {

Chip2Soc::Chip2Soc(const Chip2Config& config)
    : config_(config), rng_(config.noise_seed, 0xa5a5a5a5u) {
  m0_ = std::make_unique<Chip1Soc>(config_.m0_soc);
  IdleCoreConfig c0 = config_.a5_core;
  c0.name = "a5_core0";
  IdleCoreConfig c1 = config_.a5_core;
  c1.name = "a5_core1";
  a5_[0] = std::make_unique<IdleCore>(c0, m0_->tech(), rng_.fork(0));
  a5_[1] = std::make_unique<IdleCore>(c1, m0_->tech(), rng_.fork(1));
}

double Chip2Soc::step() {
  double p = m0_->step();
  p += a5_[0]->step();
  p += a5_[1]->step();
  p += config_.fabric_power_w *
       (1.0 + config_.fabric_jitter * rng_.gaussian());
  return p;
}

power::PowerTrace Chip2Soc::run(std::size_t n, const std::string& label) {
  std::vector<double> power(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) power[i] = step();
  return power::PowerTrace(std::move(power), tech().clock_hz, label);
}

}  // namespace clockmark::soc
