#include "soc/chip2.h"

namespace clockmark::soc {

Chip2NoiseOverlay::Chip2NoiseOverlay(const Chip2Config& config,
                                     const power::TechLibrary& tech)
    : fabric_power_w_(config.fabric_power_w),
      fabric_jitter_(config.fabric_jitter),
      rng_(config.noise_seed, 0xa5a5a5a5u) {
  // Same core setup (names, fork salts, fork order) as the monolithic
  // Chip2Soc always did; Pcg32::fork does not advance rng_, so the
  // fabric-jitter stream is also unchanged.
  IdleCoreConfig c0 = config.a5_core;
  c0.name = "a5_core0";
  IdleCoreConfig c1 = config.a5_core;
  c1.name = "a5_core1";
  a5_[0] = std::make_unique<IdleCore>(c0, tech, rng_.fork(0));
  a5_[1] = std::make_unique<IdleCore>(c1, tech, rng_.fork(1));
}

double Chip2NoiseOverlay::step(double base_power_w) {
  double p = base_power_w;
  p += a5_[0]->step();
  p += a5_[1]->step();
  p += fabric_power_w_ * (1.0 + fabric_jitter_ * rng_.gaussian());
  return p;
}

power::PowerTrace Chip2NoiseOverlay::apply(std::span<const double> base,
                                           double clock_hz,
                                           const std::string& label) {
  std::vector<double> power(base.size(), 0.0);
  for (std::size_t i = 0; i < base.size(); ++i) power[i] = step(base[i]);
  return power::PowerTrace(std::move(power), clock_hz, label);
}

Chip2Soc::Chip2Soc(const Chip2Config& config)
    : config_(config),
      m0_(std::make_unique<Chip1Soc>(config.m0_soc)),
      overlay_(config, m0_->tech()) {}

double Chip2Soc::step() { return overlay_.step(m0_->step()); }

power::PowerTrace Chip2Soc::run(std::size_t n, const std::string& label) {
  std::vector<double> power(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) power[i] = step();
  return power::PowerTrace(std::move(power), tech().clock_hz, label);
}

}  // namespace clockmark::soc
