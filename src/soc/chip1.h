// Chip I model: the ARM Cortex-M0 SoC of the paper's first test chip —
// EM0 core + on-chip bus + ROM/SRAM + peripherals, running the
// Dhrystone-like workload. Produces the per-cycle *background* power
// trace (everything except the watermark block, which chip I keeps on a
// separate power domain and the experiment layer adds in).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cpu/core.h"
#include "cpu/programs.h"
#include "power/tech65.h"
#include "power/trace.h"
#include "soc/bus.h"
#include "soc/memory.h"
#include "soc/peripherals.h"

namespace clockmark::soc {

/// Per-cycle energy coefficients of the EM0 + SoC fabric. Values sized
/// so the M0 SoC averages ~1.5-2 mW at 10 MHz in 65 nm LP — the right
/// order for the paper's chip I background.
struct CpuPowerModel {
  double active_base_j = 95e-12;   ///< un-gated core clock tree + fetch
  double stall_j = 55e-12;         ///< multi-cycle op: clock on, issue idle
  double sleep_j = 14e-12;         ///< WFI: most of the tree gated
  double halt_j = 3e-12;           ///< simulation-halt (clock stopped)
  double alu_j = 2.1e-12;
  double shifter_j = 1.7e-12;
  double mul_j = 5.5e-12;
  double mem_read_j = 7.5e-12;
  double mem_write_j = 6.8e-12;
  double branch_j = 1.6e-12;
  double per_toggle_bit_j = 48e-15;  ///< register-file datapath toggles
  double soc_base_j = 40e-12;        ///< bus clock + peripherals idle
  double per_bus_transaction_j = 4.2e-12;
  double leakage_w = 9e-6;           ///< whole-SoC leakage floor

  /// Energy of one core cycle (excluding bus transactions).
  double cycle_energy_j(const cpu::CpuActivity& a) const noexcept;
};

struct Chip1Config {
  std::string program;              ///< assembly source (ROM image)
  power::TechLibrary tech;          ///< operating point / constants
  CpuPowerModel cpu_power;
  std::uint32_t rom_size = 0x10000;
  std::uint32_t ram_size = cpu::kRamSize;
  /// Timer-interrupt model: when > 0, a WFI-sleeping core is woken
  /// whenever the free-running timer count is a multiple of this value.
  /// Lets workloads alternate compute and sleep (idle-window watermark
  /// scheduling, cf. watermark/scheduler.h).
  std::uint32_t timer_wake_period = 0;
};

class Chip1Soc {
 public:
  /// Assembles the program, builds the memory map, resets the core.
  explicit Chip1Soc(const Chip1Config& config);

  /// Advances one clock cycle; returns total background power (W) for
  /// that cycle (dynamic + leakage).
  double step();

  /// Runs n cycles and returns the background power trace.
  power::PowerTrace run(std::size_t n, const std::string& label = "chip1");

  /// Like run(), but also captures the per-cycle idle mask (core in WFI)
  /// for idle-window watermark scheduling.
  struct RunWithIdle {
    power::PowerTrace power;
    std::vector<bool> idle;
  };
  RunWithIdle run_with_idle(std::size_t n,
                            const std::string& label = "chip1");

  /// True if the core spent the most recent cycle sleeping.
  bool last_cycle_idle() const noexcept { return last_idle_; }

  const cpu::Em0Core& core() const noexcept { return *core_; }
  cpu::Em0Core& core() noexcept { return *core_; }
  const Uart& uart() const noexcept { return *uart_; }
  Bus& bus() noexcept { return bus_; }
  const power::TechLibrary& tech() const noexcept { return config_.tech; }

  std::uint64_t cycles_run() const noexcept { return cycles_; }

 private:
  Chip1Config config_;
  Bus bus_;
  std::shared_ptr<Rom> rom_;
  std::shared_ptr<Ram> ram_;
  std::shared_ptr<Uart> uart_;
  std::shared_ptr<Timer> timer_;
  std::unique_ptr<cpu::Em0Core> core_;
  std::uint64_t cycles_ = 0;
  bool last_idle_ = false;
};

}  // namespace clockmark::soc
