// On-chip memories: RAM and ROM bus slaves with access counting for the
// power model (each array access costs energy; ROM additionally models
// one wait state like a typical embedded flash/ROM macro).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/decoder.h"
#include "soc/bus.h"

namespace clockmark::soc {

struct MemoryStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

class Ram final : public Device {
 public:
  explicit Ram(std::uint32_t size, std::string name = "sram");

  cpu::BusInterface::Access read(std::uint32_t offset,
                                 unsigned bytes) override;
  cpu::BusInterface::Access write(std::uint32_t offset, std::uint32_t data,
                                  unsigned bytes) override;
  std::string name() const override { return name_; }

  const MemoryStats& stats() const noexcept { return stats_; }
  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(bytes_.size());
  }

  /// Direct backdoor access for tests.
  std::uint8_t peek(std::uint32_t offset) const { return bytes_.at(offset); }
  void poke(std::uint32_t offset, std::uint8_t value) {
    bytes_.at(offset) = value;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::string name_;
  MemoryStats stats_;
};

class Rom final : public Device {
 public:
  explicit Rom(std::uint32_t size, std::string name = "rom");

  /// Loads a program image at its base offset within the ROM.
  void load(const cpu::ProgramImage& image, std::uint32_t rom_base = 0);

  cpu::BusInterface::Access read(std::uint32_t offset,
                                 unsigned bytes) override;
  cpu::BusInterface::Access write(std::uint32_t offset, std::uint32_t data,
                                  unsigned bytes) override;
  std::string name() const override { return name_; }

  const MemoryStats& stats() const noexcept { return stats_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::string name_;
  MemoryStats stats_;
};

}  // namespace clockmark::soc
