#include "soc/idle_core.h"

namespace clockmark::soc {

IdleCore::IdleCore(const IdleCoreConfig& config,
                   const power::TechLibrary& lib, util::Pcg32 rng)
    : config_(config), lib_(lib), rng_(rng), cache_(config.cache) {}

double IdleCore::mean_power_w() const noexcept {
  const double ungated =
      static_cast<double>(config_.register_count) * config_.ungated_fraction;
  const double housekeeping = config_.housekeeping_rate *
                              static_cast<double>(config_.housekeeping_burst);
  // Housekeeping clocks registers (clock-buffer energy), toggles about
  // half of them (data energy) and sweeps a few cache lines (~steady-
  // state hit rate, so ~1.1x the access energy each).
  const double cache_w = config_.housekeeping_rate *
                         static_cast<double>(config_.cache_lines_per_event) *
                         config_.cache_access_j * 1.1 * lib_.clock_hz;
  return lib_.clock_buffer_power_w(
             static_cast<std::size_t>(ungated + housekeeping)) +
         lib_.data_switching_power_w(
             static_cast<std::size_t>(housekeeping * 0.5)) +
         cache_w;
}

double IdleCore::leakage_w() const noexcept {
  return static_cast<double>(config_.register_count) * lib_.flop_leak_w;
}

double IdleCore::step() {
  const double ungated =
      static_cast<double>(config_.register_count) * config_.ungated_fraction;
  double clocked = ungated;
  double toggled = 0.0;

  // Poisson-ish housekeeping: each cycle draws whether a burst fires.
  // Multiple bursts per cycle are possible with low probability.
  double cache_energy = 0.0;
  double rate = config_.housekeeping_rate;
  while (rate > 0.0) {
    const double p = rate >= 1.0 ? 1.0 : rate;
    if (rng_.bernoulli(p)) {
      const auto burst = static_cast<double>(config_.housekeeping_burst);
      // Burst size jitters by +/-30 %.
      const double size = burst * rng_.uniform(0.7, 1.3);
      clocked += size;
      toggled += size * rng_.uniform(0.3, 0.7);
      // Maintenance sweep: walk a few lines of the L1 (mostly sequential
      // with occasional random snoops), paying array-access energy;
      // misses (fills) cost roughly double.
      const std::uint32_t total_lines =
          config_.cache.size_bytes / config_.cache.line_bytes;
      for (std::size_t l = 0; l < config_.cache_lines_per_event; ++l) {
        const bool snoop = rng_.bernoulli(0.1);
        // The sweep cycles through the cache's own lines (a maintenance
        // walk); snoops hit random addresses and mostly miss.
        const std::uint32_t addr =
            snoop ? rng_()
                  : (sweep_cursor_ % total_lines) * config_.cache.line_bytes;
        if (!snoop) ++sweep_cursor_;
        const bool hit = cache_.access(addr, rng_.bernoulli(0.1));
        cache_energy += config_.cache_access_j * (hit ? 1.0 : 2.0);
      }
    }
    rate -= 1.0;
  }

  const double dynamic =
      clocked * lib_.clock_buffer_cycle_j * lib_.clock_hz +
      toggled * lib_.flop_data_toggle_j * lib_.clock_hz +
      cache_energy * lib_.clock_hz;
  return dynamic + leakage_w();
}

}  // namespace clockmark::soc
