#include "soc/dma.h"

namespace clockmark::soc {

DmaEngine::DmaEngine(Bus& bus, unsigned bytes_per_cycle)
    : bus_(bus), bytes_per_cycle_(bytes_per_cycle == 0 ? 4
                                                       : bytes_per_cycle) {}

cpu::BusInterface::Access DmaEngine::read(std::uint32_t offset,
                                          unsigned bytes) {
  (void)bytes;
  switch (offset) {
    case 0x0: return {src_, 0, false};
    case 0x4: return {dst_, 0, false};
    case 0x8: return {remaining_, 0, false};
    case 0xC: return {busy() ? 1u : 0u, 0, false};
    default: return {0, 0, true};
  }
}

cpu::BusInterface::Access DmaEngine::write(std::uint32_t offset,
                                           std::uint32_t data,
                                           unsigned bytes) {
  (void)bytes;
  switch (offset) {
    case 0x0:
      src_ = data;
      return {0, 0, false};
    case 0x4:
      dst_ = data;
      return {0, 0, false};
    case 0x8:
      remaining_ = data;
      return {0, 0, false};
    case 0xC:
      // Writing CTRL with bit0 set (re)arms the transfer of LEN bytes.
      if ((data & 1u) == 0u) remaining_ = 0;
      return {0, 0, false};
    default:
      return {0, 0, true};
  }
}

void DmaEngine::tick() {
  last_beats_ = 0;
  if (remaining_ == 0) return;
  unsigned budget = bytes_per_cycle_;
  while (budget >= 4 && remaining_ >= 4) {
    const auto rd = bus_.read(src_, 4);
    if (rd.fault) {  // abort on fault
      remaining_ = 0;
      return;
    }
    const auto wr = bus_.write(dst_, rd.data, 4);
    if (wr.fault) {
      remaining_ = 0;
      return;
    }
    src_ += 4;
    dst_ += 4;
    remaining_ -= 4;
    budget -= 4;
    ++last_beats_;
  }
  // Tail smaller than a word: move byte-wise in one cycle.
  while (budget > 0 && remaining_ > 0 && remaining_ < 4) {
    const auto rd = bus_.read(src_, 1);
    if (rd.fault) {
      remaining_ = 0;
      return;
    }
    bus_.write(dst_, rd.data, 1);
    ++src_;
    ++dst_;
    --remaining_;
    --budget;
    ++last_beats_;
  }
  if (remaining_ == 0) ++done_;
}

}  // namespace clockmark::soc
