#include "soc/bus.h"

#include <stdexcept>

namespace clockmark::soc {

void Bus::map(std::uint32_t base, std::uint32_t size,
              std::shared_ptr<Device> device, unsigned extra_wait_states) {
  if (size == 0 || device == nullptr) {
    throw std::invalid_argument("Bus::map: empty region or null device");
  }
  for (const auto& r : regions_) {
    const bool overlap = base < r.base + r.size && r.base < base + size;
    if (overlap) {
      throw std::invalid_argument("Bus::map: region overlaps " +
                                  r.device->name());
    }
  }
  regions_.push_back({base, size, std::move(device), extra_wait_states});
}

const Bus::Region* Bus::decode(std::uint32_t addr, unsigned bytes) const {
  if (bytes != 1 && bytes != 2 && bytes != 4) return nullptr;
  if ((addr & (bytes - 1u)) != 0u) return nullptr;  // alignment fault
  for (const auto& r : regions_) {
    if (addr >= r.base && addr - r.base + bytes <= r.size) return &r;
  }
  return nullptr;
}

cpu::BusInterface::Access Bus::read(std::uint32_t addr, unsigned bytes) {
  const Region* r = decode(addr, bytes);
  if (r == nullptr) {
    ++stats_.faults;
    return {0, 0, true};
  }
  auto acc = r->device->read(addr - r->base, bytes);
  acc.wait_cycles += r->wait_states;
  ++stats_.reads;
  stats_.wait_cycles += acc.wait_cycles;
  ++cycle_transactions_;
  return acc;
}

cpu::BusInterface::Access Bus::write(std::uint32_t addr, std::uint32_t data,
                                     unsigned bytes) {
  const Region* r = decode(addr, bytes);
  if (r == nullptr) {
    ++stats_.faults;
    return {0, 0, true};
  }
  auto acc = r->device->write(addr - r->base, data, bytes);
  acc.wait_cycles += r->wait_states;
  ++stats_.writes;
  stats_.wait_cycles += acc.wait_cycles;
  ++cycle_transactions_;
  return acc;
}

void Bus::tick() {
  for (auto& r : regions_) r.device->tick();
}

std::uint64_t Bus::take_cycle_transactions() noexcept {
  const std::uint64_t n = cycle_transactions_;
  cycle_transactions_ = 0;
  return n;
}

}  // namespace clockmark::soc
