#include "soc/chip1.h"

namespace clockmark::soc {

double CpuPowerModel::cycle_energy_j(
    const cpu::CpuActivity& a) const noexcept {
  if (a.halted) return halt_j;
  if (a.sleeping) return sleep_j;
  double e = soc_base_j;
  if (a.stall) {
    e += stall_j;
    return e;
  }
  if (a.active) e += active_base_j;
  if (a.alu_used) e += alu_j;
  if (a.shifter_used) e += shifter_j;
  if (a.multiplier_used) e += mul_j;
  if (a.mem_read) e += mem_read_j;
  if (a.mem_write) e += mem_write_j;
  if (a.branch_taken) e += branch_j;
  e += static_cast<double>(a.data_toggle_bits) * per_toggle_bit_j;
  return e;
}

Chip1Soc::Chip1Soc(const Chip1Config& config) : config_(config) {
  const auto assembled = cpu::assemble_program(config_.program);
  rom_ = std::make_shared<Rom>(config_.rom_size);
  rom_->load(assembled.image);
  ram_ = std::make_shared<Ram>(config_.ram_size);
  uart_ = std::make_shared<Uart>();
  timer_ = std::make_shared<Timer>();

  bus_.map(cpu::kRomBase, config_.rom_size, rom_, /*extra_wait_states=*/0);
  bus_.map(cpu::kRamBase, config_.ram_size, ram_, 0);
  bus_.map(cpu::kUartTx, 0x100, uart_, 1);
  bus_.map(cpu::kTimerCount, 0x100, timer_, 1);

  core_ = std::make_unique<cpu::Em0Core>(bus_);
  core_->reset(cpu::kRomBase, cpu::kRamBase + config_.ram_size);
}

double Chip1Soc::step() {
  bus_.tick();
  // Timer "interrupt": wake a sleeping core on the configured period.
  if (config_.timer_wake_period > 0 && core_->sleeping() &&
      timer_->count() % config_.timer_wake_period == 0) {
    core_->wake();
  }
  const cpu::CpuActivity& a = core_->step();
  last_idle_ = a.sleeping;
  const std::uint64_t transactions = bus_.take_cycle_transactions();
  double energy = config_.cpu_power.cycle_energy_j(a);
  energy += static_cast<double>(transactions) *
            config_.cpu_power.per_bus_transaction_j;
  ++cycles_;
  return energy * config_.tech.clock_hz + config_.cpu_power.leakage_w;
}

power::PowerTrace Chip1Soc::run(std::size_t n, const std::string& label) {
  std::vector<double> power(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) power[i] = step();
  return power::PowerTrace(std::move(power), config_.tech.clock_hz, label);
}

Chip1Soc::RunWithIdle Chip1Soc::run_with_idle(std::size_t n,
                                              const std::string& label) {
  RunWithIdle out;
  std::vector<double> power(n, 0.0);
  out.idle.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    power[i] = step();
    out.idle[i] = last_idle_;
  }
  out.power =
      power::PowerTrace(std::move(power), config_.tech.clock_hz, label);
  return out;
}

}  // namespace clockmark::soc
