#include "soc/cache.h"

#include <stdexcept>

namespace clockmark::soc {
namespace {

bool power_of_two(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

Cache::Cache(const CacheConfig& config) : config_(config) {
  if (!power_of_two(config.line_bytes) || !power_of_two(config.ways) ||
      config.size_bytes % (config.line_bytes * config.ways) != 0) {
    throw std::invalid_argument("Cache: invalid geometry");
  }
  sets_ = config.size_bytes / (config.line_bytes * config.ways);
  if (!power_of_two(sets_)) {
    throw std::invalid_argument("Cache: set count must be a power of two");
  }
  lines_.assign(static_cast<std::size_t>(sets_) * config.ways, Line{});
}

bool Cache::access(std::uint32_t address, bool dirty) {
  const std::uint32_t line_addr = address / config_.line_bytes;
  const std::uint32_t set = line_addr & (sets_ - 1u);
  const std::uint32_t tag = line_addr / sets_;
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
  ++use_counter_;

  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = use_counter_;
      line.dirty = line.dirty || dirty;
      ++stats_.hits;
      return true;
    }
  }
  ++stats_.misses;

  // Choose victim: first invalid way, else least-recently used.
  Line* victim = &base[0];
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru < victim->lru) victim = &line;
  }
  if (victim->valid) {
    ++stats_.evictions;
    if (victim->dirty) ++stats_.writebacks;
  }
  victim->valid = true;
  victim->dirty = dirty;
  victim->tag = tag;
  victim->lru = use_counter_;
  return false;
}

void Cache::invalidate() {
  for (auto& line : lines_) line = Line{};
}

}  // namespace clockmark::soc
