// Minimal peripheral set: a UART transmitter (collects bytes for test
// inspection) and a free-running timer. Register maps:
//   UART:  +0x0 TXDATA (w)     +0x4 STATUS (r, always ready)
//   TIMER: +0x0 COUNT (r/w)    +0x4 CTRL (bit0 = enable)
#pragma once

#include <cstdint>
#include <string>

#include "soc/bus.h"

namespace clockmark::soc {

class Uart final : public Device {
 public:
  cpu::BusInterface::Access read(std::uint32_t offset,
                                 unsigned bytes) override;
  cpu::BusInterface::Access write(std::uint32_t offset, std::uint32_t data,
                                  unsigned bytes) override;
  std::string name() const override { return "uart"; }

  const std::string& output() const noexcept { return tx_; }
  void clear() noexcept { tx_.clear(); }

 private:
  std::string tx_;
};

class Timer final : public Device {
 public:
  cpu::BusInterface::Access read(std::uint32_t offset,
                                 unsigned bytes) override;
  cpu::BusInterface::Access write(std::uint32_t offset, std::uint32_t data,
                                  unsigned bytes) override;
  void tick() override;
  std::string name() const override { return "timer"; }

  std::uint32_t count() const noexcept { return count_; }
  bool enabled() const noexcept { return enabled_; }

 private:
  std::uint32_t count_ = 0;
  bool enabled_ = true;
};

}  // namespace clockmark::soc
