// Set-associative cache model with LRU replacement. On chip II the
// Cortex-A5 caches are present and clocked even though the cores execute
// nothing; the cache model provides both a functional lookup path (used
// by tests and the extended examples) and activity statistics that feed
// the idle-core power model.
#pragma once

#include <cstdint>
#include <vector>

namespace clockmark::soc {

struct CacheConfig {
  std::uint32_t size_bytes = 16 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t ways = 4;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  double hit_rate() const noexcept {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Looks up an address; on miss, fills the line (LRU victim). Returns
  /// true on hit. `dirty` marks the line dirty (a store).
  bool access(std::uint32_t address, bool dirty);

  /// Invalidates the whole cache.
  void invalidate();

  const CacheConfig& config() const noexcept { return config_; }
  const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = CacheStats{}; }

  std::uint32_t sets() const noexcept { return sets_; }

 private:
  struct Line {
    std::uint32_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  ///< last-use stamp
  };

  CacheConfig config_;
  std::uint32_t sets_;
  std::vector<Line> lines_;  ///< sets_ * ways, row-major by set
  std::uint64_t use_counter_ = 0;
  CacheStats stats_;
};

}  // namespace clockmark::soc
