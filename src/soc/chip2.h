// Chip II model: the paper's second test chip — a dual-core Cortex-A5
// class subsystem (cores clocked but idle, caches present) sharing the
// die with the Cortex-M0 SoC that runs Dhrystone. The extra always-on
// logic raises the background power and its cycle-to-cycle variance,
// which is why chip II's correlation peak is lower than chip I's
// (paper Fig. 5c vs 5a).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "soc/chip1.h"
#include "soc/idle_core.h"

namespace clockmark::soc {

struct Chip2Config {
  Chip1Config m0_soc;              ///< the embedded M0 SoC (runs Dhrystone)
  IdleCoreConfig a5_core;          ///< per-core idle model (two instanced)
  double fabric_power_w = 0.9e-3;  ///< AXI fabric + L2 interface, constant
  /// Cycle-to-cycle fabric jitter (relative sigma of fabric power).
  double fabric_jitter = 0.05;
  std::uint64_t noise_seed = 0x5eedc0de;
};

/// The seeded, repetition-variant part of chip II's background power:
/// the two idle A5-class cores plus the jittering fabric. Split from
/// Chip2Soc so the deterministic M0 base trace — a pure function of the
/// scenario config — can be memoized across repetitions (sim::Scenario)
/// and only this overlay replayed per repetition. An overlay built from
/// a given config draws exactly the RNG stream the monolithic Chip2Soc
/// would, and step() adds its terms in the same order, so
///   overlay.step(m0.step())  ==  Chip2Soc::step()
/// bit for bit, cycle by cycle.
class Chip2NoiseOverlay {
 public:
  Chip2NoiseOverlay(const Chip2Config& config,
                    const power::TechLibrary& tech);

  /// One cycle: the deterministic base power plus this cycle's A5 and
  /// fabric contributions.
  double step(double base_power_w);

  /// Overlays a whole precomputed base trace (one step() per sample).
  power::PowerTrace apply(std::span<const double> base, double clock_hz,
                          const std::string& label);

  const IdleCore& a5(unsigned index) const { return *a5_[index & 1]; }

 private:
  double fabric_power_w_;
  double fabric_jitter_;
  util::Pcg32 rng_;
  std::unique_ptr<IdleCore> a5_[2];
};

class Chip2Soc {
 public:
  explicit Chip2Soc(const Chip2Config& config);

  /// One clock cycle; returns total background power (W).
  double step();

  power::PowerTrace run(std::size_t n, const std::string& label = "chip2");

  Chip1Soc& m0_soc() noexcept { return *m0_; }
  const Chip1Soc& m0_soc() const noexcept { return *m0_; }
  const IdleCore& a5(unsigned index) const { return overlay_.a5(index); }
  const power::TechLibrary& tech() const noexcept { return m0_->tech(); }

 private:
  Chip2Config config_;
  std::unique_ptr<Chip1Soc> m0_;
  Chip2NoiseOverlay overlay_;
};

}  // namespace clockmark::soc
