// Clocked-but-idle application core macro model. On chip II the paper's
// dual Cortex-A5 "did not execute any program [but] both cores, along
// with the on-chip bus were active, which accounted for a significant
// portion of background noise". We model each idle core as:
//   * a large register population whose un-gated fraction keeps the clock
//     tree switching every cycle (deterministic mean power), plus
//   * stochastic housekeeping activity (cache maintenance sweeps, bus
//     snoops, debug logic) producing cycle-to-cycle power variation.
#pragma once

#include <cstdint>
#include <string>

#include "power/tech65.h"
#include "soc/cache.h"
#include "util/rng.h"

namespace clockmark::soc {

struct IdleCoreConfig {
  std::string name = "a5";
  /// Total flip-flops in the core (A5-class integer core + L1 control).
  std::size_t register_count = 28000;
  /// Fraction of the clock tree that remains un-gated while idle.
  double ungated_fraction = 0.12;
  /// Mean housekeeping events per cycle (each event clocks a burst of
  /// extra registers: snoop lookups, retention sweeps, timers).
  double housekeeping_rate = 0.08;
  /// Registers clocked by one housekeeping event.
  std::size_t housekeeping_burst = 600;
  /// L1 data cache geometry. Housekeeping events run short maintenance
  /// sweeps through it (tag reads / occasional dirty-line writebacks),
  /// adding data-dependent energy on top of the clocked registers.
  CacheConfig cache;
  /// Cache lines touched per housekeeping event.
  std::size_t cache_lines_per_event = 8;
  /// Energy of one cache array access (tag + data read).
  double cache_access_j = 2.0e-12;
};

/// Per-cycle power model of one idle core.
class IdleCore {
 public:
  IdleCore(const IdleCoreConfig& config, const power::TechLibrary& lib,
           util::Pcg32 rng);

  /// Power (W) consumed during the next cycle.
  double step();

  /// Deterministic mean idle power (W) — the DC component.
  double mean_power_w() const noexcept;

  /// Leakage of the whole macro (W), always present.
  double leakage_w() const noexcept;

  const IdleCoreConfig& config() const noexcept { return config_; }
  const CacheStats& cache_stats() const noexcept { return cache_.stats(); }

 private:
  IdleCoreConfig config_;
  power::TechLibrary lib_;
  util::Pcg32 rng_;
  Cache cache_;
  std::uint32_t sweep_cursor_ = 0;
};

}  // namespace clockmark::soc
