// AHB-lite-flavoured system bus: single master port (the EM0 core), an
// address-decoded set of slave devices, per-access wait states and
// activity counters for the power model.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/core.h"

namespace clockmark::soc {

/// A bus slave. Offsets passed to read/write are relative to the
/// device's base address.
class Device {
 public:
  virtual ~Device() = default;
  virtual cpu::BusInterface::Access read(std::uint32_t offset,
                                         unsigned bytes) = 0;
  virtual cpu::BusInterface::Access write(std::uint32_t offset,
                                          std::uint32_t data,
                                          unsigned bytes) = 0;
  /// Called once per system clock cycle.
  virtual void tick() {}
  virtual std::string name() const = 0;
};

/// Bus traffic counters (reset per trace window by the caller).
struct BusStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t faults = 0;
  std::uint64_t wait_cycles = 0;
};

class Bus final : public cpu::BusInterface {
 public:
  /// Maps a device at [base, base + size). Regions must not overlap.
  void map(std::uint32_t base, std::uint32_t size,
           std::shared_ptr<Device> device, unsigned extra_wait_states = 0);

  Access read(std::uint32_t addr, unsigned bytes) override;
  Access write(std::uint32_t addr, std::uint32_t data,
               unsigned bytes) override;

  /// Ticks all devices one clock cycle.
  void tick();

  const BusStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = BusStats{}; }

  /// Transactions issued during the most recent cycle window since
  /// last_cycle_transactions() was called (used by the power model).
  std::uint64_t take_cycle_transactions() noexcept;

 private:
  struct Region {
    std::uint32_t base = 0;
    std::uint32_t size = 0;
    std::shared_ptr<Device> device;
    unsigned wait_states = 0;
  };
  const Region* decode(std::uint32_t addr, unsigned bytes) const;

  std::vector<Region> regions_;
  BusStats stats_;
  std::uint64_t cycle_transactions_ = 0;
};

}  // namespace clockmark::soc
