#include "clocktree/tree.h"

#include <stdexcept>

namespace clockmark::clocktree {
namespace {

// Recursively splits `count` sinks below `parent` until a buffer can
// legally drive them, appending created buffers/leaves to the tree.
void build_level(rtl::Netlist& nl, std::uint32_t module, rtl::NetId parent,
                 std::size_t count, const ClockTreeOptions& opt,
                 unsigned level, ClockTree& tree, std::size_t& name_counter) {
  tree.levels = std::max(tree.levels, level);
  if (count == 0) return;

  const bool parent_can_drive_leaves = count <= opt.max_fanout;
  if (parent_can_drive_leaves) {
    for (std::size_t i = 0; i < count; ++i) {
      if (opt.leaf_buffer_per_sink) {
        const rtl::NetId leaf = nl.add_net(
            opt.name_prefix + "_leaf" + std::to_string(name_counter));
        const rtl::CellId buf = nl.add_clock_buffer(
            opt.name_prefix + "_lb" + std::to_string(name_counter), module,
            parent, leaf);
        ++name_counter;
        tree.buffers.push_back(buf);
        tree.leaf_nets.push_back(leaf);
      } else {
        tree.leaf_nets.push_back(parent);
      }
    }
    return;
  }

  // Split into up to max_fanout branches, each an intermediate buffer.
  const std::size_t branches = opt.max_fanout;
  const std::size_t base = count / branches;
  std::size_t remainder = count % branches;
  for (std::size_t b = 0; b < branches; ++b) {
    std::size_t share = base + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    if (share == 0) continue;
    const rtl::NetId branch_net = nl.add_net(
        opt.name_prefix + "_n" + std::to_string(name_counter));
    const rtl::CellId buf = nl.add_clock_buffer(
        opt.name_prefix + "_b" + std::to_string(name_counter), module,
        parent, branch_net);
    ++name_counter;
    tree.buffers.push_back(buf);
    build_level(nl, module, branch_net, share, opt, level + 1, tree,
                name_counter);
  }
}

}  // namespace

ClockTree build_clock_tree(rtl::Netlist& netlist, std::uint32_t module,
                           rtl::NetId root_clock, std::size_t sink_count,
                           const ClockTreeOptions& options) {
  if (options.max_fanout < 2) {
    throw std::invalid_argument("build_clock_tree: max_fanout must be >= 2");
  }
  ClockTree tree;
  tree.root = root_clock;
  std::size_t name_counter = 0;
  build_level(netlist, module, root_clock, sink_count, options, 1, tree,
              name_counter);
  return tree;
}

GatedClockGroup build_gated_group(rtl::Netlist& netlist, std::uint32_t module,
                                  rtl::NetId root_clock, rtl::NetId enable,
                                  std::size_t sink_count,
                                  const std::string& name,
                                  const ClockTreeOptions& options) {
  GatedClockGroup group;
  const rtl::NetId gated = netlist.add_net(name + "_gclk");
  group.icg = netlist.add_icg(name + "_icg", module, root_clock, enable,
                              gated);
  ClockTreeOptions opt = options;
  opt.name_prefix = name + "_" + options.name_prefix;
  group.tree = build_clock_tree(netlist, module, gated, sink_count, opt);
  return group;
}

}  // namespace clockmark::clocktree
