// Higher-level clocking plans. Fig. 4(a) of the paper clocks a redundant
// block of 1024 registers as 32 words of 32 bits, each word behind its
// own ICG whose enable is the WMARK signal. This builder replicates that
// word-bank structure for arbitrary geometry.
#pragma once

#include <string>
#include <vector>

#include "clocktree/tree.h"

namespace clockmark::clocktree {

struct BankClockingOptions {
  std::size_t words = 32;          ///< number of gated words
  std::size_t bits_per_word = 32;  ///< sinks behind each ICG
  ClockTreeOptions tree;           ///< per-word subtree shape
};

/// Clocking for a word bank: a small spine of root buffers distributing
/// the root clock to per-word ICGs, each gating a subtree for one word.
struct BankClocking {
  std::vector<rtl::CellId> spine_buffers;  ///< root distribution buffers
  std::vector<GatedClockGroup> words;      ///< one gated group per word
  /// leaf_nets[w][b] = clock net for bit b of word w.
  std::vector<std::vector<rtl::NetId>> leaf_nets;
};

/// Builds the bank clocking inside `module`. All word ICGs share the same
/// `enable` net (the WMARK-controlled enable in the watermark usage).
BankClocking build_bank_clocking(rtl::Netlist& netlist, std::uint32_t module,
                                 rtl::NetId root_clock, rtl::NetId enable,
                                 const std::string& name,
                                 const BankClockingOptions& options = {});

}  // namespace clockmark::clocktree
