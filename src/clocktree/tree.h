// Clock distribution network model. The paper attributes the majority of
// the watermark's dynamic power to clock-tree buffers (each clock net
// switches twice per cycle); this module builds balanced, fan-out-limited
// buffer trees over a netlist so that activity — and therefore power —
// can be accounted per buffer.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rtl/netlist.h"

namespace clockmark::clocktree {

struct ClockTreeOptions {
  unsigned max_fanout = 16;        ///< max sinks driven by one buffer
  std::string name_prefix = "ctb"; ///< instance-name prefix for buffers
  bool leaf_buffer_per_sink = true;
  ///< model the clock buffer embedded in each register (the 1.476 uW
  ///< per-register cost measured in the paper) as an explicit leaf buffer
};

/// The built tree: the nets sinks should use as their clock pins, plus
/// bookkeeping about the inserted buffers.
struct ClockTree {
  rtl::NetId root = rtl::kInvalidNet;
  std::vector<rtl::CellId> buffers;   ///< all inserted clock buffers
  std::vector<rtl::NetId> leaf_nets;  ///< one per requested sink
  unsigned levels = 0;                ///< depth of the buffer tree
};

/// Builds a balanced buffer tree from root_clock fanning out to
/// `sink_count` leaf nets inside `module`. Leaf nets are returned in
/// order; attach flip-flop/ICG clock pins to them.
ClockTree build_clock_tree(rtl::Netlist& netlist, std::uint32_t module,
                           rtl::NetId root_clock, std::size_t sink_count,
                           const ClockTreeOptions& options = {});

/// Convenience: builds a gated clock group — one ICG fed from
/// `root_clock` and controlled by `enable`, then a buffer tree under the
/// ICG for `sink_count` sinks. Mirrors Fig. 4(a): the clock signal to
/// each 32-bit word is gated by one ICG cell.
struct GatedClockGroup {
  rtl::CellId icg = 0;
  ClockTree tree;
};
GatedClockGroup build_gated_group(rtl::Netlist& netlist, std::uint32_t module,
                                  rtl::NetId root_clock, rtl::NetId enable,
                                  std::size_t sink_count,
                                  const std::string& name,
                                  const ClockTreeOptions& options = {});

}  // namespace clockmark::clocktree
