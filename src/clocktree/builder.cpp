#include "clocktree/builder.h"

#include <stdexcept>

namespace clockmark::clocktree {

BankClocking build_bank_clocking(rtl::Netlist& netlist, std::uint32_t module,
                                 rtl::NetId root_clock, rtl::NetId enable,
                                 const std::string& name,
                                 const BankClockingOptions& options) {
  if (options.words == 0 || options.bits_per_word == 0) {
    throw std::invalid_argument(
        "build_bank_clocking: words and bits_per_word must be > 0");
  }
  BankClocking bank;

  // Spine: distribute the root clock to the word ICGs with fan-out-
  // limited buffers.
  std::vector<rtl::NetId> icg_feeds;
  const unsigned fanout = options.tree.max_fanout;
  rtl::NetId spine_source = root_clock;
  if (options.words > fanout) {
    // One intermediate level is enough for the geometries we model
    // (words <= fanout^2); deeper spines would need recursion.
    if (options.words > static_cast<std::size_t>(fanout) * fanout) {
      throw std::invalid_argument(
          "build_bank_clocking: too many words for a two-level spine");
    }
    const std::size_t branches =
        (options.words + fanout - 1) / fanout;
    std::vector<rtl::NetId> branch_nets;
    for (std::size_t b = 0; b < branches; ++b) {
      const rtl::NetId bn =
          netlist.add_net(name + "_spine" + std::to_string(b));
      bank.spine_buffers.push_back(netlist.add_clock_buffer(
          name + "_sb" + std::to_string(b), module, spine_source, bn));
      branch_nets.push_back(bn);
    }
    for (std::size_t w = 0; w < options.words; ++w) {
      icg_feeds.push_back(branch_nets[w / fanout]);
    }
  } else {
    icg_feeds.assign(options.words, spine_source);
  }

  for (std::size_t w = 0; w < options.words; ++w) {
    GatedClockGroup group = build_gated_group(
        netlist, module, icg_feeds[w], enable, options.bits_per_word,
        name + "_w" + std::to_string(w), options.tree);
    bank.leaf_nets.push_back(group.tree.leaf_nets);
    bank.words.push_back(std::move(group));
  }
  return bank;
}

}  // namespace clockmark::clocktree
