// Parallel execution of independent experiment repetitions.
//
// The Executor owns a fixed-size ThreadPool and exposes two primitives:
//
//   parallel_for(n, fn)  — invoke fn(i) for every i in [0, n)
//   parallel_map<T>(n, fn) — out[i] = fn(i), results ordered by index
//
// Determinism contract: work items receive only their index; every
// result is written to the slot addressed by that index. Combined with
// the seed-derivation rules in runtime/seed.h this makes a parallel run
// bit-identical to the serial one at any thread count or schedule.
//
// Exceptions thrown by work items cancel the remaining work; after all
// workers have wound down, the captured exception with the lowest index
// is rethrown from the calling thread.
//
// Calls are not reentrant: invoking parallel_for from inside a work item
// deadlocks. None of the library's parallel consumers nest.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace clockmark::runtime {

class ThreadPool;

class Executor {
 public:
  /// threads == 0 picks one worker per hardware thread. An Executor with
  /// a single thread runs everything inline on the calling thread (no
  /// pool is created), which is the deterministic serial fallback.
  explicit Executor(std::size_t threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  std::size_t thread_count() const noexcept { return threads_; }

  /// Invokes fn(i) for every i in [0, n), distributing index chunks over
  /// the pool; the calling thread participates in the work. Blocks until
  /// every item has finished. If items throw, the captured exception
  /// with the lowest index is rethrown here.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// Deterministically ordered map: returns {fn(0), ..., fn(n-1)}. T
  /// must be default-constructible. Do not use T = bool (std::vector
  /// packs bools into shared words, which races).
  template <typename T>
  std::vector<T> parallel_map(std::size_t n,
                              const std::function<T(std::size_t)>& fn) {
    std::vector<T> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  std::size_t threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  ///< null when threads_ == 1
};

}  // namespace clockmark::runtime
