#include "runtime/executor.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "runtime/thread_pool.h"

namespace clockmark::runtime {
namespace {

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Shared state of one parallel_for call: a dynamic chunk cursor plus
/// the lowest-index exception seen so far.
struct ForLoop {
  std::atomic<std::size_t> next{0};
  std::size_t n = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t)>* fn = nullptr;

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t pending_workers = 0;
  std::exception_ptr error;
  std::size_t error_index = 0;
  std::atomic<bool> cancelled{false};

  void record_error(std::size_t index, std::exception_ptr e) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (!error || index < error_index) {
      error = std::move(e);
      error_index = index;
    }
    cancelled.store(true, std::memory_order_relaxed);
  }

  /// Claims and runs chunks until the range is exhausted (or an error
  /// cancelled the loop).
  void drain() {
    for (;;) {
      if (cancelled.load(std::memory_order_relaxed)) return;
      const std::size_t begin = next.fetch_add(chunk);
      if (begin >= n) return;
      const std::size_t end = std::min(begin + chunk, n);
      for (std::size_t i = begin; i < end; ++i) {
        if (cancelled.load(std::memory_order_relaxed)) return;
        try {
          (*fn)(i);
        } catch (...) {
          record_error(i, std::current_exception());
          return;
        }
      }
    }
  }
};

}  // namespace

Executor::Executor(std::size_t threads)
    : threads_(resolve_threads(threads)) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

Executor::~Executor() = default;

void Executor::parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (!pool_ || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  ForLoop loop;
  loop.n = n;
  loop.fn = &fn;
  // Dynamic chunks: ~8 per worker balances uneven item costs while
  // keeping cursor contention negligible.
  loop.chunk = std::max<std::size_t>(1, n / (threads_ * 8));

  // One helper task per pool worker; the calling thread drains too.
  const std::size_t helpers = std::min(threads_ - 1, n - 1);
  {
    const std::lock_guard<std::mutex> lock(loop.mutex);
    loop.pending_workers = helpers;
  }
  for (std::size_t w = 0; w < helpers; ++w) {
    pool_->submit([&loop] {
      loop.drain();
      const std::lock_guard<std::mutex> lock(loop.mutex);
      if (--loop.pending_workers == 0) loop.done_cv.notify_all();
    });
  }

  loop.drain();
  std::unique_lock<std::mutex> lock(loop.mutex);
  loop.done_cv.wait(lock, [&loop] { return loop.pending_workers == 0; });
  if (loop.error) std::rethrow_exception(loop.error);
}

}  // namespace clockmark::runtime
