#include "runtime/seed.h"

#include "util/rng.h"

namespace clockmark::runtime {

std::uint64_t derive_phase_seed(std::uint64_t master,
                                std::size_t repetition) noexcept {
  std::uint64_t state =
      master ^ (0xdeadbeefULL +
                static_cast<std::uint64_t>(repetition) * 0x9e37ULL);
  return util::splitmix64(state);
}

std::uint64_t derive_acquisition_seed(std::uint64_t master,
                                      std::size_t repetition) noexcept {
  return master * 0x100000001b3ULL +
         static_cast<std::uint64_t>(repetition) * 0x9e3779b97f4a7c15ULL;
}

std::uint64_t derive_background_seed(std::uint64_t master,
                                     std::size_t repetition) noexcept {
  return master * 0x9e3779b9ULL + static_cast<std::uint64_t>(repetition);
}

}  // namespace clockmark::runtime
