// Fixed-size worker pool underlying runtime::Executor. Tasks are plain
// closures pushed to a shared queue; workers pop and run them until the
// pool is destroyed. The pool itself imposes no ordering — deterministic
// result ordering is the Executor's job (every result is written to a
// slot chosen by its index, never by arrival time).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace clockmark::runtime {

class ThreadPool {
 public:
  /// Spawns exactly `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue and joins all workers. Tasks already submitted are
  /// completed before destruction returns.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (the queue is unbounded).
  void submit(std::function<void()> task);

  std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace clockmark::runtime
