// Seed derivation for parallel repetitions.
//
// Contract: every stochastic stream consumed while producing repetition
// i of an experiment must be seeded by a pure function of
// (master seed, i) — never by a shared RNG, a thread id, or anything
// order-dependent. Under that rule a repetition's output is bit-exact
// regardless of which thread runs it or how repetitions interleave,
// which is what lets runtime::Executor fan experiments out without
// changing a single figure.
//
// The three derivations below are the canonical streams of a Scenario
// repetition. Their formulas are frozen: changing a constant re-rolls
// every regenerated figure in EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <cstdint>

namespace clockmark::runtime {

/// Seed of the pseudo-random trigger phase (where the correlation peak
/// lands when ScenarioConfig::phase_offset is not pinned).
std::uint64_t derive_phase_seed(std::uint64_t master,
                                std::size_t repetition) noexcept;

/// Seed of the measurement-chain noise (probe + scope) for a repetition.
std::uint64_t derive_acquisition_seed(std::uint64_t master,
                                      std::size_t repetition) noexcept;

/// Seed of the chip background-noise model (chip II fabric/idle-core
/// jitter) for a repetition.
std::uint64_t derive_background_seed(std::uint64_t master,
                                     std::size_t repetition) noexcept;

}  // namespace clockmark::runtime
