#include "sync/warp.h"

#include <stdexcept>

namespace clockmark::sync {
namespace {

void validate(const WarpSpec& spec) {
  if (!(spec.ratio > 0.0)) {
    throw std::invalid_argument("sync: warp ratio must be > 0");
  }
}

/// The one interpolation expression both paths share. `pos` is assumed
/// clamp-checked by the caller against [0, last].
inline double lerp(double v0, double v1, double f) noexcept {
  return v0 + f * (v1 - v0);
}

}  // namespace

std::size_t warp_output_size(const WarpSpec& spec, std::size_t n) {
  validate(spec);
  if (n == 0) return 0;
  const double last = static_cast<double>(n - 1);
  // p(k) is monotone over the k range that matters (ratio ~ 1, |drift|
  // tiny), so the first k whose position passes the end ends the output.
  std::size_t k = 0;
  while (warp_position(spec, k) <= last) {
    ++k;
    if (k > 2 * n + 16) break;  // degenerate spec guard (ratio << 1)
  }
  return k;
}

std::vector<double> warp_trace(std::span<const double> y,
                               const WarpSpec& spec) {
  std::vector<double> out;
  warp_trace_into(y, spec, out);
  return out;
}

std::size_t warp_trace_into(std::span<const double> y, const WarpSpec& spec,
                            std::vector<double>& out) {
  validate(spec);
  if (spec.is_identity()) {
    out.assign(y.begin(), y.end());
    return out.size();
  }
  const std::size_t n = y.size();
  const std::size_t out_n = warp_output_size(spec, n);
  out.resize(out_n);
  const double last = static_cast<double>(n - 1);
  for (std::size_t k = 0; k < out_n; ++k) {
    const double pos = warp_position(spec, k);
    if (pos <= 0.0) {
      out[k] = y[0];
    } else if (pos >= last) {
      out[k] = y[n - 1];
    } else {
      const auto q = static_cast<std::size_t>(pos);
      const double f = pos - static_cast<double>(q);
      out[k] = lerp(y[q], y[q + 1], f);
    }
  }
  return out_n;
}

StreamWarper::StreamWarper(const WarpSpec& spec) : spec_(spec) {
  validate(spec);
}

double StreamWarper::sample_at(double pos, bool final_tail) const {
  // Mirrors warp_trace exactly; `final_tail` is the only case where the
  // end clamp can fire (the stream length is unknown before finish()).
  if (pos <= 0.0) return buf_[0];  // base_ is still 0 for these k
  const double last = static_cast<double>(raw_total_ - 1);
  if (final_tail && pos >= last) return buf_[buf_.size() - 1];
  const auto q = static_cast<std::size_t>(pos);
  // Only a non-monotone (degenerate) spec — a negative-drift apex inside
  // the stream — can ask for a raw index the drop logic already
  // discarded; clamp to the earliest buffered sample instead of
  // underflowing q - base_. Monotone specs never take this branch.
  if (q < base_) return buf_[0];
  const double f = pos - static_cast<double>(q);
  const double v0 = buf_[q - base_];
  const double v1 = buf_[q + 1 - base_];
  return lerp(v0, v1, f);
}

void StreamWarper::feed(std::span<const double> raw,
                        std::vector<double>& out) {
  if (finished_) {
    throw std::logic_error("StreamWarper: feed after finish");
  }
  buf_.insert(buf_.end(), raw.begin(), raw.end());
  raw_total_ += raw.size();
  if (raw_total_ == 0) return;

  // Emit every output sample whose interpolation window [q, q+1] is
  // fully buffered. The end clamp (pos >= n-1) waits for finish() —
  // until the stream ends we cannot know a sample is the last one.
  // The cap is warp_output_size's degenerate-spec guard: it bounds the
  // pos <= 0 branch (which needs no buffered data) for specs whose
  // positions never advance; a mid-stream break just defers emission to
  // the next feed/finish, where the cap is larger.
  const std::size_t avail_end = base_ + buf_.size();  // raw index bound
  const std::size_t cap = 2 * raw_total_ + 16;
  for (;;) {
    if (next_out_ > cap || buf_.empty()) break;
    const double pos = warp_position(spec_, next_out_);
    if (pos <= 0.0) {
      out.push_back(sample_at(pos, false));
      ++next_out_;
      continue;
    }
    const auto q = static_cast<std::size_t>(pos);
    if (q + 1 >= avail_end) break;
    out.push_back(sample_at(pos, false));
    ++next_out_;
  }

  // Drop raw samples no longer reachable: the next output needs index
  // floor(p(next_out_)) at minimum (positions are monotone).
  const double next_pos = warp_position(spec_, next_out_);
  if (next_pos > 0.0) {
    const auto need = static_cast<std::size_t>(next_pos);
    if (need > base_) {
      const std::size_t drop =
          std::min(need - base_, buf_.size());
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(drop));
      base_ += drop;
    }
  }
}

void StreamWarper::finish(std::vector<double>& out) {
  if (finished_) return;
  finished_ = true;
  if (raw_total_ == 0) return;
  // Same iteration cap as warp_output_size: a non-monotone spec whose
  // positions fall back below `last` would otherwise never terminate.
  const double last = static_cast<double>(raw_total_ - 1);
  const std::size_t cap = 2 * raw_total_ + 16;
  for (;;) {
    if (next_out_ > cap) break;
    const double pos = warp_position(spec_, next_out_);
    if (pos > last) break;
    out.push_back(sample_at(pos, true));
    ++next_out_;
  }
}

}  // namespace clockmark::sync
