// Coarse-to-fine blind synchronisation: lock onto the watermark in an
// untriggered per-cycle trace without knowing the capture offset, the
// exact device clock, or its drift.
//
// The search exploits the structure of the CPA sweep itself: when the
// time base is right, the folded rotation correlation (dsp/correlate)
// concentrates the watermark into one sharp peak; any residual ratio
// error e smears that peak over ~N*e rotations and the peak z-score
// collapses. So "maximise peak z over warp parameters" is the lock
// criterion, and the folded machinery makes each probe O(N + P log P).
//
// Stages (DESIGN.md §11):
//   1. coarse ratio scan on a truncated window W: step 1/(2W) keeps the
//      worst-case smear under half a cycle inside the window;
//   2. grid-zoom refinement of the ratio on the full trace (a ratio
//      error visible only at N cycles is invisible at W);
//   3. drift scan + refinement, alternated with 2. (coordinate descent);
//   4. fractional offset by parabolic interpolation over the rho values
//      adjacent to the locked peak.
// Integer cycle offsets cost nothing: the rotation sweep absorbs them,
// which is what makes the lattice over (ratio, drift) tractable.
#pragma once

#include <span>

#include "sync/types.h"
#include "sync/warp.h"

namespace clockmark::runtime {
class Executor;
}

namespace clockmark::cpa {
struct SpreadSpectrum;
}

namespace clockmark::sync {

class CandidateEngine;

/// One probe of the search: warps the trace, runs the rotation sweep,
/// and returns the peak z-score (the lock metric). Exposed for tests
/// and for callers that want to score a known correction. This is the
/// reference implementation of the lock metric; the search itself
/// probes through a CandidateEngine, which returns bit-identical scores
/// without the per-probe setup cost (see sync/engine.h).
double sync_score(std::span<const double> y, std::span<const double> pattern,
                  const WarpSpec& spec, std::size_t guard);

/// Runs the coarse-to-fine search and returns the recovered correction
/// plus lock statistics. `pattern` is one period of the 0/1 model
/// vector (cpa::to_model_pattern). A non-null executor parallelises the
/// candidate batches with bit-identical results (scores are computed
/// independently per candidate; the argmax is taken serially).
/// Traces shorter than one pattern period return locked = false with an
/// identity correction.
SyncEstimate find_sync(std::span<const double> y,
                       std::span<const double> pattern,
                       const BlindSyncConfig& config = {},
                       runtime::Executor* executor = nullptr);

/// Same search against a prebuilt engine (the engine carries the
/// pattern). Callers that lock repeatedly against one pattern — the
/// detection facade, the streaming detector, the desync-attack studies
/// — build the engine once and reuse its cached transforms across
/// searches. find_sync(y, pattern, ...) is exactly this with a
/// throwaway engine.
SyncEstimate find_sync(const CandidateEngine& engine,
                       std::span<const double> y,
                       const BlindSyncConfig& config = {},
                       runtime::Executor* executor = nullptr);

}  // namespace clockmark::sync
