#include "sync/search.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "cpa/confidence.h"
#include "cpa/spread_spectrum.h"
#include "runtime/executor.h"
#include "sync/engine.h"

namespace clockmark::sync {
namespace {

std::size_t argmax(const std::vector<double>& scores) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) best = i;
  }
  return best;
}

}  // namespace

double sync_score(std::span<const double> y, std::span<const double> pattern,
                  const WarpSpec& spec, std::size_t guard) {
  const std::vector<double> warped = warp_trace(y, spec);
  if (warped.size() < pattern.size()) return 0.0;
  const cpa::SpreadSpectrum ss = cpa::compute_spread_spectrum(
      warped, pattern, cpa::CorrelationMethod::kFft, guard);
  return ss.peak_z;
}

SyncEstimate find_sync(std::span<const double> y,
                       std::span<const double> pattern,
                       const BlindSyncConfig& config,
                       runtime::Executor* executor) {
  if (pattern.empty()) {
    throw std::invalid_argument("find_sync: empty pattern");
  }
  const CandidateEngine engine(
      std::vector<double>(pattern.begin(), pattern.end()));
  return find_sync(engine, y, config, executor);
}

SyncEstimate find_sync(const CandidateEngine& engine,
                       std::span<const double> y,
                       const BlindSyncConfig& config,
                       runtime::Executor* executor) {
  const std::vector<double>& pattern = engine.pattern();
  SyncEstimate est;
  const std::size_t period = pattern.size();
  if (y.size() < period + 1) return est;  // nothing to lock onto

  std::size_t evaluations = 0;
  const auto batch = [&](std::span<const double> trace,
                         const std::vector<WarpSpec>& specs) {
    evaluations += specs.size();
    return engine.score_batch(trace, specs, config.guard, executor);
  };

  // ---- Stage 1: coarse ratio lattice on a truncated window. A ratio
  // error e smears the peak by window * e cycles, so stepping the
  // lattice at 1/(2*window) bounds the worst smear to half a cycle —
  // the true ratio's neighbour always survives the scan.
  std::size_t window = config.coarse_window_cycles == 0
                           ? y.size()
                           : std::min(y.size(), config.coarse_window_cycles);
  window = std::max(window, std::min(y.size(), 2 * period));
  const std::span<const double> yw = y.first(window);
  const double coarse_step = 1.0 / (2.0 * static_cast<double>(window));
  const auto half_points = static_cast<std::size_t>(
      std::ceil(config.max_ratio_dev / coarse_step));

  std::vector<WarpSpec> lattice;
  lattice.reserve(2 * half_points + 1);
  for (std::size_t i = 0; i <= 2 * half_points; ++i) {
    WarpSpec s;
    s.ratio = 1.0 + (static_cast<double>(i) -
                     static_cast<double>(half_points)) *
                        coarse_step;
    lattice.push_back(s);
  }
  const std::vector<double> coarse_scores = batch(yw, lattice);
  std::size_t best_point = argmax(coarse_scores);

  // Progressive resolution (opt-in, BlindSyncConfig::coarse_top_k): the
  // window scores rank the lattice, the full trace decides among the
  // top K — so only K of the 2*half_points+1 candidates ever pay a
  // full-length sweep. With the knob off the window argmax decides
  // alone, the historical behaviour.
  const bool pruned = config.coarse_top_k > 0 &&
                      config.coarse_top_k < lattice.size() &&
                      window < y.size();
  if (pruned) {
    std::vector<std::size_t> order(lattice.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return coarse_scores[a] > coarse_scores[b];
                     });  // ties keep the lower lattice index first
    order.resize(config.coarse_top_k);
    std::sort(order.begin(), order.end());  // deterministic batch order
    std::vector<WarpSpec> finalists;
    finalists.reserve(order.size());
    for (const std::size_t i : order) finalists.push_back(lattice[i]);
    best_point = order[argmax(batch(y, finalists))];
  }
  double ratio = lattice[best_point].ratio;

  // ---- Stages 2+3: grid-zoom refinement on the full trace,
  // coordinate-descending over (ratio, drift). Each round probes a
  // 9-point grid across the bracket and shrinks it 4x around the best.
  // In pruned mode the ratio rounds except the last probe the window
  // instead (a ratio error coarse enough to survive a round is visible
  // there); drift rounds always use the full trace — drift is
  // invisible on the short window.
  double drift = 0.0;
  const auto refine = [&](double center, double half_span,
                          std::size_t window_rounds, const auto& make_spec) {
    double best = center;
    for (std::size_t round = 0; round < config.refine_rounds; ++round) {
      std::vector<WarpSpec> grid;
      std::vector<double> values;
      grid.reserve(9);
      for (int i = -4; i <= 4; ++i) {
        const double v =
            best + half_span * static_cast<double>(i) / 4.0;
        values.push_back(v);
        grid.push_back(make_spec(v));
      }
      const std::span<const double> trace =
          round < window_rounds ? yw : std::span<const double>(y);
      const std::vector<double> scores = batch(trace, grid);
      best = values[argmax(scores)];
      half_span /= 4.0;
    }
    return best;
  };
  const std::size_t ratio_window_rounds =
      pruned && config.refine_rounds > 0 ? config.refine_rounds - 1 : 0;

  const std::size_t rounds = std::max<std::size_t>(1, config.descent_rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    ratio = refine(ratio, coarse_step, ratio_window_rounds, [&](double v) {
      WarpSpec s;
      s.ratio = v;
      s.drift = drift;
      return s;
    });
    if (!config.search_drift) continue;
    if (round == 0) {
      // Coarse drift grid: drift is invisible on the short window (its
      // effect grows with the square of the length), so this stage
      // always probes the full trace.
      std::vector<WarpSpec> grid;
      std::vector<double> values;
      for (int i = -4; i <= 4; ++i) {
        const double v = config.max_drift * static_cast<double>(i) / 4.0;
        values.push_back(v);
        WarpSpec s;
        s.ratio = ratio;
        s.drift = v;
        grid.push_back(s);
      }
      drift = values[argmax(batch(y, grid))];
    }
    drift = refine(drift, config.max_drift / 4.0, 0, [&](double v) {
      WarpSpec s;
      s.ratio = ratio;
      s.drift = v;
      return s;
    });
  }

  // ---- Stage 4: fractional offset. Probe three sub-cycle shifts and
  // fit a parabola through their scores; keep the vertex only when it
  // actually beats the unshifted lock (sign- and noise-robust). The
  // vertex probe counts toward `evaluations` whether or not it wins —
  // the counter tracks scored candidates, not accepted ones.
  WarpSpec correction;
  correction.ratio = ratio;
  correction.drift = drift;
  {
    const double d = 1.0 / 3.0;
    std::vector<WarpSpec> probes(3, correction);
    probes[0].offset_cycles = -d;
    probes[2].offset_cycles = d;
    const std::vector<double> s = batch(y, probes);
    const double denom = s[0] - 2.0 * s[1] + s[2];
    double vertex = 0.0;
    if (denom < 0.0) {  // concave: the parabola has a maximum
      vertex = std::clamp(0.5 * d * (s[0] - s[2]) / denom, -0.5, 0.5);
    }
    if (vertex != 0.0) {
      WarpSpec shifted = correction;
      shifted.offset_cycles = vertex;
      const std::vector<double> check =
          batch(y, std::vector<WarpSpec>{shifted});
      if (check[0] > s[1]) correction.offset_cycles = vertex;
    }
  }

  // ---- Final lock: full spectrum under the recovered correction.
  const std::vector<double> warped = warp_trace(y, correction);
  est.correction = correction;
  est.evaluations = evaluations;
  if (warped.size() >= period) {
    const cpa::SpreadSpectrum ss = cpa::compute_spread_spectrum(
        warped, pattern, cpa::CorrelationMethod::kFft, config.guard);
    est.peak_rotation = ss.peak_rotation;
    est.peak_z = ss.peak_z;
    est.confidence = cpa::detection_confidence(ss);
    est.locked = ss.peak_z >= config.min_lock_z;
    double frac = -correction.offset_cycles;
    frac = frac - std::round(frac);  // into (-0.5, 0.5]
    est.offset_cycles = static_cast<double>(ss.peak_rotation) + frac;
  }
  return est;
}

}  // namespace clockmark::sync
