// Applying a WarpSpec to a per-cycle trace: batch (warp_trace) and
// chunked (StreamWarper). Both evaluate the same position polynomial
// (sync::warp_position) and the same clamped linear interpolation, so a
// trace fed through a StreamWarper chunk by chunk produces exactly the
// bytes warp_trace produces on the concatenated trace — the property
// the chunked-blind ≡ batch-blind detection tests assert.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sync/types.h"

namespace clockmark::sync {

/// Number of output samples a warp of an n-sample trace produces: every
/// k >= 0 with warp_position(spec, k) <= n - 1. Positions below zero
/// (possible for slightly negative offsets during refinement) clamp to
/// the first sample rather than shrinking the output.
std::size_t warp_output_size(const WarpSpec& spec, std::size_t n);

/// Resamples y through the warp: out[k] = lerp(y, p(k)) with indices
/// clamped to [0, n-1]. Identity specs return a plain copy.
std::vector<double> warp_trace(std::span<const double> y,
                               const WarpSpec& spec);

/// warp_trace into a caller-provided buffer (resized to the output
/// length; existing capacity is reused). Returns the output length.
/// Bit-identical samples to warp_trace — the overload exists so batch
/// scoring loops can warp thousands of candidates without a fresh
/// allocation per probe.
std::size_t warp_trace_into(std::span<const double> y, const WarpSpec& spec,
                            std::vector<double>& out);

/// Chunked warp with bounded lookahead: buffers just enough raw samples
/// to interpolate the next output sample. feed() appends newly
/// computable warped samples to `out`; finish() flushes the tail once
/// the raw stream has ended. Bit-identical to warp_trace (see header
/// comment) for monotone specs — every spec within BlindSyncConfig's
/// bounds. A degenerate non-monotone spec (negative-drift apex inside
/// the stream) stays safe but not batch-identical: positions that fall
/// back below already-dropped raw samples clamp to the earliest
/// buffered one, and emission stops at warp_output_size's
/// degenerate-spec cap.
class StreamWarper {
 public:
  explicit StreamWarper(const WarpSpec& spec);

  /// Appends raw per-cycle samples (in stream order) and emits every
  /// warped sample whose interpolation window is now fully available.
  void feed(std::span<const double> raw, std::vector<double>& out);

  /// Ends the raw stream: emits the remaining warped samples whose
  /// positions land inside the stream (clamped at the last sample).
  void finish(std::vector<double>& out);

  std::size_t raw_consumed() const noexcept { return raw_total_; }
  std::size_t emitted() const noexcept { return next_out_; }
  const WarpSpec& spec() const noexcept { return spec_; }

 private:
  double sample_at(double pos, bool final_tail) const;

  WarpSpec spec_;
  std::vector<double> buf_;    ///< raw samples [base_, base_ + size)
  std::size_t base_ = 0;       ///< raw index of buf_[0]
  std::size_t raw_total_ = 0;  ///< raw samples consumed so far
  std::size_t next_out_ = 0;   ///< next output index k
  bool finished_ = false;
};

}  // namespace clockmark::sync
