// Candidate-batched sync scoring engine: everything sync_score
// recomputes per candidate, computed once per search instead.
//
// One blind search (sync/search.h) scores ~140 candidate warps against
// the *same* trace and the *same* pattern. The historical probe
// (sync_score) pays per candidate for work that does not depend on the
// candidate at all:
//   * the FFT plan registry lookup (mutex + hash per transform),
//   * the forward FFT of the pattern (the fb side of the sxy circular
//     correlation),
//   * the sx / sxx circular correlations, which depend only on the
//     *length* of the warped trace — the fold's counts vector is a
//     deterministic function of (length, period),
//   * a fresh allocation for the warped trace, the fold, and the rho
//     sweep on every probe.
// CandidateEngine hoists all four: it holds the dsp::FftPlan handle and
// the pattern's forward FFT for the life of the search, caches the
// assembled sx/sxx vectors per warped length (a handful of lengths
// recur across the whole search), and scores through per-thread arenas
// (warp_trace_into + fold reuse) so the steady-state probe allocates
// nothing. Per probe this leaves one forward + one inverse FFT instead
// of nine transforms.
//
// Bit-exactness contract: score() returns exactly what sync_score
// returns for the same (trace, spec, guard) — asserted by tests. The
// cached pattern FFT and per-length sx/sxx are produced by the same
// planned-transform arithmetic circular_cross_correlation runs inline
// (deterministic, so computing them once is unobservable), the fused
// warp+fold replays warp_trace's and fold_by_phase's exact operation
// sequences, and the final assembly / peak statistics are the shared
// dsp/cpa routines themselves. Patterns too large for the plan
// registry (period > dsp::kMaxPlannedFftSize) fall back to the
// planless rotation_correlation_fft_from_fold, again bit-identical.
//
// Thread-safety: score()/score_batch() are const and race-free — the
// per-length cache is behind a mutex (values are immutable once built;
// a duplicate build under contention produces identical bits), scratch
// lives in thread_local arenas, and the FFT plan is immutable.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "dsp/fft.h"
#include "sync/types.h"

namespace clockmark::dsp {
class FftPlan;
}

namespace clockmark::runtime {
class Executor;
}

namespace clockmark::sync {

class CandidateEngine {
 public:
  /// Binds the watermark pattern (one period of the 0/1 model vector)
  /// and precomputes its transform tables. Throws on an empty pattern.
  explicit CandidateEngine(std::vector<double> pattern);

  const std::vector<double>& pattern() const noexcept { return pattern_; }

  /// One probe: warps the trace by `spec`, folds, sweeps, and returns
  /// the peak z-score — bit-identical to sync_score(y, pattern(), spec,
  /// guard). Warped traces shorter than one period score 0.0.
  double score(std::span<const double> y, const WarpSpec& spec,
               std::size_t guard) const;

  /// Scores a batch of candidates, optionally fanned out over the
  /// executor. Scores are independent per candidate, so parallel runs
  /// are bit-identical to serial ones.
  std::vector<double> score_batch(std::span<const double> y,
                                  const std::vector<WarpSpec>& specs,
                                  std::size_t guard,
                                  runtime::Executor* executor) const;

 private:
  /// The rotation-sweep inputs that depend only on the warped length:
  /// sx[r] / sxx[r] as rotation_correlation_fft_from_fold computes them
  /// from the fold's counts (which are n/P + (p < n mod P), independent
  /// of the trace values).
  struct LengthStats {
    std::vector<double> sx;
    std::vector<double> sxx;
  };
  std::shared_ptr<const LengthStats> length_stats(std::size_t n) const;

  std::vector<double> pattern_;
  std::vector<double> pattern_sq_;
  /// Plan for the period-length transforms; nullptr when the period
  /// exceeds the registry cap (score() then runs the planless path).
  std::shared_ptr<const dsp::FftPlan> plan_;
  std::vector<dsp::cplx> fft_pattern_;  ///< forward FFT of the pattern

  mutable std::mutex mu_;
  mutable std::unordered_map<std::size_t, std::shared_ptr<const LengthStats>>
      stats_;
};

}  // namespace clockmark::sync
