// Shared vocabulary of the blind-synchronisation subsystem: how a
// detection entry point is told about trace alignment (SyncPolicy), the
// time-base correction applied to a per-cycle trace before CPA
// (WarpSpec), the result of a blind lock (SyncEstimate), and the search
// configuration (BlindSyncConfig).
//
// Why this exists: the paper's detection assumes the scope trigger
// yields cycle-aligned traces. A real uncooperative capture has an
// unknown start offset, a clock-frequency mismatch between the
// examiner's assumed and the device's actual clock, and linear drift
// over the capture — exactly the desynchronisation toolkit the
// literature uses to defeat side-channel watermarks. sync/search.h
// recovers these parameters from the trace itself; every detection
// front door (detect::Session, stream::OnlineDetector) consumes these
// types.
#pragma once

#include <cstddef>

namespace clockmark::sync {

/// How a detection run should treat trace alignment.
enum class SyncPolicy {
  /// Trace is cycle-aligned (scope trigger / simulator ground truth);
  /// alignment modulo one pattern period is absorbed by the rotation
  /// sweep. The historical behaviour of every entry point.
  kTriggered,
  /// The misalignment is known up front (e.g. from trace-file metadata
  /// or a characterised capture chain); apply the given WarpSpec
  /// correction before CPA, no search.
  kKnownOffset,
  /// Nothing is known: run the coarse-to-fine blind search
  /// (sync::find_sync) and apply the recovered correction.
  kBlind,
};

/// A time-base correction applied to a per-cycle trace by linear-
/// interpolation resampling. Output sample k reads the input at
///   p(k) = offset_cycles + ratio * k + 0.5 * drift * k^2
/// so `ratio` is the examiner-cycle / trace-sample step (1.0 = no
/// clock mismatch), `drift` its per-cycle slope (the instantaneous
/// step at sample k is ratio + drift * k), and `offset_cycles` a
/// fractional start shift. The same spec doubles as the attacker's
/// desynchronisation model (attack/desync.h): a correction with
/// ratio ~ 1/attack_ratio, drift ~ -attack_drift undoes it.
struct WarpSpec {
  double offset_cycles = 0.0;
  double ratio = 1.0;
  double drift = 0.0;

  /// True when the spec is the identity (no resampling needed).
  bool is_identity() const noexcept {
    return offset_cycles == 0.0 && ratio == 1.0 && drift == 0.0;
  }
};

/// Input position read by warped output sample k — the single
/// definition both the batch warp and the streaming warper use, so
/// their outputs are bit-identical.
inline double warp_position(const WarpSpec& spec, std::size_t k) noexcept {
  const double kd = static_cast<double>(k);
  return spec.offset_cycles + spec.ratio * kd + 0.5 * spec.drift * kd * kd;
}

/// What the blind search recovered.
struct SyncEstimate {
  /// Correction to apply to the trace before CPA (offset holds only the
  /// sub-cycle fraction; whole-cycle alignment is the rotation below).
  WarpSpec correction;
  /// Whole-cycle misalignment: the rotation at which the correlation
  /// peak locked, in [0, P).
  std::size_t peak_rotation = 0;
  /// Total estimated misalignment in cycles: peak_rotation plus the
  /// fractional part recovered by the refinement.
  double offset_cycles = 0.0;
  /// Peak z-score of the locked spread spectrum (the lock margin).
  double peak_z = 0.0;
  /// cpa::detection_confidence of the locked spectrum.
  double confidence = 0.0;
  /// True when the locked peak clears BlindSyncConfig::min_lock_z.
  bool locked = false;
  /// Cost telemetry: total candidates the search scored — every spec
  /// whose spread spectrum was evaluated, whether or not its score was
  /// accepted. Counts coarse-window probes and full-trace probes alike,
  /// and includes the fractional-offset stage's parabola-vertex probe
  /// even when the vertex loses to the best grid point.
  std::size_t evaluations = 0;
};

/// Coarse-to-fine search configuration. Defaults are sized for the
/// paper's captures (P = 4095, N = 300k cycles, crystal-class clock
/// error) — see DESIGN.md §11 for the lattice reasoning.
struct BlindSyncConfig {
  /// Clock-frequency mismatch search range, as a fractional deviation
  /// of the resample ratio from 1 (200e-6 = +/-200 ppm).
  double max_ratio_dev = 200e-6;
  /// Linear drift search range: bound on the per-cycle slope of the
  /// ratio. 4e-9/cycle over a 300k-cycle trace is a ~0.12% end-to-end
  /// frequency change — generous for thermal drift.
  double max_drift = 4e-9;
  /// Cycles of the trace used by the coarse ratio scan (0 = whole
  /// trace). A shorter window tolerates a coarser lattice: a ratio
  /// error e smears the peak by window * e cycles, so the scan step is
  /// chosen as 1 / (2 * window).
  std::size_t coarse_window_cycles = 32768;
  /// Grid-zoom refinement: rounds of 9-point grids per parameter, each
  /// shrinking the bracket. More rounds = finer final resolution.
  std::size_t refine_rounds = 3;
  /// Coordinate-descent sweeps over (ratio, drift) after the coarse
  /// scan; 2 is enough to decouple the two on paper-length traces.
  std::size_t descent_rounds = 2;
  /// Peak z-score the locked spectrum must clear for locked = true.
  double min_lock_z = 5.0;
  /// Rotations excluded around the peak in noise statistics.
  std::size_t guard = 8;
  /// Skip the drift stages entirely (cheaper when the capture is known
  /// to be drift-free, e.g. short traces).
  bool search_drift = true;
  /// Progressive-resolution pruning of the coarse ratio lattice.
  /// 0 (default) = exact historical behaviour: every lattice point is
  /// scored on the coarse window and only the argmax survives. K > 0 =
  /// keep the top K window-scored lattice points and rescore just those
  /// on the full trace before picking the stage-1 winner; later ratio
  /// refinement rounds also probe the window first. This changes which
  /// candidate stage 1 hands to refinement (scores come from different
  /// trace lengths), so it is opt-in; on the in-tree chips it locks
  /// onto the same peak at a fraction of the full-trace sweeps.
  std::size_t coarse_top_k = 0;
};

}  // namespace clockmark::sync
