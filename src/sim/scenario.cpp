#include "sim/scenario.h"

#include "cpu/programs.h"
#include "runtime/seed.h"

namespace clockmark::sim {

Scenario::Scenario(const ScenarioConfig& config) : config_(config) {
  if (config_.program.empty()) {
    config_.program = cpu::dhrystone_like_source();
  }
  // Build + characterise the watermark block once. The clock source net
  // is the chip root clock; the block is its own module subtree.
  const rtl::NetId root_clock = netlist_.add_net("clk");
  watermark_ = watermark::build_clock_modulation_watermark(
      netlist_, "watermark", root_clock, config_.watermark);

  wgc::WgcSequence seq(config_.watermark.wgc);
  characterization_ = watermark::characterize_watermark(
      netlist_, root_clock, watermark_.wmark, "watermark", seq.period(),
      config_.tech);
}

power::PowerTrace Scenario::run_background(std::size_t repetition) const {
  soc::Chip1Config m0;
  m0.program = config_.program;
  m0.tech = config_.tech;
  if (config_.chip == ChipModel::kChip1) {
    soc::Chip1Soc chip(m0);
    return chip.run(config_.trace_cycles, "chip1-background");
  }
  soc::Chip2Config c2;
  c2.m0_soc = m0;
  c2.a5_core = config_.a5_core;
  c2.fabric_power_w = config_.fabric_power_w;
  c2.fabric_jitter = config_.fabric_jitter;
  c2.noise_seed = runtime::derive_background_seed(config_.seed, repetition);
  soc::Chip2Soc chip(c2);
  return chip.run(config_.trace_cycles, "chip2-background");
}

ScenarioResult Scenario::run(std::size_t repetition) const {
  ScenarioResult result;
  const std::size_t period = characterization_.period;

  // Phase: pinned or derived from (seed, repetition).
  const std::uint64_t derived =
      runtime::derive_phase_seed(config_.seed, repetition);
  result.true_rotation =
      config_.phase_offset.value_or(static_cast<std::size_t>(
          derived % static_cast<std::uint64_t>(period)));

  // CPA model pattern: one canonical period of WMARK.
  result.pattern.resize(period);
  for (std::size_t i = 0; i < period; ++i) {
    result.pattern[i] = characterization_.wmark_bits[i] ? 1.0 : 0.0;
  }

  // Background + watermark power.
  result.background_power = run_background(repetition);
  std::vector<double> wm_power(config_.trace_cycles, 0.0);
  if (config_.watermark_active) {
    wm_power = watermark::tile_watermark_power(
        characterization_, config_.trace_cycles, result.true_rotation);
  } else {
    // Disabled watermark: the hard-macro domain only leaks.
    std::fill(wm_power.begin(), wm_power.end(),
              characterization_.leakage_w);
  }
  result.watermark_power = power::PowerTrace(
      std::move(wm_power), result.background_power.clock_hz(), "watermark");

  result.total_power = result.background_power;
  result.total_power += result.watermark_power;

  // Measurement with repetition-unique noise, at the scenario's
  // operating voltage.
  measure::AcquisitionConfig acq = config_.acquisition;
  acq.vdd_v = config_.tech.vdd_v;
  acq.noise_seed =
      runtime::derive_acquisition_seed(config_.seed, repetition);
  measure::AcquisitionChain chain(acq);
  result.acquisition = chain.measure(result.total_power);
  return result;
}

ScenarioConfig chip1_default() {
  ScenarioConfig cfg;
  cfg.chip = ChipModel::kChip1;
  cfg.phase_offset = 3800;  // paper Fig. 5(a): peak near rotation 3800
  cfg.seed = 0xC51;
  return cfg;
}

ScenarioConfig chip2_default() {
  ScenarioConfig cfg;
  cfg.chip = ChipModel::kChip2;
  cfg.phase_offset = 2400;  // paper Fig. 5(c): peak near rotation 2400
  cfg.seed = 0xC52;
  // The chip II board measurement is noisier (larger vertical range to
  // fit the A5 subsystem's current, more switching on the die); this is
  // what drops the paper's chip II peak slightly below chip I's.
  cfg.acquisition.scope.noise_v_rms = 11.0e-3;
  return cfg;
}

}  // namespace clockmark::sim
