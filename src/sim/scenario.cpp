#include "sim/scenario.h"

#include <algorithm>

#include "cpu/programs.h"
#include "runtime/seed.h"

namespace clockmark::sim {
namespace {

/// Cached tiled-watermark rotations per scenario. Pinned-phase studies
/// only ever see one rotation; unpinned studies draw a fresh rotation
/// per repetition, and an unbounded cache would grow by trace_cycles
/// doubles each time. Beyond the cap the tiling is computed per call
/// (identical values either way — tiling is deterministic).
constexpr std::size_t kTiledCacheCap = 8;

}  // namespace

Scenario::Scenario(const ScenarioConfig& config)
    : config_(config), cache_(std::make_unique<TraceCache>()) {
  if (config_.program.empty()) {
    config_.program = cpu::dhrystone_like_source();
  }
  // Build + characterise the watermark block once. The clock source net
  // is the chip root clock; the block is its own module subtree.
  const rtl::NetId root_clock = netlist_.add_net("clk");
  watermark_ = watermark::build_clock_modulation_watermark(
      netlist_, "watermark", root_clock, config_.watermark);

  wgc::WgcSequence seq(config_.watermark.wgc);
  characterization_ = watermark::characterize_watermark(
      netlist_, root_clock, watermark_.wmark, "watermark", seq.period(),
      config_.tech);

  // CPA model pattern: one canonical period of WMARK, built once here
  // instead of per repetition (no call site mutates result.pattern).
  model_pattern_.resize(characterization_.period);
  for (std::size_t i = 0; i < model_pattern_.size(); ++i) {
    model_pattern_[i] = characterization_.wmark_bits[i] ? 1.0 : 0.0;
  }
}

soc::Chip1Config Scenario::m0_config() const {
  soc::Chip1Config m0;
  m0.program = config_.program;
  m0.tech = config_.tech;
  return m0;
}

power::PowerTrace Scenario::run_background(std::size_t repetition) const {
  if (config_.chip == ChipModel::kChip1) {
    soc::Chip1Soc chip(m0_config());
    return chip.run(config_.trace_cycles, "chip1-background");
  }
  soc::Chip2Config c2;
  c2.m0_soc = m0_config();
  c2.a5_core = config_.a5_core;
  c2.fabric_power_w = config_.fabric_power_w;
  c2.fabric_jitter = config_.fabric_jitter;
  c2.noise_seed = runtime::derive_background_seed(config_.seed, repetition);
  soc::Chip2Soc chip(c2);
  return chip.run(config_.trace_cycles, "chip2-background");
}

const Scenario::TraceCache& Scenario::cached_deterministic_traces() const {
  std::call_once(cache_->background_once, [this] {
    // The deterministic base is the M0 SoC trace for both chips: chip I
    // uses it as the whole background, chip II overlays the seeded
    // A5/fabric noise on top (soc::Chip2NoiseOverlay). A fresh Chip1Soc
    // produces the same trace every time (no RNG anywhere in it).
    soc::Chip1Soc chip(m0_config());
    const auto trace = chip.run(config_.trace_cycles, "m0-base");
    cache_->background = trace.values();
    cache_->clock_hz = trace.clock_hz();
  });
  return *cache_;
}

std::shared_ptr<const std::vector<double>> Scenario::tiled_watermark(
    std::size_t rotation) const {
  {
    std::lock_guard<std::mutex> lock(cache_->tiled_mutex);
    for (const auto& [rot, trace] : cache_->tiled) {
      if (rot == rotation) return trace;
    }
  }
  // Tile outside the lock; a racing thread may tile the same rotation,
  // first insert wins and the values are identical.
  auto tiled = std::make_shared<const std::vector<double>>(
      watermark::tile_watermark_power(characterization_,
                                      config_.trace_cycles, rotation));
  std::lock_guard<std::mutex> lock(cache_->tiled_mutex);
  for (const auto& [rot, trace] : cache_->tiled) {
    if (rot == rotation) return trace;
  }
  if (cache_->tiled.size() < kTiledCacheCap) {
    cache_->tiled.emplace_back(rotation, tiled);
  }
  return tiled;
}

ScenarioResult Scenario::run_impl(std::size_t repetition, bool use_cache,
                                  bool acquire) const {
  ScenarioResult result;
  const std::size_t period = characterization_.period;

  // Phase: pinned or derived from (seed, repetition).
  const std::uint64_t derived =
      runtime::derive_phase_seed(config_.seed, repetition);
  result.true_rotation =
      config_.phase_offset.value_or(static_cast<std::size_t>(
          derived % static_cast<std::uint64_t>(period)));

  // CPA model pattern: one canonical period of WMARK.
  if (use_cache) {
    result.pattern = model_pattern_;
  } else {
    result.pattern.resize(period);
    for (std::size_t i = 0; i < period; ++i) {
      result.pattern[i] = characterization_.wmark_bits[i] ? 1.0 : 0.0;
    }
  }

  // Background power: deterministic pieces from the cache, the chip II
  // noise overlay replayed with this repetition's seed.
  if (use_cache) {
    const TraceCache& cache = cached_deterministic_traces();
    if (config_.chip == ChipModel::kChip1) {
      result.background_power = power::PowerTrace(
          cache.background, cache.clock_hz, "chip1-background");
    } else {
      soc::Chip2Config c2;
      c2.a5_core = config_.a5_core;
      c2.fabric_power_w = config_.fabric_power_w;
      c2.fabric_jitter = config_.fabric_jitter;
      c2.noise_seed =
          runtime::derive_background_seed(config_.seed, repetition);
      soc::Chip2NoiseOverlay overlay(c2, config_.tech);
      result.background_power = overlay.apply(
          cache.background, cache.clock_hz, "chip2-background");
    }
  } else {
    result.background_power = run_background(repetition);
  }

  // Watermark power.
  std::vector<double> wm_power(config_.trace_cycles, 0.0);
  if (config_.watermark_active) {
    if (use_cache) {
      wm_power = *tiled_watermark(result.true_rotation);
    } else {
      wm_power = watermark::tile_watermark_power(
          characterization_, config_.trace_cycles, result.true_rotation);
    }
  } else {
    // Disabled watermark: the hard-macro domain only leaks.
    std::fill(wm_power.begin(), wm_power.end(),
              characterization_.leakage_w);
  }
  result.watermark_power = power::PowerTrace(
      std::move(wm_power), result.background_power.clock_hz(), "watermark");

  result.total_power = result.background_power;
  result.total_power += result.watermark_power;

  if (acquire) {
    // Measurement with repetition-unique noise, at the scenario's
    // operating voltage.
    measure::AcquisitionConfig acq = config_.acquisition;
    acq.vdd_v = config_.tech.vdd_v;
    acq.noise_seed =
        runtime::derive_acquisition_seed(config_.seed, repetition);
    measure::AcquisitionChain chain(acq);
    result.acquisition = chain.measure(result.total_power);
  }
  return result;
}

ScenarioResult Scenario::run(std::size_t repetition) const {
  return run_impl(repetition, /*use_cache=*/true, /*acquire=*/true);
}

ScenarioResult Scenario::run_uncached(std::size_t repetition) const {
  return run_impl(repetition, /*use_cache=*/false, /*acquire=*/true);
}

ScenarioResult Scenario::synthesize(std::size_t repetition) const {
  return run_impl(repetition, /*use_cache=*/true, /*acquire=*/false);
}

ScenarioResult Scenario::synthesize_uncached(std::size_t repetition) const {
  return run_impl(repetition, /*use_cache=*/false, /*acquire=*/false);
}

ScenarioConfig chip1_default() {
  ScenarioConfig cfg;
  cfg.chip = ChipModel::kChip1;
  cfg.phase_offset = 3800;  // paper Fig. 5(a): peak near rotation 3800
  cfg.seed = 0xC51;
  return cfg;
}

ScenarioConfig chip2_default() {
  ScenarioConfig cfg;
  cfg.chip = ChipModel::kChip2;
  cfg.phase_offset = 2400;  // paper Fig. 5(c): peak near rotation 2400
  cfg.seed = 0xC52;
  // The chip II board measurement is noisier (larger vertical range to
  // fit the A5 subsystem's current, more switching on the die); this is
  // what drops the paper's chip II peak slightly below chip I's.
  cfg.acquisition.scope.noise_v_rms = 11.0e-3;
  return cfg;
}

}  // namespace clockmark::sim
