// High-level experiment drivers used by the benches and examples: one
// detection run (Fig. 5 panels) and the 100-repetition study (Fig. 6).
//
// Both take the scenario by const reference — Scenario::run is
// thread-safe — and the repeatability study optionally fans repetitions
// out over a runtime::Executor. Parallel and serial runs are bit-exact
// (see runtime/seed.h for the derivation contract).
#pragma once

#include <cstddef>

#include "cpa/detector.h"
#include "cpa/repeatability.h"
#include "runtime/executor.h"
#include "sim/scenario.h"

namespace clockmark::sim {

struct DetectionExperiment {
  ScenarioResult scenario;
  cpa::DetectionResult detection;
};

/// Runs one scenario repetition and the CPA detector on its Y vector.
///
/// Deprecated shim: new code should use the detect::Session facade
/// (detect/session.h), whose Scenario overload produces a bit-identical
/// decision under the default (triggered) request and additionally
/// supports desynchronised inputs. Kept because its output shape is
/// baked into downstream result-parsing; no in-tree example or bench
/// calls it anymore.
DetectionExperiment run_detection(const Scenario& scenario,
                                  std::size_t repetition = 0,
                                  const cpa::DetectorPolicy& policy = {});

/// Runs the paper's Fig. 6 study: `repetitions` independent runs of the
/// scenario, box-plotting in-phase vs off-phase correlation. The
/// repetitions ride the batched SoA acquisition path
/// (Scenario::run_batch, 8 lanes per block) with the CPA sweeps served
/// by one shared cpa::SpectrumEngine — bit-identical to running
/// scenario.run(rep) + compute_spread_spectrum per repetition, only
/// faster. When `executor` is non-null the repetition *blocks* execute
/// concurrently; nullptr (or a single-thread executor) is the serial
/// fallback. The result is byte-identical either way.
cpa::RepeatabilityResult run_repeatability_study(
    const Scenario& scenario, std::size_t repetitions,
    const cpa::DetectorPolicy& policy = {},
    runtime::Executor* executor = nullptr);

}  // namespace clockmark::sim
