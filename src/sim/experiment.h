// High-level experiment drivers used by the benches and examples: one
// detection run (Fig. 5 panels) and the 100-repetition study (Fig. 6).
#pragma once

#include <cstddef>

#include "cpa/detector.h"
#include "cpa/repeatability.h"
#include "sim/scenario.h"

namespace clockmark::sim {

struct DetectionExperiment {
  ScenarioResult scenario;
  cpa::DetectionResult detection;
};

/// Runs one scenario repetition and the CPA detector on its Y vector.
DetectionExperiment run_detection(Scenario& scenario,
                                  std::size_t repetition = 0,
                                  const cpa::DetectorPolicy& policy = {});

/// Runs the paper's Fig. 6 study: `repetitions` independent runs of the
/// scenario, box-plotting in-phase vs off-phase correlation.
cpa::RepeatabilityResult run_repeatability_study(
    Scenario& scenario, std::size_t repetitions,
    const cpa::DetectorPolicy& policy = {});

}  // namespace clockmark::sim
