// Experiment scenarios mirroring the paper's silicon setups. A Scenario
// owns the watermark netlist (characterised at gate level once), the chip
// model (background power) and the measurement chain, and produces the
// CPA measurement vector Y for a given repetition.
//
//   chip I  : EM0 SoC running the Dhrystone-like workload; watermark block
//             on its own power domain (paper: hard macro).
//   chip II : the same SoC plus two clocked-but-idle A5-class cores and
//             the always-on fabric (paper: RTL-embedded watermark).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "measure/acquisition.h"
#include "power/trace.h"
#include "rtl/netlist.h"
#include "soc/chip1.h"
#include "soc/chip2.h"
#include "watermark/clock_modulation.h"
#include "watermark/embedder.h"

namespace clockmark::sim {

class ScenarioTraceStream;

enum class ChipModel { kChip1, kChip2 };

struct ScenarioConfig {
  ChipModel chip = ChipModel::kChip1;
  bool watermark_active = true;
  std::size_t trace_cycles = 300000;  ///< paper: 300,000 cycles per rho
  /// Rotation at which the true correlation peak should appear. The
  /// paper observed ~3800 on chip I and ~2400 on chip II (arbitrary
  /// trigger alignment). nullopt = derive pseudo-randomly per repetition.
  std::optional<std::size_t> phase_offset;
  watermark::ClockModConfig watermark;
  measure::AcquisitionConfig acquisition;
  /// Operating point / technology constants. Change via
  /// tech.at_operating_point() for DVFS studies; the acquisition's
  /// samples_per_cycle should be scope_rate / tech.clock_hz.
  power::TechLibrary tech;
  std::string program;          ///< empty = Dhrystone-like benchmark
  std::uint64_t seed = 1;       ///< master seed (noise, phase derivation)

  /// Chip II extras.
  soc::IdleCoreConfig a5_core;
  double fabric_power_w = 0.9e-3;
  double fabric_jitter = 0.05;
};

/// One repetition of a batched run (Scenario::run_batch): the slim
/// subset of ScenarioResult the repetition studies consume — the
/// acquired Y vector and where the peak should appear. The pattern is
/// shared (Scenario::model_pattern) and the intermediate power traces
/// are never materialised as PowerTrace objects.
struct BatchScenarioRepetition {
  measure::Acquisition acquisition;
  std::size_t true_rotation = 0;
};

/// Everything one repetition produces.
struct ScenarioResult {
  measure::Acquisition acquisition;      ///< Y vector + metadata
  std::vector<double> pattern;           ///< one period of WMARK (0/1)
  std::size_t true_rotation = 0;         ///< where the peak should be
  power::PowerTrace background_power;    ///< chip background (per cycle)
  power::PowerTrace watermark_power;     ///< watermark block (per cycle)
  power::PowerTrace total_power;         ///< device total (per cycle)
};

class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& config);

  /// Runs one repetition. Noise streams, and the phase if not pinned,
  /// derive from (config.seed, repetition) via runtime/seed.h.
  ///
  /// Thread-safe: `run` is const, keeps all per-repetition state (RNG
  /// streams, measurement chain) in locals, and reads the shared
  /// gate-level characterisation plus the internal memoization cache
  /// (std::call_once / mutex guarded) — concurrent calls with distinct
  /// repetitions on one Scenario are race-free and bit-exact.
  ///
  /// Memoization: the repetition-invariant pieces — the deterministic
  /// M0/chip background trace, the tiled watermark power per rotation,
  /// and the CPA model pattern — are computed once and reused, so a
  /// repetition reduces to "overlay seeded noise + acquire". Results are
  /// bit-identical to run_uncached() (asserted by tests).
  ScenarioResult run(std::size_t repetition = 0) const;

  /// Runs `count` consecutive repetitions [first, first + count)
  /// through one measure::BatchAcquisitionKernel pass: the lanes share
  /// the waveform-expansion template and travel the analog chain
  /// interleaved (SoA), which is where the R-heavy studies spend their
  /// time. Each element is bit-identical to run(first + i) — same
  /// derived rotation, same acquisition bits (asserted by
  /// tests/test_sim_batch.cpp on both chips) — the batch only changes
  /// the speed. Configurations the batch kernel does not model
  /// (trigger-offset capture, disabled PDN) fall back to run() per
  /// repetition. Thread-safe like run(); distinct repetition ranges
  /// may run concurrently.
  std::vector<BatchScenarioRepetition> run_batch(
      std::size_t first_repetition, std::size_t count) const;

  /// Reference path: recomputes everything from scratch, exactly as
  /// run() did before memoization existed. Kept for equivalence tests
  /// and as the baseline for the bench speedup measurement.
  ScenarioResult run_uncached(std::size_t repetition = 0) const;

  /// Trace synthesis only (background + watermark + total power, no
  /// measurement-chain acquisition); result.acquisition is empty.
  /// Memoized like run(); synthesize_uncached() is the planless
  /// reference. These isolate the synthesis stage for benchmarking.
  ScenarioResult synthesize(std::size_t repetition = 0) const;
  ScenarioResult synthesize_uncached(std::size_t repetition = 0) const;

  /// Chunked synthesis + acquisition of one repetition: Y delivered in
  /// whole-cycle chunks with bounded memory (no sample-rate waveform or
  /// full Y vector is ever held). Concatenating the chunks reproduces
  /// run(repetition).acquisition.per_cycle_power_w bit for bit; see
  /// sim/trace_stream.h for the contract (trigger-offset studies stream
  /// an extra edge-fold pass, like the batch path). Thread-safe like
  /// run():
  /// each stream owns its per-repetition state and only reads the shared
  /// caches.
  std::unique_ptr<ScenarioTraceStream> open_stream(
      std::size_t repetition = 0, std::size_t chunk_cycles = 4096) const;

  /// The gate-level characterisation (computed once in the constructor).
  const watermark::WatermarkCharacterization& characterization() const {
    return characterization_;
  }

  /// The CPA model pattern — one canonical period of WMARK as 0/1
  /// doubles, built once in the constructor. This is exactly what run()
  /// copies into ScenarioResult::pattern; batch callers share it
  /// instead of carrying a copy per repetition.
  const std::vector<double>& model_pattern() const noexcept {
    return model_pattern_;
  }

  /// The watermark netlist (for area/attack analysis).
  const rtl::Netlist& watermark_netlist() const { return netlist_; }
  const watermark::ClockModWatermark& watermark() const {
    return watermark_;
  }

  const ScenarioConfig& config() const noexcept { return config_; }

 private:
  friend class ScenarioTraceStream;  ///< reads the deterministic caches

  /// Repetition-invariant state computed lazily on first use. The
  /// background trace is the deterministic part of the chip's power —
  /// the full trace for chip I, the M0 base (before the seeded A5/fabric
  /// overlay) for chip II. Tiled watermark traces are cached per
  /// rotation, capped so unpinned-phase studies stay bounded in memory.
  struct TraceCache {
    std::once_flag background_once;
    std::vector<double> background;
    double clock_hz = 0.0;
    std::mutex tiled_mutex;
    std::vector<std::pair<std::size_t,
                          std::shared_ptr<const std::vector<double>>>>
        tiled;
  };

  soc::Chip1Config m0_config() const;
  power::PowerTrace run_background(std::size_t repetition) const;
  const TraceCache& cached_deterministic_traces() const;
  std::shared_ptr<const std::vector<double>> tiled_watermark(
      std::size_t rotation) const;
  ScenarioResult run_impl(std::size_t repetition, bool use_cache,
                          bool acquire) const;

  // All members except cache_ are written once in the constructor and
  // read-only afterwards; cache_ fills in lazily behind its own
  // synchronisation (the thread-safety contract of run()).
  ScenarioConfig config_;
  rtl::Netlist netlist_;
  watermark::ClockModWatermark watermark_;
  watermark::WatermarkCharacterization characterization_;
  std::vector<double> model_pattern_;
  std::unique_ptr<TraceCache> cache_;
};

/// Default configurations reproducing the paper's two chips.
ScenarioConfig chip1_default();
ScenarioConfig chip2_default();

}  // namespace clockmark::sim
