#include "sim/experiment.h"

namespace clockmark::sim {

DetectionExperiment run_detection(Scenario& scenario, std::size_t repetition,
                                  const cpa::DetectorPolicy& policy) {
  DetectionExperiment exp;
  exp.scenario = scenario.run(repetition);
  const cpa::Detector detector(policy);
  exp.detection = detector.detect(exp.scenario.acquisition.per_cycle_power_w,
                                  exp.scenario.pattern);
  return exp;
}

cpa::RepeatabilityResult run_repeatability_study(
    Scenario& scenario, std::size_t repetitions,
    const cpa::DetectorPolicy& policy) {
  const cpa::Detector detector(policy);
  return cpa::run_repeatability(
      repetitions,
      [&](std::size_t rep) {
        const ScenarioResult r = scenario.run(rep);
        cpa::RepetitionOutcome outcome;
        outcome.spectrum = cpa::compute_spread_spectrum(
            r.acquisition.per_cycle_power_w, r.pattern,
            cpa::CorrelationMethod::kFft, policy.guard);
        outcome.true_rotation = r.true_rotation;
        outcome.detected = detector.decide(outcome.spectrum).detected;
        return outcome;
      },
      policy.guard);
}

}  // namespace clockmark::sim
