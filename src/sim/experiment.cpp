#include "sim/experiment.h"

#include <utility>
#include <vector>

namespace clockmark::sim {

DetectionExperiment run_detection(const Scenario& scenario,
                                  std::size_t repetition,
                                  const cpa::DetectorPolicy& policy) {
  DetectionExperiment exp;
  exp.scenario = scenario.run(repetition);
  const cpa::Detector detector(policy);
  exp.detection = detector.detect(exp.scenario.acquisition.per_cycle_power_w,
                                  exp.scenario.pattern);
  return exp;
}

cpa::RepeatabilityResult run_repeatability_study(
    const Scenario& scenario, std::size_t repetitions,
    const cpa::DetectorPolicy& policy, runtime::Executor* executor) {
  const cpa::Detector detector(policy);
  const auto one_repetition =
      [&](std::size_t rep) -> cpa::RepetitionOutcome {
    const ScenarioResult r = scenario.run(rep);
    cpa::RepetitionOutcome outcome;
    outcome.spectrum = cpa::compute_spread_spectrum(
        r.acquisition.per_cycle_power_w, r.pattern,
        cpa::CorrelationMethod::kFft, policy.guard);
    outcome.true_rotation = r.true_rotation;
    outcome.detected = detector.decide(outcome.spectrum).detected;
    return outcome;
  };

  std::vector<cpa::RepetitionOutcome> outcomes;
  if (executor != nullptr && executor->thread_count() > 1) {
    outcomes = executor->parallel_map<cpa::RepetitionOutcome>(
        repetitions, one_repetition);
  } else {
    outcomes.reserve(repetitions);
    for (std::size_t rep = 0; rep < repetitions; ++rep) {
      outcomes.push_back(one_repetition(rep));
    }
  }
  return cpa::summarize_repetitions(outcomes, policy.guard);
}

}  // namespace clockmark::sim
