#include "sim/experiment.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "cpa/spectrum_engine.h"

namespace clockmark::sim {

DetectionExperiment run_detection(const Scenario& scenario,
                                  std::size_t repetition,
                                  const cpa::DetectorPolicy& policy) {
  DetectionExperiment exp;
  exp.scenario = scenario.run(repetition);
  const cpa::Detector detector(policy);
  exp.detection = detector.detect(exp.scenario.acquisition.per_cycle_power_w,
                                  exp.scenario.pattern);
  return exp;
}

cpa::RepeatabilityResult run_repeatability_study(
    const Scenario& scenario, std::size_t repetitions,
    const cpa::DetectorPolicy& policy, runtime::Executor* executor) {
  const cpa::Detector detector(policy);
  // Repetitions travel the acquisition chain in blocks of
  // kRepsPerBlock interleaved SoA lanes (Scenario::run_batch — two
  // full-width BatchAcquisitionKernel groups per block), and the CPA
  // sweeps share one SpectrumEngine (cached pattern FFT + per-length
  // fold statistics). Both stages are bit-identical to the historical
  // per-repetition loop, so the summarised result is unchanged.
  constexpr std::size_t kRepsPerBlock = 8;
  const std::size_t blocks =
      (repetitions + kRepsPerBlock - 1) / kRepsPerBlock;
  const cpa::SpectrumEngine engine(scenario.model_pattern());

  // One block = one work item when parallel. The block function nests
  // no parallel calls (the Executor is not reentrant).
  const auto run_block =
      [&](std::size_t block) -> std::vector<cpa::RepetitionOutcome> {
    const std::size_t first = block * kRepsPerBlock;
    const std::size_t count =
        std::min(kRepsPerBlock, repetitions - first);
    std::vector<BatchScenarioRepetition> reps =
        scenario.run_batch(first, count);
    std::vector<cpa::RepetitionOutcome> outcomes;
    outcomes.reserve(count);
    for (BatchScenarioRepetition& rep : reps) {
      cpa::RepetitionOutcome outcome;
      outcome.spectrum =
          engine.sweep(rep.acquisition.per_cycle_power_w, policy.guard);
      outcome.true_rotation = rep.true_rotation;
      outcome.detected = detector.decide(outcome.spectrum).detected;
      outcomes.push_back(std::move(outcome));
    }
    return outcomes;
  };

  std::vector<std::vector<cpa::RepetitionOutcome>> per_block;
  if (executor != nullptr && executor->thread_count() > 1 && blocks > 1) {
    per_block = executor->parallel_map<std::vector<cpa::RepetitionOutcome>>(
        blocks, run_block);
  } else {
    per_block.reserve(blocks);
    for (std::size_t block = 0; block < blocks; ++block) {
      per_block.push_back(run_block(block));
    }
  }
  std::vector<cpa::RepetitionOutcome> outcomes;
  outcomes.reserve(repetitions);
  for (std::vector<cpa::RepetitionOutcome>& block : per_block) {
    for (cpa::RepetitionOutcome& outcome : block) {
      outcomes.push_back(std::move(outcome));
    }
  }
  return cpa::summarize_repetitions(outcomes, policy.guard);
}

}  // namespace clockmark::sim
