#include "sim/trace_stream.h"

#include <algorithm>
#include <stdexcept>

#include "runtime/seed.h"

namespace clockmark::sim {

ScenarioTraceStream::ScenarioTraceStream(const Scenario& scenario,
                                         std::size_t repetition,
                                         std::size_t chunk_cycles)
    : scenario_(scenario),
      repetition_(repetition),
      chunk_cycles_(chunk_cycles),
      total_cycles_(scenario.config().trace_cycles) {
  if (chunk_cycles_ == 0) {
    throw std::invalid_argument(
        "ScenarioTraceStream: chunk_cycles must be > 0");
  }
  const std::size_t min_first_chunk =
      scenario.config().acquisition.trigger_sim ==
              measure::TriggerSim::kAligned
          ? 8    // the PDN priming window
          : 9;   // priming window + the partial first cycle the offset eats
  if (chunk_cycles_ < min_first_chunk && total_cycles_ > chunk_cycles_) {
    throw std::invalid_argument(
        "ScenarioTraceStream: chunk_cycles must cover the 8-cycle PDN "
        "priming window (9 cycles with a trigger offset)");
  }
  const ScenarioConfig& cfg = scenario_.config_;
  const std::size_t period = scenario_.characterization_.period;

  // Phase and pattern: the same derivation as Scenario::run_impl.
  const std::uint64_t derived =
      runtime::derive_phase_seed(cfg.seed, repetition_);
  true_rotation_ = cfg.phase_offset.value_or(static_cast<std::size_t>(
      derived % static_cast<std::uint64_t>(period)));
  pattern_ = scenario_.model_pattern_;

  // Deterministic base trace from the shared per-Scenario cache — the
  // one O(trace) allocation of the stream, shared with every batch run().
  const Scenario::TraceCache& cache = scenario_.cached_deterministic_traces();
  background_ = &cache.background;

  measure::AcquisitionConfig acq = cfg.acquisition;
  acq.vdd_v = cfg.tech.vdd_v;
  acq.noise_seed = runtime::derive_acquisition_seed(cfg.seed, repetition_);
  chain_ = std::make_unique<measure::StreamingAcquisitionChain>(
      acq, cache.clock_hz);

  // Range pass: stream the analog chain once so the scope range is
  // chosen from the full waveform, exactly as the batch auto-range does.
  if (chain_->needs_range_pass()) {
    SynthCursor range_cursor;
    range_cursor.overlay = make_overlay();
    while (range_cursor.position < total_cycles_) {
      const std::size_t n =
          std::min(chunk_cycles_, total_cycles_ - range_cursor.position);
      chain_->range_feed(synthesize(range_cursor, n));
    }
    chain_->fix_range();
  }
  // Trigger pass (trigger_sim != kAligned): stream once more so the
  // edge-trigger phase is folded from the full digitised waveform, as
  // the batch auto_align does.
  if (chain_->needs_trigger_pass()) {
    SynthCursor trigger_cursor;
    trigger_cursor.overlay = make_overlay();
    while (trigger_cursor.position < total_cycles_) {
      const std::size_t n =
          std::min(chunk_cycles_, total_cycles_ - trigger_cursor.position);
      chain_->trigger_feed(synthesize(trigger_cursor, n));
    }
    chain_->fix_trigger();
  }
  acquire_cursor_.overlay = make_overlay();
}

std::unique_ptr<soc::Chip2NoiseOverlay> ScenarioTraceStream::make_overlay()
    const {
  const ScenarioConfig& cfg = scenario_.config_;
  if (cfg.chip != ChipModel::kChip2) return nullptr;
  soc::Chip2Config c2;
  c2.a5_core = cfg.a5_core;
  c2.fabric_power_w = cfg.fabric_power_w;
  c2.fabric_jitter = cfg.fabric_jitter;
  c2.noise_seed = runtime::derive_background_seed(cfg.seed, repetition_);
  return std::make_unique<soc::Chip2NoiseOverlay>(c2, cfg.tech);
}

std::vector<double> ScenarioTraceStream::synthesize(SynthCursor& cursor,
                                                    std::size_t n) const {
  const ScenarioConfig& cfg = scenario_.config_;
  const auto& ch = scenario_.characterization_;
  const std::vector<double>& base = *background_;
  std::vector<double> total(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = cursor.position + i;
    // Background: the cached deterministic trace, with the chip II noise
    // overlay stepped in cycle order (the same draws the batch overlay
    // makes). Then the watermark tile — total[c] = bg[c] + wm[c], the
    // operator+= order of the batch path.
    const double bg =
        cursor.overlay ? cursor.overlay->step(base[c]) : base[c];
    const double wm = cfg.watermark_active
                          ? ch.power_w[(true_rotation_ + c) % ch.period]
                          : ch.leakage_w;
    total[i] = bg + wm;
  }
  cursor.position += n;
  return total;
}

std::vector<double> ScenarioTraceStream::next() {
  if (position_ >= total_cycles_) return {};
  const std::size_t n = std::min(chunk_cycles_, total_cycles_ - position_);
  std::vector<double> y =
      chain_->acquire_feed(synthesize(acquire_cursor_, n));
  position_ += n;
  return y;
}

std::unique_ptr<ScenarioTraceStream> Scenario::open_stream(
    std::size_t repetition, std::size_t chunk_cycles) const {
  return std::make_unique<ScenarioTraceStream>(*this, repetition,
                                               chunk_cycles);
}

}  // namespace clockmark::sim
