// Chunked synthesis of a Scenario repetition: the per-cycle CPA
// measurement Y produced one whole-cycle chunk at a time, without ever
// materialising the sample-rate waveform or the full Y vector — the
// bounded-memory producer behind stream::ScenarioSource.
//
// Exactness: concatenating every chunk of a stream reproduces
// Scenario::run(repetition).acquisition.per_cycle_power_w bit for bit
// (asserted in tests). The deterministic background comes from the same
// per-Scenario cache run() uses; the chip II noise overlay and the
// measurement chain consume their seeded RNG streams sample by sample in
// the same order as the batch path, and the scope's auto-range is learned
// by streaming the analog chain once before the acquire pass (see
// measure/streaming.h), so chunk boundaries never shift a single draw.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "measure/streaming.h"
#include "sim/scenario.h"
#include "soc/chip2.h"

namespace clockmark::sim {

class ScenarioTraceStream {
 public:
  /// Build via Scenario::open_stream.
  ScenarioTraceStream(const Scenario& scenario, std::size_t repetition,
                      std::size_t chunk_cycles);

  /// Next chunk of per-cycle Y values (up to chunk_cycles; empty once the
  /// trace is exhausted). Chunks are contiguous from cycle 0.
  std::vector<double> next();

  /// Absolute cycle offset of the next chunk (== cycles emitted so far).
  std::size_t position() const noexcept { return position_; }
  std::size_t total_cycles() const noexcept { return total_cycles_; }
  std::size_t chunk_cycles() const noexcept { return chunk_cycles_; }

  /// One period of the CPA model pattern and where its peak should land —
  /// the same values ScenarioResult carries.
  const std::vector<double>& pattern() const noexcept { return pattern_; }
  std::size_t true_rotation() const noexcept { return true_rotation_; }

  /// Acquisition metadata once the stream has been drained.
  measure::StreamingAcquisitionChain::Summary summary() const {
    return chain_->summary();
  }

 private:
  /// Synthesises total device power for cycles [position, position+n) in
  /// stream order; one instance per pass so the chip II overlay RNG
  /// replays identically in the range and acquire passes.
  struct SynthCursor {
    std::size_t position = 0;
    std::unique_ptr<soc::Chip2NoiseOverlay> overlay;  ///< chip II only
  };

  std::vector<double> synthesize(SynthCursor& cursor, std::size_t n) const;
  std::unique_ptr<soc::Chip2NoiseOverlay> make_overlay() const;

  const Scenario& scenario_;
  std::size_t repetition_;
  std::size_t chunk_cycles_;
  std::size_t total_cycles_;
  std::size_t true_rotation_ = 0;
  std::vector<double> pattern_;
  const std::vector<double>* background_ = nullptr;  ///< cached base trace
  SynthCursor acquire_cursor_;
  std::unique_ptr<measure::StreamingAcquisitionChain> chain_;
  std::size_t position_ = 0;
};

}  // namespace clockmark::sim
