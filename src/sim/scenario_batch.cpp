// Scenario::run_batch — the repetition-batched front half of the R-heavy
// studies. Synthesis stays per lane (chip II's noise overlay is a serial
// data-dependent recurrence; chip I's background is a cache read), but
// each lane's total power is materialised exactly once as a plain
// vector, and the acquisitions then ride one BatchAcquisitionKernel run
// as interleaved SoA lanes. See measure/batch_kernel.h for why that is
// both bit-identical to the per-rep path and substantially faster.
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "measure/batch_kernel.h"
#include "runtime/seed.h"
#include "sim/scenario.h"

namespace clockmark::sim {

std::vector<BatchScenarioRepetition> Scenario::run_batch(
    std::size_t first_repetition, std::size_t count) const {
  std::vector<BatchScenarioRepetition> out(count);
  if (count == 0) return out;

  measure::AcquisitionConfig acq = config_.acquisition;
  acq.vdd_v = config_.tech.vdd_v;
  if (!measure::BatchAcquisitionKernel::supports(acq) ||
      config_.trace_cycles == 0) {
    // Trigger-offset and PDN-less studies: keep the exact run()
    // semantics (the batch kernel would fall back per lane anyway, and
    // run() also covers the degenerate zero-cycle shape).
    for (std::size_t i = 0; i < count; ++i) {
      ScenarioResult r = run(first_repetition + i);
      out[i].acquisition = std::move(r.acquisition);
      out[i].true_rotation = r.true_rotation;
    }
    return out;
  }

  const TraceCache& cache = cached_deterministic_traces();
  const std::size_t period = characterization_.period;

  // Materialise each lane's total per-cycle power with run_impl's exact
  // arithmetic and element order: background (cache read, or the seeded
  // chip II overlay replayed on the cached M0 base), then the
  // element-wise watermark add (PowerTrace::operator+='s loop).
  std::vector<std::vector<double>> totals(count);
  std::vector<measure::BatchLane> lanes(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t rep = first_repetition + i;
    const std::uint64_t derived =
        runtime::derive_phase_seed(config_.seed, rep);
    out[i].true_rotation =
        config_.phase_offset.value_or(static_cast<std::size_t>(
            derived % static_cast<std::uint64_t>(period)));

    if (config_.chip == ChipModel::kChip1) {
      totals[i] = cache.background;
    } else {
      soc::Chip2Config c2;
      c2.a5_core = config_.a5_core;
      c2.fabric_power_w = config_.fabric_power_w;
      c2.fabric_jitter = config_.fabric_jitter;
      c2.noise_seed = runtime::derive_background_seed(config_.seed, rep);
      soc::Chip2NoiseOverlay overlay(c2, config_.tech);
      totals[i] =
          overlay.apply(cache.background, cache.clock_hz, "chip2-background")
              .values();
    }
    std::vector<double>& total = totals[i];
    if (config_.watermark_active) {
      const std::shared_ptr<const std::vector<double>> wm =
          tiled_watermark(out[i].true_rotation);
      for (std::size_t c = 0; c < total.size(); ++c) total[c] += (*wm)[c];
    } else {
      // Disabled watermark: the hard-macro domain only leaks.
      for (double& v : total) v += characterization_.leakage_w;
    }
    lanes[i] = measure::BatchLane{
        totals[i], runtime::derive_acquisition_seed(config_.seed, rep)};
  }

  const measure::BatchAcquisitionKernel kernel(acq, cache.clock_hz);
  std::vector<measure::Acquisition> acquisitions = kernel.run(lanes);
  for (std::size_t i = 0; i < count; ++i) {
    out[i].acquisition = std::move(acquisitions[i]);
  }
  return out;
}

}  // namespace clockmark::sim
