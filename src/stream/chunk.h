// The unit of work flowing through the streaming pipeline: a run of
// consecutive per-cycle power values (Y samples) with its absolute cycle
// offset. Carrying the offset makes resume/reconnect well-defined — a
// consumer can verify it never skipped or replayed cycles, which is what
// the online detector's exactness contract depends on.
#pragma once

#include <cstddef>
#include <vector>

namespace clockmark::stream {

struct Chunk {
  std::size_t index = 0;        ///< 0-based sequence number in the stream
  std::size_t start_cycle = 0;  ///< absolute cycle offset of values[0]
  std::vector<double> values;   ///< per-cycle power (W), whole cycles

  std::size_t end_cycle() const noexcept {
    return start_cycle + values.size();
  }
};

}  // namespace clockmark::stream
