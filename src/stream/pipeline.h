// Source → BoundedQueue → OnlineDetector, wired up with threads.
//
// The producer thread pulls chunks from the TraceSource and pushes them
// into a bounded queue (backpressure: a slow detector stalls acquisition
// rather than buffering the whole trace). The calling thread is the
// single consumer — chunks are ingested strictly in order, which is what
// keeps the online fold bit-identical to the batch sweep. Parallelism in
// the detection math itself comes from the runtime::Executor handed to
// run(), which fans the per-rotation evaluation sweep out over its
// workers.
//
// Failure: a throwing source poisons the queue; the consumer surfaces
// that as StreamReport::source_failed + error instead of a clean end.
// An early-stop decision closes the queue, which unblocks and stops the
// producer — acquisition ends the moment the decision fires.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "stream/bounded_queue.h"
#include "stream/online_detector.h"
#include "stream/trace_source.h"

namespace clockmark::runtime {
class Executor;
}

namespace clockmark::stream {

struct StreamPipelineConfig {
  std::size_t queue_capacity = 8;  ///< chunks buffered between stages
  OnlineDetectorConfig detector;
};

struct StreamReport {
  OnlineDecision decision;
  QueueStats queue;
  std::size_t chunks_produced = 0;  ///< chunks the source handed out
  std::size_t chunks_consumed = 0;  ///< chunks the detector ingested
  /// Peak bytes held in Chunk buffers (queue high-water * chunk bytes) —
  /// the streaming side of the memory comparison in the bench.
  std::size_t peak_buffered_bytes = 0;
  bool source_failed = false;
  std::string error;
};

class StreamPipeline {
 public:
  explicit StreamPipeline(StreamPipelineConfig config = {});

  /// Runs the source to completion (or early stop / failure) against an
  /// online detector for `pattern`. The executor, when non-null,
  /// parallelises the per-rotation evaluation sweep (bit-identical at
  /// any thread count).
  StreamReport run(TraceSource& source, std::vector<double> pattern,
                   runtime::Executor* executor = nullptr) const;

  const StreamPipelineConfig& config() const noexcept { return config_; }

 private:
  StreamPipelineConfig config_;
};

}  // namespace clockmark::stream
