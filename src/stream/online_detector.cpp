#include "stream/online_detector.h"

#include <stdexcept>
#include <utility>

#include "cpa/confidence.h"

namespace clockmark::stream {

OnlineDetector::OnlineDetector(std::vector<double> pattern,
                               OnlineDetectorConfig config)
    : config_(config),
      accumulator_(std::move(pattern)),
      detector_(config.policy),
      min_cycles_(config.min_cycles == 0 ? accumulator_.pattern().size()
                                         : config.min_cycles) {
  if (config_.method == cpa::CorrelationMethod::kNaive) {
    throw std::invalid_argument(
        "OnlineDetector: kNaive needs the materialised trace and cannot "
        "be streamed; use kFolded or kFft");
  }
  if (config_.consecutive_evaluations == 0) {
    config_.consecutive_evaluations = 1;
  }
  if (config_.evaluate_every_chunks == 0) {
    config_.evaluate_every_chunks = 1;
  }
}

bool OnlineDetector::ingest(const Chunk& chunk,
                            runtime::Executor* executor) {
  if (finalized_) {
    throw std::logic_error("OnlineDetector: ingest after finalize");
  }
  if (chunk.start_cycle != accumulator_.cycles()) {
    throw std::invalid_argument(
        "OnlineDetector: chunk out of order (expected start_cycle " +
        std::to_string(accumulator_.cycles()) + ", got " +
        std::to_string(chunk.start_cycle) + ")");
  }
  accumulator_.add(chunk.values);
  ++decision_.chunks;
  decision_.cycles = accumulator_.cycles();
  if (decision_.decided) return true;
  if (!config_.early_stop) return false;
  if (!accumulator_.ready() || accumulator_.cycles() < min_cycles_) {
    return false;
  }
  if (decision_.chunks % config_.evaluate_every_chunks != 0) return false;
  evaluate(executor);
  if (decision_.result.detected &&
      decision_.confidence >= config_.confidence_threshold) {
    if (++streak_ >= config_.consecutive_evaluations) {
      decision_.decided = true;
      decision_.detected = true;
      decision_.decision_cycles = accumulator_.cycles();
    }
  } else {
    streak_ = 0;
  }
  return decision_.decided;
}

const OnlineDecision& OnlineDetector::finalize(runtime::Executor* executor) {
  if (finalized_) return decision_;
  finalized_ = true;
  decision_.cycles = accumulator_.cycles();
  if (decision_.decided) return decision_;
  if (!accumulator_.ready()) {
    // Shorter than one pattern period: no sweep is defined, not detected.
    decision_.result = cpa::DetectionResult{};
    decision_.result.reason =
        "trace shorter than one pattern period; no decision possible";
    decision_.detected = false;
    decision_.decision_cycles = accumulator_.cycles();
    return decision_;
  }
  evaluate(executor);
  decision_.detected = decision_.result.detected;
  decision_.decision_cycles = accumulator_.cycles();
  return decision_;
}

void OnlineDetector::evaluate(runtime::Executor* executor) {
  cpa::SpreadSpectrum ss = accumulator_.spread_spectrum(
      config_.method, config_.policy.guard, executor);
  decision_.confidence = cpa::detection_confidence(ss);
  decision_.result = detector_.decide(std::move(ss));
  ++decision_.evaluations;
}

}  // namespace clockmark::stream
