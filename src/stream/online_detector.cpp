#include "stream/online_detector.h"

#include <stdexcept>
#include <utility>

#include "cpa/confidence.h"
#include "sync/engine.h"
#include "sync/search.h"

namespace clockmark::stream {

OnlineDetector::OnlineDetector(std::vector<double> pattern,
                               OnlineDetectorConfig config)
    : config_(config),
      accumulator_(std::move(pattern)),
      detector_(config.policy),
      min_cycles_(config.min_cycles == 0 ? accumulator_.pattern().size()
                                         : config.min_cycles),
      lock_cycles_(config.lock_cycles == 0
                       ? 4 * accumulator_.pattern().size()
                       : config.lock_cycles) {
  if (config_.method == cpa::CorrelationMethod::kNaive) {
    throw std::invalid_argument(
        "OnlineDetector: kNaive needs the materialised trace and cannot "
        "be streamed; use kFolded or kFft");
  }
  if (config_.consecutive_evaluations == 0) {
    config_.consecutive_evaluations = 1;
  }
  if (config_.evaluate_every_chunks == 0) {
    config_.evaluate_every_chunks = 1;
  }
  if (config_.sync_policy == sync::SyncPolicy::kKnownOffset &&
      !config_.known_warp.is_identity()) {
    warper_ = std::make_unique<sync::StreamWarper>(config_.known_warp);
  }
  if (config_.sync_policy == sync::SyncPolicy::kBlind) {
    if (config_.engine != nullptr &&
        config_.engine->pattern() == accumulator_.pattern()) {
      engine_ = config_.engine;
    } else {
      engine_ = std::make_shared<const sync::CandidateEngine>(
          accumulator_.pattern());
    }
  }
}

void OnlineDetector::feed_warped(std::span<const double> values) {
  warp_scratch_.clear();
  warper_->feed(values, warp_scratch_);
  if (!warp_scratch_.empty()) accumulator_.add(warp_scratch_);
}

void OnlineDetector::lock(runtime::Executor* executor) {
  sync::SyncEstimate est =
      sync::find_sync(*engine_, lock_buffer_, config_.blind, executor);
  decision_.sync = est;
  locked_ = true;
  if (est.correction.is_identity()) {
    // Identity correction (e.g. a too-short lock window): stream the
    // buffer straight through, no warper needed.
    if (!lock_buffer_.empty()) accumulator_.add(lock_buffer_);
  } else {
    warper_ = std::make_unique<sync::StreamWarper>(est.correction);
    feed_warped(lock_buffer_);
  }
  lock_buffer_.clear();
  lock_buffer_.shrink_to_fit();
}

bool OnlineDetector::ingest(const Chunk& chunk,
                            runtime::Executor* executor) {
  if (finalized_) {
    throw std::logic_error("OnlineDetector: ingest after finalize");
  }
  if (chunk.start_cycle != raw_cycles_) {
    throw std::invalid_argument(
        "OnlineDetector: chunk out of order (expected start_cycle " +
        std::to_string(raw_cycles_) + ", got " +
        std::to_string(chunk.start_cycle) + ")");
  }
  raw_cycles_ += chunk.values.size();

  if (config_.sync_policy == sync::SyncPolicy::kBlind && !locked_) {
    lock_buffer_.insert(lock_buffer_.end(), chunk.values.begin(),
                        chunk.values.end());
    if (lock_buffer_.size() >= lock_cycles_) lock(executor);
  } else if (warper_) {
    feed_warped(chunk.values);
  } else {
    accumulator_.add(chunk.values);
  }

  ++decision_.chunks;
  decision_.cycles = raw_cycles_;
  if (decision_.decided) return true;
  if (!config_.early_stop) return false;
  if (!accumulator_.ready() || accumulator_.cycles() < min_cycles_) {
    return false;
  }
  if (decision_.chunks % config_.evaluate_every_chunks != 0) return false;
  evaluate(executor);
  if (decision_.result.detected &&
      decision_.confidence >= config_.confidence_threshold) {
    if (++streak_ >= config_.consecutive_evaluations) {
      decision_.decided = true;
      decision_.detected = true;
      decision_.decision_cycles = raw_cycles_;
    }
  } else {
    streak_ = 0;
  }
  return decision_.decided;
}

const OnlineDecision& OnlineDetector::finalize(runtime::Executor* executor) {
  if (finalized_) return decision_;
  finalized_ = true;
  decision_.cycles = raw_cycles_;
  if (decision_.decided) return decision_;
  if (config_.sync_policy == sync::SyncPolicy::kBlind && !locked_) {
    // Stream ended inside the lock window: lock on everything we have.
    // With lock_cycles >= the stream length this is the batch-identical
    // path — the search sees the exact full trace.
    lock(executor);
  }
  if (warper_) {
    warp_scratch_.clear();
    warper_->finish(warp_scratch_);
    if (!warp_scratch_.empty()) accumulator_.add(warp_scratch_);
  }
  if (!accumulator_.ready()) {
    // Shorter than one pattern period: no sweep is defined, not detected.
    decision_.result = cpa::DetectionResult{};
    decision_.result.reason =
        "trace shorter than one pattern period; no decision possible";
    decision_.detected = false;
    decision_.decision_cycles = raw_cycles_;
    return decision_;
  }
  evaluate(executor);
  decision_.detected = decision_.result.detected;
  decision_.decision_cycles = raw_cycles_;
  return decision_;
}

void OnlineDetector::evaluate(runtime::Executor* executor) {
  cpa::SpreadSpectrum ss = accumulator_.spread_spectrum(
      config_.method, config_.policy.guard, executor);
  decision_.confidence = cpa::detection_confidence(ss);
  decision_.result = detector_.decide(std::move(ss));
  ++decision_.evaluations;
}

}  // namespace clockmark::stream
