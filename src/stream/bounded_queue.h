// Bounded MPMC queue with backpressure — the coupling between the
// acquisition producer and the detection consumer. Mutex + two condition
// variables, all state behind one lock (TSan-clean by construction; the
// tier-1 TSan pass exercises it under contention).
//
// Lifecycle:
//   push()    blocks while full; returns false once the queue is closed
//             or poisoned (the item is dropped — producers stop).
//   pop()     blocks while empty and open; after close() the remaining
//             items drain in FIFO order, then nullopt signals the end.
//   close()   producer is done; consumers drain what is buffered.
//   poison()  producer failed; buffered items are discarded, waiters are
//             woken, and every subsequent pop() throws QueuePoisoned so
//             the failure propagates instead of looking like a clean end.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace clockmark::stream {

class QueuePoisoned : public std::runtime_error {
 public:
  explicit QueuePoisoned(const std::string& reason)
      : std::runtime_error("stream queue poisoned: " + reason) {}
};

/// Per-stage counters surfaced in the pipeline's StreamReport.
struct QueueStats {
  std::size_t capacity = 0;
  std::size_t pushes = 0;      ///< items accepted
  std::size_t pops = 0;        ///< items delivered
  std::size_t push_waits = 0;  ///< producer blocked on a full queue
  std::size_t pop_waits = 0;   ///< consumer blocked on an empty queue
  std::size_t high_water = 0;  ///< max buffered items observed
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns true when the item was
  /// enqueued, false when the queue was closed or poisoned meanwhile.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.size() >= capacity_ && !closed_ && !poisoned_) {
      ++stats_.push_waits;
      not_full_.wait(lock, [&] {
        return items_.size() < capacity_ || closed_ || poisoned_;
      });
    }
    if (closed_ || poisoned_) return false;
    items_.push_back(std::move(item));
    ++stats_.pushes;
    stats_.high_water = std::max(stats_.high_water, items_.size());
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty and open. nullopt = closed and
  /// drained. Throws QueuePoisoned after poison().
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty() && !closed_ && !poisoned_) {
      ++stats_.pop_waits;
      not_empty_.wait(lock,
                      [&] { return !items_.empty() || closed_ || poisoned_; });
    }
    if (poisoned_) throw QueuePoisoned(poison_reason_);
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    ++stats_.pops;
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// No more pushes; buffered items remain poppable (drain semantics).
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Producer failure: discard buffered items and fail every waiter.
  void poison(std::string reason) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (poisoned_) return;  // first failure wins
      poisoned_ = true;
      poison_reason_ = std::move(reason);
      items_.clear();
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  bool poisoned() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return poisoned_;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  QueueStats stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    QueueStats s = stats_;
    s.capacity = capacity_;
    return s;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  bool poisoned_ = false;
  std::string poison_reason_;
  QueueStats stats_;
};

}  // namespace clockmark::stream
