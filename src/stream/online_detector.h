// Online CPA watermark detection: the examiner watching a live supply
// current deciding "watermark present?" as early as the correlation peak
// resolves (paper §IV frames detection over a captured trace; this is
// the same decision made incrementally). Per-rotation statistics live in
// a cpa::RotationAccumulator, so memory is O(P + chunk) instead of the
// batch path's O(N).
//
// Exactness: run to trace end, finalize() produces a DetectionResult
// whose rho sweep and decision are bit-identical to
// cpa::Detector::detect(Y, pattern, method) over the concatenated trace
// (the accumulator shares the batch sweep's finalisation — see
// cpa/accumulator.h). Asserted in tests for chips I and II at 1 and 8
// executor threads.
//
// Synchronisation (sync/types.h): the detector accepts desynchronised
// streams. Under SyncPolicy::kKnownOffset every chunk flows through a
// sync::StreamWarper before the accumulator; under kBlind the detector
// buffers raw cycles until lock_cycles, runs the coarse-to-fine search
// (sync::find_sync) on the buffer, then replays the buffer — and streams
// every later chunk — through the recovered correction, so a stream can
// lock mid-flight and keep accumulating with bounded memory from then
// on. When lock_cycles covers the whole stream the lock happens in
// finalize() and the result is bit-identical to the batch blind path
// (find_sync + warp_trace + Detector::detect), because the StreamWarper
// shares the batch warp's arithmetic.
//
// Early-stop policy: after every evaluate_every_chunks-th chunk the
// current spread spectrum is summarised; when the detector policy is
// satisfied AND cpa::detection_confidence exceeds confidence_threshold
// for consecutive_evaluations evaluations in a row, the decision fires
// and decision_cycles records how much trace it took. Disabling
// early_stop turns the detector into a pure streaming replacement for
// the batch sweep.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cpa/accumulator.h"
#include "cpa/detector.h"
#include "stream/chunk.h"
#include "sync/types.h"
#include "sync/warp.h"

namespace clockmark::runtime {
class Executor;
}

namespace clockmark::sync {
class CandidateEngine;
}

namespace clockmark::stream {

struct OnlineDetectorConfig {
  cpa::DetectorPolicy policy;  ///< decision thresholds (z, isolation, guard)
  /// Finalisation of the incremental sweep; kNaive is rejected (needs
  /// the materialised trace). kFft matches the batch detect default.
  cpa::CorrelationMethod method = cpa::CorrelationMethod::kFft;
  bool early_stop = true;
  /// Early stop when detection_confidence >= this ...
  double confidence_threshold = 0.999;
  /// ... for this many consecutive evaluations.
  std::size_t consecutive_evaluations = 3;
  /// Evaluate after every K-th ingested chunk (1 = every chunk).
  std::size_t evaluate_every_chunks = 1;
  /// No evaluation before this many cycles; 0 = one pattern period (the
  /// sweep is undefined on shorter traces).
  std::size_t min_cycles = 0;

  /// How the stream's alignment is treated (see sync/types.h).
  sync::SyncPolicy sync_policy = sync::SyncPolicy::kTriggered;
  /// kKnownOffset: correction applied to every cycle before CPA.
  sync::WarpSpec known_warp;
  /// kBlind: search configuration for the mid-stream lock.
  sync::BlindSyncConfig blind;
  /// kBlind: raw cycles buffered before the blind search runs (the
  /// lock window). 0 = four pattern periods. If the stream ends first,
  /// the lock runs on everything ingested at finalize() — which is the
  /// batch-identical configuration when set >= the stream length.
  std::size_t lock_cycles = 0;
  /// kBlind: pre-built scoring engine to use for the lock instead of
  /// constructing a fresh one — lets Sessions and services amortise the
  /// engine's pattern tables across detectors (detect::EngineCache).
  /// Used only when it was built for this detector's pattern; scores
  /// are engine-state-independent, so sharing is bit-identical.
  std::shared_ptr<const sync::CandidateEngine> engine;
};

struct OnlineDecision {
  bool decided = false;   ///< the early-stop decision fired mid-stream
  bool detected = false;
  std::size_t decision_cycles = 0;  ///< raw cycles consumed when decided
  std::size_t cycles = 0;           ///< total raw cycles consumed
  std::size_t chunks = 0;
  std::size_t evaluations = 0;
  double confidence = 0.0;          ///< of the latest evaluation
  cpa::DetectionResult result;      ///< latest full detection result
  /// Blind-lock outcome (kBlind only; set once the lock has run).
  std::optional<sync::SyncEstimate> sync;
};

class OnlineDetector {
 public:
  OnlineDetector(std::vector<double> pattern,
                 OnlineDetectorConfig config = {});

  /// Ingests the next chunk. Chunks must be contiguous and in order
  /// (chunk.start_cycle == cycles_consumed()); anything else throws —
  /// a resumed stream must re-attach exactly where it left off. Returns
  /// true once the early-stop decision has fired (the caller can stop
  /// feeding). A non-null executor parallelises the per-rotation sweep
  /// of the evaluations — and the blind lock's search — with
  /// bit-identical output.
  bool ingest(const Chunk& chunk, runtime::Executor* executor = nullptr);

  /// Final decision over everything ingested. If the early stop already
  /// fired, returns that decision; otherwise runs the blind lock if it
  /// is still pending, flushes the warper tail, and evaluates the
  /// full-stream spectrum — bit-identical to the batch detector (see
  /// header).
  const OnlineDecision& finalize(runtime::Executor* executor = nullptr);

  /// Raw cycles ingested (the chunk-ordering clock). Equals
  /// accumulator().cycles() only when no warp is active.
  std::size_t cycles_consumed() const noexcept { return raw_cycles_; }
  const cpa::RotationAccumulator& accumulator() const noexcept {
    return accumulator_;
  }
  const OnlineDecision& decision() const noexcept { return decision_; }
  const OnlineDetectorConfig& config() const noexcept { return config_; }

 private:
  void evaluate(runtime::Executor* executor);
  void lock(runtime::Executor* executor);
  void feed_warped(std::span<const double> values);

  OnlineDetectorConfig config_;
  cpa::RotationAccumulator accumulator_;
  cpa::Detector detector_;
  OnlineDecision decision_;
  std::size_t min_cycles_;
  std::size_t lock_cycles_;
  std::size_t raw_cycles_ = 0;
  std::size_t streak_ = 0;
  bool finalized_ = false;
  bool locked_ = false;                ///< the blind lock has run
  std::vector<double> lock_buffer_;    ///< raw cycles awaiting the lock
  /// kBlind only: candidate scoring engine for the lock, built once at
  /// construction so repeated locks (and the pattern's FFT) are paid
  /// for once per detector, not per search.
  std::shared_ptr<const sync::CandidateEngine> engine_;
  std::unique_ptr<sync::StreamWarper> warper_;
  std::vector<double> warp_scratch_;
};

}  // namespace clockmark::stream
