// Online CPA watermark detection: the examiner watching a live supply
// current deciding "watermark present?" as early as the correlation peak
// resolves (paper §IV frames detection over a captured trace; this is
// the same decision made incrementally). Per-rotation statistics live in
// a cpa::RotationAccumulator, so memory is O(P + chunk) instead of the
// batch path's O(N).
//
// Exactness: run to trace end, finalize() produces a DetectionResult
// whose rho sweep and decision are bit-identical to
// cpa::Detector::detect(Y, pattern, method) over the concatenated trace
// (the accumulator shares the batch sweep's finalisation — see
// cpa/accumulator.h). Asserted in tests for chips I and II at 1 and 8
// executor threads.
//
// Early-stop policy: after every evaluate_every_chunks-th chunk the
// current spread spectrum is summarised; when the detector policy is
// satisfied AND cpa::detection_confidence exceeds confidence_threshold
// for consecutive_evaluations evaluations in a row, the decision fires
// and decision_cycles records how much trace it took. Disabling
// early_stop turns the detector into a pure streaming replacement for
// the batch sweep.
#pragma once

#include <cstddef>
#include <vector>

#include "cpa/accumulator.h"
#include "cpa/detector.h"
#include "stream/chunk.h"

namespace clockmark::runtime {
class Executor;
}

namespace clockmark::stream {

struct OnlineDetectorConfig {
  cpa::DetectorPolicy policy;  ///< decision thresholds (z, isolation, guard)
  /// Finalisation of the incremental sweep; kNaive is rejected (needs
  /// the materialised trace). kFft matches the batch detect default.
  cpa::CorrelationMethod method = cpa::CorrelationMethod::kFft;
  bool early_stop = true;
  /// Early stop when detection_confidence >= this ...
  double confidence_threshold = 0.999;
  /// ... for this many consecutive evaluations.
  std::size_t consecutive_evaluations = 3;
  /// Evaluate after every K-th ingested chunk (1 = every chunk).
  std::size_t evaluate_every_chunks = 1;
  /// No evaluation before this many cycles; 0 = one pattern period (the
  /// sweep is undefined on shorter traces).
  std::size_t min_cycles = 0;
};

struct OnlineDecision {
  bool decided = false;   ///< the early-stop decision fired mid-stream
  bool detected = false;
  std::size_t decision_cycles = 0;  ///< cycles consumed when decided
  std::size_t cycles = 0;           ///< total cycles consumed
  std::size_t chunks = 0;
  std::size_t evaluations = 0;
  double confidence = 0.0;          ///< of the latest evaluation
  cpa::DetectionResult result;      ///< latest full detection result
};

class OnlineDetector {
 public:
  OnlineDetector(std::vector<double> pattern,
                 OnlineDetectorConfig config = {});

  /// Ingests the next chunk. Chunks must be contiguous and in order
  /// (chunk.start_cycle == cycles_consumed()); anything else throws —
  /// a resumed stream must re-attach exactly where it left off. Returns
  /// true once the early-stop decision has fired (the caller can stop
  /// feeding). A non-null executor parallelises the per-rotation sweep
  /// of the evaluations with bit-identical output.
  bool ingest(const Chunk& chunk, runtime::Executor* executor = nullptr);

  /// Final decision over everything ingested. If the early stop already
  /// fired, returns that decision; otherwise evaluates the full-stream
  /// spectrum — bit-identical to the batch detector (see header).
  const OnlineDecision& finalize(runtime::Executor* executor = nullptr);

  std::size_t cycles_consumed() const noexcept {
    return accumulator_.cycles();
  }
  const cpa::RotationAccumulator& accumulator() const noexcept {
    return accumulator_;
  }
  const OnlineDecision& decision() const noexcept { return decision_; }
  const OnlineDetectorConfig& config() const noexcept { return config_; }

 private:
  void evaluate(runtime::Executor* executor);

  OnlineDetectorConfig config_;
  cpa::RotationAccumulator accumulator_;
  cpa::Detector detector_;
  OnlineDecision decision_;
  std::size_t min_cycles_;
  std::size_t streak_ = 0;
  bool finalized_ = false;
};

}  // namespace clockmark::stream
