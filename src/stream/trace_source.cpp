#include "stream/trace_source.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace clockmark::stream {

std::vector<Chunk> chop(std::span<const double> y, std::size_t chunk_cycles) {
  if (chunk_cycles == 0) {
    throw std::invalid_argument("chop: chunk_cycles must be > 0");
  }
  std::vector<Chunk> chunks;
  chunks.reserve((y.size() + chunk_cycles - 1) / chunk_cycles);
  for (std::size_t start = 0; start < y.size(); start += chunk_cycles) {
    const std::size_t len = std::min(chunk_cycles, y.size() - start);
    Chunk c;
    c.index = chunks.size();
    c.start_cycle = start;
    c.values.assign(y.begin() + static_cast<std::ptrdiff_t>(start),
                    y.begin() + static_cast<std::ptrdiff_t>(start + len));
    chunks.push_back(std::move(c));
  }
  return chunks;
}

CallbackSource::CallbackSource(std::function<std::optional<Chunk>()> fn,
                               std::size_t total_cycles)
    : fn_(std::move(fn)), total_(total_cycles) {
  if (!fn_) {
    throw std::invalid_argument("CallbackSource: null callback");
  }
}

std::optional<Chunk> CallbackSource::next() { return fn_(); }

ScenarioSource::ScenarioSource(const sim::Scenario& scenario,
                               std::size_t repetition,
                               std::size_t chunk_cycles)
    : stream_(scenario.open_stream(repetition, chunk_cycles)) {}

std::optional<Chunk> ScenarioSource::next() {
  // start_cycle counts emitted Y cycles, not input cycles: with a
  // simulated trigger offset the acquisition loses up to one cycle at
  // the front, so the two counters diverge (and a warm-up feed can even
  // emit nothing — skip it rather than ending the stream).
  for (;;) {
    std::vector<double> values = stream_->next();
    if (values.empty()) {
      if (stream_->position() < stream_->total_cycles()) continue;
      return std::nullopt;
    }
    Chunk chunk;
    chunk.index = index_++;
    chunk.start_cycle = emitted_;
    emitted_ += values.size();
    chunk.values = std::move(values);
    return chunk;
  }
}

std::size_t ScenarioSource::total_cycles() const {
  return stream_->total_cycles();
}

ReplaySource::ReplaySource(const std::string& path, std::size_t chunk_cycles)
    : reader_(path),
      chunk_cycles_(chunk_cycles),
      total_(reader_.total_cycles().value_or(0)) {
  if (chunk_cycles_ == 0) {
    throw std::invalid_argument("ReplaySource: chunk_cycles must be > 0");
  }
}

std::optional<Chunk> ReplaySource::next() {
  Chunk chunk;
  chunk.values.resize(chunk_cycles_);
  const std::size_t got = reader_.read(chunk.values);
  if (got == 0) return std::nullopt;
  chunk.values.resize(got);
  chunk.index = index_++;
  chunk.start_cycle = position_;
  position_ += got;
  return chunk;
}

}  // namespace clockmark::stream
