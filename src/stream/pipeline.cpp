#include "stream/pipeline.h"

#include <atomic>
#include <exception>
#include <thread>
#include <utility>

namespace clockmark::stream {

StreamPipeline::StreamPipeline(StreamPipelineConfig config)
    : config_(std::move(config)) {}

StreamReport StreamPipeline::run(TraceSource& source,
                                 std::vector<double> pattern,
                                 runtime::Executor* executor) const {
  StreamReport report;
  BoundedQueue<Chunk> queue(config_.queue_capacity);
  std::atomic<std::size_t> produced{0};

  std::thread producer([&] {
    try {
      while (auto chunk = source.next()) {
        produced.fetch_add(1, std::memory_order_relaxed);
        if (!queue.push(std::move(*chunk))) break;  // consumer stopped
      }
      queue.close();
    } catch (const std::exception& e) {
      queue.poison(e.what());
    } catch (...) {
      queue.poison("unknown source failure");
    }
  });

  OnlineDetector detector(std::move(pattern), config_.detector);
  std::size_t max_chunk_bytes = 0;
  try {
    while (auto chunk = queue.pop()) {
      max_chunk_bytes =
          std::max(max_chunk_bytes, chunk->values.size() * sizeof(double));
      const bool decided = detector.ingest(*chunk, executor);
      ++report.chunks_consumed;
      if (decided) {
        queue.close();  // stops the producer at its next push
        break;
      }
    }
  } catch (const QueuePoisoned& e) {
    report.source_failed = true;
    report.error = e.what();
  } catch (...) {
    // Detector failure: stop the producer before rethrowing.
    queue.poison("consumer failed");
    producer.join();
    throw;
  }

  producer.join();
  report.decision = detector.finalize(executor);
  report.queue = queue.stats();
  report.chunks_produced = produced.load(std::memory_order_relaxed);
  // +1: the chunk in the consumer's hands while the queue sits at its
  // high-water mark.
  report.peak_buffered_bytes =
      (report.queue.high_water + 1) * max_chunk_bytes;
  return report;
}

}  // namespace clockmark::stream
