// Producers for the streaming pipeline: anything that can hand out the
// next whole-cycle chunk of a per-cycle power trace, in cycle order.
//
//   ScenarioSource  pulls chunks from a sim::Scenario repetition via its
//                   chunked synthesis entry point (Scenario::open_stream)
//                   — no full trace is ever materialised.
//   ReplaySource    streams a CSV / CMTRACE binary trace file written by
//                   measure::write_trace_* or any scope export the
//                   trace_detect example already reads; capture metadata
//                   (time base, known trigger offset) is exposed so
//                   detection can pick a SyncPolicy.
//   CallbackSource  wraps a std::function — the test seam, and the hook
//                   for gluing in an external capture process.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "measure/trace_io.h"
#include "sim/trace_stream.h"
#include "stream/chunk.h"

namespace clockmark::stream {

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Next chunk in cycle order (chunk.start_cycle equals the previous
  /// chunk's end_cycle; the first chunk starts at cycle 0). nullopt =
  /// end of stream. Throws on source failure — the pipeline turns that
  /// into queue poisoning.
  virtual std::optional<Chunk> next() = 0;

  /// Total cycles when known up front; 0 = unknown / unbounded.
  virtual std::size_t total_cycles() const { return 0; }
};

/// Splits a materialised trace into whole-cycle chunks (tests, and the
/// batch-vs-streaming comparisons in the bench).
std::vector<Chunk> chop(std::span<const double> y, std::size_t chunk_cycles);

class CallbackSource : public TraceSource {
 public:
  explicit CallbackSource(std::function<std::optional<Chunk>()> fn,
                          std::size_t total_cycles = 0);

  std::optional<Chunk> next() override;
  std::size_t total_cycles() const override { return total_; }

 private:
  std::function<std::optional<Chunk>()> fn_;
  std::size_t total_;
};

class ScenarioSource : public TraceSource {
 public:
  /// The scenario must outlive the source. Each source owns one
  /// repetition's stream; distinct repetitions can stream concurrently
  /// from the same Scenario (the run() thread-safety contract).
  ScenarioSource(const sim::Scenario& scenario, std::size_t repetition,
                 std::size_t chunk_cycles = 4096);

  std::optional<Chunk> next() override;
  std::size_t total_cycles() const override;

  /// CPA model pattern / expected peak of this repetition.
  const std::vector<double>& pattern() const { return stream_->pattern(); }
  std::size_t true_rotation() const { return stream_->true_rotation(); }

 private:
  std::unique_ptr<sim::ScenarioTraceStream> stream_;
  std::size_t index_ = 0;
  std::size_t emitted_ = 0;  ///< Y cycles handed out so far
};

class ReplaySource : public TraceSource {
 public:
  explicit ReplaySource(const std::string& path,
                        std::size_t chunk_cycles = 4096);

  std::optional<Chunk> next() override;
  std::size_t total_cycles() const override { return total_; }

  /// Capture metadata persisted in the file (default for v1 files).
  const measure::TraceMeta& meta() const noexcept { return reader_.meta(); }

 private:
  measure::TraceFileReader reader_;
  std::size_t chunk_cycles_;
  std::size_t total_;  ///< 0 for CSV (unknown until drained)
  std::size_t index_ = 0;
  std::size_t position_ = 0;
};

}  // namespace clockmark::stream
