// Deterministic, vectorization-friendly transcendental kernels for the
// measurement-noise hot path (util::Pcg32 Box-Muller draws).
//
// Why not libm: a repetition pushes ~30 M Gaussian draws through the
// acquisition chain, and glibc's scalar log/sincos calls are both the
// dominant cost and impossible to batch — the vectorizer cannot touch a
// loop whose body is an opaque PLT call. These kernels are branch-free
// straight-line polynomial code, so gcc unrolls/vectorizes the batched
// fill loops in util::Pcg32::fill_gaussian, while the per-sample
// reference path calls the *same* inline functions scalar. One shared
// implementation is what makes the fused acquisition kernel bit-identical
// to the per-sample reference path: every lane of the vectorized loop
// performs exactly the op sequence written here, and IEEE-754 ops are
// deterministic per element regardless of how they are scheduled.
//
// Determinism across builds: all polynomial steps go through std::fma,
// which is correctly rounded whether it lowers to a hardware FMA
// (-mfma builds) or to the exact libm soft implementation (baseline
// x86-64). No step depends on the compiler contracting or reassociating
// anything, so a SSE2 build, an AVX2+FMA build, and any scalar/vector mix
// all produce the same bits.
//
// Accuracy: these are noise-synthesis kernels, not a libm replacement.
// Relative error is < 1e-15 over the documented domains (asserted
// against std::log / std::sin / std::cos in tests/test_util_rng.cpp),
// which is far below the physical noise parameters (1e-3 V rms) they
// feed; they are NOT guaranteed to round identically to glibc.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

namespace clockmark::util {

/// Natural logarithm for finite normal x in (0, inf). The Box-Muller
/// inputs are uniforms in (0, 1), i.e. >= 2^-32, so subnormals, zero,
/// infinities and NaN are outside the contract (garbage in, garbage
/// out — no checks on the hot path).
inline double fast_log(double x) noexcept {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  // Split x = m * 2^e with m in [1, 2), then renormalise m into
  // [sqrt(2)/2, sqrt(2)) so the atanh argument below stays small. The
  // exponent stays in 32-bit lanes: AVX2 has no int64->double convert,
  // and a 32-bit exponent is what keeps this function vectorizable.
  const auto e_raw = static_cast<std::int32_t>(bits >> 52);
  double m = std::bit_cast<double>((bits & 0x000fffffffffffffULL) |
                                   0x3ff0000000000000ULL);
  const bool shift = m > 1.4142135623730951;  // sqrt(2)
  m = shift ? 0.5 * m : m;
  const std::int32_t e = e_raw - 1023 + (shift ? 1 : 0);

  // log(m) = 2 atanh(z) with z = (m-1)/(m+1), |z| <= 0.1716. The odd
  // series in z converges by a factor z^2 < 0.0295 per term; truncating
  // after z^17 leaves < 2e-16 relative error.
  const double z = (m - 1.0) / (m + 1.0);
  const double w = z * z;
  double q = 2.0 / 17.0;
  q = std::fma(q, w, 2.0 / 15.0);
  q = std::fma(q, w, 2.0 / 13.0);
  q = std::fma(q, w, 2.0 / 11.0);
  q = std::fma(q, w, 2.0 / 9.0);
  q = std::fma(q, w, 2.0 / 7.0);
  q = std::fma(q, w, 2.0 / 5.0);
  q = std::fma(q, w, 2.0 / 3.0);
  const double log_m = std::fma(z * w, q, 2.0 * z);

  // log(x) = e * ln2 + log(m), with ln2 split so the (exact) integer
  // multiple of the high part does not swallow log(m)'s low bits.
  constexpr double kLn2Hi = 0x1.62e42fefa38p-1;   // high 44 bits of ln 2
  constexpr double kLn2Lo = 0x1.ef35793c7673p-45; // ln 2 - kLn2Hi
  const double e_d = static_cast<double>(e);
  return std::fma(e_d, kLn2Hi, log_m) + e_d * kLn2Lo;
}

/// sin(2*pi*u) and cos(2*pi*u) for u in [0, 1) — the Box-Muller angle is
/// always a fraction of a full turn, so the quadrant reduction is exact
/// fixed-point arithmetic on u instead of a Payne-Hanek reduction of the
/// rounded product 2*pi*u.
inline void fast_sincos_2pi(double u, double& sin_out,
                            double& cos_out) noexcept {
  // Quarter turns: x in [0, 4). Nearest quadrant k in {0..4} via
  // truncation (x + 0.5 is non-negative, so trunc == floor); the
  // remainder g = x - k in [-1/2, 1/2] is exact (both operands are
  // <= 4.5 and k is an integer).
  const double x = 4.0 * u;
  const int k = static_cast<int>(x + 0.5);
  const double g = x - static_cast<double>(k);

  // z = g * pi/2 in [-pi/4, pi/4]; Taylor series there need 8 (sin,
  // through z^15) / 9 (cos, through z^16) terms for < 1e-16 absolute
  // error.
  const double z = g * 1.5707963267948966;
  const double t = z * z;
  double sp = -7.6471637318198164759e-13;           // -1/15!
  sp = std::fma(sp, t, 1.6059043836821614599e-10);  //  1/13!
  sp = std::fma(sp, t, -2.5052108385441718775e-8);  // -1/11!
  sp = std::fma(sp, t, 2.7557319223985890653e-6);   //  1/9!
  sp = std::fma(sp, t, -1.9841269841269841270e-4);  // -1/7!
  sp = std::fma(sp, t, 8.3333333333333333333e-3);   //  1/5!
  sp = std::fma(sp, t, -1.6666666666666666667e-1);  // -1/3!
  sp = std::fma(sp * t, z, z);                      // z + z^3 * S(z^2)

  double cp = 4.7794773323873852974e-14;            //  1/16!
  cp = std::fma(cp, t, -1.1470745597729724714e-11); // -1/14!
  cp = std::fma(cp, t, 2.0876756987868098979e-9);   //  1/12!
  cp = std::fma(cp, t, -2.7557319223985890653e-7);  // -1/10!
  cp = std::fma(cp, t, 2.4801587301587301587e-5);   //  1/8!
  cp = std::fma(cp, t, -1.3888888888888888889e-3);  // -1/6!
  cp = std::fma(cp, t, 4.1666666666666666667e-2);   //  1/4!
  cp = std::fma(cp, t, -5.0e-1);                    // -1/2!
  cp = std::fma(cp, t, 1.0);                        // 1 + t * C(t)

  // Rotate by k quarter turns (k == 4 wraps to 0), branch-free so the
  // vectorizer turns the selects into blends.
  const int m = k & 3;
  const bool swap = (m & 1) != 0;
  const double s1 = swap ? cp : sp;
  const double c1 = swap ? sp : cp;
  sin_out = (m >= 2) ? -s1 : s1;
  cos_out = (m == 1 || m == 2) ? -c1 : c1;
}

/// One Box-Muller pair: two standard normal variates from two uniforms,
/// u1 in (0, 1], u2 in [0, 1). first/second is the draw order of the
/// sequential generator (cos first, sin cached).
inline void fast_gaussian_pair(double u1, double u2, double& first,
                               double& second) noexcept {
  const double r = std::sqrt(-2.0 * fast_log(u1));
  double s, c;
  fast_sincos_2pi(u2, s, c);
  first = r * c;
  second = r * s;
}

}  // namespace clockmark::util
