// Tiny command-line argument parser for the example and bench binaries.
// Supports --name=value and --name value forms plus boolean flags.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace clockmark::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  /// True if --name was passed (with or without a value).
  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non --flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Name of the executable (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::optional<std::string> lookup(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> named_;
  std::vector<std::string> positional_;
};

}  // namespace clockmark::util
