// Tiny command-line argument parser for the example and bench binaries.
// Supports --name=value and --name value forms plus boolean flags.
//
// Every get/has call registers the flag name as recognised; after the
// last such call, reject_unknown() turns any leftover --flag into a
// fatal error with a "did you mean --threads?" hint — a typo like
// --thread=8 must not silently run with defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace clockmark::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  /// True if --name was passed (with or without a value).
  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Flags passed on the command line that no get/has call ever asked
  /// about — i.e. flags the program does not understand.
  std::vector<std::string> unknown() const;

  /// For each unknown flag, the closest recognised name (edit distance
  /// <= 2 and at most half the name's length), or "" when nothing is
  /// plausibly close.
  std::string suggestion(const std::string& name) const;

  /// Call after the last get/has: prints an error (plus a did-you-mean
  /// hint when a recognised flag is close) for every unknown flag and
  /// exits with status 2. No-op when every flag was recognised.
  void reject_unknown() const;

  /// The closest entry in `allowed` to `value` (same plausibility policy
  /// as suggestion()), or "" when nothing is close enough to hint at.
  static std::string value_suggestion(const std::string& value,
                                      const std::vector<std::string>& allowed);

  /// Call when an enumerated option carries a value outside its allowed
  /// set: prints an error naming the option and the allowed values (plus
  /// a did-you-mean hint when one is close) and exits with status 2.
  /// No-op when `value` is in `allowed`.
  void reject_unknown_value(const std::string& name, const std::string& value,
                            const std::vector<std::string>& allowed) const;

  /// Positional (non --flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Name of the executable (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::optional<std::string> lookup(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> named_;
  std::vector<std::string> positional_;
  /// Names the program asked about — the de-facto set of valid flags.
  mutable std::set<std::string> recognised_;
};

}  // namespace clockmark::util
