#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace clockmark::util {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) noexcept
    : state_(0u), inc_((stream << 1u) | 1u) {
  (*this)();
  state_ += seed;
  (*this)();
}

Pcg32::result_type Pcg32::operator()() noexcept {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Pcg32::bounded(std::uint32_t bound) noexcept {
  // Lemire's nearly-divisionless technique.
  std::uint64_t m = static_cast<std::uint64_t>((*this)()) * bound;
  auto lo = static_cast<std::uint32_t>(m);
  if (lo < bound) {
    const std::uint32_t threshold = (0u - bound) % bound;
    while (lo < threshold) {
      m = static_cast<std::uint64_t>((*this)()) * bound;
      lo = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32u);
}

double Pcg32::uniform() noexcept {
  // 32 random bits scaled into [0, 1).
  return static_cast<double>((*this)()) * 0x1p-32;
}

double Pcg32::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

double Pcg32::gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 is kept away from zero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Pcg32::gaussian(double mean, double sigma) noexcept {
  return mean + sigma * gaussian();
}

bool Pcg32::bernoulli(double p) noexcept { return uniform() < p; }

Pcg32 Pcg32::fork(std::uint64_t salt) noexcept {
  std::uint64_t s = state_ ^ (salt * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t child_seed = splitmix64(s);
  const std::uint64_t child_stream = splitmix64(s);
  return Pcg32(child_seed, child_stream);
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30u)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27u)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31u);
}

}  // namespace clockmark::util
