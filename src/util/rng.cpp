#include "util/rng.h"

#include <algorithm>
#include <cstddef>

#include "util/fastmath.h"

namespace clockmark::util {

namespace {
/// The PCG-XSH-RR output permutation of one raw state word — the same
/// computation Pcg32::operator() applies before advancing. Factored out
/// so the batched fill can emit draws from jump-ahead lane states.
inline std::uint32_t pcg_output(std::uint64_t old) noexcept {
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}
}  // namespace

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) noexcept
    : state_(0u), inc_((stream << 1u) | 1u) {
  (*this)();
  state_ += seed;
  (*this)();
}

Pcg32::result_type Pcg32::operator()() noexcept {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Pcg32::bounded(std::uint32_t bound) noexcept {
  // Lemire's nearly-divisionless technique.
  std::uint64_t m = static_cast<std::uint64_t>((*this)()) * bound;
  auto lo = static_cast<std::uint32_t>(m);
  if (lo < bound) {
    const std::uint32_t threshold = (0u - bound) % bound;
    while (lo < threshold) {
      m = static_cast<std::uint64_t>((*this)()) * bound;
      lo = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32u);
}

double Pcg32::uniform() noexcept {
  // 32 random bits scaled into [0, 1).
  return static_cast<double>((*this)()) * 0x1p-32;
}

double Pcg32::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

double Pcg32::gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 is kept away from zero to avoid log(0). The
  // transcendentals come from fastmath.h — the same inline kernels the
  // batched fill_gaussian vectorizes — so the scalar and batched draws
  // are bit-identical by construction.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  double first = 0.0;
  double second = 0.0;
  fast_gaussian_pair(u1, u2, first, second);
  cached_gaussian_ = second;
  has_cached_gaussian_ = true;
  return first;
}

double Pcg32::gaussian(double mean, double sigma) noexcept {
  return mean + sigma * gaussian();
}

void Pcg32::fill_gaussian(std::span<double> out, double mean,
                          double sigma) noexcept {
  std::size_t i = 0;
  if (has_cached_gaussian_ && i < out.size()) {
    has_cached_gaussian_ = false;
    out[i++] = mean + sigma * cached_gaussian_;
  }

  // Staged array passes over a stack-resident batch: the uniform fill is
  // a serial RNG walk, but the log/sqrt/sincos transforms and the final
  // scale are independent per pair, so gcc vectorizes each pass. The
  // per-element op sequence (and thus every output bit) matches the
  // scalar gaussian() exactly — see fast_gaussian_pair.
  constexpr std::size_t kPairs = 512;
  double u1[kPairs];
  double u2[kPairs];
  double rr[kPairs];
  double sn[kPairs];
  double cs[kPairs];
  while (out.size() - i >= 2) {
    const std::size_t pairs = std::min(kPairs, (out.size() - i) / 2);

    // Uniform fill. The sequential generator consumes exactly two draws
    // per pair unless a u1 draw lands on exactly zero (probability
    // 2^-32 per draw). Exploit that: advance two jump-ahead lanes —
    // even-index and odd-index states of the *same* stream — so the two
    // 64-bit multiply chains overlap, and fall back to the plain
    // rejection loop for the whole batch in the astronomically rare
    // zero case. Draw values and the final generator state are
    // bit-identical to the sequential walk either way.
    bool no_zero = true;
    {
      constexpr std::uint64_t kMult = 6364136223846793005ULL;
      constexpr std::uint64_t kMult2 = kMult * kMult;  // two-step multiplier
      const std::uint64_t inc2 = inc_ * (kMult + 1ULL);
      std::uint64_t sa = state_;                 // states s0, s2, s4, ...
      std::uint64_t sb = state_ * kMult + inc_;  // states s1, s3, s5, ...
      for (std::size_t p = 0; p < pairs; ++p) {
        const std::uint32_t ra = pcg_output(sa);
        const std::uint32_t rb = pcg_output(sb);
        sa = sa * kMult2 + inc2;
        sb = sb * kMult2 + inc2;
        u1[p] = static_cast<double>(ra) * 0x1p-32;
        u2[p] = static_cast<double>(rb) * 0x1p-32;
        no_zero = no_zero && (ra != 0u);
      }
      if (no_zero) state_ = sa;  // sa has advanced to s_{2*pairs}
    }
    if (!no_zero) {
      // state_ was not advanced above, so this replays the whole batch
      // with the sequential rejection semantics.
      for (std::size_t p = 0; p < pairs; ++p) {
        double a = 0.0;
        do {
          a = uniform();
        } while (a <= 0.0);
        u1[p] = a;
        u2[p] = uniform();
      }
    }
    for (std::size_t p = 0; p < pairs; ++p) rr[p] = -2.0 * fast_log(u1[p]);
    for (std::size_t p = 0; p < pairs; ++p) rr[p] = std::sqrt(rr[p]);
    for (std::size_t p = 0; p < pairs; ++p) {
      fast_sincos_2pi(u2[p], sn[p], cs[p]);
    }
    for (std::size_t p = 0; p < pairs; ++p) {
      out[i + 2 * p] = mean + sigma * (rr[p] * cs[p]);
      out[i + 2 * p + 1] = mean + sigma * (rr[p] * sn[p]);
    }
    i += 2 * pairs;
  }

  // Odd tail: one more sequential draw, which leaves its sine partner in
  // the cache exactly as the scalar loop would.
  if (i < out.size()) out[i] = gaussian(mean, sigma);
}

bool Pcg32::bernoulli(double p) noexcept { return uniform() < p; }

Pcg32 Pcg32::fork(std::uint64_t salt) noexcept {
  std::uint64_t s = state_ ^ (salt * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t child_seed = splitmix64(s);
  const std::uint64_t child_stream = splitmix64(s);
  return Pcg32(child_seed, child_stream);
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30u)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27u)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31u);
}

}  // namespace clockmark::util
