#include "util/args.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace clockmark::util {

namespace {

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t prev = row[0];  // d[i-1][j-1]
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];  // d[i-1][j]
      const std::size_t sub = prev + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j - 1] + 1, up + 1, sub});
      prev = up;
    }
  }
  return row[b.size()];
}

template <typename Container>
std::string closest(const std::string& name, const Container& candidates) {
  std::string best;
  std::size_t best_dist = 3;  // hint only within edit distance 2
  for (const auto& candidate : candidates) {
    const std::size_t d = edit_distance(name, candidate);
    if (d < best_dist && d * 2 <= std::max(name.size(), candidate.size())) {
      best_dist = d;
      best = candidate;
    }
  }
  return best;
}

}  // namespace

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      named_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      named_[body] = argv[++i];
    } else {
      named_[body] = "";  // bare flag
    }
  }
}

bool Args::has(const std::string& name) const {
  recognised_.insert(name);
  return named_.count(name) > 0;
}

std::optional<std::string> Args::lookup(const std::string& name) const {
  recognised_.insert(name);
  const auto it = named_.find(name);
  if (it == named_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> Args::unknown() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : named_) {
    (void)value;
    if (recognised_.count(name) == 0) out.push_back(name);
  }
  return out;
}

std::string Args::suggestion(const std::string& name) const {
  return closest(name, recognised_);
}

std::string Args::value_suggestion(const std::string& value,
                                   const std::vector<std::string>& allowed) {
  return closest(value, allowed);
}

void Args::reject_unknown() const {
  const std::vector<std::string> bad = unknown();
  if (bad.empty()) return;
  for (const auto& name : bad) {
    const std::string hint = suggestion(name);
    if (hint.empty()) {
      std::fprintf(stderr, "%s: unrecognized option '--%s'\n",
                   program_.c_str(), name.c_str());
    } else {
      std::fprintf(stderr,
                   "%s: unrecognized option '--%s' (did you mean '--%s'?)\n",
                   program_.c_str(), name.c_str(), hint.c_str());
    }
  }
  std::exit(2);
}

void Args::reject_unknown_value(
    const std::string& name, const std::string& value,
    const std::vector<std::string>& allowed) const {
  if (std::find(allowed.begin(), allowed.end(), value) != allowed.end()) {
    return;
  }
  const std::string hint = value_suggestion(value, allowed);
  if (!hint.empty()) {
    std::fprintf(stderr,
                 "%s: invalid value '%s' for '--%s' (did you mean '%s'?)\n",
                 program_.c_str(), value.c_str(), name.c_str(), hint.c_str());
  } else {
    std::string expected;
    for (const auto& candidate : allowed) {
      if (!expected.empty()) expected += ", ";
      expected += candidate;
    }
    std::fprintf(stderr, "%s: invalid value '%s' for '--%s' (expected %s)\n",
                 program_.c_str(), value.c_str(), name.c_str(),
                 expected.c_str());
  }
  std::exit(2);
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  return lookup(name).value_or(fallback);
}

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t fallback) const {
  const auto v = lookup(name);
  if (!v || v->empty()) return fallback;
  return std::strtoll(v->c_str(), nullptr, 0);
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto v = lookup(name);
  if (!v || v->empty()) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool Args::get_bool(const std::string& name, bool fallback) const {
  const auto v = lookup(name);
  if (!v) return fallback;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes") return true;
  return false;
}

}  // namespace clockmark::util
