#include "util/args.h"

#include <cstdlib>
#include <stdexcept>

namespace clockmark::util {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      named_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      named_[body] = argv[++i];
    } else {
      named_[body] = "";  // bare flag
    }
  }
}

bool Args::has(const std::string& name) const {
  return named_.count(name) > 0;
}

std::optional<std::string> Args::lookup(const std::string& name) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  return lookup(name).value_or(fallback);
}

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t fallback) const {
  const auto v = lookup(name);
  if (!v || v->empty()) return fallback;
  return std::strtoll(v->c_str(), nullptr, 0);
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto v = lookup(name);
  if (!v || v->empty()) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool Args::get_bool(const std::string& name, bool fallback) const {
  const auto v = lookup(name);
  if (!v) return fallback;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes") return true;
  return false;
}

}  // namespace clockmark::util
