// Terminal rendering of the paper's figures: line charts (spread spectra,
// power traces), digital waveforms (Fig. 2), and box plots (Fig. 6).
// The bench binaries print these so the reproduction is inspectable
// without any plotting toolchain.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/stats.h"

namespace clockmark::util {

struct ChartOptions {
  int width = 100;          ///< plot area width in characters
  int height = 20;          ///< plot area height in characters
  std::string title;
  std::string x_label;
  std::string y_label;
  bool y_zero_line = true;  ///< draw a line at y = 0 when it is in range
};

/// Renders y-vs-index as an ASCII line chart. Values are downsampled by
/// min/max binning so narrow peaks (e.g. a single correlation spike among
/// 4095 rotations) remain visible at any terminal width.
std::string line_chart(std::span<const double> y, const ChartOptions& opts);

/// Renders several series on a shared x-axis, one panel per series.
std::string multi_panel_chart(
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    const ChartOptions& opts);

/// Renders binary signals as digital waveforms, e.g.
///   CLK        _|~|_|~|_|~|_|~|
///   WMARK      ___|~~~~~~~|____
/// One row per named signal; each clock cycle is two characters wide.
std::string digital_waveform(
    const std::vector<std::pair<std::string, std::vector<bool>>>& signals,
    int max_cycles = 40);

/// Renders a labelled horizontal box plot row (median, 95 % box, whiskers)
/// mapped onto [lo, hi].
std::string box_plot_row(const std::string& label, const BoxPlot& bp,
                         double lo, double hi, int width = 80);

}  // namespace clockmark::util
