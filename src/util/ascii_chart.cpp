#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace clockmark::util {
namespace {

struct Range {
  double lo;
  double hi;
};

Range value_range(std::span<const double> y) {
  double lo = y.empty() ? 0.0 : y[0];
  double hi = lo;
  for (const double v : y) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (lo == hi) {  // flat series: widen so it renders mid-panel
    lo -= 1.0;
    hi += 1.0;
  }
  return {lo, hi};
}

int to_row(double v, const Range& r, int height) {
  const double norm = (v - r.lo) / (r.hi - r.lo);
  const int row = static_cast<int>(std::lround(norm * (height - 1)));
  return std::clamp(row, 0, height - 1);
}

std::string format_tick(double v) {
  std::ostringstream os;
  os.precision(4);
  os << v;
  std::string s = os.str();
  if (s.size() > 10) s.resize(10);
  return s;
}

}  // namespace

std::string line_chart(std::span<const double> y, const ChartOptions& opts) {
  std::ostringstream out;
  if (!opts.title.empty()) out << opts.title << '\n';
  if (y.empty()) {
    out << "(empty series)\n";
    return out.str();
  }
  const int width = std::max(opts.width, 10);
  const int height = std::max(opts.height, 4);
  const Range r = value_range(y);

  // Min/max binning: each column keeps the extremes of its bin so single
  // sample spikes are never lost to downsampling.
  std::vector<Range> cols(static_cast<std::size_t>(width),
                          Range{r.hi, r.lo});
  const double samples_per_col =
      static_cast<double>(y.size()) / static_cast<double>(width);
  for (std::size_t i = 0; i < y.size(); ++i) {
    auto c = static_cast<std::size_t>(static_cast<double>(i) /
                                      std::max(samples_per_col, 1e-12));
    c = std::min(c, static_cast<std::size_t>(width - 1));
    cols[c].lo = std::min(cols[c].lo, y[i]);
    cols[c].hi = std::max(cols[c].hi, y[i]);
  }

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  if (opts.y_zero_line && r.lo < 0.0 && r.hi > 0.0) {
    const int zr = to_row(0.0, r, height);
    grid[static_cast<std::size_t>(zr)]
        .assign(static_cast<std::size_t>(width), '-');
  }
  for (int c = 0; c < width; ++c) {
    const auto& cr = cols[static_cast<std::size_t>(c)];
    if (cr.lo > cr.hi) continue;  // empty column
    const int r0 = to_row(cr.lo, r, height);
    const int r1 = to_row(cr.hi, r, height);
    for (int row = r0; row <= r1; ++row) {
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(c)] =
          (row == r0 && row == r1) ? '*' : '|';
    }
  }

  const std::string hi_tick = format_tick(r.hi);
  const std::string lo_tick = format_tick(r.lo);
  for (int row = height - 1; row >= 0; --row) {
    std::string tick(10, ' ');
    if (row == height - 1) tick = hi_tick + std::string(10 - std::min<std::size_t>(10, hi_tick.size()), ' ');
    if (row == 0) tick = lo_tick + std::string(10 - std::min<std::size_t>(10, lo_tick.size()), ' ');
    tick.resize(10, ' ');
    out << tick << '|' << grid[static_cast<std::size_t>(row)] << '\n';
  }
  out << std::string(10, ' ') << '+' << std::string(static_cast<std::size_t>(width), '-') << '\n';
  if (!opts.x_label.empty()) {
    out << std::string(10, ' ') << ' ' << opts.x_label << "  (n="
        << y.size() << ")\n";
  }
  return out.str();
}

std::string multi_panel_chart(
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    const ChartOptions& opts) {
  std::ostringstream out;
  if (!opts.title.empty()) out << opts.title << '\n';
  for (const auto& [name, y] : series) {
    ChartOptions panel = opts;
    panel.title = "-- " + name + " --";
    out << line_chart(y, panel);
  }
  return out.str();
}

std::string digital_waveform(
    const std::vector<std::pair<std::string, std::vector<bool>>>& signals,
    int max_cycles) {
  std::ostringstream out;
  std::size_t label_width = 0;
  for (const auto& [name, bits] : signals) {
    label_width = std::max(label_width, name.size());
  }
  for (const auto& [name, bits] : signals) {
    const std::size_t n =
        std::min<std::size_t>(bits.size(), static_cast<std::size_t>(max_cycles));
    std::string lane;
    bool prev = false;
    for (std::size_t i = 0; i < n; ++i) {
      const bool cur = bits[i];
      // Edge marker, then two characters of level.
      if (i > 0 && cur != prev) {
        lane += '|';
      } else {
        lane += cur ? '~' : '_';
      }
      lane += cur ? "~~" : "__";
      prev = cur;
    }
    std::string label = name;
    label.resize(label_width + 2, ' ');
    out << label << lane << '\n';
  }
  return out.str();
}

std::string box_plot_row(const std::string& label, const BoxPlot& bp,
                         double lo, double hi, int width) {
  std::ostringstream out;
  width = std::max(width, 20);
  if (hi <= lo) hi = lo + 1.0;
  auto col = [&](double v) {
    const double norm = (v - lo) / (hi - lo);
    return std::clamp(static_cast<int>(std::lround(norm * (width - 1))), 0,
                      width - 1);
  };
  std::string lane(static_cast<std::size_t>(width), ' ');
  for (int c = col(bp.whisker_low); c <= col(bp.q_low); ++c) {
    lane[static_cast<std::size_t>(c)] = '-';
  }
  for (int c = col(bp.q_high); c <= col(bp.whisker_high); ++c) {
    lane[static_cast<std::size_t>(c)] = '-';
  }
  for (int c = col(bp.q_low); c <= col(bp.q_high); ++c) {
    lane[static_cast<std::size_t>(c)] = '=';
  }
  lane[static_cast<std::size_t>(col(bp.median))] = 'M';
  for (const double o : bp.outliers) {
    const auto c = static_cast<std::size_t>(col(o));
    if (lane[c] == ' ') lane[c] = 'o';
  }
  std::string padded = label;
  padded.resize(std::max<std::size_t>(padded.size(), 16), ' ');
  out << padded << '[' << lane << ']';
  return out.str();
}

}  // namespace clockmark::util
