#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace clockmark::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("pearson: vectors must have equal length");
  }
  const std::size_t n = x.size();
  if (n == 0) return 0.0;
  // Numerically stable two-pass form of equation (1).
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double quantile(std::span<const double> sample, double q) {
  if (sample.empty()) {
    throw std::invalid_argument("quantile: empty sample");
  }
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

BoxPlot box_plot(std::span<const double> sample) {
  BoxPlot bp;
  if (sample.empty()) return bp;
  bp.median = quantile(sample, 0.5);
  bp.q_low = quantile(sample, 0.025);
  bp.q_high = quantile(sample, 0.975);
  bp.whisker_low = *std::min_element(sample.begin(), sample.end());
  bp.whisker_high = *std::max_element(sample.begin(), sample.end());
  for (const double v : sample) {
    if (v < bp.q_low || v > bp.q_high) bp.outliers.push_back(v);
  }
  return bp;
}

double mean(std::span<const double> v) noexcept {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) noexcept {
  if (v.empty()) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (const double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size()));
}

double z_score(double value, std::span<const double> sample) noexcept {
  const double sd = stddev(sample);
  if (sd == 0.0) return 0.0;
  return (value - mean(sample)) / sd;
}

}  // namespace clockmark::util
