// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic parts of the simulator (program data, measurement noise,
// phase offsets) draw from a Pcg32 stream seeded per-experiment, so every
// figure and table in EXPERIMENTS.md can be regenerated bit-exactly.
#pragma once

#include <cstdint>
#include <limits>
#include <span>

namespace clockmark::util {

/// PCG-XSH-RR 64/32 generator (O'Neill, 2014). Small state, good
/// statistical quality, cheap to fork into independent streams.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  /// Seeds the generator. Distinct (seed, stream) pairs give
  /// statistically independent sequences.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 32 uniform random bits.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  std::uint32_t bounded(std::uint32_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal variate (Box-Muller with caching).
  double gaussian() noexcept;

  /// Normal variate with the given mean and standard deviation.
  double gaussian(double mean, double sigma) noexcept;

  /// Fills `out` with normal variates, equivalent to calling
  /// gaussian(mean, sigma) out.size() times: the same uniforms are
  /// consumed in the same order, the Box-Muller pair cache participates
  /// at both ends, and each value is bit-identical to the sequential
  /// draw. The batch form exists so the acquisition hot path can amortise
  /// the transcendentals over vectorizable array passes (fastmath.h)
  /// instead of one scalar call per sample.
  void fill_gaussian(std::span<double> out, double mean,
                     double sigma) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Derives an independent child generator. Useful for giving each
  /// subsystem (CPU data, scope noise, ...) its own stream so adding a
  /// consumer does not perturb the draws seen by the others.
  Pcg32 fork(std::uint64_t salt) noexcept;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// SplitMix64: used to expand a single user seed into the 64-bit seeds
/// consumed by Pcg32 streams.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace clockmark::util
