#include "util/csv.h"

#include <sstream>
#include <stdexcept>

namespace clockmark::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

void CsvWriter::header(std::initializer_list<std::string_view> names) {
  std::vector<std::string> fields;
  fields.reserve(names.size());
  for (const auto n : names) fields.emplace_back(n);
  write_fields(fields);
}

void CsvWriter::header(const std::vector<std::string>& names) {
  write_fields(names);
}

void CsvWriter::row(std::initializer_list<double> values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (const double v : values) fields.push_back(format_double(v));
  write_fields(fields);
}

void CsvWriter::row(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (const double v : values) fields.push_back(format_double(v));
  write_fields(fields);
}

void CsvWriter::text_row(const std::vector<std::string>& fields) {
  write_fields(fields);
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

void CsvWriter::write_fields(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << v;
  return os.str();
}

std::vector<double> read_series(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_series: cannot open " + path);
  }
  std::vector<double> values;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto comma = line.find(',');
    if (comma != std::string::npos) line.resize(comma);
    std::istringstream ls(line);
    double v = 0.0;
    if (ls >> v) values.push_back(v);
  }
  return values;
}

}  // namespace clockmark::util
