// Descriptive statistics used throughout the detector and the experiment
// harnesses: running moments, Pearson correlation, quantiles, and the
// box-plot summary that reproduces the paper's Fig. 6.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace clockmark::util {

/// Single-pass accumulator for mean / variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance (divides by n).
  double variance() const noexcept;
  /// Sample variance (divides by n - 1); 0 for fewer than two samples.
  double sample_variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson correlation coefficient between two equal-length vectors,
/// exactly equation (1) of the paper. Returns 0 when either vector has
/// zero variance (no relationship can be resolved).
double pearson(std::span<const double> x, std::span<const double> y);

/// Linearly interpolated quantile of an unsorted sample, q in [0, 1].
double quantile(std::span<const double> sample, double q);

/// Five-number + whisker summary of a sample, matching the convention the
/// paper uses in Fig. 6: the box covers 95 % of all values (2.5th..97.5th
/// percentile), the median splits it, whiskers are min/max, and values
/// outside the box are reported as outliers.
struct BoxPlot {
  double median = 0.0;
  double q_low = 0.0;    ///< 2.5th percentile (bottom of the 95 % box)
  double q_high = 0.0;   ///< 97.5th percentile (top of the 95 % box)
  double whisker_low = 0.0;
  double whisker_high = 0.0;
  std::vector<double> outliers;
};

BoxPlot box_plot(std::span<const double> sample);

/// Mean of a vector (0 for an empty vector).
double mean(std::span<const double> v) noexcept;

/// Population standard deviation of a vector.
double stddev(std::span<const double> v) noexcept;

/// z-score of value against the sample's mean/stddev; 0 if sigma == 0.
double z_score(double value, std::span<const double> sample) noexcept;

}  // namespace clockmark::util
