// Minimal CSV writer used by the bench harnesses to dump the series behind
// every reproduced figure (so plots can be regenerated outside the repo).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace clockmark::util {

/// Writes rows of doubles/strings to a CSV file. Fields containing commas,
/// quotes, or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens the file for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes a header row.
  void header(std::initializer_list<std::string_view> names);
  void header(const std::vector<std::string>& names);

  /// Writes one row of numeric fields.
  void row(std::initializer_list<double> values);
  void row(const std::vector<double>& values);

  /// Writes one row of already-formatted string fields.
  void text_row(const std::vector<std::string>& fields);

  /// Flushes and closes; also called by the destructor.
  void close();

 private:
  void write_fields(const std::vector<std::string>& fields);
  static std::string escape(std::string_view field);

  std::ofstream out_;
};

/// Formats a double with the given precision (default: shortest round-trip
/// style with 6 significant digits, matching the tables in the paper).
std::string format_double(double v, int precision = 6);

/// Reads a numeric series from a text file: one value per line (leading
/// value of a comma-separated line is used), '#' comments and blank
/// lines ignored. Throws std::runtime_error if the file cannot be opened.
std::vector<double> read_series(const std::string& path);

}  // namespace clockmark::util
