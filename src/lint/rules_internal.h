// Internal registration hooks for the built-in rule catalog; each
// translation unit contributes one family of rules. Not installed as a
// public header — include lint/rule.h and call builtin_rules() instead.
#pragma once

#include "lint/rule.h"

namespace clockmark::lint {

/// Netlist/connectivity rules: removable-watermark, standalone-component,
/// unmodulated-clock (paper Sec. VI, Fig. 1).
void register_structure_rules(RuleRegistry& registry);

/// WGC sequence rules: wgc-primitivity, wgc-degenerate-state,
/// sequence-balance, sequence-runs, gold-cross-correlation (Sec. III/IV).
void register_sequence_rules(RuleRegistry& registry);

/// Measurement-context rules: trace-covers-period, sampling-aliasing
/// (Sec. V).
void register_acquisition_rules(RuleRegistry& registry);

/// Multi-clock-domain rules over socdesc-elaborated designs (skipped
/// entirely when the design carries no ClockDomainView metadata):
/// domain-aliasing, test-bypassable-watermark, glitch-prone-mux,
/// cross-domain-collision.
void register_domain_rules(RuleRegistry& registry);

}  // namespace clockmark::lint
