// Measurement-context design rules (paper Sec. V): a structurally sound
// watermark is still undetectable if the capture is shorter than one
// WMARK period, the scope undersamples the clock, or the synthesis and
// acquisition settings disagree about samples per cycle.
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "lint/design.h"
#include "lint/rules_internal.h"

namespace clockmark::lint {
namespace {

/// trace-covers-period: the rotation correlator folds the trace by the
/// WMARK period; with less than one period there is no fold, and with
/// only a few the averaging gain the paper relies on never materialises.
class TraceCoversPeriodRule final : public Rule {
 public:
  const RuleInfo& info() const noexcept override {
    static const RuleInfo kInfo{
        "trace-covers-period",
        "the capture must span several WMARK periods",
        "Sec. V",
        "Errors when the configured trace is shorter than one WMARK "
        "period (phase becomes ambiguous) and warns below four periods "
        "(noise averaging is marginal). The paper uses 300,000 cycles "
        "against a 4095-cycle period."};
    return kInfo;
  }

  void run(const Design& design, std::vector<Diagnostic>& out) const override {
    if (!design.trace_cycles()) return;
    const std::size_t trace = *design.trace_cycles();
    for (const WatermarkView& wm : design.watermarks()) {
      const std::size_t period = Design::nominal_period(wm.wgc);
      if (period == 0) continue;  // wgc-primitivity flags the bad width
      if (trace < period) {
        out.push_back(
            {info().id, Severity::kError, wm.name,
             "trace of " + std::to_string(trace) +
                 " cycles covers less than one WMARK period (" +
                 std::to_string(period) +
                 "): the rotation correlator cannot resolve the phase",
             "capture at least one period — ideally dozens (the paper "
             "uses ~73 periods)"});
      } else if (trace < 4 * period) {
        out.push_back(
            {info().id, Severity::kWarning, wm.name,
             "trace of " + std::to_string(trace) + " cycles spans only " +
                 std::to_string(trace / period) +
                 " full WMARK period(s): averaging gain over the noise "
                 "floor is marginal",
             "lengthen the capture or shorten the WGC period"});
      }
    }
  }
};

/// sampling-aliasing: Nyquist and bookkeeping checks between the scope,
/// the waveform synthesis and the operating point, plus a sanity bound
/// on the PDN low-pass that already costs the paper an order of
/// magnitude of signal.
class SamplingAliasingRule final : public Rule {
 public:
  const RuleInfo& info() const noexcept override {
    static const RuleInfo kInfo{
        "sampling-aliasing",
        "scope rate, clock and waveform synthesis must agree",
        "Sec. V",
        "Errors when the scope samples below 2x the clock (the "
        "cycle-rate modulation aliases), warns when samples-per-cycle is "
        "fractional or disagrees with the waveform synthesis, and warns "
        "when the PDN cutoff attenuates the watermark far beyond the "
        "paper's 25x."};
    return kInfo;
  }

  void run(const Design& design, std::vector<Diagnostic>& out) const override {
    if (!design.acquisition() || !design.tech()) return;
    const measure::AcquisitionConfig& acq = *design.acquisition();
    const power::TechLibrary& tech = *design.tech();
    const std::string loc = design.name();
    if (tech.clock_hz <= 0.0 || acq.scope.sample_rate_hz <= 0.0) {
      out.push_back({info().id, Severity::kError, loc,
                     "non-positive clock or scope sample rate",
                     "set tech.clock_hz and scope.sample_rate_hz"});
      return;
    }
    const double ratio = acq.scope.sample_rate_hz / tech.clock_hz;
    std::ostringstream rates;
    rates.precision(6);
    rates << "scope at " << acq.scope.sample_rate_hz / 1e6
          << " MS/s against a " << tech.clock_hz / 1e6 << " MHz clock";
    if (ratio < 2.0) {
      out.push_back(
          {info().id, Severity::kError, loc,
           rates.str() + " gives " + std::to_string(ratio) +
               " samples per cycle: the cycle-rate WMARK modulation "
               "aliases below Nyquist and per-cycle averaging is "
               "impossible",
           "sample at >= 2x the clock (the paper uses 50x: 500 MS/s at "
           "10 MHz)"});
    } else {
      const double rounded = std::round(ratio);
      if (std::fabs(ratio - rounded) > 1e-6) {
        out.push_back(
            {info().id, Severity::kWarning, loc,
             rates.str() + " gives a fractional " +
                 std::to_string(ratio) +
                 " samples per cycle: per-cycle averaging windows drift "
                 "across cycle boundaries",
             "pick an integer scope-rate-to-clock ratio"});
      } else if (acq.waveform.samples_per_cycle !=
                 static_cast<std::size_t>(rounded)) {
        out.push_back(
            {info().id, Severity::kWarning, loc,
             "waveform synthesis assumes " +
                 std::to_string(acq.waveform.samples_per_cycle) +
                 " samples per cycle but " + rates.str() + " gives " +
                 std::to_string(static_cast<std::size_t>(rounded)) +
                 ": Y is averaged over misaligned windows",
             "set acquisition.waveform.samples_per_cycle = "
             "scope_rate / clock_hz"});
      }
    }
    if (acq.enable_pdn_filter) {
      if (acq.pdn_cutoff_hz <= 0.0) {
        out.push_back({info().id, Severity::kError, loc,
                       "PDN filter enabled with non-positive cutoff",
                       "set pdn_cutoff_hz or disable the filter"});
      } else if (tech.clock_hz / acq.pdn_cutoff_hz > 250.0) {
        std::ostringstream msg;
        msg.precision(4);
        msg << "PDN cutoff " << acq.pdn_cutoff_hz / 1e3
            << " kHz sits " << tech.clock_hz / acq.pdn_cutoff_hz
            << "x below the clock: the cycle-rate watermark is "
               "attenuated an order of magnitude beyond the paper's "
               "25x and may sink under the ADC noise";
        out.push_back({info().id, Severity::kWarning, loc, msg.str(),
                       "reduce board decoupling between shunt and die, "
                       "or lower the clock for detection runs"});
      }
    }
  }
};

}  // namespace

void register_acquisition_rules(RuleRegistry& registry) {
  registry.add(std::make_unique<TraceCoversPeriodRule>());
  registry.add(std::make_unique<SamplingAliasingRule>());
}

}  // namespace clockmark::lint
