#include "lint/design.h"

#include <queue>
#include <stdexcept>
#include <unordered_set>

#include "watermark/load_circuit.h"

namespace clockmark::lint {
namespace {

std::vector<rtl::CellId> collect_wgc_cells(const wgc::WgcHardware& hw) {
  std::vector<rtl::CellId> cells;
  cells.reserve(hw.flops.size() + hw.xor_gates.size() +
                hw.clock_cells.size());
  cells.insert(cells.end(), hw.flops.begin(), hw.flops.end());
  cells.insert(cells.end(), hw.xor_gates.begin(), hw.xor_gates.end());
  cells.insert(cells.end(), hw.clock_cells.begin(), hw.clock_cells.end());
  return cells;
}

/// The experiment context every demo design is audited against: the
/// paper's measurement setup (trace length, acquisition chain, 65 nm
/// operating point), so the signal-level rules have something to check.
void set_paper_context(Design& design) {
  design.set_trace_cycles(300000);
  design.set_acquisition(measure::AcquisitionConfig{});
  design.set_tech(power::TechLibrary{});
}

}  // namespace

Design::Design(std::string name, std::shared_ptr<const rtl::Netlist> netlist,
               rtl::NetId root_clock)
    : name_(std::move(name)),
      netlist_(std::move(netlist)),
      root_clock_(root_clock) {
  if (!netlist_) {
    throw std::invalid_argument("lint::Design: null netlist");
  }
}

void Design::add_watermark(WatermarkView watermark) {
  watermarks_.push_back(std::move(watermark));
  gating_icgs_.clear();
}

std::size_t Design::add_clock_domain(ClockDomainView domain) {
  clock_domains_.push_back(std::move(domain));
  return clock_domains_.size() - 1;
}

void Design::declare_functional(const std::vector<rtl::CellId>& flops) {
  declared_functional_.insert(declared_functional_.end(), flops.begin(),
                              flops.end());
  functional_state_.reset();
  load_bearing_.reset();
}

const rtl::ConnectivityGraph& Design::connectivity() const {
  if (!connectivity_) {
    connectivity_ = std::make_unique<rtl::ConnectivityGraph>(*netlist_);
  }
  return *connectivity_;
}

const std::vector<std::vector<rtl::CellId>>& Design::drivers_by_net() const {
  if (!net_maps_built_) {
    drivers_by_net_.assign(netlist_->net_count(), {});
    loads_by_net_.assign(netlist_->net_count(), {});
    for (std::size_t i = 0; i < netlist_->cell_count(); ++i) {
      const auto id = static_cast<rtl::CellId>(i);
      const rtl::Cell& cell = netlist_->cell(id);
      if (cell.output != rtl::kInvalidNet) {
        drivers_by_net_[cell.output].push_back(id);
      }
      for (const rtl::NetId net : cell.inputs) {
        if (net != rtl::kInvalidNet) loads_by_net_[net].push_back(id);
      }
      if (cell.clock != rtl::kInvalidNet) {
        loads_by_net_[cell.clock].push_back(id);
      }
    }
    net_maps_built_ = true;
  }
  return drivers_by_net_;
}

const std::vector<std::vector<rtl::CellId>>& Design::loads_by_net() const {
  drivers_by_net();  // builds both maps
  return loads_by_net_;
}

const std::vector<rtl::CellId>& Design::gating_icgs(std::size_t index) const {
  if (gating_icgs_.size() != watermarks_.size()) {
    gating_icgs_.assign(watermarks_.size(), std::nullopt);
  }
  auto& slot = gating_icgs_.at(index);
  if (slot) return *slot;

  const std::unordered_set<rtl::CellId> wgc_set(
      watermarks_[index].wgc_cells.begin(),
      watermarks_[index].wgc_cells.end());
  const auto& drivers = drivers_by_net();

  std::vector<rtl::CellId> result;
  for (std::size_t i = 0; i < netlist_->cell_count(); ++i) {
    const auto id = static_cast<rtl::CellId>(i);
    const rtl::Cell& icg = netlist_->cell(id);
    if (icg.kind != rtl::CellKind::kIcg || icg.inputs.empty()) continue;

    // Walk the enable's combinational fan-in; registers and clock cells
    // are cone boundaries (WMARK itself is driven by a WGC stage flop,
    // which the membership test catches before the walk stops there).
    std::queue<rtl::NetId> work;
    std::unordered_set<rtl::NetId> seen;
    work.push(icg.inputs[0]);
    seen.insert(icg.inputs[0]);
    bool gated_by_wgc = false;
    while (!work.empty() && !gated_by_wgc) {
      const rtl::NetId net = work.front();
      work.pop();
      for (const rtl::CellId driver_id : drivers[net]) {
        if (wgc_set.count(driver_id) > 0) {
          gated_by_wgc = true;
          break;
        }
        const rtl::Cell& driver = netlist_->cell(driver_id);
        if (rtl::is_sequential(driver.kind) ||
            rtl::is_clock_cell(driver.kind)) {
          continue;
        }
        for (const rtl::NetId in : driver.inputs) {
          if (in != rtl::kInvalidNet && seen.insert(in).second) {
            work.push(in);
          }
        }
      }
    }
    if (gated_by_wgc) result.push_back(id);
  }
  slot = std::move(result);
  return *slot;
}

const std::vector<bool>& Design::functional_state_mask() const {
  if (!functional_state_) {
    std::vector<bool> mask = connectivity().reaches_primary_output();
    for (const rtl::CellId id : declared_functional_) {
      mask.at(id) = true;
    }
    functional_state_ = std::move(mask);
  }
  return *functional_state_;
}

const std::vector<bool>& Design::load_bearing_mask() const {
  if (!load_bearing_) {
    const std::vector<bool>& functional = functional_state_mask();
    std::vector<rtl::CellId> roots;
    for (std::size_t i = 0; i < functional.size(); ++i) {
      if (functional[i]) roots.push_back(static_cast<rtl::CellId>(i));
    }
    load_bearing_ = connectivity().fanin_cone(roots);
  }
  return *load_bearing_;
}

std::vector<rtl::CellId> Design::clocked_flops_under(rtl::CellId cell) const {
  const auto& loads = loads_by_net();
  std::vector<rtl::CellId> flops;
  const rtl::NetId start = netlist_->cell(cell).output;
  if (start == rtl::kInvalidNet) return flops;

  std::queue<rtl::NetId> work;
  std::unordered_set<rtl::NetId> seen;
  work.push(start);
  seen.insert(start);
  while (!work.empty()) {
    const rtl::NetId net = work.front();
    work.pop();
    for (const rtl::CellId load_id : loads[net]) {
      const rtl::Cell& load = netlist_->cell(load_id);
      if (load.clock != net) continue;  // data use of a clock net
      if (rtl::is_sequential(load.kind)) {
        flops.push_back(load_id);
      } else if (rtl::is_clock_cell(load.kind) &&
                 load.output != rtl::kInvalidNet &&
                 seen.insert(load.output).second) {
        work.push(load.output);
      }
    }
  }
  return flops;
}

std::vector<rtl::CellId> Design::ungated_clocked_flops() const {
  const auto& loads = loads_by_net();
  std::vector<rtl::CellId> flops;
  if (root_clock_ == rtl::kInvalidNet) return flops;

  // Breadth-first over the clock network, refusing to cross ICGs: any
  // flop collected here has a buffer-only path from the root clock.
  std::queue<rtl::NetId> work;
  std::unordered_set<rtl::NetId> seen;
  work.push(root_clock_);
  seen.insert(root_clock_);
  while (!work.empty()) {
    const rtl::NetId net = work.front();
    work.pop();
    for (const rtl::CellId load_id : loads[net]) {
      const rtl::Cell& load = netlist_->cell(load_id);
      if (load.clock != net) continue;
      if (rtl::is_sequential(load.kind)) {
        flops.push_back(load_id);
      } else if (load.kind == rtl::CellKind::kClockBuffer &&
                 load.output != rtl::kInvalidNet &&
                 seen.insert(load.output).second) {
        work.push(load.output);
      }
    }
  }
  return flops;
}

std::vector<rtl::CellId> Design::watermark_cells(std::size_t index) const {
  const std::string& prefix = watermarks_.at(index).module_path;
  std::vector<rtl::CellId> cells;
  for (std::size_t i = 0; i < netlist_->cell_count(); ++i) {
    const auto id = static_cast<rtl::CellId>(i);
    if (netlist_->cell_in_module(id, prefix)) cells.push_back(id);
  }
  return cells;
}

std::size_t Design::nominal_period(const wgc::WgcConfig& config) noexcept {
  if (config.mode == wgc::WgcMode::kCircular) return config.width;
  if (config.width < 2 || config.width > 32) return 0;
  return static_cast<std::size_t>((std::uint64_t{1} << config.width) - 1);
}

Design design_from_scenario_config(const std::string& name,
                                   const sim::ScenarioConfig& config) {
  auto netlist = std::make_shared<rtl::Netlist>();
  const rtl::NetId root_clock = netlist->add_net("clk");
  const auto wm = watermark::build_clock_modulation_watermark(
      *netlist, "watermark", root_clock, config.watermark);

  Design design(name, netlist, root_clock);
  WatermarkView view;
  view.name = "watermark";
  view.module_path = "watermark";
  view.wgc = config.watermark.wgc;
  view.wmark = wm.wmark;
  view.wgc_cells = collect_wgc_cells(wm.wgc);
  design.add_watermark(std::move(view));
  // The redundant bank emulates the protected IP's register file on the
  // real device (Fig. 4(a)); audit it as functional state.
  design.declare_functional(wm.flops);

  design.set_trace_cycles(config.trace_cycles);
  measure::AcquisitionConfig acq = config.acquisition;
  acq.vdd_v = config.tech.vdd_v;  // as sim::Scenario::run does
  design.set_acquisition(acq);
  design.set_tech(config.tech);
  return design;
}

Design design_from_scenario(const std::string& name,
                            const sim::Scenario& scenario) {
  const sim::ScenarioConfig& config = scenario.config();
  // Alias the scenario-owned netlist (non-owning shared_ptr).
  std::shared_ptr<const rtl::Netlist> netlist(
      std::shared_ptr<const rtl::Netlist>{}, &scenario.watermark_netlist());
  const auto root = netlist->find_net("clk");
  if (!root) {
    throw std::invalid_argument(
        "design_from_scenario: scenario netlist has no 'clk' net");
  }
  Design design(name, netlist, *root);
  const watermark::ClockModWatermark& wm = scenario.watermark();
  WatermarkView view;
  view.name = "watermark";
  view.module_path = "watermark";
  view.wgc = config.watermark.wgc;
  view.wmark = wm.wmark;
  view.wgc_cells = collect_wgc_cells(wm.wgc);
  design.add_watermark(std::move(view));
  design.declare_functional(wm.flops);

  design.set_trace_cycles(config.trace_cycles);
  measure::AcquisitionConfig acq = config.acquisition;
  acq.vdd_v = config.tech.vdd_v;
  design.set_acquisition(acq);
  design.set_tech(config.tech);
  return design;
}

Design design_load_circuit_demo(const std::string& name,
                                const wgc::WgcConfig& key,
                                std::size_t load_registers,
                                const watermark::DemoIpConfig& ip) {
  auto netlist = std::make_shared<rtl::Netlist>();
  const rtl::NetId clk = netlist->add_net("clk");
  watermark::build_demo_ip_block(*netlist, "soc/ip", clk, ip);
  watermark::LoadCircuitConfig lc;
  lc.wgc = key;
  lc.load_registers = load_registers;
  const auto wm =
      build_load_circuit_watermark(*netlist, "soc/watermark", clk, lc);

  Design design(name, netlist, clk);
  WatermarkView view;
  view.name = "load-circuit";
  view.module_path = "soc/watermark";
  view.wgc = key;
  view.wmark = wm.wmark;
  view.wgc_cells = collect_wgc_cells(wm.wgc);
  design.add_watermark(std::move(view));
  set_paper_context(design);
  return design;
}

Design design_embedded_demo(const std::string& name,
                            const wgc::WgcConfig& key,
                            const watermark::DemoIpConfig& ip) {
  auto netlist = std::make_shared<rtl::Netlist>();
  const rtl::NetId clk = netlist->add_net("clk");
  const auto block = watermark::build_demo_ip_block(*netlist, "soc/ip", clk, ip);
  const auto embed = watermark::embed_clock_modulation(
      *netlist, "soc/watermark", clk, key, block.icgs);

  Design design(name, netlist, clk);
  WatermarkView view;
  view.name = "clock-modulation";
  view.module_path = "soc/watermark";
  view.wgc = key;
  view.wmark = embed.wmark;
  view.wgc_cells = collect_wgc_cells(embed.wgc);
  design.add_watermark(std::move(view));
  set_paper_context(design);
  return design;
}

Design design_diversified_demo(const std::string& name,
                               const wgc::WgcConfig& key,
                               const watermark::DemoIpConfig& ip) {
  auto netlist = std::make_shared<rtl::Netlist>();
  const rtl::NetId clk = netlist->add_net("clk");
  const auto block = watermark::build_demo_ip_block(*netlist, "soc/ip", clk, ip);
  const auto embed = watermark::embed_clock_modulation_diversified(
      *netlist, "soc/watermark", clk, key, block.icgs);

  Design design(name, netlist, clk);
  WatermarkView view;
  view.name = "clock-modulation-diversified";
  view.module_path = "soc/watermark";
  view.wgc = key;
  // No single WMARK net exists by design; stage 0 stands in for reports.
  view.wmark = netlist->cell(embed.wgc.flops.front()).output;
  view.wgc_cells = collect_wgc_cells(embed.wgc);
  design.add_watermark(std::move(view));
  set_paper_context(design);
  return design;
}

Design design_dual_embedded_demo(const std::string& name,
                                 const wgc::WgcConfig& key_a,
                                 const wgc::WgcConfig& key_b,
                                 const watermark::DemoIpConfig& ip) {
  if (ip.groups < 2) {
    throw std::invalid_argument(
        "design_dual_embedded_demo: need at least 2 clock-gate groups");
  }
  auto netlist = std::make_shared<rtl::Netlist>();
  const rtl::NetId clk = netlist->add_net("clk");
  const auto block = watermark::build_demo_ip_block(*netlist, "soc/ip", clk, ip);
  std::vector<rtl::CellId> even, odd;
  for (std::size_t g = 0; g < block.icgs.size(); ++g) {
    (g % 2 == 0 ? even : odd).push_back(block.icgs[g]);
  }
  const auto embed_a = watermark::embed_clock_modulation(
      *netlist, "soc/wm_a", clk, key_a, even);
  const auto embed_b = watermark::embed_clock_modulation(
      *netlist, "soc/wm_b", clk, key_b, odd);

  Design design(name, netlist, clk);
  WatermarkView view_a;
  view_a.name = "watermark-a";
  view_a.module_path = "soc/wm_a";
  view_a.wgc = key_a;
  view_a.wmark = embed_a.wmark;
  view_a.wgc_cells = collect_wgc_cells(embed_a.wgc);
  design.add_watermark(std::move(view_a));
  WatermarkView view_b;
  view_b.name = "watermark-b";
  view_b.module_path = "soc/wm_b";
  view_b.wgc = key_b;
  view_b.wmark = embed_b.wmark;
  view_b.wgc_cells = collect_wgc_cells(embed_b.wgc);
  design.add_watermark(std::move(view_b));
  set_paper_context(design);
  return design;
}

}  // namespace clockmark::lint
