// The analyzer's view of one watermarked design: the constructed netlist
// (clock tree, ICGs, WGC, payload registers), which registers carry
// functional state, and the experiment context (trace length, acquisition
// chain, operating point) when the design comes from a sim::Scenario
// preset. Rules read this view only — nothing here runs the simulator.
//
// Builders are provided for every embedding the repo can construct:
//  * design_from_scenario_config(): the test-chip register-bank presets
//    (chip I / chip II). The redundant bank emulates a processor register
//    file on the real device, so its flops are declared functional state.
//  * design_load_circuit_demo(): the Becker/Ziener-style stand-alone
//    baseline (paper Fig. 1(a)) next to a demo IP block.
//  * design_embedded_demo() / design_diversified_demo(): the proposed
//    clock-modulation embedding into the demo IP's own clock gates
//    (Fig. 1(b)), plain or fan-out-diversified.
//  * design_dual_embedded_demo(): two differently-keyed watermarks in one
//    IP (Gold-code coexistence, Sec. III's two sequence generators).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "measure/acquisition.h"
#include "power/tech65.h"
#include "rtl/connectivity.h"
#include "rtl/netlist.h"
#include "sim/scenario.h"
#include "watermark/embedder.h"
#include "wgc/wgc.h"

namespace clockmark::lint {

/// One embedded watermark as the analyzer sees it.
struct WatermarkView {
  std::string name;         ///< display name, e.g. "watermark"
  std::string module_path;  ///< cells under this prefix belong to it
  wgc::WgcConfig wgc;       ///< the key (mode, width, taps, seed)
  rtl::NetId wmark = rtl::kInvalidNet;      ///< WMARK output net
  std::vector<rtl::CellId> wgc_cells;       ///< the WGC proper (stages,
                                            ///< feedback, clock leaves)
  /// Index into Design::clock_domains() of the domain this watermark
  /// modulates, when the design carries multi-domain metadata (the
  /// socdesc frontend). nullopt for the flat chip/demo presets.
  std::optional<std::size_t> domain;
};

/// One clock domain of a multi-domain design — metadata the socdesc
/// elaborator derives from a declarative clock-controller description.
/// The flat presets never populate these, so the multi-domain rules
/// skip them entirely (DESIGN.md §9's "presets lint clean" invariant).
struct ClockDomainView {
  std::string target;       ///< domain (clock target) name
  std::string source;       ///< selected input clock name
  double clock_hz = 0.0;    ///< effective sink clock frequency
  unsigned division = 1;    ///< total division from the source input
  bool inverted = false;    ///< net polarity flipped along the chain
  /// The domain's gating ICG is forced on by the controller's DFT
  /// test_enable signal (a bypass path around any modulation).
  bool test_bypassable = false;
  /// Domain is fed through a plain combinational mux with no reset —
  /// qsoc's glitch-prone implementation choice.
  bool mux_glitch_prone = false;
  std::size_t mux_sources = 0;  ///< inputs reaching the domain's mux
  std::size_t sinks = 0;        ///< clocked registers in the domain
};

/// Immutable-after-setup design view with lazily derived connectivity.
/// Not thread-safe: the derived caches fill in on first use.
class Design {
 public:
  Design(std::string name, std::shared_ptr<const rtl::Netlist> netlist,
         rtl::NetId root_clock);

  const std::string& name() const noexcept { return name_; }
  const rtl::Netlist& netlist() const noexcept { return *netlist_; }
  rtl::NetId root_clock() const noexcept { return root_clock_; }

  void add_watermark(WatermarkView watermark);
  const std::vector<WatermarkView>& watermarks() const noexcept {
    return watermarks_;
  }

  /// Multi-domain metadata (socdesc frontend). Returns the index of the
  /// added domain for WatermarkView::domain back-references.
  std::size_t add_clock_domain(ClockDomainView domain);
  const std::vector<ClockDomainView>& clock_domains() const noexcept {
    return clock_domains_;
  }

  /// Declares flops that hold functional state even though no primary
  /// output depends on them in this netlist (the scenario presets'
  /// register bank stands in for a processor register file).
  void declare_functional(const std::vector<rtl::CellId>& flops);
  const std::vector<rtl::CellId>& declared_functional() const noexcept {
    return declared_functional_;
  }

  void set_trace_cycles(std::size_t cycles) { trace_cycles_ = cycles; }
  std::optional<std::size_t> trace_cycles() const noexcept {
    return trace_cycles_;
  }
  void set_acquisition(const measure::AcquisitionConfig& acq) {
    acquisition_ = acq;
  }
  const std::optional<measure::AcquisitionConfig>& acquisition()
      const noexcept {
    return acquisition_;
  }
  void set_tech(const power::TechLibrary& tech) { tech_ = tech; }
  const std::optional<power::TechLibrary>& tech() const noexcept {
    return tech_;
  }

  // --- derived views (lazily cached) ---------------------------------

  const rtl::ConnectivityGraph& connectivity() const;

  /// ICGs whose enable's combinational fan-in contains a WGC cell of
  /// watermark `index` — the gates WMARK actually modulates.
  const std::vector<rtl::CellId>& gating_icgs(std::size_t index) const;

  /// Per-cell mask: true for cells that hold or compute functional
  /// state — declared-functional flops plus every cell that transitively
  /// reaches a primary output.
  const std::vector<bool>& functional_state_mask() const;

  /// Per-cell mask: true for cells an attacker must keep — the fan-in
  /// cone (through data *and* clock pins) of the functional state above.
  /// Everything outside this mask is excisable without observable effect.
  const std::vector<bool>& load_bearing_mask() const;

  /// Flops whose clock pin is reachable from `cell`'s output through
  /// clock buffers and further ICGs (the registers `cell` gates).
  std::vector<rtl::CellId> clocked_flops_under(rtl::CellId cell) const;

  /// Flops reachable from the root clock along a buffer-only path (no
  /// ICG in between) — their clock is never modulated or gated.
  std::vector<rtl::CellId> ungated_clocked_flops() const;

  /// All cells under watermark `index`'s module path.
  std::vector<rtl::CellId> watermark_cells(std::size_t index) const;

  /// Nominal WMARK period of a key without constructing a generator:
  /// 2^width - 1 for an LFSR, width for a circular register.
  static std::size_t nominal_period(const wgc::WgcConfig& config) noexcept;

 private:
  const std::vector<std::vector<rtl::CellId>>& drivers_by_net() const;
  const std::vector<std::vector<rtl::CellId>>& loads_by_net() const;

  std::string name_;
  std::shared_ptr<const rtl::Netlist> netlist_;
  rtl::NetId root_clock_ = rtl::kInvalidNet;
  std::vector<WatermarkView> watermarks_;
  std::vector<ClockDomainView> clock_domains_;
  std::vector<rtl::CellId> declared_functional_;
  std::optional<std::size_t> trace_cycles_;
  std::optional<measure::AcquisitionConfig> acquisition_;
  std::optional<power::TechLibrary> tech_;

  mutable std::unique_ptr<rtl::ConnectivityGraph> connectivity_;
  mutable std::vector<std::vector<rtl::CellId>> drivers_by_net_;
  mutable std::vector<std::vector<rtl::CellId>> loads_by_net_;
  mutable bool net_maps_built_ = false;
  mutable std::vector<std::optional<std::vector<rtl::CellId>>> gating_icgs_;
  mutable std::optional<std::vector<bool>> functional_state_;
  mutable std::optional<std::vector<bool>> load_bearing_;
};

/// Builds the test-chip register-bank design (paper Fig. 4(a)) exactly as
/// sim::Scenario's constructor does — but without the gate-level power
/// characterisation — and fills in the experiment context from `config`.
Design design_from_scenario_config(const std::string& name,
                                   const sim::ScenarioConfig& config);

/// Views an already-constructed Scenario. The Design aliases the
/// scenario's netlist; the scenario must outlive the returned Design.
Design design_from_scenario(const std::string& name,
                            const sim::Scenario& scenario);

/// Demo IP + stand-alone load-circuit watermark (paper Fig. 1(a), the
/// removal_attack example's design A).
Design design_load_circuit_demo(const std::string& name,
                                const wgc::WgcConfig& key,
                                std::size_t load_registers = 576,
                                const watermark::DemoIpConfig& ip = {});

/// Demo IP with the WGC woven into its own clock gates (Fig. 1(b)).
Design design_embedded_demo(const std::string& name,
                            const wgc::WgcConfig& key,
                            const watermark::DemoIpConfig& ip = {});

/// Fan-out-diversified variant (one WGC stage per ICG).
Design design_diversified_demo(const std::string& name,
                               const wgc::WgcConfig& key,
                               const watermark::DemoIpConfig& ip = {});

/// Two differently-keyed watermarks sharing one demo IP: key_a modulates
/// the even clock-gate groups, key_b the odd ones.
Design design_dual_embedded_demo(const std::string& name,
                                 const wgc::WgcConfig& key_a,
                                 const wgc::WgcConfig& key_b,
                                 const watermark::DemoIpConfig& ip = {});

}  // namespace clockmark::lint
