#include "lint/diagnostic.h"

#include <stdexcept>

namespace clockmark::lint {

std::string_view severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "error";
}

Severity parse_severity(std::string_view name) {
  if (name == "info") return Severity::kInfo;
  if (name == "warning") return Severity::kWarning;
  if (name == "error") return Severity::kError;
  throw std::invalid_argument("parse_severity: unknown severity '" +
                              std::string(name) + "'");
}

DiagnosticCounts count_diagnostics(
    const std::vector<Diagnostic>& diagnostics) noexcept {
  DiagnosticCounts counts;
  for (const Diagnostic& d : diagnostics) {
    switch (d.severity) {
      case Severity::kError: ++counts.errors; break;
      case Severity::kWarning: ++counts.warnings; break;
      case Severity::kInfo: ++counts.infos; break;
    }
  }
  return counts;
}

}  // namespace clockmark::lint
