// The analysis driver: runs a rule set over a lint::Design and collects
// the findings into a LintReport, sorted most-severe-first for stable
// text/JSON output. Rule selection and a severity floor are options so
// CI gates and interactive runs can share one registry.
#pragma once

#include <string>
#include <vector>

#include "lint/diagnostic.h"
#include "lint/rule.h"

namespace clockmark::lint {

class Design;

struct LintReport {
  std::string design;
  std::vector<Diagnostic> diagnostics;  ///< severity-sorted, errors first
  DiagnosticCounts counts;

  bool clean() const noexcept { return counts.errors == 0; }
  bool operator==(const LintReport&) const = default;
};

struct AnalyzerOptions {
  /// Rule ids to run; empty = every rule in the registry. Unknown ids
  /// throw at construction (a typo must not silently skip a gate).
  std::vector<std::string> enabled_rules;
  /// Findings below this severity are dropped from the report.
  Severity min_severity = Severity::kInfo;
};

class Analyzer {
 public:
  /// The registry is borrowed and must outlive the analyzer.
  explicit Analyzer(const RuleRegistry& registry,
                    AnalyzerOptions options = {});

  LintReport run(const Design& design) const;

 private:
  const RuleRegistry& registry_;
  AnalyzerOptions options_;
};

}  // namespace clockmark::lint
