// Typed findings of the design-rule analyzer (cm_lint). A Diagnostic
// names the violated rule, a severity, a design-graph location (module
// path, net or cell name) and a fix hint, so reports stay actionable
// whether they are rendered as text or machine-read as JSON.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace clockmark::lint {

enum class Severity { kInfo, kWarning, kError };

/// "info" / "warning" / "error".
std::string_view severity_name(Severity severity) noexcept;

/// Inverse of severity_name(); throws std::invalid_argument on anything
/// else (the JSON round-trip must not silently downgrade findings).
Severity parse_severity(std::string_view name);

struct Diagnostic {
  std::string rule;      ///< rule id, e.g. "removable-watermark"
  Severity severity = Severity::kWarning;
  std::string location;  ///< design-graph location (module/net/cell)
  std::string message;   ///< what is wrong
  std::string hint;      ///< how to fix it (may be empty)

  bool operator==(const Diagnostic&) const = default;
};

struct DiagnosticCounts {
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;

  bool operator==(const DiagnosticCounts&) const = default;
};

DiagnosticCounts count_diagnostics(
    const std::vector<Diagnostic>& diagnostics) noexcept;

}  // namespace clockmark::lint
