// Design-rule interface and registry. Each rule audits one structural or
// signal-level property the paper relies on (removability, m-sequence
// quality, sampling sanity, ...) against a lint::Design view — no
// simulation is ever run. Rules are registered by id in a RuleRegistry;
// builtin_rules() returns the full paper-grounded catalog, and callers
// can add their own Rule subclasses alongside it.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostic.h"

namespace clockmark::lint {

class Design;

struct RuleInfo {
  std::string id;           ///< stable kebab-case id ("wgc-primitivity")
  std::string title;        ///< one-line summary for catalogs
  std::string paper_ref;    ///< grounding, e.g. "Sec. VI" or "Fig. 1(b)"
  std::string description;  ///< what it checks and why it matters
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual const RuleInfo& info() const noexcept = 0;
  /// Appends findings for `design` to `out`. Must not mutate the design.
  virtual void run(const Design& design,
                   std::vector<Diagnostic>& out) const = 0;
};

/// Ordered, id-unique collection of rules. Value type so experiments can
/// assemble custom rule sets; the analyzer borrows it by reference.
class RuleRegistry {
 public:
  /// Registers a rule; throws std::invalid_argument on a duplicate id.
  RuleRegistry& add(std::unique_ptr<Rule> rule);

  /// Rule with the given id, or nullptr.
  const Rule* find(std::string_view id) const noexcept;

  /// All rules in registration (catalog) order.
  std::vector<const Rule*> rules() const;

  std::size_t size() const noexcept { return rules_.size(); }

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// The built-in catalog: every design rule shipped with cm_lint, in the
/// order documented in DESIGN.md §9.
RuleRegistry builtin_rules();

}  // namespace clockmark::lint
