// Multi-clock-domain design rules — checks only a socdesc-elaborated
// design can trigger: the flat chip/demo presets run everything from one
// root clock and never populate ClockDomainView metadata, so every rule
// here returns immediately on them (DESIGN.md §9's "presets lint clean"
// invariant holds by construction).
//
// The domain metadata is authoritative for frequencies and chain shape
// (the netlist realises dividers as power-of-two ripple chains; exact
// declared ratios live only in the view).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "lint/design.h"
#include "lint/rules_internal.h"
#include "sequence/gold.h"

namespace clockmark::lint {
namespace {

/// Periods up to this are cheap to cross-correlate pairwise on the
/// reference timeline (matches the sequence-rule family's limit).
constexpr std::size_t kReferenceCorrelationLimit = 1u << 14;

std::string mhz(double hz) {
  std::ostringstream os;
  os.precision(6);
  os << hz / 1e6 << " MHz";
  return os.str();
}

bool valid_width(const wgc::WgcConfig& config) {
  return config.width >= 2 && config.width <= 32;
}

bool degenerate_state(const wgc::WgcConfig& config) {
  const std::uint32_t mask =
      config.width >= 32 ? 0xffffffffu
                         : ((std::uint32_t{1} << config.width) - 1u);
  const std::uint32_t state = config.seed & mask;
  if (config.mode == wgc::WgcMode::kLfsr) return state == 0;
  return state == 0 || state == mask;
}

/// The watermark modulating domain `index`, or nullptr.
const WatermarkView* watermark_of_domain(const Design& design,
                                         std::size_t index) {
  for (const WatermarkView& wm : design.watermarks()) {
    if (wm.domain && *wm.domain == index) return &wm;
  }
  return nullptr;
}

/// domain-aliasing: per-domain sampling sanity. The flat sampling-
/// aliasing rule checks the scope against the *reference* clock; with
/// dividers and multiple inputs every domain has its own rate, and a
/// watermark embedded in a derived domain modulates at that rate — the
/// scope, the per-cycle averaging and the trace length must all keep up
/// with *it*, not with the reference.
class DomainAliasingRule final : public Rule {
 public:
  const RuleInfo& info() const noexcept override {
    static const RuleInfo kInfo{
        "domain-aliasing",
        "sampling and trace must cover each watermarked domain's rate",
        "Sec. V",
        "For every watermarked clock domain: errors when the scope "
        "samples below 2x the domain clock (the domain's cycle-rate "
        "modulation aliases), errors when the domain runs faster than "
        "the measurement reference (per-reference-cycle averaging folds "
        "several WMARK bits into one Y sample), and checks the trace "
        "against the divider-stretched WMARK period on the reference "
        "timeline (a /8 domain's period is 8x longer than the flat "
        "trace-covers-period rule assumes)."};
    return kInfo;
  }

  void run(const Design& design, std::vector<Diagnostic>& out) const override {
    if (design.clock_domains().empty()) return;
    const double reference_hz =
        design.tech() ? design.tech()->clock_hz : 0.0;
    for (const WatermarkView& wm : design.watermarks()) {
      if (!wm.domain || *wm.domain >= design.clock_domains().size()) {
        continue;
      }
      const ClockDomainView& d = design.clock_domains()[*wm.domain];
      if (d.clock_hz <= 0.0) continue;
      const std::string loc = "domain '" + d.target + "'";

      if (design.acquisition()) {
        const double rate = design.acquisition()->scope.sample_rate_hz;
        if (rate > 0.0 && rate < 2.0 * d.clock_hz) {
          out.push_back(
              {info().id, Severity::kError, loc,
               "scope at " + mhz(rate) + " samples the " +
                   mhz(d.clock_hz) + " domain '" + d.target +
                   "' below Nyquist: watermark '" + wm.name +
                   "' aliases and cannot be recovered from Y",
               "raise measure sample_rate above 2x the domain clock, or "
               "embed in a slower domain"});
        }
      }

      if (reference_hz > 0.0) {
        if (d.clock_hz > reference_hz * (1.0 + 1e-9)) {
          out.push_back(
              {info().id, Severity::kError, loc,
               "domain '" + d.target + "' runs at " + mhz(d.clock_hz) +
                   ", above the " + mhz(reference_hz) +
                   " measurement reference: per-reference-cycle "
                   "averaging folds " +
                   std::to_string(static_cast<std::size_t>(
                       std::ceil(d.clock_hz / reference_hz))) +
                   " WMARK bits into every Y sample and the modulation "
                   "averages toward DC",
               "measure against the domain's own input clock, or divide "
               "the domain below the reference"});
        } else if (design.trace_cycles()) {
          // A slower domain stretches each WMARK bit over
          // reference/domain reference cycles: the period the rotation
          // correlator must cover grows by the same factor.
          const double stretch = reference_hz / d.clock_hz;
          const std::size_t period = Design::nominal_period(wm.wgc);
          if (stretch > 1.0 + 1e-9 && period != 0) {
            const double stretched =
                static_cast<double>(period) * stretch;
            const auto trace =
                static_cast<double>(*design.trace_cycles());
            if (trace < stretched) {
              out.push_back(
                  {info().id, Severity::kError, loc,
                   "trace of " +
                       std::to_string(*design.trace_cycles()) +
                       " reference cycles covers less than one WMARK "
                       "period of watermark '" +
                       wm.name + "': the /" +
                       std::to_string(d.division) +
                       " divider stretches the " +
                       std::to_string(period) + "-cycle period to " +
                       std::to_string(
                           static_cast<std::size_t>(stretched)) +
                       " reference cycles",
                   "lengthen measure trace, shorten the WGC period, or "
                   "embed before the divider"});
            } else if (trace < 4.0 * stretched) {
              out.push_back(
                  {info().id, Severity::kWarning, loc,
                   "trace of " +
                       std::to_string(*design.trace_cycles()) +
                       " reference cycles spans only " +
                       std::to_string(static_cast<std::size_t>(
                           trace / stretched)) +
                       " divider-stretched WMARK period(s) of "
                       "watermark '" +
                       wm.name + "' (period " + std::to_string(period) +
                       " x /" + std::to_string(d.division) + ")",
                   "lengthen the capture: averaging gain over the noise "
                   "floor is marginal below four periods"});
            }
          }
        }
      }
    }
  }
};

/// test-bypassable-watermark: DFT removability. qsoc wires the
/// controller-wide test_enable into every target ICG so scan shift can
/// reach gated flops; for a watermarked ICG that same OR gate is a
/// one-pin kill switch for the modulation.
class TestBypassableWatermarkRule final : public Rule {
 public:
  const RuleInfo& info() const noexcept override {
    static const RuleInfo kInfo{
        "test-bypassable-watermark",
        "a watermarked ICG must not be forced open by test_enable",
        "Sec. VI",
        "Flags watermarks whose gating ICG participates in the "
        "controller-wide test_enable DFT bypass: holding the test pin "
        "high forces the gate open regardless of WMARK, so the "
        "watermark is removable without touching a single gate — the "
        "DFT-path variant of the removal attack."};
    return kInfo;
  }

  void run(const Design& design, std::vector<Diagnostic>& out) const override {
    if (design.clock_domains().empty()) return;
    for (const WatermarkView& wm : design.watermarks()) {
      if (!wm.domain || *wm.domain >= design.clock_domains().size()) {
        continue;
      }
      const ClockDomainView& d = design.clock_domains()[*wm.domain];
      if (!d.test_bypassable) continue;
      out.push_back(
          {info().id, Severity::kError, "domain '" + d.target + "'",
           "watermark '" + wm.name + "' modulates an ICG on the "
               "test_enable DFT bypass: asserting the test pin forces "
               "the gate open and stops the modulation without any "
               "netlist edit",
           "set `test_bypass: false` on the watermarked target's icg "
           "(and cover it by a dedicated scan chain), or drop the "
           "controller-wide test_enable"});
    }
  }
};

/// glitch-prone-mux: a plain combinational clock mux can glitch while
/// its select changes; qsoc only instantiates the glitch-free mux when
/// the mux has a reset. Glitches clock extra edges into every sink —
/// and into the power trace a watermark detector correlates against.
class GlitchProneMuxRule final : public Rule {
 public:
  const RuleInfo& info() const noexcept override {
    static const RuleInfo kInfo{
        "glitch-prone-mux",
        "clock muxes need the glitch-free implementation",
        "Sec. II",
        "Warns for every clock domain selected through a combinational "
        "mux without a reset (qsoc's glitch-prone implementation "
        "choice), and errors when such a domain carries a watermark: "
        "mux glitches inject spurious clock edges whose power spikes "
        "are uncorrelated with WMARK and raise the CPA noise floor."};
    return kInfo;
  }

  void run(const Design& design, std::vector<Diagnostic>& out) const override {
    const auto& domains = design.clock_domains();
    for (std::size_t i = 0; i < domains.size(); ++i) {
      const ClockDomainView& d = domains[i];
      if (!d.mux_glitch_prone) continue;
      const WatermarkView* wm = watermark_of_domain(design, i);
      std::string message =
          "domain '" + d.target + "' selects among " +
          std::to_string(d.mux_sources) +
          " parent clocks through a plain combinational mux with no "
          "reset: select changes can glitch the clock";
      if (wm != nullptr) {
        message += ", injecting power spikes uncorrelated with WMARK "
                   "into the very domain watermark '" +
                   wm->name + "' modulates";
      }
      out.push_back({info().id,
                     wm != nullptr ? Severity::kError : Severity::kWarning,
                     "domain '" + d.target + "'", std::move(message),
                     "add a `reset:` to the mux block so the glitch-free "
                     "mux is instantiated"});
    }
  }
};

/// cross-domain-collision: the Gold-bound check re-done on the shared
/// measurement timeline. Two WGCs in different domains do not emit their
/// sequences at the same bit rate — each WMARK bit of a divided domain
/// stretches over division-many reference cycles — so the flat
/// gold-cross-correlation verdict (same-width keys, same timeline) can
/// be wrong in both directions.
class CrossDomainCollisionRule final : public Rule {
 public:
  const RuleInfo& info() const noexcept override {
    static const RuleInfo kInfo{
        "cross-domain-collision",
        "coexisting domain watermarks must separate on the reference "
        "timeline",
        "Sec. III",
        "For every pair of watermarked clock domains, expands both "
        "WMARK streams onto the measurement-reference timeline (each "
        "bit held for reference/domain cycles) and measures their peak "
        "periodic cross-correlation: identical keys at identical rates "
        "are unattributable (error), near-full correlation is rejected, "
        "and rate-mismatched pairs are reported with their measured "
        "separation."};
    return kInfo;
  }

  void run(const Design& design, std::vector<Diagnostic>& out) const override {
    if (design.clock_domains().empty()) return;
    const double reference_hz =
        design.tech() ? design.tech()->clock_hz : 0.0;
    if (reference_hz <= 0.0) return;
    std::vector<const WatermarkView*> wms;
    for (const WatermarkView& wm : design.watermarks()) {
      if (wm.domain && *wm.domain < design.clock_domains().size()) {
        wms.push_back(&wm);
      }
    }
    for (std::size_t a = 0; a < wms.size(); ++a) {
      for (std::size_t b = a + 1; b < wms.size(); ++b) {
        check_pair(design, *wms[a], *wms[b], reference_hz, out);
      }
    }
  }

 private:
  static std::vector<bool> expand(const std::vector<bool>& period,
                                  std::size_t hold, std::size_t length) {
    std::vector<bool> bits(length);
    for (std::size_t i = 0; i < length; ++i) {
      bits[i] = period[(i / hold) % period.size()];
    }
    return bits;
  }

  void check_pair(const Design& design, const WatermarkView& wa,
                  const WatermarkView& wb, double reference_hz,
                  std::vector<Diagnostic>& out) const {
    const ClockDomainView& da = design.clock_domains()[*wa.domain];
    const ClockDomainView& db = design.clock_domains()[*wb.domain];
    const std::string pair =
        "domains '" + da.target + "' / '" + db.target + "'";
    if (!valid_width(wa.wgc) || !valid_width(wb.wgc) ||
        degenerate_state(wa.wgc) || degenerate_state(wb.wgc)) {
      return;  // the primitivity/degenerate rules already fired
    }
    if (da.clock_hz <= 0.0 || db.clock_hz <= 0.0) return;

    const bool same_rate =
        std::fabs(da.clock_hz - db.clock_hz) < 1e-6 * da.clock_hz;
    const bool same_key = wa.wgc.mode == wb.wgc.mode &&
                          wa.wgc.width == wb.wgc.width &&
                          wa.wgc.effective_taps() ==
                              wb.wgc.effective_taps() &&
                          wa.wgc.seed == wb.wgc.seed;
    if (same_rate && same_key) {
      out.push_back(
          {info().id, Severity::kError, pair,
           "watermarks '" + wa.name + "' and '" + wb.name +
               "' use the identical WGC key at the identical " +
               mhz(da.clock_hz) +
               " domain rate: their power signatures coincide and a "
               "detection verdict cannot be attributed to either domain",
           "give each domain its own seed/polynomial — derive the keys "
           "from a Gold preferred pair (sequence::preferred_pair)"});
      return;
    }

    // Expand onto the reference timeline: one WMARK bit of a domain at
    // f_d holds for f_ref / f_d reference cycles.
    const double ratio_a = reference_hz / da.clock_hz;
    const double ratio_b = reference_hz / db.clock_hz;
    const auto hold_a = static_cast<std::size_t>(std::llround(ratio_a));
    const auto hold_b = static_cast<std::size_t>(std::llround(ratio_b));
    if (hold_a == 0 || hold_b == 0 ||
        std::fabs(ratio_a - static_cast<double>(hold_a)) > 1e-6 ||
        std::fabs(ratio_b - static_cast<double>(hold_b)) > 1e-6) {
      out.push_back(
          {info().id, Severity::kInfo, pair,
           "domain rates are not integer divisions of the " +
               mhz(reference_hz) +
               " reference: static timeline expansion does not apply",
           "verify coexistence with bench/abl_dual_watermark"});
      return;
    }
    const std::size_t pa = Design::nominal_period(wa.wgc) * hold_a;
    const std::size_t pb = Design::nominal_period(wb.wgc) * hold_b;
    const std::size_t common = std::lcm(pa, pb);
    if (common == 0 || common > kReferenceCorrelationLimit) {
      out.push_back(
          {info().id, Severity::kInfo, pair,
           "common reference-timeline period " + std::to_string(common) +
               " is too long to cross-correlate statically",
           "check the pair with bench/abl_dual_watermark"});
      return;
    }
    const auto bits_a =
        expand(wgc::WgcSequence(wa.wgc).one_period(), hold_a, common);
    const auto bits_b =
        expand(wgc::WgcSequence(wb.wgc).one_period(), hold_b, common);
    const double peak = sequence::peak_cross_correlation(bits_a, bits_b);
    const double normalized = peak / static_cast<double>(common);
    // Normalised Gold bound of the weaker (shorter-period) key.
    const auto bound_of = [](const wgc::WgcConfig& cfg) {
      const double t = static_cast<double>(
          (std::uint64_t{1} << ((cfg.width + 2) / 2)) + 1);
      return t / static_cast<double>(Design::nominal_period(cfg));
    };
    const double bound = std::max(bound_of(wa.wgc), bound_of(wb.wgc));
    std::ostringstream msg;
    msg.precision(3);
    msg << "peak cross-correlation between '" << wa.name << "' (x"
        << hold_a << ") and '" << wb.name << "' (x" << hold_b
        << ") on the reference timeline is " << normalized
        << " of the " << common << "-cycle common period";
    if (normalized >= 1.0 - 0.5 / static_cast<double>(common)) {
      out.push_back(
          {info().id, Severity::kError, pair,
           msg.str() + ": the streams coincide, so each domain's "
                       "detector fires on the other watermark",
           "use distinct keys from a Gold preferred pair "
           "(sequence::preferred_pair)"});
    } else if (normalized > 2.0 * bound) {
      out.push_back(
          {info().id, Severity::kWarning, pair,
           msg.str() + " (normalised Gold bound " +
               std::to_string(bound) +
               "): mutual interference raises each detector's noise "
               "floor",
           "prefer a Gold preferred pair, or separate the domain rates "
           "further"});
    } else {
      out.push_back({info().id, Severity::kInfo, pair, msg.str(), ""});
    }
  }
};

}  // namespace

void register_domain_rules(RuleRegistry& registry) {
  registry.add(std::make_unique<DomainAliasingRule>());
  registry.add(std::make_unique<TestBypassableWatermarkRule>());
  registry.add(std::make_unique<GlitchProneMuxRule>());
  registry.add(std::make_unique<CrossDomainCollisionRule>());
}

}  // namespace clockmark::lint
