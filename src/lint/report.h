// Pluggable report renderers for LintReports: a human-readable text form
// and a machine-readable JSON form (schema "cm-lint-1") with a matching
// parser, so CI tooling can round-trip findings without regexes.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "lint/analyzer.h"

namespace clockmark::lint {

class Reporter {
 public:
  virtual ~Reporter() = default;
  virtual void write(const LintReport& report, std::ostream& os) const = 0;
  /// Default: write each report in sequence; JSON overrides this with an
  /// enclosing document.
  virtual void write_all(std::span<const LintReport> reports,
                         std::ostream& os) const;
};

class TextReporter final : public Reporter {
 public:
  struct Options {
    bool hints = true;  ///< print fix hints under each finding
  };
  TextReporter() = default;
  explicit TextReporter(Options options) : options_(options) {}

  void write(const LintReport& report, std::ostream& os) const override;

 private:
  Options options_;
};

/// Emits schema "cm-lint-1":
///   { "schema": "cm-lint-1",
///     "designs": [ { "design": ..., "summary": {"errors": ...},
///                    "diagnostics": [ {"rule": ..., "severity": ...,
///                      "location": ..., "message": ..., "hint": ...} ] } ],
///     "summary": { "errors": ..., "warnings": ..., "infos": ... } }
/// write() emits one bare design object.
class JsonReporter final : public Reporter {
 public:
  void write(const LintReport& report, std::ostream& os) const override;
  void write_all(std::span<const LintReport> reports,
                 std::ostream& os) const override;
};

/// Parses JsonReporter output back into reports. Accepts either a full
/// "cm-lint-1" document or one bare design object; throws
/// std::invalid_argument on malformed input or an unknown schema.
std::vector<LintReport> parse_json_reports(std::string_view json);

/// JSON string escaping ('"', '\\' and control characters), exposed for
/// tests and for other JSON writers in the repo.
std::string json_escape(std::string_view raw);

}  // namespace clockmark::lint
