// WGC sequence design rules — the signal-quality half of the catalog.
// The paper's detection (Sec. III-IV) leans on m-sequence properties:
// maximal period, +1 balance, short runs and the two-valued
// autocorrelation that keeps the CPA off-peak floor at -1/P; Gold codes
// from the WGC's second generator bound cross-correlation between
// coexisting watermarks.
#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "lint/design.h"
#include "lint/rules_internal.h"
#include "sequence/gold.h"
#include "sequence/lfsr.h"
#include "sequence/polynomials.h"
#include "sequence/properties.h"

namespace clockmark::lint {
namespace {

/// Widths up to this are cheap to verify by direct period measurement
/// (at most ~1M LFSR steps).
constexpr unsigned kSimulatedWidthLimit = 20;

/// Periods up to this are cheap to cross-correlate pairwise.
constexpr std::size_t kCrossCorrelationLimit = 1u << 14;

std::uint32_t width_mask(unsigned width) {
  return width >= 32 ? 0xffffffffu
                     : ((std::uint32_t{1} << width) - 1u);
}

std::string hex(std::uint32_t value) {
  std::ostringstream os;
  os << "0x" << std::hex << value;
  return os.str();
}

/// True when the generator can never leave a constant output: LFSR in
/// the all-zero lock-up state, or a circular register whose pattern is
/// all zeros / all ones.
bool degenerate_state(const wgc::WgcConfig& config) {
  const std::uint32_t mask = width_mask(config.width);
  const std::uint32_t state = config.seed & mask;
  if (config.mode == wgc::WgcMode::kLfsr) return state == 0;
  return state == 0 || state == mask;
}

bool valid_width(const wgc::WgcConfig& config) {
  return config.width >= 2 && config.width <= 32;
}

/// One nominal period of WMARK bits; callers must have screened out
/// invalid widths and degenerate states first.
std::vector<bool> one_period(const wgc::WgcConfig& config) {
  return wgc::WgcSequence(config).one_period();
}

/// wgc-primitivity: a non-primitive feedback polynomial collapses the
/// period, shrinking the unambiguous phase range and raising the
/// autocorrelation floor the CPA noise margin is computed against.
class WgcPrimitivityRule final : public Rule {
 public:
  const RuleInfo& info() const noexcept override {
    static const RuleInfo kInfo{
        "wgc-primitivity",
        "LFSR feedback polynomial must be primitive (maximal period)",
        "Sec. III",
        "Measures the actual LFSR period for widths up to 20 (table "
        "lookup beyond) and errors when it falls short of 2^width - 1; "
        "circular-register mode is flagged as a weaker carrier."};
    return kInfo;
  }

  void run(const Design& design, std::vector<Diagnostic>& out) const override {
    for (const WatermarkView& wm : design.watermarks()) {
      const wgc::WgcConfig& cfg = wm.wgc;
      if (!valid_width(cfg)) {
        out.push_back({info().id, Severity::kError, wm.name,
                       "WGC width " + std::to_string(cfg.width) +
                           " is outside the buildable range [2, 32]",
                       "use a register width between 2 and 32"});
        continue;
      }
      if (cfg.mode == wgc::WgcMode::kCircular) {
        out.push_back(
            {info().id, Severity::kWarning, wm.name,
             "circular shift register carrier: period is only " +
                 std::to_string(cfg.width) +
                 " and the autocorrelation is not two-valued, so the CPA "
                 "off-peak floor is far above the m-sequence's -1/P",
             "prefer the maximal-length LFSR mode (paper configuration)"});
        continue;
      }
      const std::uint32_t taps = cfg.effective_taps();
      const std::size_t maximal = Design::nominal_period(cfg);
      if (cfg.width <= kSimulatedWidthLimit) {
        const std::uint32_t seed =
            (cfg.seed & width_mask(cfg.width)) != 0 ? cfg.seed : 1u;
        sequence::Lfsr lfsr(cfg.width, taps, seed);
        const std::size_t period = lfsr.measure_period();
        if (period != maximal) {
          out.push_back(
              {info().id, Severity::kError, wm.name,
               "feedback polynomial " + hex(taps) + " at width " +
                   std::to_string(cfg.width) +
                   " is not primitive: the period collapses to " +
                   std::to_string(period) + " instead of " +
                   std::to_string(maximal),
               "use sequence::maximal_taps(" + std::to_string(cfg.width) +
                   ") = " + hex(sequence::maximal_taps(cfg.width))});
        }
      } else if (taps != sequence::maximal_taps(cfg.width)) {
        out.push_back(
            {info().id, Severity::kWarning, wm.name,
             "custom feedback polynomial " + hex(taps) + " at width " +
                 std::to_string(cfg.width) +
                 " cannot be verified statically (period up to " +
                 std::to_string(maximal) + ")",
             "use the table polynomial " +
                 hex(sequence::maximal_taps(cfg.width)) +
                 " or verify primitivity offline"});
      }
    }
  }
};

/// wgc-degenerate-state: a generator stuck at a constant output emits no
/// modulation at all — the watermark exists on paper only.
class WgcDegenerateStateRule final : public Rule {
 public:
  const RuleInfo& info() const noexcept override {
    static const RuleInfo kInfo{
        "wgc-degenerate-state",
        "the WGC must not start in a lock-up state",
        "Sec. III",
        "An all-zero LFSR seed (or an all-equal circular pattern) keeps "
        "WMARK constant forever: the clock is never modulated and CPA "
        "has nothing to correlate against."};
    return kInfo;
  }

  void run(const Design& design, std::vector<Diagnostic>& out) const override {
    for (const WatermarkView& wm : design.watermarks()) {
      if (!valid_width(wm.wgc) || !degenerate_state(wm.wgc)) continue;
      const bool lfsr = wm.wgc.mode == wgc::WgcMode::kLfsr;
      out.push_back(
          {info().id, Severity::kError, wm.name,
           lfsr ? "LFSR seed " + hex(wm.wgc.seed) + " masks to the "
                      "all-zero lock-up state: WMARK is constant 0 and "
                      "the watermark never modulates the clock"
                : "circular pattern " + hex(wm.wgc.seed) + " is constant "
                      "after masking: WMARK never toggles",
           "seed the generator with any nonzero (non-all-ones for "
           "circular) state"});
    }
  }
};

/// sequence-balance: an unbalanced WMARK stream shifts mean power and
/// correlates with DC/workload drift instead of averaging out, degrading
/// the Pearson peak the detector thresholds on.
class SequenceBalanceRule final : public Rule {
 public:
  const RuleInfo& info() const noexcept override {
    static const RuleInfo kInfo{
        "sequence-balance",
        "WMARK duty cycle must stay near 50 %",
        "Sec. IV",
        "Checks the one-period duty cycle: beyond ±10 % of balanced the "
        "CPA model starts correlating with slow power drift (warning), "
        "beyond ±25 % detectability is structurally impaired (error)."};
    return kInfo;
  }

  void run(const Design& design, std::vector<Diagnostic>& out) const override {
    for (const WatermarkView& wm : design.watermarks()) {
      if (!valid_width(wm.wgc) || degenerate_state(wm.wgc)) continue;
      const auto bits = one_period(wm.wgc);
      if (bits.empty()) continue;
      std::size_t ones = 0;
      for (const bool b : bits) ones += b ? 1u : 0u;
      const double duty =
          static_cast<double>(ones) / static_cast<double>(bits.size());
      const double off = duty > 0.5 ? duty - 0.5 : 0.5 - duty;
      if (off <= 0.1) continue;
      std::ostringstream msg;
      msg.precision(3);
      msg << "WMARK duty cycle of watermark '" << wm.name << "' is "
          << duty << " (balance " << sequence::balance(bits)
          << " over period " << bits.size()
          << "): the modulation no longer averages out against slow "
             "power drift";
      out.push_back({info().id,
                     off > 0.25 ? Severity::kError : Severity::kWarning,
                     wm.name, msg.str(),
                     "use a maximal-length LFSR (duty (P+1)/2P) or a "
                     "balanced circular pattern"});
    }
  }
};

/// sequence-runs: a long constant stretch is a DC segment after the PDN
/// low-pass — within it there is no modulation detail to correlate.
class SequenceRunsRule final : public Rule {
 public:
  const RuleInfo& info() const noexcept override {
    static const RuleInfo kInfo{
        "sequence-runs",
        "no constant stretch may dominate the WMARK period",
        "Sec. IV-V",
        "Flags sequences whose longest run of equal bits exceeds a "
        "quarter of the period: the board's decoupling low-passes such "
        "stretches into DC and the effective correlation length shrinks. "
        "m-sequences pass by construction (longest run = width)."};
    return kInfo;
  }

  void run(const Design& design, std::vector<Diagnostic>& out) const override {
    for (const WatermarkView& wm : design.watermarks()) {
      if (!valid_width(wm.wgc) || degenerate_state(wm.wgc)) continue;
      const auto bits = one_period(wm.wgc);
      if (bits.size() <= 8) continue;
      const auto runs = sequence::run_lengths(bits);
      std::size_t longest = 0;
      for (const std::size_t r : runs) longest = std::max(longest, r);
      if (longest * 4 <= bits.size()) continue;
      out.push_back(
          {info().id, Severity::kWarning, wm.name,
           "longest constant WMARK stretch of watermark '" + wm.name +
               "' is " + std::to_string(longest) + " of a " +
               std::to_string(bits.size()) +
               "-cycle period: the PDN low-pass flattens it into DC and "
               "that fraction of the period carries no modulation",
           "pick a carrier whose longest run stays below a quarter of "
           "the period (an m-sequence's is its register width)"});
    }
  }
};

/// gold-cross-correlation: coexisting watermarks must use keys whose
/// cross-correlation is bounded, or each detector fires on the other.
class GoldCrossCorrelationRule final : public Rule {
 public:
  const RuleInfo& info() const noexcept override {
    static const RuleInfo kInfo{
        "gold-cross-correlation",
        "coexisting watermark keys need bounded cross-correlation",
        "Sec. III",
        "For every pair of watermarks of equal width, measures the peak "
        "periodic cross-correlation of their WMARK streams against the "
        "Gold bound t(w) = 2^floor((w+2)/2) + 1; shifts of one "
        "m-sequence correlate fully and are rejected."};
    return kInfo;
  }

  void run(const Design& design, std::vector<Diagnostic>& out) const override {
    const auto& wms = design.watermarks();
    for (std::size_t a = 0; a < wms.size(); ++a) {
      for (std::size_t b = a + 1; b < wms.size(); ++b) {
        check_pair(wms[a], wms[b], out);
      }
    }
  }

 private:
  void check_pair(const WatermarkView& wa, const WatermarkView& wb,
                  std::vector<Diagnostic>& out) const {
    const std::string pair = wa.name + " / " + wb.name;
    if (!valid_width(wa.wgc) || !valid_width(wb.wgc) ||
        degenerate_state(wa.wgc) || degenerate_state(wb.wgc)) {
      return;  // the primitivity/degenerate rules already fired
    }
    if (wa.wgc.mode != wb.wgc.mode || wa.wgc.width != wb.wgc.width) {
      out.push_back(
          {info().id, Severity::kInfo, pair,
           "watermarks use different generator widths/modes (periods " +
               std::to_string(Design::nominal_period(wa.wgc)) + " and " +
               std::to_string(Design::nominal_period(wb.wgc)) +
               "): the Gold bound does not apply, verify coexistence "
               "with the dual-watermark bench",
           ""});
      return;
    }
    const std::size_t period = Design::nominal_period(wa.wgc);
    if (period > kCrossCorrelationLimit) {
      out.push_back({info().id, Severity::kInfo, pair,
                     "period " + std::to_string(period) +
                         " is too long to cross-correlate statically",
                     "check the pair with bench/abl_dual_watermark"});
      return;
    }
    const auto bits_a = one_period(wa.wgc);
    const auto bits_b = one_period(wb.wgc);
    const double peak = sequence::peak_cross_correlation(bits_a, bits_b);
    const double gold_bound =
        static_cast<double>(
            (std::uint64_t{1} << ((wa.wgc.width + 2) / 2)) + 1);
    std::ostringstream msg;
    msg << "peak cross-correlation between '" << wa.name << "' and '"
        << wb.name << "' is " << peak << " over period " << period
        << " (Gold bound t = " << gold_bound << ")";
    if (peak >= static_cast<double>(period) - 0.5) {
      out.push_back(
          {info().id, Severity::kError, pair,
           msg.str() + ": the keys are shifts of one sequence, so each "
                       "detector fires on the other watermark",
           "derive the keys from a preferred pair "
           "(sequence::preferred_pair) or use distinct primitive "
           "polynomials"});
    } else if (peak > 2.0 * gold_bound) {
      out.push_back(
          {info().id, Severity::kWarning, wa.name + " / " + wb.name,
           msg.str() + ": mutual interference raises each detector's "
                       "noise floor",
           "prefer a Gold preferred pair for coexisting watermarks"});
    } else {
      out.push_back({info().id, Severity::kInfo, pair, msg.str(), ""});
    }
  }
};

}  // namespace

void register_sequence_rules(RuleRegistry& registry) {
  registry.add(std::make_unique<WgcPrimitivityRule>());
  registry.add(std::make_unique<WgcDegenerateStateRule>());
  registry.add(std::make_unique<SequenceBalanceRule>());
  registry.add(std::make_unique<SequenceRunsRule>());
  registry.add(std::make_unique<GoldCrossCorrelationRule>());
}

}  // namespace clockmark::lint
