// Netlist/connectivity design rules — the static form of the paper's
// Section VI robustness argument: a clock-modulation watermark survives
// RTL inspection because its WGC drives *functional* clock gating, while
// a Fig. 1(a) load circuit is a stand-alone subcircuit an attacker can
// excise without observable effect.
#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "lint/design.h"
#include "lint/rules_internal.h"

namespace clockmark::lint {
namespace {

std::size_t count_registers(const rtl::Netlist& netlist,
                            const std::vector<rtl::CellId>& cells) {
  std::size_t registers = 0;
  for (const rtl::CellId id : cells) {
    if (rtl::is_sequential(netlist.cell(id).kind)) ++registers;
  }
  return registers;
}

/// removable-watermark: every WMARK-modulated ICG must gate functional
/// state somewhere in its clock subtree, otherwise the watermark is a
/// dedicated power burner the attacker can cut at a single net.
class RemovableWatermarkRule final : public Rule {
 public:
  const RuleInfo& info() const noexcept override {
    static const RuleInfo kInfo{
        "removable-watermark",
        "WMARK must modulate functional clock gating",
        "Sec. VI, Fig. 1",
        "Flags watermarks whose WGC gates only dedicated load registers "
        "(the Becker/Ziener load-circuit architecture) or no ICG at all; "
        "the clock-modulation embedding passes because severing WMARK "
        "also severs the IP's own clocks."};
    return kInfo;
  }

  void run(const Design& design, std::vector<Diagnostic>& out) const override {
    const std::vector<bool>& functional = design.functional_state_mask();
    for (std::size_t w = 0; w < design.watermarks().size(); ++w) {
      const WatermarkView& wm = design.watermarks()[w];
      const auto& icgs = design.gating_icgs(w);
      if (icgs.empty()) {
        out.push_back({info().id, Severity::kError, wm.module_path,
                       "watermark '" + wm.name +
                           "' gates no integrated clock gate: WMARK has no "
                           "power path, so the WGC is dead logic an "
                           "attacker deletes for free",
                       "wire WMARK into ICG enables (enable = CLK_CTRL AND "
                       "WMARK; watermark/embedder.h)"});
        continue;
      }
      std::size_t functional_subtrees = 0;
      std::size_t standalone_subtrees = 0;
      std::size_t standalone_registers = 0;
      std::size_t total_registers = 0;
      for (const rtl::CellId icg : icgs) {
        const auto flops = design.clocked_flops_under(icg);
        total_registers += flops.size();
        bool gates_functional = false;
        for (const rtl::CellId flop : flops) {
          if (functional[flop]) {
            gates_functional = true;
            break;
          }
        }
        if (gates_functional) {
          ++functional_subtrees;
        } else {
          ++standalone_subtrees;
          standalone_registers += flops.size();
        }
      }
      if (functional_subtrees == 0) {
        out.push_back(
            {info().id, Severity::kError, wm.module_path,
             "watermark '" + wm.name + "' gates only dedicated load "
                 "registers (" + std::to_string(standalone_registers) +
                 " registers behind " + std::to_string(icgs.size()) +
                 " ICG(s)) — a stand-alone Fig. 1(a) load circuit; cutting "
                 "the WMARK net removes it without functional effect",
             "modulate the IP's existing clock gates instead (enable = "
             "CLK_CTRL AND WMARK; watermark/embedder.h) so removal severs "
             "functional clocks"});
      } else if (standalone_subtrees > 0) {
        out.push_back(
            {info().id, Severity::kWarning, wm.module_path,
             std::to_string(standalone_subtrees) + " of " +
                 std::to_string(icgs.size()) + " WMARK-gated clock "
                 "subtrees of watermark '" + wm.name + "' clock only "
                 "non-functional registers and could be excised "
                 "individually",
             "fold the dedicated subtrees into functional clock groups or "
             "drop them"});
      } else {
        out.push_back(
            {info().id, Severity::kInfo, wm.module_path,
             "watermark '" + wm.name + "' modulates " +
                 std::to_string(functional_subtrees) +
                 " functional clock subtree(s) (" +
                 std::to_string(total_registers) +
                 " registers): removal severs the IP's own clocks",
             ""});
      }
    }
  }
};

/// standalone-component: the attacker's connectivity scan. Watermark
/// cells outside the fan-in cone of every observable signal (primary
/// outputs and declared functional state) can be deleted wholesale.
class StandaloneComponentRule final : public Rule {
 public:
  const RuleInfo& info() const noexcept override {
    static const RuleInfo kInfo{
        "standalone-component",
        "watermark cells must be load-bearing for observable logic",
        "Sec. VI",
        "Replays the RTL-inspection attack statically: any watermark cell "
        "outside the fan-in cone (through data and clock pins) of every "
        "primary output or declared functional register is excisable."};
    return kInfo;
  }

  void run(const Design& design, std::vector<Diagnostic>& out) const override {
    const std::vector<bool>& functional = design.functional_state_mask();
    bool any_root = false;
    for (const bool f : functional) {
      if (f) {
        any_root = true;
        break;
      }
    }
    if (!any_root) {
      out.push_back(
          {info().id, Severity::kError, design.name(),
           "design exposes no primary output and declares no functional "
           "register: every cell (watermark included) is excisable and "
           "the removability analysis is vacuous",
           "mark primary outputs (rtl::Netlist::mark_output) or declare "
           "the functional registers in the lint::Design view"});
      return;
    }
    const std::vector<bool>& load_bearing = design.load_bearing_mask();
    for (std::size_t w = 0; w < design.watermarks().size(); ++w) {
      const WatermarkView& wm = design.watermarks()[w];
      const auto cells = design.watermark_cells(w);
      if (cells.empty()) continue;
      std::vector<rtl::CellId> excisable;
      for (const rtl::CellId id : cells) {
        if (!load_bearing[id]) excisable.push_back(id);
      }
      if (excisable.size() == cells.size()) {
        out.push_back(
            {info().id, Severity::kError, wm.module_path,
             "entire watermark '" + wm.name + "' (" +
                 std::to_string(cells.size()) + " cells, " +
                 std::to_string(count_registers(design.netlist(), cells)) +
                 " registers) lies outside the fan-in cone of every "
                 "observable signal — an RTL stand-alone-circuit scan "
                 "deletes it without breaking the design",
             "entangle the watermark with functional logic: gate existing "
             "clock groups instead of a dedicated load ring"});
      } else if (!excisable.empty()) {
        out.push_back(
            {info().id, Severity::kWarning, wm.module_path,
             std::to_string(excisable.size()) + " of " +
                 std::to_string(cells.size()) + " cells of watermark '" +
                 wm.name + "' are excisable without observable effect "
                 "(first: " +
                 design.netlist().cell(excisable.front()).name + ")",
             "remove the dead cells or wire them into functional paths"});
      } else {
        out.push_back({info().id, Severity::kInfo, wm.module_path,
                       "watermark '" + wm.name + "' is fully entangled: "
                       "all " + std::to_string(cells.size()) +
                           " cells are load-bearing for observable logic",
                       ""});
      }
    }
  }
};

/// unmodulated-clock: registers clocked straight from the root with no
/// ICG burn constant clock power — pure background that dilutes the
/// watermark's share of the supply current.
class UnmodulatedClockRule final : public Rule {
 public:
  const RuleInfo& info() const noexcept override {
    static const RuleInfo kInfo{
        "unmodulated-clock",
        "clock subtrees without any ICG dilute the watermark SNR",
        "Sec. II-III",
        "Finds flops whose clock path from the root contains no ICG "
        "(the free-running WGC itself is exempt); their buffers switch "
        "every cycle and only add background power."};
    return kInfo;
  }

  void run(const Design& design, std::vector<Diagnostic>& out) const override {
    std::unordered_set<rtl::CellId> exempt;
    for (const WatermarkView& wm : design.watermarks()) {
      exempt.insert(wm.wgc_cells.begin(), wm.wgc_cells.end());
    }
    std::vector<rtl::CellId> ungated;
    for (const rtl::CellId id : design.ungated_clocked_flops()) {
      if (exempt.count(id) == 0) ungated.push_back(id);
    }
    if (ungated.empty()) return;

    std::size_t total_flops = 0;
    for (const rtl::Cell& cell : design.netlist().cells()) {
      if (rtl::is_sequential(cell.kind)) ++total_flops;
    }
    const double fraction =
        total_flops == 0
            ? 0.0
            : static_cast<double>(ungated.size()) /
                  static_cast<double>(total_flops);
    std::string examples = design.netlist().cell(ungated.front()).name;
    if (ungated.size() > 1) {
      examples += ", " + design.netlist().cell(ungated[1]).name;
      if (ungated.size() > 2) examples += ", ...";
    }
    out.push_back(
        {info().id, fraction > 0.5 ? Severity::kWarning : Severity::kInfo,
         design.netlist().net_name(design.root_clock()),
         std::to_string(ungated.size()) + " of " +
             std::to_string(total_flops) + " registers (" + examples +
             ") are clocked with no ICG on the path: their clock buffers "
             "switch every cycle as unmodulated background power",
         "gate these sinks behind ICGs (clocktree::build_gated_group) or "
         "accept them as background load"});
  }
};

}  // namespace

void register_structure_rules(RuleRegistry& registry) {
  registry.add(std::make_unique<RemovableWatermarkRule>());
  registry.add(std::make_unique<StandaloneComponentRule>());
  registry.add(std::make_unique<UnmodulatedClockRule>());
}

}  // namespace clockmark::lint
