#include "lint/rule.h"

#include <stdexcept>

#include "lint/rules_internal.h"

namespace clockmark::lint {

RuleRegistry& RuleRegistry::add(std::unique_ptr<Rule> rule) {
  if (!rule) {
    throw std::invalid_argument("RuleRegistry::add: null rule");
  }
  if (find(rule->info().id) != nullptr) {
    throw std::invalid_argument("RuleRegistry::add: duplicate rule id '" +
                                rule->info().id + "'");
  }
  rules_.push_back(std::move(rule));
  return *this;
}

const Rule* RuleRegistry::find(std::string_view id) const noexcept {
  for (const auto& rule : rules_) {
    if (rule->info().id == id) return rule.get();
  }
  return nullptr;
}

std::vector<const Rule*> RuleRegistry::rules() const {
  std::vector<const Rule*> out;
  out.reserve(rules_.size());
  for (const auto& rule : rules_) out.push_back(rule.get());
  return out;
}

RuleRegistry builtin_rules() {
  RuleRegistry registry;
  register_structure_rules(registry);
  register_sequence_rules(registry);
  register_acquisition_rules(registry);
  register_domain_rules(registry);
  return registry;
}

}  // namespace clockmark::lint
