#include "lint/analyzer.h"

#include <algorithm>
#include <stdexcept>

#include "lint/design.h"

namespace clockmark::lint {

Analyzer::Analyzer(const RuleRegistry& registry, AnalyzerOptions options)
    : registry_(registry), options_(std::move(options)) {
  for (const std::string& id : options_.enabled_rules) {
    if (registry_.find(id) == nullptr) {
      throw std::invalid_argument("Analyzer: unknown rule id '" + id + "'");
    }
  }
}

LintReport Analyzer::run(const Design& design) const {
  LintReport report;
  report.design = design.name();
  for (const Rule* rule : registry_.rules()) {
    if (!options_.enabled_rules.empty() &&
        std::find(options_.enabled_rules.begin(),
                  options_.enabled_rules.end(),
                  rule->info().id) == options_.enabled_rules.end()) {
      continue;
    }
    rule->run(design, report.diagnostics);
  }
  std::erase_if(report.diagnostics, [&](const Diagnostic& d) {
    return static_cast<int>(d.severity) <
           static_cast<int>(options_.min_severity);
  });
  std::stable_sort(report.diagnostics.begin(), report.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.severity != b.severity) {
                       return static_cast<int>(a.severity) >
                              static_cast<int>(b.severity);
                     }
                     if (a.rule != b.rule) return a.rule < b.rule;
                     return a.location < b.location;
                   });
  report.counts = count_diagnostics(report.diagnostics);
  return report;
}

}  // namespace clockmark::lint
