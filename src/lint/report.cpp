#include "lint/report.h"

#include <cctype>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace clockmark::lint {

void Reporter::write_all(std::span<const LintReport> reports,
                         std::ostream& os) const {
  for (const LintReport& report : reports) write(report, os);
}

void TextReporter::write(const LintReport& report, std::ostream& os) const {
  os << "design " << report.design << ": " << report.counts.errors
     << " error(s), " << report.counts.warnings << " warning(s), "
     << report.counts.infos << " info(s)\n";
  for (const Diagnostic& d : report.diagnostics) {
    os << "  [" << severity_name(d.severity) << "] " << d.rule << " @ "
       << d.location << "\n      " << d.message << "\n";
    if (options_.hints && !d.hint.empty()) {
      os << "      hint: " << d.hint << "\n";
    }
  }
}

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          out += kHex[static_cast<unsigned char>(c) & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_summary(std::ostream& os, const DiagnosticCounts& counts) {
  os << "{\"errors\": " << counts.errors
     << ", \"warnings\": " << counts.warnings
     << ", \"infos\": " << counts.infos << "}";
}

void write_design_object(std::ostream& os, const LintReport& report,
                         const std::string& indent) {
  os << indent << "{\n"
     << indent << "  \"design\": \"" << json_escape(report.design)
     << "\",\n"
     << indent << "  \"summary\": ";
  write_summary(os, report.counts);
  os << ",\n" << indent << "  \"diagnostics\": [";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    os << (i == 0 ? "\n" : ",\n") << indent << "    {\"rule\": \""
       << json_escape(d.rule) << "\", \"severity\": \""
       << severity_name(d.severity) << "\", \"location\": \""
       << json_escape(d.location) << "\", \"message\": \""
       << json_escape(d.message) << "\", \"hint\": \""
       << json_escape(d.hint) << "\"}";
  }
  if (!report.diagnostics.empty()) os << "\n" << indent << "  ";
  os << "]\n" << indent << "}";
}

}  // namespace

void JsonReporter::write(const LintReport& report, std::ostream& os) const {
  write_design_object(os, report, "");
  os << "\n";
}

void JsonReporter::write_all(std::span<const LintReport> reports,
                             std::ostream& os) const {
  DiagnosticCounts total;
  for (const LintReport& r : reports) {
    total.errors += r.counts.errors;
    total.warnings += r.counts.warnings;
    total.infos += r.counts.infos;
  }
  os << "{\n  \"schema\": \"cm-lint-1\",\n  \"designs\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    write_design_object(os, reports[i], "    ");
  }
  if (!reports.empty()) os << "\n  ";
  os << "],\n  \"summary\": ";
  write_summary(os, total);
  os << "\n}\n";
}

// ---------------------------------------------------------------------
// Minimal JSON parser — just enough for the cm-lint-1 schema round-trip
// (objects, arrays, strings with escapes, numbers, booleans, null).
namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("parse_json_reports: " + what +
                                " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    JsonValue value;
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"':
        value.kind = JsonValue::Kind::kString;
        value.str = parse_string();
        return value;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = true;
        return value;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = false;
        return value;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return value;
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      // RFC 8259 leaves duplicate-key behaviour undefined; for a CI
      // interchange format "pick one silently" can flip a verdict, so
      // duplicates are malformed input here.
      if (value.find(key) != nullptr) {
        fail("duplicate object key \"" + key + "\"");
      }
      expect(':');
      value.object.emplace_back(std::move(key), parse_value());
      const char next = peek();
      ++pos_;
      if (next == '}') return value;
      if (next != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') return value;
      if (next != ',') fail("expected ',' or ']'");
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape digit");
      }
    }
    return code;
  }

  void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t code = parse_hex4();
          if (code >= 0xdc00 && code <= 0xdfff) {
            fail("lone low surrogate in \\u escape");
          }
          if (code >= 0xd800 && code <= 0xdbff) {
            // A high surrogate is only valid as the first half of a
            // pair; encoding it bare would emit invalid UTF-8.
            if (text_.substr(pos_, 2) != "\\u") {
              fail("unpaired high surrogate in \\u escape");
            }
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (low < 0xdc00 || low > 0xdfff) fail("bad surrogate pair");
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          }
          append_utf8(out, code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  bool digit_at(std::size_t pos) const {
    return pos < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos])) != 0;
  }

  /// RFC 8259 number grammar, enforced character by character:
  /// -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?. Anything looser
  /// ("+1", "01", ".5", "1.") is rejected instead of handed to stod.
  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digit_at(pos_)) fail("expected a value");
    if (text_[pos_] == '0') {
      ++pos_;
      if (digit_at(pos_)) fail("leading zero in number");
    } else {
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit_at(pos_)) fail("expected digits after decimal point");
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit_at(pos_)) fail("expected exponent digits");
      while (digit_at(pos_)) ++pos_;
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    try {
      value.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const JsonValue& require(const JsonValue& object, std::string_view key,
                         JsonValue::Kind kind) {
  const JsonValue* value = object.find(key);
  if (value == nullptr || value->kind != kind) {
    throw std::invalid_argument("parse_json_reports: missing or mistyped "
                                "key '" + std::string(key) + "'");
  }
  return *value;
}

std::size_t require_count(const JsonValue& summary, std::string_view key) {
  const JsonValue& value = require(summary, key, JsonValue::Kind::kNumber);
  if (value.number < 0) {
    throw std::invalid_argument("parse_json_reports: negative count");
  }
  return static_cast<std::size_t>(value.number);
}

LintReport report_from_object(const JsonValue& object) {
  LintReport report;
  report.design = require(object, "design", JsonValue::Kind::kString).str;
  const JsonValue& diags =
      require(object, "diagnostics", JsonValue::Kind::kArray);
  for (const JsonValue& entry : diags.array) {
    if (entry.kind != JsonValue::Kind::kObject) {
      throw std::invalid_argument(
          "parse_json_reports: diagnostic is not an object");
    }
    Diagnostic d;
    d.rule = require(entry, "rule", JsonValue::Kind::kString).str;
    d.severity = parse_severity(
        require(entry, "severity", JsonValue::Kind::kString).str);
    d.location = require(entry, "location", JsonValue::Kind::kString).str;
    d.message = require(entry, "message", JsonValue::Kind::kString).str;
    d.hint = require(entry, "hint", JsonValue::Kind::kString).str;
    report.diagnostics.push_back(std::move(d));
  }
  report.counts = count_diagnostics(report.diagnostics);
  const JsonValue& summary =
      require(object, "summary", JsonValue::Kind::kObject);
  const DiagnosticCounts declared{require_count(summary, "errors"),
                                  require_count(summary, "warnings"),
                                  require_count(summary, "infos")};
  if (declared != report.counts) {
    throw std::invalid_argument(
        "parse_json_reports: summary counts disagree with the "
        "diagnostics of design '" + report.design + "'");
  }
  return report;
}

}  // namespace

std::vector<LintReport> parse_json_reports(std::string_view json) {
  JsonParser parser(json);
  const JsonValue root = parser.parse();
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::invalid_argument("parse_json_reports: root is not an object");
  }
  // A bare design object (JsonReporter::write output).
  if (root.find("design") != nullptr) {
    return {report_from_object(root)};
  }
  const JsonValue& schema = require(root, "schema", JsonValue::Kind::kString);
  if (schema.str != "cm-lint-1") {
    throw std::invalid_argument("parse_json_reports: unknown schema '" +
                                schema.str + "'");
  }
  const JsonValue& designs =
      require(root, "designs", JsonValue::Kind::kArray);
  std::vector<LintReport> reports;
  reports.reserve(designs.array.size());
  for (const JsonValue& entry : designs.array) {
    if (entry.kind != JsonValue::Kind::kObject) {
      throw std::invalid_argument(
          "parse_json_reports: design entry is not an object");
    }
    reports.push_back(report_from_object(entry));
  }
  return reports;
}

}  // namespace clockmark::lint
