#include "cpu/core.h"

#include <bit>
#include <sstream>

namespace clockmark::cpu {

Em0Core::Em0Core(BusInterface& bus) : bus_(bus) {}

void Em0Core::reset(std::uint32_t pc, std::uint32_t sp) {
  regs_.fill(0);
  regs_[kPc] = pc;
  regs_[kSp] = sp;
  n_ = z_ = c_ = v_ = false;
  halted_ = sleeping_ = faulted_ = false;
  stall_cycles_ = 0;
  retired_ = 0;
  cycles_ = 0;
  activity_ = CpuActivity{};
}

bool Em0Core::condition_passed(Cond cond) const noexcept {
  switch (cond) {
    case Cond::kEq: return z_;
    case Cond::kNe: return !z_;
    case Cond::kCs: return c_;
    case Cond::kCc: return !c_;
    case Cond::kMi: return n_;
    case Cond::kPl: return !n_;
    case Cond::kVs: return v_;
    case Cond::kVc: return !v_;
    case Cond::kHi: return c_ && !z_;
    case Cond::kLs: return !c_ || z_;
    case Cond::kGe: return n_ == v_;
    case Cond::kLt: return n_ != v_;
    case Cond::kGt: return !z_ && n_ == v_;
    case Cond::kLe: return z_ || n_ != v_;
    case Cond::kAl: return true;
  }
  return true;
}

void Em0Core::write_reg(unsigned index, std::uint32_t value) {
  const std::uint32_t old = regs_[index];
  regs_[index] = value;
  ++activity_.regfile_writes;
  activity_.data_toggle_bits +=
      static_cast<unsigned>(std::popcount(old ^ value));
}

void Em0Core::set_nz(std::uint32_t result) noexcept {
  n_ = (result & 0x80000000u) != 0u;
  z_ = result == 0u;
}

std::uint32_t Em0Core::add_with_carry(std::uint32_t a, std::uint32_t b,
                                      bool carry_in) noexcept {
  const std::uint64_t wide = static_cast<std::uint64_t>(a) +
                             static_cast<std::uint64_t>(b) +
                             (carry_in ? 1u : 0u);
  const auto result = static_cast<std::uint32_t>(wide);
  c_ = wide > 0xffffffffull;
  const bool sa = (a & 0x80000000u) != 0u;
  const bool sb = (b & 0x80000000u) != 0u;
  const bool sr = (result & 0x80000000u) != 0u;
  v_ = (sa == sb) && (sr != sa);
  set_nz(result);
  return result;
}

const CpuActivity& Em0Core::step() {
  activity_ = CpuActivity{};
  ++cycles_;

  if (halted_ || faulted_) {
    activity_.halted = true;
    return activity_;
  }
  if (sleeping_) {
    activity_.sleeping = true;
    return activity_;
  }
  if (stall_cycles_ > 0) {
    --stall_cycles_;
    activity_.active = true;
    activity_.stall = true;
    return activity_;
  }

  // Fetch.
  activity_.active = true;
  activity_.fetch = true;
  const auto fetch = bus_.read(regs_[kPc], 4);
  if (fetch.fault) {
    faulted_ = true;
    activity_.halted = true;
    return activity_;
  }
  const auto inst = decode(fetch.data);
  if (!inst.has_value()) {
    faulted_ = true;
    activity_.halted = true;
    return activity_;
  }
  activity_.opcode = inst->opcode;
  regs_[kPc] += 4;
  execute(*inst);
  if (!faulted_) ++retired_;
  stall_cycles_ += fetch.wait_cycles;
  return activity_;
}

void Em0Core::execute(const Instruction& inst) {
  auto mem_read = [&](std::uint32_t addr, unsigned bytes) -> std::uint32_t {
    const auto acc = bus_.read(addr, bytes);
    if (acc.fault) {
      faulted_ = true;
      return 0;
    }
    activity_.mem_read = true;
    stall_cycles_ += 1 + acc.wait_cycles;  // base load cost: 2 cycles
    return acc.data;
  };
  auto mem_write = [&](std::uint32_t addr, std::uint32_t value,
                       unsigned bytes) {
    const auto acc = bus_.write(addr, value, bytes);
    if (acc.fault) faulted_ = true;
    activity_.mem_write = true;
    stall_cycles_ += 1 + acc.wait_cycles;  // base store cost: 2 cycles
  };
  auto branch_to = [&](std::uint32_t target) {
    regs_[kPc] = target;
    activity_.branch_taken = true;
    stall_cycles_ += 1;  // pipeline refill
  };

  const std::uint32_t rn_v = regs_[inst.rn];
  const std::uint32_t rm_v = regs_[inst.rm];

  switch (inst.opcode) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      halted_ = true;
      break;
    case Opcode::kWfi:
      sleeping_ = true;
      break;
    case Opcode::kMovImm:
      write_reg(inst.rd, static_cast<std::uint32_t>(inst.imm));
      set_nz(regs_[inst.rd]);
      activity_.alu_used = true;
      break;
    case Opcode::kMovTop:
      write_reg(inst.rd, (regs_[inst.rd] & 0xffffu) |
                             (static_cast<std::uint32_t>(inst.imm) << 16u));
      activity_.alu_used = true;
      break;
    case Opcode::kMovReg:
      write_reg(inst.rd, rn_v);
      set_nz(rn_v);
      activity_.alu_used = true;
      break;
    case Opcode::kMvn:
      write_reg(inst.rd, ~rn_v);
      set_nz(~rn_v);
      activity_.alu_used = true;
      break;
    case Opcode::kAdd:
      write_reg(inst.rd, add_with_carry(rn_v, rm_v, false));
      activity_.alu_used = true;
      break;
    case Opcode::kAddImm:
      write_reg(inst.rd, add_with_carry(
                             rn_v, static_cast<std::uint32_t>(inst.imm),
                             false));
      activity_.alu_used = true;
      break;
    case Opcode::kAdc:
      write_reg(inst.rd, add_with_carry(rn_v, rm_v, c_));
      activity_.alu_used = true;
      break;
    case Opcode::kSub:
      write_reg(inst.rd, add_with_carry(rn_v, ~rm_v, true));
      activity_.alu_used = true;
      break;
    case Opcode::kSubImm:
      write_reg(inst.rd,
                add_with_carry(
                    rn_v, ~static_cast<std::uint32_t>(inst.imm), true));
      activity_.alu_used = true;
      break;
    case Opcode::kSbc:
      write_reg(inst.rd, add_with_carry(rn_v, ~rm_v, c_));
      activity_.alu_used = true;
      break;
    case Opcode::kRsb:
      write_reg(inst.rd, add_with_carry(rm_v, ~rn_v, true));
      activity_.alu_used = true;
      break;
    case Opcode::kMul: {
      const std::uint32_t r = rn_v * rm_v;
      write_reg(inst.rd, r);
      set_nz(r);
      activity_.multiplier_used = true;
      break;
    }
    case Opcode::kAnd: {
      const std::uint32_t r = rn_v & rm_v;
      write_reg(inst.rd, r);
      set_nz(r);
      activity_.alu_used = true;
      break;
    }
    case Opcode::kOrr: {
      const std::uint32_t r = rn_v | rm_v;
      write_reg(inst.rd, r);
      set_nz(r);
      activity_.alu_used = true;
      break;
    }
    case Opcode::kEor: {
      const std::uint32_t r = rn_v ^ rm_v;
      write_reg(inst.rd, r);
      set_nz(r);
      activity_.alu_used = true;
      break;
    }
    case Opcode::kBic: {
      const std::uint32_t r = rn_v & ~rm_v;
      write_reg(inst.rd, r);
      set_nz(r);
      activity_.alu_used = true;
      break;
    }
    case Opcode::kLsl:
    case Opcode::kLslImm: {
      const unsigned sh = inst.opcode == Opcode::kLsl
                              ? (rm_v & 0xffu)
                              : static_cast<unsigned>(inst.imm & 31);
      std::uint32_t r = rn_v;
      if (sh >= 32) {
        c_ = sh == 32 && (rn_v & 1u);
        r = 0;
      } else if (sh > 0) {
        c_ = (rn_v >> (32u - sh)) & 1u;
        r = rn_v << sh;
      }
      write_reg(inst.rd, r);
      set_nz(r);
      activity_.shifter_used = true;
      break;
    }
    case Opcode::kLsr:
    case Opcode::kLsrImm: {
      const unsigned sh = inst.opcode == Opcode::kLsr
                              ? (rm_v & 0xffu)
                              : static_cast<unsigned>(inst.imm & 31);
      std::uint32_t r = rn_v;
      if (sh >= 32) {
        c_ = sh == 32 && (rn_v & 0x80000000u);
        r = 0;
      } else if (sh > 0) {
        c_ = (rn_v >> (sh - 1u)) & 1u;
        r = rn_v >> sh;
      }
      write_reg(inst.rd, r);
      set_nz(r);
      activity_.shifter_used = true;
      break;
    }
    case Opcode::kAsr:
    case Opcode::kAsrImm: {
      const unsigned sh = inst.opcode == Opcode::kAsr
                              ? (rm_v & 0xffu)
                              : static_cast<unsigned>(inst.imm & 31);
      const auto sv = static_cast<std::int32_t>(rn_v);
      std::uint32_t r = rn_v;
      if (sh >= 32) {
        r = static_cast<std::uint32_t>(sv >> 31);
        c_ = (r & 1u) != 0u;
      } else if (sh > 0) {
        c_ = (static_cast<std::uint32_t>(sv) >> (sh - 1u)) & 1u;
        r = static_cast<std::uint32_t>(sv >> sh);
      }
      write_reg(inst.rd, r);
      set_nz(r);
      activity_.shifter_used = true;
      break;
    }
    case Opcode::kCmp:
      add_with_carry(rn_v, ~rm_v, true);
      activity_.alu_used = true;
      break;
    case Opcode::kCmpImm:
      add_with_carry(rn_v, ~static_cast<std::uint32_t>(inst.imm), true);
      activity_.alu_used = true;
      break;
    case Opcode::kTst:
      set_nz(rn_v & rm_v);
      activity_.alu_used = true;
      break;
    case Opcode::kLdr:
      write_reg(inst.rd,
                mem_read(rn_v + static_cast<std::uint32_t>(inst.imm), 4));
      break;
    case Opcode::kLdrh:
      write_reg(inst.rd,
                mem_read(rn_v + static_cast<std::uint32_t>(inst.imm), 2));
      break;
    case Opcode::kLdrb:
      write_reg(inst.rd,
                mem_read(rn_v + static_cast<std::uint32_t>(inst.imm), 1));
      break;
    case Opcode::kStr:
      mem_write(rn_v + static_cast<std::uint32_t>(inst.imm),
                regs_[inst.rd], 4);
      break;
    case Opcode::kStrh:
      mem_write(rn_v + static_cast<std::uint32_t>(inst.imm),
                regs_[inst.rd] & 0xffffu, 2);
      break;
    case Opcode::kStrb:
      mem_write(rn_v + static_cast<std::uint32_t>(inst.imm),
                regs_[inst.rd] & 0xffu, 1);
      break;
    case Opcode::kPush: {
      const auto mask = static_cast<std::uint32_t>(inst.imm);
      std::uint32_t sp = regs_[kSp];
      // Store lr (bit 15) then high-to-low registers, full-descending.
      if (mask & 0x8000u) {
        sp -= 4;
        mem_write(sp, regs_[kLr], 4);
      }
      for (int r = 12; r >= 0; --r) {
        if (mask & (1u << r)) {
          sp -= 4;
          mem_write(sp, regs_[static_cast<unsigned>(r)], 4);
        }
      }
      write_reg(kSp, sp);
      break;
    }
    case Opcode::kPop: {
      const auto mask = static_cast<std::uint32_t>(inst.imm);
      std::uint32_t sp = regs_[kSp];
      for (int r = 0; r <= 12; ++r) {
        if (mask & (1u << r)) {
          write_reg(static_cast<unsigned>(r), mem_read(sp, 4));
          sp += 4;
        }
      }
      if (mask & 0x8000u) {  // pop pc: return
        const std::uint32_t target = mem_read(sp, 4);
        sp += 4;
        write_reg(kSp, sp);
        branch_to(target & ~3u);
        break;
      }
      write_reg(kSp, sp);
      break;
    }
    case Opcode::kB:
      branch_to(regs_[kPc] + static_cast<std::uint32_t>(inst.imm * 4));
      break;
    case Opcode::kBc:
      activity_.alu_used = true;
      if (condition_passed(inst.cond)) {
        branch_to(regs_[kPc] + static_cast<std::uint32_t>(inst.imm * 4));
      }
      break;
    case Opcode::kBl:
      write_reg(kLr, regs_[kPc]);
      branch_to(regs_[kPc] + static_cast<std::uint32_t>(inst.imm * 4));
      break;
    case Opcode::kBx:
      branch_to(rn_v & ~3u);
      break;
  }
}

std::string Em0Core::state_string() const {
  std::ostringstream os;
  for (unsigned i = 0; i < kNumRegisters; ++i) {
    os << 'r' << i << "=0x" << std::hex << regs_[i] << std::dec << ' ';
  }
  os << "NZCV=" << n_ << z_ << c_ << v_;
  return os.str();
}

}  // namespace clockmark::cpu
