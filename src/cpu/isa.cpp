#include "cpu/isa.h"

#include <sstream>
#include <stdexcept>

namespace clockmark::cpu {
namespace {

constexpr std::uint8_t kLastOpcode = static_cast<std::uint8_t>(Opcode::kBx);

bool uses_imm16(Opcode op) noexcept {
  return op == Opcode::kMovImm || op == Opcode::kMovTop ||
         op == Opcode::kPush || op == Opcode::kPop;
}

bool uses_simm20(Opcode op) noexcept {
  return op == Opcode::kB || op == Opcode::kBc || op == Opcode::kBl;
}

}  // namespace

std::uint32_t encode(const Instruction& inst) {
  const auto op = static_cast<std::uint32_t>(inst.opcode);
  if (inst.rd >= kNumRegisters || inst.rn >= kNumRegisters ||
      inst.rm >= kNumRegisters) {
    throw std::invalid_argument("encode: register index out of range");
  }
  std::uint32_t word = op << 24u;
  if (uses_simm20(inst.opcode)) {
    if (inst.opcode == Opcode::kBc) {
      // Conditional branches carry the condition in bits [23:20], leaving
      // a signed 16-bit word offset.
      if (inst.imm < -(1 << 15) || inst.imm >= (1 << 15)) {
        throw std::invalid_argument("encode: branch offset out of simm16");
      }
      word |= static_cast<std::uint32_t>(inst.cond) << 20u;
      word |= static_cast<std::uint32_t>(inst.imm) & 0xffffu;
      return word;
    }
    if (inst.imm < -(1 << 19) || inst.imm >= (1 << 19)) {
      throw std::invalid_argument("encode: branch offset out of simm20");
    }
    word |= static_cast<std::uint32_t>(inst.imm) & 0xfffffu;
    return word;
  }
  word |= static_cast<std::uint32_t>(inst.rd) << 20u;
  if (uses_imm16(inst.opcode)) {
    if (inst.imm < 0 || inst.imm > 0xffff) {
      throw std::invalid_argument("encode: imm16 out of range");
    }
    word |= static_cast<std::uint32_t>(inst.imm) & 0xffffu;
    return word;
  }
  word |= static_cast<std::uint32_t>(inst.rn) << 16u;
  word |= static_cast<std::uint32_t>(inst.rm) << 12u;
  if (inst.imm < -(1 << 11) || inst.imm >= (1 << 11)) {
    throw std::invalid_argument("encode: imm12 out of range");
  }
  word |= static_cast<std::uint32_t>(inst.imm) & 0xfffu;
  return word;
}

std::optional<Instruction> decode(std::uint32_t word) {
  const auto op_raw = static_cast<std::uint8_t>(word >> 24u);
  if (op_raw > kLastOpcode) return std::nullopt;
  Instruction inst;
  inst.opcode = static_cast<Opcode>(op_raw);
  if (uses_simm20(inst.opcode)) {
    std::uint32_t raw = word & 0xfffffu;
    // Sign-extend 20 bits.
    if (raw & 0x80000u) raw |= 0xfff00000u;
    inst.imm = static_cast<std::int32_t>(raw);
    if (inst.opcode == Opcode::kBc) {
      const auto c = static_cast<std::uint8_t>((word >> 20u) & 0xfu);
      inst.cond = static_cast<Cond>(c);
      // The cond field overlaps simm20's top bits; re-extract the low 16
      // bits as the offset for conditional branches.
      std::uint32_t off = word & 0xffffu;
      if (off & 0x8000u) off |= 0xffff0000u;
      inst.imm = static_cast<std::int32_t>(off);
    }
    return inst;
  }
  inst.rd = static_cast<std::uint8_t>((word >> 20u) & 0xfu);
  if (uses_imm16(inst.opcode)) {
    inst.imm = static_cast<std::int32_t>(word & 0xffffu);
    return inst;
  }
  inst.rn = static_cast<std::uint8_t>((word >> 16u) & 0xfu);
  inst.rm = static_cast<std::uint8_t>((word >> 12u) & 0xfu);
  std::uint32_t raw = word & 0xfffu;
  if (raw & 0x800u) raw |= 0xfffff000u;  // sign-extend 12 bits
  inst.imm = static_cast<std::int32_t>(raw);
  return inst;
}

std::string_view mnemonic(Opcode op) noexcept {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
    case Opcode::kWfi: return "wfi";
    case Opcode::kMovImm: return "mov";
    case Opcode::kMovTop: return "movt";
    case Opcode::kMovReg: return "mov";
    case Opcode::kMvn: return "mvn";
    case Opcode::kAdd: return "add";
    case Opcode::kAddImm: return "add";
    case Opcode::kAdc: return "adc";
    case Opcode::kSub: return "sub";
    case Opcode::kSubImm: return "sub";
    case Opcode::kSbc: return "sbc";
    case Opcode::kRsb: return "rsb";
    case Opcode::kMul: return "mul";
    case Opcode::kAnd: return "and";
    case Opcode::kOrr: return "orr";
    case Opcode::kEor: return "eor";
    case Opcode::kBic: return "bic";
    case Opcode::kLsl: return "lsl";
    case Opcode::kLsr: return "lsr";
    case Opcode::kAsr: return "asr";
    case Opcode::kLslImm: return "lsl";
    case Opcode::kLsrImm: return "lsr";
    case Opcode::kAsrImm: return "asr";
    case Opcode::kCmp: return "cmp";
    case Opcode::kCmpImm: return "cmp";
    case Opcode::kTst: return "tst";
    case Opcode::kLdr: return "ldr";
    case Opcode::kLdrh: return "ldrh";
    case Opcode::kLdrb: return "ldrb";
    case Opcode::kStr: return "str";
    case Opcode::kStrh: return "strh";
    case Opcode::kStrb: return "strb";
    case Opcode::kPush: return "push";
    case Opcode::kPop: return "pop";
    case Opcode::kB: return "b";
    case Opcode::kBc: return "b";
    case Opcode::kBl: return "bl";
    case Opcode::kBx: return "bx";
  }
  return "?";
}

std::string_view cond_name(Cond c) noexcept {
  switch (c) {
    case Cond::kEq: return "eq";
    case Cond::kNe: return "ne";
    case Cond::kCs: return "cs";
    case Cond::kCc: return "cc";
    case Cond::kMi: return "mi";
    case Cond::kPl: return "pl";
    case Cond::kVs: return "vs";
    case Cond::kVc: return "vc";
    case Cond::kHi: return "hi";
    case Cond::kLs: return "ls";
    case Cond::kGe: return "ge";
    case Cond::kLt: return "lt";
    case Cond::kGt: return "gt";
    case Cond::kLe: return "le";
    case Cond::kAl: return "al";
  }
  return "?";
}

std::string to_string(const Instruction& inst) {
  std::ostringstream os;
  os << mnemonic(inst.opcode);
  if (inst.opcode == Opcode::kBc) os << cond_name(inst.cond);
  auto reg = [](unsigned r) {
    if (r == kSp) return std::string("sp");
    if (r == kLr) return std::string("lr");
    if (r == kPc) return std::string("pc");
    return "r" + std::to_string(r);
  };
  switch (inst.opcode) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kWfi:
      break;
    case Opcode::kMovImm:
    case Opcode::kMovTop:
      os << ' ' << reg(inst.rd) << ", #" << inst.imm;
      break;
    case Opcode::kMovReg:
    case Opcode::kMvn:
      os << ' ' << reg(inst.rd) << ", " << reg(inst.rn);
      break;
    case Opcode::kAdd:
    case Opcode::kAdc:
    case Opcode::kSub:
    case Opcode::kSbc:
    case Opcode::kRsb:
    case Opcode::kMul:
    case Opcode::kAnd:
    case Opcode::kOrr:
    case Opcode::kEor:
    case Opcode::kBic:
    case Opcode::kLsl:
    case Opcode::kLsr:
    case Opcode::kAsr:
      os << ' ' << reg(inst.rd) << ", " << reg(inst.rn) << ", "
         << reg(inst.rm);
      break;
    case Opcode::kAddImm:
    case Opcode::kSubImm:
    case Opcode::kLslImm:
    case Opcode::kLsrImm:
    case Opcode::kAsrImm:
      os << ' ' << reg(inst.rd) << ", " << reg(inst.rn) << ", #" << inst.imm;
      break;
    case Opcode::kCmp:
    case Opcode::kTst:
      os << ' ' << reg(inst.rn) << ", " << reg(inst.rm);
      break;
    case Opcode::kCmpImm:
      os << ' ' << reg(inst.rn) << ", #" << inst.imm;
      break;
    case Opcode::kLdr:
    case Opcode::kLdrh:
    case Opcode::kLdrb:
    case Opcode::kStr:
    case Opcode::kStrh:
    case Opcode::kStrb:
      os << ' ' << reg(inst.rd) << ", [" << reg(inst.rn) << ", #" << inst.imm
         << ']';
      break;
    case Opcode::kPush:
    case Opcode::kPop:
      os << " {mask=0x" << std::hex << inst.imm << std::dec << '}';
      break;
    case Opcode::kB:
    case Opcode::kBc:
    case Opcode::kBl:
      os << ' ' << inst.imm;
      break;
    case Opcode::kBx:
      os << ' ' << reg(inst.rn);
      break;
  }
  return os.str();
}

bool writes_rd(Opcode op) noexcept {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kWfi:
    case Opcode::kCmp:
    case Opcode::kCmpImm:
    case Opcode::kTst:
    case Opcode::kStr:
    case Opcode::kStrh:
    case Opcode::kStrb:
    case Opcode::kPush:
    case Opcode::kPop:
    case Opcode::kB:
    case Opcode::kBc:
    case Opcode::kBl:
    case Opcode::kBx:
      return false;
    default:
      return true;
  }
}

bool is_memory(Opcode op) noexcept {
  switch (op) {
    case Opcode::kLdr:
    case Opcode::kLdrh:
    case Opcode::kLdrb:
    case Opcode::kStr:
    case Opcode::kStrh:
    case Opcode::kStrb:
    case Opcode::kPush:
    case Opcode::kPop:
      return true;
    default:
      return false;
  }
}

bool is_branch(Opcode op) noexcept {
  switch (op) {
    case Opcode::kB:
    case Opcode::kBc:
    case Opcode::kBl:
    case Opcode::kBx:
      return true;
    default:
      return false;
  }
}

}  // namespace clockmark::cpu
