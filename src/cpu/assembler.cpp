#include "cpu/assembler.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

namespace clockmark::cpu {
namespace {

struct Token {
  std::string text;
};

std::string strip_comment(const std::string& line) {
  std::string out;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == ';') break;
    if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    out += line[i];
  }
  return out;
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Splits an operand list on commas, respecting {...} groups.
std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (const char c : s) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  const std::string last = trim(cur);
  if (!last.empty()) out.push_back(last);
  return out;
}

std::optional<unsigned> parse_register(const std::string& t) {
  const std::string s = lower(trim(t));
  if (s == "sp") return kSp;
  if (s == "lr") return kLr;
  if (s == "pc") return kPc;
  if (s.size() >= 2 && s[0] == 'r') {
    unsigned value = 0;
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(s[i]))) {
        return std::nullopt;
      }
      value = value * 10 + static_cast<unsigned>(s[i] - '0');
    }
    if (value < kNumRegisters) return value;
  }
  return std::nullopt;
}

/// One source statement after pass-1 layout.
struct Statement {
  std::size_t line_no = 0;
  std::string mnemonic;             // lowercased
  std::vector<std::string> operands;
  std::uint32_t address = 0;
  unsigned words = 1;               // encoded size
  bool is_data = false;             // .word
};

struct Parser {
  const std::map<std::string, std::uint32_t>& symbols;
  std::vector<std::string>& errors;
  std::size_t line_no = 0;

  void error(const std::string& msg) {
    errors.push_back("line " + std::to_string(line_no) + ": " + msg);
  }

  unsigned reg(const std::string& t) {
    const auto r = parse_register(t);
    if (!r.has_value()) {
      error("expected register, got '" + t + "'");
      return 0;
    }
    return *r;
  }

  /// Parses a numeric literal or symbol (no leading '#').
  std::optional<std::int64_t> value(const std::string& raw) {
    const std::string t = trim(raw);
    if (t.empty()) return std::nullopt;
    // Symbol?
    const auto it = symbols.find(t);
    if (it != symbols.end()) return static_cast<std::int64_t>(it->second);
    // Number (dec, hex, negative, char literal).
    try {
      std::size_t pos = 0;
      const long long v = std::stoll(t, &pos, 0);
      if (pos == t.size()) return v;
    } catch (...) {
    }
    if (t.size() == 3 && t.front() == '\'' && t.back() == '\'') {
      return static_cast<std::int64_t>(t[1]);
    }
    return std::nullopt;
  }

  /// Parses '#imm' or '#symbol'.
  std::optional<std::int64_t> immediate(const std::string& raw) {
    std::string t = trim(raw);
    if (!t.empty() && t[0] == '#') t = t.substr(1);
    return value(t);
  }

  /// Parses '[rn]' or '[rn, #imm]'. Returns {rn, offset}.
  std::optional<std::pair<unsigned, std::int32_t>> mem_operand(
      const std::string& raw) {
    const std::string t = trim(raw);
    if (t.size() < 2 || t.front() != '[' || t.back() != ']') {
      return std::nullopt;
    }
    const auto inner = split_operands(t.substr(1, t.size() - 2));
    if (inner.empty() || inner.size() > 2) return std::nullopt;
    const auto rn = parse_register(inner[0]);
    if (!rn.has_value()) return std::nullopt;
    std::int32_t offset = 0;
    if (inner.size() == 2) {
      const auto imm = immediate(inner[1]);
      if (!imm.has_value()) return std::nullopt;
      offset = static_cast<std::int32_t>(*imm);
    }
    return std::make_pair(*rn, offset);
  }

  /// Parses '{r4, r5-r7, lr}' into a push/pop mask (bit 15 = lr/pc).
  std::optional<std::uint32_t> reg_list(const std::string& raw,
                                        bool pop_context) {
    const std::string t = trim(raw);
    if (t.size() < 2 || t.front() != '{' || t.back() != '}') {
      return std::nullopt;
    }
    std::uint32_t mask = 0;
    for (const auto& item : split_operands(t.substr(1, t.size() - 2))) {
      const auto dash = item.find('-');
      if (dash != std::string::npos) {
        const auto lo = parse_register(item.substr(0, dash));
        const auto hi = parse_register(item.substr(dash + 1));
        if (!lo || !hi || *lo > *hi || *hi > 12) return std::nullopt;
        for (unsigned r = *lo; r <= *hi; ++r) mask |= 1u << r;
        continue;
      }
      const auto r = parse_register(item);
      if (!r.has_value()) return std::nullopt;
      if (*r <= 12) {
        mask |= 1u << *r;
      } else if ((*r == kLr && !pop_context) || (*r == kPc && pop_context)) {
        mask |= 0x8000u;
      } else {
        return std::nullopt;
      }
    }
    return mask;
  }
};

const std::map<std::string, Cond>& cond_table() {
  static const std::map<std::string, Cond> table = {
      {"eq", Cond::kEq}, {"ne", Cond::kNe}, {"cs", Cond::kCs},
      {"hs", Cond::kCs}, {"cc", Cond::kCc}, {"lo", Cond::kCc},
      {"mi", Cond::kMi}, {"pl", Cond::kPl}, {"vs", Cond::kVs},
      {"vc", Cond::kVc}, {"hi", Cond::kHi}, {"ls", Cond::kLs},
      {"ge", Cond::kGe}, {"lt", Cond::kLt}, {"gt", Cond::kGt},
      {"le", Cond::kLe},
  };
  return table;
}

}  // namespace

AssemblyResult assemble(const std::string& source,
                        std::uint32_t base_address) {
  std::vector<std::string> errors;
  std::map<std::string, std::uint32_t> symbols;
  std::vector<Statement> statements;

  // ---- Pass 1: layout, labels, .equ --------------------------------------
  {
    std::istringstream in(source);
    std::string raw;
    std::size_t line_no = 0;
    std::uint32_t pc = base_address;
    while (std::getline(in, raw)) {
      ++line_no;
      std::string line = trim(strip_comment(raw));
      // Labels (possibly several on one line).
      while (true) {
        const auto colon = line.find(':');
        if (colon == std::string::npos) break;
        const std::string head = trim(line.substr(0, colon));
        // Only treat as label if head looks like an identifier.
        const bool ident =
            !head.empty() &&
            std::all_of(head.begin(), head.end(), [](unsigned char c) {
              return std::isalnum(c) || c == '_' || c == '.';
            });
        if (!ident) break;
        if (symbols.count(head) > 0) {
          errors.push_back("line " + std::to_string(line_no) +
                           ": duplicate label '" + head + "'");
        }
        symbols[head] = pc;
        line = trim(line.substr(colon + 1));
      }
      if (line.empty()) continue;

      Statement st;
      st.line_no = line_no;
      const auto space = line.find_first_of(" \t");
      st.mnemonic = lower(space == std::string::npos
                              ? line
                              : line.substr(0, space));
      const std::string rest =
          space == std::string::npos ? "" : trim(line.substr(space + 1));
      st.operands = split_operands(rest);
      st.address = pc;

      if (st.mnemonic == ".equ") {
        if (st.operands.size() != 2) {
          errors.push_back("line " + std::to_string(line_no) +
                           ": .equ needs name, value");
          continue;
        }
        try {
          symbols[st.operands[0]] = static_cast<std::uint32_t>(
              std::stoll(st.operands[1], nullptr, 0));
        } catch (...) {
          errors.push_back("line " + std::to_string(line_no) +
                           ": bad .equ value");
        }
        continue;  // no layout
      }
      if (st.mnemonic == ".word") {
        st.is_data = true;
        st.words = static_cast<unsigned>(std::max<std::size_t>(
            st.operands.size(), 1));
      } else if (st.mnemonic == ".space") {
        st.is_data = true;
        try {
          st.words = static_cast<unsigned>(
              (std::stoul(st.operands.at(0), nullptr, 0) + 3) / 4);
        } catch (...) {
          errors.push_back("line " + std::to_string(line_no) +
                           ": bad .space size");
          st.words = 0;
        }
      } else if (st.mnemonic == "li") {
        st.words = 2;  // mov + movt, fixed size for deterministic layout
      }
      pc += st.words * 4;
      statements.push_back(std::move(st));
    }
  }

  // ---- Pass 2: encoding ---------------------------------------------------
  AssemblyResult result;
  result.image.base_address = base_address;
  Parser p{symbols, errors};

  auto emit = [&](const Instruction& inst) {
    try {
      result.image.words.push_back(encode(inst));
    } catch (const std::exception& e) {
      p.error(e.what());
      result.image.words.push_back(0);
    }
  };
  auto branch_offset = [&](const Statement& st,
                           const std::string& target) -> std::int32_t {
    const auto v = p.value(target);
    if (!v.has_value()) {
      p.error("unknown branch target '" + target + "'");
      return 0;
    }
    const std::int64_t delta =
        static_cast<std::int64_t>(*v) -
        (static_cast<std::int64_t>(st.address) + 4);
    if (delta % 4 != 0) p.error("misaligned branch target");
    return static_cast<std::int32_t>(delta / 4);
  };

  for (const auto& st : statements) {
    p.line_no = st.line_no;
    const std::string& m = st.mnemonic;
    const auto& ops = st.operands;
    auto need = [&](std::size_t n) {
      if (ops.size() != n) {
        p.error(m + ": expected " + std::to_string(n) + " operands, got " +
                std::to_string(ops.size()));
        return false;
      }
      return true;
    };

    if (st.is_data) {
      if (m == ".word") {
        for (const auto& op : ops) {
          const auto v = p.value(op);
          if (!v.has_value()) p.error("bad .word value '" + op + "'");
          result.image.words.push_back(
              static_cast<std::uint32_t>(v.value_or(0)));
        }
        if (ops.empty()) result.image.words.push_back(0);
      } else {  // .space
        for (unsigned i = 0; i < st.words; ++i) {
          result.image.words.push_back(0);
        }
      }
      continue;
    }

    Instruction inst;
    if (m == "nop") {
      inst.opcode = Opcode::kNop;
      emit(inst);
    } else if (m == "halt") {
      inst.opcode = Opcode::kHalt;
      emit(inst);
    } else if (m == "wfi") {
      inst.opcode = Opcode::kWfi;
      emit(inst);
    } else if (m == "li") {
      if (!need(2)) continue;
      const auto v = p.value(ops[1][0] == '#' ? ops[1].substr(1) : ops[1]);
      if (!v.has_value()) {
        p.error("li: bad immediate '" + ops[1] + "'");
        continue;
      }
      const auto u = static_cast<std::uint32_t>(*v);
      const unsigned rd = p.reg(ops[0]);
      inst = Instruction{Opcode::kMovImm, static_cast<std::uint8_t>(rd), 0,
                         0, static_cast<std::int32_t>(u & 0xffffu),
                         Cond::kAl};
      emit(inst);
      inst = Instruction{Opcode::kMovTop, static_cast<std::uint8_t>(rd), 0,
                         0, static_cast<std::int32_t>(u >> 16u), Cond::kAl};
      emit(inst);
    } else if (m == "mov" || m == "movt" || m == "mvn") {
      if (!need(2)) continue;
      inst.rd = static_cast<std::uint8_t>(p.reg(ops[0]));
      const auto rn = parse_register(ops[1]);
      if (rn.has_value() && m == "mov") {
        inst.opcode = Opcode::kMovReg;
        inst.rn = static_cast<std::uint8_t>(*rn);
      } else if (rn.has_value() && m == "mvn") {
        inst.opcode = Opcode::kMvn;
        inst.rn = static_cast<std::uint8_t>(*rn);
      } else {
        const auto imm = p.immediate(ops[1]);
        if (!imm.has_value()) {
          p.error(m + ": bad operand '" + ops[1] + "'");
          continue;
        }
        inst.opcode = m == "movt" ? Opcode::kMovTop : Opcode::kMovImm;
        inst.imm = static_cast<std::int32_t>(*imm & 0xffff);
      }
      emit(inst);
    } else if (m == "add" || m == "sub" || m == "adc" || m == "sbc" ||
               m == "rsb" || m == "mul" || m == "and" || m == "orr" ||
               m == "eor" || m == "bic" || m == "lsl" || m == "lsr" ||
               m == "asr") {
      if (!need(3)) continue;
      inst.rd = static_cast<std::uint8_t>(p.reg(ops[0]));
      inst.rn = static_cast<std::uint8_t>(p.reg(ops[1]));
      const auto rm = parse_register(ops[2]);
      const bool has_reg = rm.has_value();
      if (has_reg) inst.rm = static_cast<std::uint8_t>(*rm);
      std::int64_t imm = 0;
      if (!has_reg) {
        const auto v = p.immediate(ops[2]);
        if (!v.has_value()) {
          p.error(m + ": bad operand '" + ops[2] + "'");
          continue;
        }
        imm = *v;
        inst.imm = static_cast<std::int32_t>(imm);
      }
      if (m == "add") inst.opcode = has_reg ? Opcode::kAdd : Opcode::kAddImm;
      else if (m == "sub") inst.opcode = has_reg ? Opcode::kSub : Opcode::kSubImm;
      else if (m == "lsl") inst.opcode = has_reg ? Opcode::kLsl : Opcode::kLslImm;
      else if (m == "lsr") inst.opcode = has_reg ? Opcode::kLsr : Opcode::kLsrImm;
      else if (m == "asr") inst.opcode = has_reg ? Opcode::kAsr : Opcode::kAsrImm;
      else if (!has_reg) {
        p.error(m + ": immediate form not supported");
        continue;
      } else if (m == "adc") inst.opcode = Opcode::kAdc;
      else if (m == "sbc") inst.opcode = Opcode::kSbc;
      else if (m == "rsb") inst.opcode = Opcode::kRsb;
      else if (m == "mul") inst.opcode = Opcode::kMul;
      else if (m == "and") inst.opcode = Opcode::kAnd;
      else if (m == "orr") inst.opcode = Opcode::kOrr;
      else if (m == "eor") inst.opcode = Opcode::kEor;
      else if (m == "bic") inst.opcode = Opcode::kBic;
      emit(inst);
    } else if (m == "cmp" || m == "tst") {
      if (!need(2)) continue;
      inst.rn = static_cast<std::uint8_t>(p.reg(ops[0]));
      const auto rm = parse_register(ops[1]);
      if (rm.has_value()) {
        inst.opcode = m == "cmp" ? Opcode::kCmp : Opcode::kTst;
        inst.rm = static_cast<std::uint8_t>(*rm);
      } else if (m == "cmp") {
        const auto v = p.immediate(ops[1]);
        if (!v.has_value()) {
          p.error("cmp: bad operand '" + ops[1] + "'");
          continue;
        }
        inst.opcode = Opcode::kCmpImm;
        inst.imm = static_cast<std::int32_t>(*v);
      } else {
        p.error("tst: immediate form not supported");
        continue;
      }
      emit(inst);
    } else if (m == "ldr" || m == "ldrh" || m == "ldrb" || m == "str" ||
               m == "strh" || m == "strb") {
      if (!need(2)) continue;
      inst.rd = static_cast<std::uint8_t>(p.reg(ops[0]));
      const auto mem = p.mem_operand(ops[1]);
      if (!mem.has_value()) {
        p.error(m + ": bad memory operand '" + ops[1] + "'");
        continue;
      }
      inst.rn = static_cast<std::uint8_t>(mem->first);
      inst.imm = mem->second;
      if (m == "ldr") inst.opcode = Opcode::kLdr;
      else if (m == "ldrh") inst.opcode = Opcode::kLdrh;
      else if (m == "ldrb") inst.opcode = Opcode::kLdrb;
      else if (m == "str") inst.opcode = Opcode::kStr;
      else if (m == "strh") inst.opcode = Opcode::kStrh;
      else inst.opcode = Opcode::kStrb;
      emit(inst);
    } else if (m == "push" || m == "pop") {
      if (!need(1)) continue;
      const auto mask = p.reg_list(ops[0], m == "pop");
      if (!mask.has_value()) {
        p.error(m + ": bad register list '" + ops[0] + "'");
        continue;
      }
      inst.opcode = m == "push" ? Opcode::kPush : Opcode::kPop;
      inst.imm = static_cast<std::int32_t>(*mask);
      emit(inst);
    } else if (m == "b" || m == "bl") {
      if (!need(1)) continue;
      inst.opcode = m == "b" ? Opcode::kB : Opcode::kBl;
      inst.imm = branch_offset(st, ops[0]);
      emit(inst);
    } else if (m == "bx") {
      if (!need(1)) continue;
      inst.opcode = Opcode::kBx;
      inst.rn = static_cast<std::uint8_t>(p.reg(ops[0]));
      emit(inst);
    } else if (m.size() > 1 && m[0] == 'b' &&
               cond_table().count(m.substr(1)) > 0) {
      if (!need(1)) continue;
      inst.opcode = Opcode::kBc;
      inst.cond = cond_table().at(m.substr(1));
      inst.imm = branch_offset(st, ops[0]);
      emit(inst);
    } else {
      p.error("unknown mnemonic '" + m + "'");
    }
  }

  if (!errors.empty()) {
    std::string all = "assembly failed:\n";
    for (const auto& e : errors) all += "  " + e + "\n";
    throw AssemblyError(all);
  }
  result.symbols = std::move(symbols);
  return result;
}

}  // namespace clockmark::cpu
