// Two-pass assembler for the EM0 ISA. The Dhrystone-like workload and
// the test programs are written in assembly text; the assembler resolves
// labels, expands pseudo-instructions and produces a ProgramImage.
//
// Syntax overview:
//   ; comment         // comment
//   label:
//       mov   r0, #42          ; imm16 move (sets NZ)
//       li    r1, 0xdeadbeef   ; pseudo: mov + movt, always 2 words
//       li    r2, table        ; label address as immediate
//       add   r2, r1, r0       ; 3-register ALU
//       add   r2, r1, #8       ; immediate ALU (simm12)
//       lsl   r3, r2, #3       ; immediate shift
//       cmp   r1, r2
//       ldr   r0, [r1, #8]     ; word load, offset optional
//       strb  r0, [r1]
//       push  {r4, r5, lr}
//       pop   {r4, r5, pc}
//       beq   label            ; conditional branch
//       bl    function
//       bx    lr
//       halt
//       .word 0x12345678       ; literal data (also accepts labels)
//       .equ  NAME, 123        ; symbolic constant
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "cpu/decoder.h"
#include "cpu/isa.h"

namespace clockmark::cpu {

/// Assembly failure: message includes source line numbers.
class AssemblyError : public std::runtime_error {
 public:
  explicit AssemblyError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Result of assembling a source string.
struct AssemblyResult {
  ProgramImage image;
  std::map<std::string, std::uint32_t> symbols;  ///< labels and .equ values
};

/// Assembles source text loaded at base_address. Throws AssemblyError on
/// the first batch of errors (all collected, reported together).
AssemblyResult assemble(const std::string& source,
                        std::uint32_t base_address = 0);

}  // namespace clockmark::cpu
