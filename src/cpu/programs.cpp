#include "cpu/programs.h"

#include <sstream>

#include "util/rng.h"

namespace clockmark::cpu {

std::string dhrystone_like_source() {
  return R"(
; Dhrystone-flavoured synthetic benchmark for EM0.
; Register conventions: r9 = global base, r8 = software LFSR state,
; r10 = iteration counter. Runs forever.
.equ RAM,       0x20000000
.equ STACK_TOP, 0x20010000
.equ REC_DST,   0x20000100
.equ STR_DST,   0x20000140
.equ SCRATCH,   0x20000200
.equ RESULTS,   0x20000240

start:
    li   sp, STACK_TOP
    li   r9, RAM
    li   r8, 0xACE1          ; software LFSR seed (never zero)
    mov  r10, #0

main_loop:
    bl   proc_copy_block
    bl   proc_string_copy
    bl   proc_string_compare
    bl   proc_arith
    bl   proc_divide
    bl   proc_branch_chain
    add  r10, r10, #1
    b    main_loop

; ---- copy a 12-word record (Dhrystone Proc_1 style) --------------------
proc_copy_block:
    push {r4, r5, r6, lr}
    li   r4, rom_block
    li   r5, REC_DST
    mov  r6, #12
cb_loop:
    ldr  r0, [r4]
    str  r0, [r5]
    add  r4, r4, #4
    add  r5, r5, #4
    sub  r6, r6, #1
    bne  cb_loop
    pop  {r4, r5, r6, pc}

; ---- byte-wise string copy until NUL (Str_Copy style) ------------------
proc_string_copy:
    push {r4, r5, lr}
    li   r4, rom_string
    li   r5, STR_DST
sc_loop:
    ldrb r0, [r4]
    strb r0, [r5]
    add  r4, r4, #1
    add  r5, r5, #1
    cmp  r0, #0
    bne  sc_loop
    pop  {r4, r5, pc}

; ---- string comparison (Str_Comp style) --------------------------------
proc_string_compare:
    push {r4, r5, lr}
    li   r4, rom_string
    li   r5, STR_DST
scmp_loop:
    ldrb r0, [r4]
    ldrb r1, [r5]
    cmp  r0, r1
    bne  scmp_diff
    cmp  r0, #0
    beq  scmp_equal
    add  r4, r4, #1
    add  r5, r5, #1
    b    scmp_loop
scmp_diff:
    mov  r0, #1
    b    scmp_done
scmp_equal:
    mov  r0, #0
scmp_done:
    li   r5, RESULTS
    str  r0, [r5]
    pop  {r4, r5, pc}

; ---- integer arithmetic soup seeded by a software LFSR -----------------
proc_arith:
    push {r4, r5, lr}
    ; r8 = galois_lfsr16(r8)
    mov  r4, #1
    and  r5, r8, r4
    lsr  r8, r8, #1
    cmp  r5, #0
    beq  pa_no_tap
    li   r5, 0xB400
    eor  r8, r8, r5
pa_no_tap:
    mov  r0, r8
    add  r1, r0, r0
    mul  r2, r1, r0
    sub  r3, r2, r1
    asr  r3, r3, #3
    eor  r0, r3, r2
    orr  r1, r0, r8
    bic  r2, r1, r0
    lsl  r2, r2, #2
    li   r4, SCRATCH
    str  r2, [r4]
    ldr  r5, [r4]
    add  r0, r5, r2
    str  r0, [r4, #4]
    pop  {r4, r5, pc}

; ---- unsigned division by repeated subtraction (data-dependent) --------
proc_divide:
    push {r4, r5, lr}
    ; dividend = (r8 & 0xff) + 64; divisor = ((r8 >> 8) & 7) + 1
    lsl  r0, r8, #24
    lsr  r0, r0, #24
    add  r0, r0, #64
    lsr  r1, r8, #8
    lsl  r1, r1, #29
    lsr  r1, r1, #29
    add  r1, r1, #1
    mov  r4, #0              ; quotient
div_loop:
    cmp  r0, r1
    blo  div_done
    sub  r0, r0, r1
    add  r4, r4, #1
    b    div_loop
div_done:
    li   r5, RESULTS
    str  r4, [r5, #4]
    str  r0, [r5, #8]        ; remainder
    pop  {r4, r5, pc}

; ---- branch chain over LFSR bits (logic decisions) ---------------------
proc_branch_chain:
    push {r4, lr}
    li   r4, RESULTS
    mov  r0, #1
    tst  r8, r0
    beq  bc_bit0_clear
    mov  r1, #11
    b    bc_bit1
bc_bit0_clear:
    mov  r1, #22
bc_bit1:
    mov  r0, #2
    tst  r8, r0
    beq  bc_bit1_clear
    add  r1, r1, #100
    b    bc_bit2
bc_bit1_clear:
    sub  r1, r1, #7
bc_bit2:
    mov  r0, #4
    tst  r8, r0
    beq  bc_store
    lsl  r1, r1, #1
bc_store:
    str  r1, [r4, #12]
    pop  {r4, pc}

; ---- read-only data -----------------------------------------------------
rom_block:
    .word 0x11111111, 0x22222222, 0x33333333, 0x44444444
    .word 0x55555555, 0x66666666, 0x77777777, 0x88888888
    .word 0x99999999, 0xaaaaaaaa, 0xbbbbbbbb, 0xcccccccc
rom_string:
    ; "DHRYSTONE PROGRAM, SOME STRING" + NUL, packed little-endian
    .word 0x59524844, 0x4e4f5453, 0x52502045, 0x4152474f
    .word 0x53202c4d, 0x20454d4f, 0x49525453, 0x0000474e
)";
}

std::string fibonacci_source() {
  return R"(
; fib(n): n in r0 at entry, result in r0, then halt.
start:
    mov  r1, #0          ; fib(i)
    mov  r2, #1          ; fib(i+1)
    cmp  r0, #0
    beq  done_zero
loop:
    add  r3, r1, r2
    mov  r1, r2
    mov  r2, r3
    sub  r0, r0, #1
    bne  loop
    mov  r0, r1
    halt
done_zero:
    mov  r0, #0
    halt
)";
}

std::string memcpy_source() {
  return R"(
; memcpy(dst=r0, src=r1, len=r2), byte-wise; halts when done.
start:
    cmp  r2, #0
    beq  done
loop:
    ldrb r3, [r1]
    strb r3, [r0]
    add  r0, r0, #1
    add  r1, r1, #1
    sub  r2, r2, #1
    bne  loop
done:
    halt
)";
}

std::string hello_uart_source() {
  return R"(
.equ UART_TX, 0x40000000
start:
    li   r4, UART_TX
    li   r1, msg
loop:
    ldrb r0, [r1]
    cmp  r0, #0
    beq  done
    str  r0, [r4]
    add  r1, r1, #1
    b    loop
done:
    halt
msg:
    ; "HELLO\n" + NUL
    .word 0x4c4c4548, 0x00000a4f
)";
}

std::string duty_cycled_workload_source() {
  return R"(
; Burst of integer work, then WFI until the timer-wake fires. Repeats
; forever. r8 = software LFSR state for data variety.
.equ SCRATCH, 0x20000300
start:
    li   sp, 0x20010000
    li   r7, SCRATCH
    li   r8, 0xBEEF
main_loop:
    mov  r6, #200            ; burst length (instructions-ish)
burst:
    mov  r4, #1
    and  r5, r8, r4
    lsr  r8, r8, #1
    cmp  r5, #0
    beq  no_tap
    li   r5, 0xB400
    eor  r8, r8, r5
no_tap:
    mul  r0, r8, r8
    add  r1, r0, r8
    str  r1, [r7]
    ldr  r2, [r7]
    sub  r6, r6, #1
    bne  burst
    wfi                      ; sleep until the timer wakes us
    b    main_loop
)";
}

std::string generate_workload_source(const WorkloadMix& mix) {
  util::Pcg32 rng(mix.seed, 0x9e3779b97f4a7c15ULL);
  const double total = mix.alu + mix.mem + mix.mul + mix.branch;
  const double p_alu = mix.alu / total;
  const double p_mem = p_alu + mix.mem / total;
  const double p_mul = p_mem + mix.mul / total;

  std::ostringstream os;
  os << "; generated workload (seed " << mix.seed << ")\n";
  os << ".equ SCRATCH, 0x20000400\n";
  os << "start:\n";
  os << "    li   sp, 0x20010000\n";
  os << "    li   r7, SCRATCH\n";
  os << "    li   r6, 0x12345678\n";
  os << "    mov  r5, #1\n";
  os << "loop_top:\n";

  unsigned skip_label = 0;
  for (unsigned i = 0; i < mix.block_instructions; ++i) {
    const double roll = rng.uniform();
    const unsigned rd = rng.bounded(5);        // r0..r4
    const unsigned rn = rng.bounded(5);
    const unsigned rm = rng.bounded(5);
    if (roll < p_alu) {
      static constexpr const char* kOps[] = {"add", "sub", "eor",
                                             "orr", "and", "lsl"};
      const char* op = kOps[rng.bounded(6)];
      if (std::string(op) == "lsl") {
        os << "    lsl  r" << rd << ", r" << rn << ", #"
           << (1 + rng.bounded(7)) << "\n";
      } else {
        os << "    " << op << "  r" << rd << ", r" << rn << ", r" << rm
           << "\n";
      }
    } else if (roll < p_mem) {
      const unsigned off = rng.bounded(16) * 4;
      if (rng.bernoulli(0.5)) {
        os << "    ldr  r" << rd << ", [r7, #" << off << "]\n";
      } else {
        os << "    str  r" << rd << ", [r7, #" << off << "]\n";
      }
    } else if (roll < p_mul) {
      os << "    mul  r" << rd << ", r" << rn << ", r" << rm << "\n";
    } else {
      // Short forward conditional skip over one ALU instruction.
      os << "    tst  r" << rn << ", r5\n";
      os << "    beq  skip" << skip_label << "\n";
      os << "    add  r" << rd << ", r" << rd << ", r6\n";
      os << "skip" << skip_label << ":\n";
      ++skip_label;
    }
  }
  os << "    b    loop_top\n";
  return os.str();
}

AssemblyResult assemble_program(const std::string& source,
                                std::uint32_t base) {
  return assemble(source, base);
}

}  // namespace clockmark::cpu
