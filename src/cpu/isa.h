// EM0 instruction set. A from-scratch Thumb-flavoured 32-bit-encoded RISC
// ISA standing in for the ARM Cortex-M0 of the paper's test chips: 16
// registers (r13 = sp, r14 = lr, r15 = pc), NZCV flags, load/store
// architecture, and the instruction classes Dhrystone exercises (integer
// arithmetic, logic, shifts, byte/half/word memory access, compares,
// branches and calls).
//
// Encoding (fixed 32-bit):
//   [31:24] opcode   [23:20] rd   [19:16] rn   [15:12] rm   [11:0] imm12
// Wide-immediate forms (kMovImm, kMovTop, kPush, kPop) use [15:0] imm16.
// Branch forms use [19:0] simm20 (signed word offset).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace clockmark::cpu {

inline constexpr unsigned kNumRegisters = 16;
inline constexpr unsigned kSp = 13;
inline constexpr unsigned kLr = 14;
inline constexpr unsigned kPc = 15;

enum class Opcode : std::uint8_t {
  kNop = 0,
  kHalt,     ///< stop simulation (test bench convenience)
  kWfi,      ///< sleep; core clock-gates itself until wakeup
  // moves
  kMovImm,   ///< rd = imm16 (zero-extended)
  kMovTop,   ///< rd = (rd & 0xffff) | (imm16 << 16)
  kMovReg,   ///< rd = rn, sets NZ
  kMvn,      ///< rd = ~rn, sets NZ
  // arithmetic (set NZCV)
  kAdd,      ///< rd = rn + rm
  kAddImm,   ///< rd = rn + simm12
  kAdc,      ///< rd = rn + rm + C
  kSub,      ///< rd = rn - rm
  kSubImm,   ///< rd = rn - simm12
  kSbc,      ///< rd = rn - rm - !C
  kRsb,      ///< rd = rm - rn
  kMul,      ///< rd = rn * rm (low 32 bits, sets NZ)
  // logic (set NZ)
  kAnd, kOrr, kEor, kBic,
  // shifts (set NZC)
  kLsl, kLsr, kAsr,          ///< rd = rn shifted by rm[7:0]
  kLslImm, kLsrImm, kAsrImm, ///< rd = rn shifted by imm12[4:0]
  // compares (flags only)
  kCmp,      ///< flags(rn - rm)
  kCmpImm,   ///< flags(rn - simm12)
  kTst,      ///< flags(rn & rm), NZ only
  // memory (address = rn + simm12)
  kLdr, kLdrh, kLdrb,
  kStr, kStrh, kStrb,
  // stack (imm16 = register mask; bit 15 means pc/lr per Thumb custom)
  kPush,     ///< descending full stack, stores mask + (bit15: lr)
  kPop,      ///< loads mask + (bit15: pc -> return)
  // control flow (simm20 word offset relative to next instruction)
  kB,        ///< unconditional
  kBc,       ///< conditional on rd field = Cond
  kBl,       ///< lr = return address, branch
  kBx,       ///< branch to rn (bit 0 ignored)
};

enum class Cond : std::uint8_t {
  kEq = 0, kNe, kCs, kCc, kMi, kPl, kVs, kVc,
  kHi, kLs, kGe, kLt, kGt, kLe, kAl,
};

/// Decoded instruction fields.
struct Instruction {
  Opcode opcode = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rn = 0;
  std::uint8_t rm = 0;
  std::int32_t imm = 0;        ///< sign- or zero-extended per opcode
  Cond cond = Cond::kAl;       ///< for kBc
};

/// Encodes the instruction into its 32-bit word. Throws
/// std::invalid_argument if a field is out of range for the opcode.
std::uint32_t encode(const Instruction& inst);

/// Decodes a 32-bit word. Returns std::nullopt for an invalid opcode.
std::optional<Instruction> decode(std::uint32_t word);

/// Mnemonic of an opcode ("add", "ldr", ...).
std::string_view mnemonic(Opcode op) noexcept;

/// Condition suffix ("eq", "ne", ...).
std::string_view cond_name(Cond c) noexcept;

/// Pretty-prints a decoded instruction for disassembly listings.
std::string to_string(const Instruction& inst);

/// True if the opcode writes rd.
bool writes_rd(Opcode op) noexcept;

/// True if the opcode accesses memory.
bool is_memory(Opcode op) noexcept;

/// True if the opcode is a branch/call/return.
bool is_branch(Opcode op) noexcept;

}  // namespace clockmark::cpu
