// Program images and static decoding utilities: disassembly listings and
// a lightweight static validator (used by tests and by the workload
// generator to sanity-check emitted code before it runs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/isa.h"

namespace clockmark::cpu {

/// A loaded program: raw instruction words plus the address they load at.
struct ProgramImage {
  std::uint32_t base_address = 0;
  std::vector<std::uint32_t> words;

  std::uint32_t end_address() const noexcept {
    return base_address + static_cast<std::uint32_t>(words.size()) * 4u;
  }
};

/// Disassembles the image into one line per word:
///   00000010:  22000005   add r2, r0, #5
std::string disassemble(const ProgramImage& image);

/// Static validation issues found in an image.
struct ValidationIssue {
  std::uint32_t address = 0;
  std::string message;
};

/// Checks that every word decodes and that every direct branch target
/// lands inside the image on a word boundary.
std::vector<ValidationIssue> validate(const ProgramImage& image);

/// Resolves the target address of a direct branch at `address` (kB, kBc,
/// kBl). Offsets are in words relative to the *next* instruction.
std::uint32_t branch_target(std::uint32_t address, const Instruction& inst);

}  // namespace clockmark::cpu
