#include "cpu/decoder.h"

#include <iomanip>
#include <sstream>

namespace clockmark::cpu {

std::uint32_t branch_target(std::uint32_t address, const Instruction& inst) {
  // Offset is relative to the next instruction, in words.
  return address + 4u + static_cast<std::uint32_t>(inst.imm * 4);
}

std::string disassemble(const ProgramImage& image) {
  std::ostringstream os;
  for (std::size_t i = 0; i < image.words.size(); ++i) {
    const std::uint32_t addr =
        image.base_address + static_cast<std::uint32_t>(i) * 4u;
    const std::uint32_t word = image.words[i];
    os << std::hex << std::setw(8) << std::setfill('0') << addr << ":  "
       << std::setw(8) << word << std::dec << std::setfill(' ') << "   ";
    const auto inst = decode(word);
    if (inst.has_value()) {
      os << to_string(*inst);
      if (is_branch(inst->opcode) && inst->opcode != Opcode::kBx) {
        os << "   ; -> 0x" << std::hex << branch_target(addr, *inst)
           << std::dec;
      }
    } else {
      os << ".word 0x" << std::hex << word << std::dec;
    }
    os << '\n';
  }
  return os.str();
}

std::vector<ValidationIssue> validate(const ProgramImage& image) {
  std::vector<ValidationIssue> issues;
  for (std::size_t i = 0; i < image.words.size(); ++i) {
    const std::uint32_t addr =
        image.base_address + static_cast<std::uint32_t>(i) * 4u;
    const auto inst = decode(image.words[i]);
    if (!inst.has_value()) {
      issues.push_back({addr, "undecodable instruction word"});
      continue;
    }
    if (is_branch(inst->opcode) && inst->opcode != Opcode::kBx) {
      const std::uint32_t target = branch_target(addr, *inst);
      if (target < image.base_address || target >= image.end_address()) {
        issues.push_back({addr, "branch target outside image"});
      } else if ((target & 3u) != 0u) {
        issues.push_back({addr, "misaligned branch target"});
      }
    }
  }
  return issues;
}

}  // namespace clockmark::cpu
