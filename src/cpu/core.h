// EM0 core model: cycle-approximate interpreter with per-cycle activity
// reporting. The activity stream — which functional units switched, how
// many register-file bits toggled, whether memory was touched — is what
// the SoC power model consumes to synthesise the processor's share of
// the supply-current trace (the "background noise" the watermark must be
// detected underneath, Sections III-IV of the paper).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "cpu/isa.h"

namespace clockmark::cpu {

/// Abstract memory/bus port. Implemented by soc::Bus; kept abstract so
/// the core library has no dependency on the SoC assembly.
class BusInterface {
 public:
  virtual ~BusInterface() = default;

  struct Access {
    std::uint32_t data = 0;      ///< read data (ignored for writes)
    unsigned wait_cycles = 0;    ///< extra cycles beyond the base cost
    bool fault = false;          ///< unmapped address / bad size
  };

  /// bytes in {1, 2, 4}; addr must be size-aligned.
  virtual Access read(std::uint32_t addr, unsigned bytes) = 0;
  virtual Access write(std::uint32_t addr, std::uint32_t data,
                       unsigned bytes) = 0;
};

/// What the core did during one clock cycle.
struct CpuActivity {
  bool active = false;           ///< clocked and doing work
  bool sleeping = false;         ///< WFI: core clock-gated
  bool halted = false;           ///< simulation stop
  bool fetch = false;            ///< instruction fetch issued
  bool stall = false;            ///< multi-cycle instruction continuing
  bool alu_used = false;
  bool shifter_used = false;
  bool multiplier_used = false;
  bool mem_read = false;
  bool mem_write = false;
  bool branch_taken = false;
  unsigned regfile_writes = 0;   ///< registers written this cycle
  unsigned data_toggle_bits = 0; ///< Hamming distance of written values
  Opcode opcode = Opcode::kNop;  ///< instruction occupying execute
};

/// Architectural + simple microarchitectural state.
class Em0Core {
 public:
  explicit Em0Core(BusInterface& bus);

  /// Resets the core: clears registers/flags, sets pc and sp.
  void reset(std::uint32_t pc, std::uint32_t sp);

  /// Advances one clock cycle.
  const CpuActivity& step();

  /// Releases a WFI sleep (e.g. timer interrupt pin).
  void wake() noexcept { sleeping_ = false; }

  bool halted() const noexcept { return halted_; }
  bool sleeping() const noexcept { return sleeping_; }
  bool faulted() const noexcept { return faulted_; }

  std::uint32_t reg(unsigned index) const { return regs_.at(index); }
  void set_reg(unsigned index, std::uint32_t value) {
    regs_.at(index) = value;
  }
  std::uint32_t pc() const noexcept { return regs_[kPc]; }

  bool flag_n() const noexcept { return n_; }
  bool flag_z() const noexcept { return z_; }
  bool flag_c() const noexcept { return c_; }
  bool flag_v() const noexcept { return v_; }

  std::uint64_t instructions_retired() const noexcept { return retired_; }
  std::uint64_t cycles() const noexcept { return cycles_; }

  /// Debug string: registers + flags on one line.
  std::string state_string() const;

 private:
  bool condition_passed(Cond cond) const noexcept;
  void write_reg(unsigned index, std::uint32_t value);
  void set_nz(std::uint32_t result) noexcept;
  std::uint32_t add_with_carry(std::uint32_t a, std::uint32_t b,
                               bool carry_in) noexcept;
  void execute(const Instruction& inst);

  BusInterface& bus_;
  std::array<std::uint32_t, kNumRegisters> regs_{};
  bool n_ = false, z_ = false, c_ = false, v_ = false;
  bool halted_ = false;
  bool sleeping_ = false;
  bool faulted_ = false;
  unsigned stall_cycles_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t cycles_ = 0;
  CpuActivity activity_{};
};

}  // namespace clockmark::cpu
