// Workload programs for the EM0 core. The paper detects the watermark
// while the Cortex-M0 runs Dhrystone — "integer arithmetic, string
// operations, logic decisions and memory accesses in a general computing
// application". dhrystone_like_source() is a from-scratch benchmark with
// the same instruction-class mix; the generator produces randomized
// workloads with a configurable mix for the noise-sensitivity ablations.
#pragma once

#include <cstdint>
#include <string>

#include "cpu/assembler.h"

namespace clockmark::cpu {

/// Memory map shared by all bundled programs (matches soc::Bus defaults).
inline constexpr std::uint32_t kRomBase = 0x00000000u;
inline constexpr std::uint32_t kRamBase = 0x20000000u;
inline constexpr std::uint32_t kRamSize = 0x00010000u;
inline constexpr std::uint32_t kStackTop = kRamBase + kRamSize;
inline constexpr std::uint32_t kUartTx = 0x40000000u;
inline constexpr std::uint32_t kTimerCount = 0x40000100u;

/// The Dhrystone-flavoured benchmark: an endless loop of record copies,
/// string copy/compare, integer arithmetic seeded by a software LFSR,
/// shift-subtract division and branch chains. Runs forever (the harness
/// stops after the desired number of trace cycles).
std::string dhrystone_like_source();

/// Computes fib(n) iteratively; n in r0 at entry (set by test), result in
/// r0, then halts. Used by CPU correctness tests.
std::string fibonacci_source();

/// Copies `len` bytes from `src` to `dst` (r0=dst, r1=src, r2=len), then
/// halts. Used by CPU/memory tests.
std::string memcpy_source();

/// Prints "HELLO\n" to the UART and halts; exercises the peripheral path.
std::string hello_uart_source();

/// Alternates bursts of integer work with WFI sleep (woken by the SoC's
/// timer-wake model, soc::Chip1Config::timer_wake_period). Used for
/// idle-window watermark scheduling experiments.
std::string duty_cycled_workload_source();

/// Instruction-mix parameters for generated workloads. Fractions need
/// not sum to 1; they are normalised.
struct WorkloadMix {
  double alu = 0.50;
  double mem = 0.22;
  double mul = 0.08;
  double branch = 0.20;
  unsigned block_instructions = 96;  ///< loop body size
  std::uint64_t seed = 1;
};

/// Emits an endless-loop program whose body draws instructions from the
/// given mix. All generated code is valid (registers r0-r7, in-range
/// addresses inside RAM scratch space).
std::string generate_workload_source(const WorkloadMix& mix);

/// Convenience: assemble at the ROM base and throw on error.
AssemblyResult assemble_program(const std::string& source,
                                std::uint32_t base = kRomBase);

}  // namespace clockmark::cpu
