#include "watermark/embedder.h"

#include <algorithm>
#include <stdexcept>

#include "clocktree/tree.h"

namespace clockmark::watermark {

DemoIpBlock build_demo_ip_block(rtl::Netlist& netlist,
                                const std::string& module_path,
                                rtl::NetId root_clock,
                                const DemoIpConfig& config) {
  if (config.groups == 0 || config.groups > 8 ||
      config.registers_per_group == 0) {
    throw std::invalid_argument("build_demo_ip_block: bad geometry");
  }
  DemoIpBlock ip;
  const std::uint32_t module = netlist.module(module_path);
  const std::string base =
      module_path.empty() ? std::string("ip") : module_path + "/ip";

  // Free-running 3-bit mode counter (ungated): c = c + 1 each cycle.
  clocktree::ClockTreeOptions cnt_tree;
  cnt_tree.max_fanout = 8;
  cnt_tree.name_prefix = base + "_cntct";
  const auto cnt_clk =
      clocktree::build_clock_tree(netlist, module, root_clock, 3, cnt_tree);
  std::vector<rtl::NetId> c(3);
  for (unsigned i = 0; i < 3; ++i) {
    c[i] = netlist.add_net(base + "_c" + std::to_string(i));
  }
  // Increment logic: d0 = ~c0; d1 = c1 ^ c0; d2 = c2 ^ (c1 & c0).
  const rtl::NetId d0 = netlist.add_net(base + "_d0");
  netlist.add_gate(rtl::CellKind::kInv, base + "_inv0", module, {c[0]}, d0);
  const rtl::NetId d1 = netlist.add_net(base + "_d1");
  netlist.add_gate(rtl::CellKind::kXor2, base + "_xor1", module,
                   {c[1], c[0]}, d1);
  const rtl::NetId carry = netlist.add_net(base + "_carry");
  netlist.add_gate(rtl::CellKind::kAnd2, base + "_and1", module,
                   {c[1], c[0]}, carry);
  const rtl::NetId d2 = netlist.add_net(base + "_d2");
  netlist.add_gate(rtl::CellKind::kXor2, base + "_xor2", module,
                   {c[2], carry}, d2);
  const rtl::NetId d[3] = {d0, d1, d2};
  for (unsigned i = 0; i < 3; ++i) {
    ip.flops.push_back(netlist.add_flop(
        rtl::CellKind::kDff, base + "_cnt" + std::to_string(i), module,
        {d[i]}, c[i], cnt_clk.leaf_nets[i], false));
  }

  // Per-group enables (CLK_CTRL): group g is enabled when the counter is
  // >= g in a thermometer pattern — cheap decode with real toggling.
  // ctrl_g = c[g % 3] OR c[(g+1) % 3] for variety (never all-off).
  for (std::size_t g = 0; g < config.groups; ++g) {
    const rtl::NetId ctrl = netlist.add_net(base + "_ctrl" +
                                            std::to_string(g));
    netlist.add_gate(rtl::CellKind::kOr2,
                     base + "_ctrlor" + std::to_string(g), module,
                     {c[g % 3], c[(g + 1) % 3]}, ctrl);
    ip.ctrl_nets.push_back(ctrl);

    auto group = clocktree::build_gated_group(
        netlist, module, root_clock, ctrl, config.registers_per_group,
        base + "_g" + std::to_string(g),
        clocktree::ClockTreeOptions{32, "ct", true});
    ip.icgs.push_back(group.icg);

    // Pipeline: stage i loads stage i-1; stage 0 loads counter parity.
    const rtl::NetId seed = netlist.add_net(base + "_seed" +
                                            std::to_string(g));
    netlist.add_gate(rtl::CellKind::kXor2,
                     base + "_seedx" + std::to_string(g), module,
                     {c[0], c[g % 3 == 0 ? 1 : g % 3]}, seed);
    rtl::NetId prev = seed;
    for (std::size_t r = 0; r < config.registers_per_group; ++r) {
      const rtl::NetId q = netlist.add_net(
          base + "_g" + std::to_string(g) + "_q" + std::to_string(r));
      ip.flops.push_back(netlist.add_flop(
          rtl::CellKind::kDff,
          base + "_g" + std::to_string(g) + "_ff" + std::to_string(r),
          module, {prev}, q, group.tree.leaf_nets[r], (r % 2) == 0));
      prev = q;
    }
    // Fold the group tail into the output parity chain below.
    ip.ctrl_nets.back() = ctrl;
    if (g == 0) {
      ip.data_out = prev;
    } else {
      const rtl::NetId folded = netlist.add_net(base + "_fold" +
                                                std::to_string(g));
      netlist.add_gate(rtl::CellKind::kXor2,
                       base + "_foldx" + std::to_string(g), module,
                       {ip.data_out, prev}, folded);
      ip.data_out = folded;
    }
  }
  netlist.mark_output(ip.data_out);
  return ip;
}

EmbedResult embed_clock_modulation(rtl::Netlist& netlist,
                                   const std::string& wgc_module_path,
                                   rtl::NetId root_clock,
                                   const wgc::WgcConfig& config,
                                   std::span<const rtl::CellId> target_icgs) {
  if (target_icgs.empty()) {
    throw std::invalid_argument("embed_clock_modulation: no target ICGs");
  }
  EmbedResult result;
  const std::uint32_t module = netlist.module(wgc_module_path);
  result.wgc = wgc::build_wgc(netlist, module, root_clock, config);
  result.wmark = result.wgc.wmark;

  const std::string base =
      wgc_module_path.empty() ? std::string("embed") : wgc_module_path;
  std::size_t idx = 0;
  for (const rtl::CellId icg_id : target_icgs) {
    // Copy what we need up front: add_net/add_gate below grow the
    // netlist's cell vector, so a Cell& held across them would dangle.
    const rtl::Cell icg = netlist.cell(icg_id);
    if (icg.kind != rtl::CellKind::kIcg) {
      throw std::invalid_argument(
          "embed_clock_modulation: target is not an ICG");
    }
    const rtl::NetId original_enable = icg.inputs.at(0);
    const rtl::NetId modulated = netlist.add_net(
        base + "_en" + std::to_string(idx));
    result.and_gates.push_back(netlist.add_gate(
        rtl::CellKind::kAnd2, base + "_and" + std::to_string(idx),
        icg.module, {original_enable, result.wmark}, modulated));
    netlist.cell(icg_id).inputs[0] = modulated;
    ++idx;
  }
  return result;
}

DiversifiedEmbedResult embed_clock_modulation_diversified(
    rtl::Netlist& netlist, const std::string& wgc_module_path,
    rtl::NetId root_clock, const wgc::WgcConfig& config,
    std::span<const rtl::CellId> target_icgs) {
  if (target_icgs.empty()) {
    throw std::invalid_argument(
        "embed_clock_modulation_diversified: no target ICGs");
  }
  DiversifiedEmbedResult result;
  const std::uint32_t module = netlist.module(wgc_module_path);
  result.wgc = wgc::build_wgc(netlist, module, root_clock, config);

  // Stage s output net: the WGC flop named ..._ff<s> drives q<s>; the
  // build result keeps flops in stage order, so stage s = flops[s].output.
  const std::string base =
      wgc_module_path.empty() ? std::string("dembed") : wgc_module_path;
  std::size_t idx = 0;
  for (const rtl::CellId icg_id : target_icgs) {
    // Copy, not reference: add_net/add_gate below may reallocate the
    // cell vector and a Cell& held across them would dangle.
    const rtl::Cell icg = netlist.cell(icg_id);
    if (icg.kind != rtl::CellKind::kIcg) {
      throw std::invalid_argument(
          "embed_clock_modulation_diversified: target is not an ICG");
    }
    const auto stage = static_cast<unsigned>(idx % config.width);
    const rtl::NetId stage_net =
        netlist.cell(result.wgc.flops[stage]).output;
    const rtl::NetId original_enable = icg.inputs.at(0);
    const rtl::NetId modulated =
        netlist.add_net(base + "_den" + std::to_string(idx));
    result.and_gates.push_back(netlist.add_gate(
        rtl::CellKind::kAnd2, base + "_dand" + std::to_string(idx),
        icg.module, {original_enable, stage_net}, modulated));
    netlist.cell(icg_id).inputs[0] = modulated;
    result.stage_of_icg.push_back(stage);
    ++idx;
  }
  return result;
}

std::vector<double> diversified_model_pattern(
    const wgc::WgcConfig& config, std::span<const unsigned> stages) {
  wgc::WgcSequence seq(config);
  const auto base = seq.one_period();
  const std::size_t period = base.size();
  std::vector<double> pattern(period, 0.0);
  for (std::size_t i = 0; i < period; ++i) {
    for (const unsigned s : stages) {
      if (base[(i + s) % period]) pattern[i] += 1.0;
    }
  }
  return pattern;
}

WatermarkCharacterization characterize_watermark(
    const rtl::Netlist& netlist, rtl::NetId root_clock, rtl::NetId wmark,
    const std::string& module_prefix, std::size_t period,
    const power::TechLibrary& tech) {
  if (period == 0) {
    throw std::invalid_argument("characterize_watermark: zero period");
  }
  rtl::Simulator sim(netlist);
  sim.set_clock_source(root_clock);
  power::PowerEstimator estimator(netlist, tech);
  const double leak = estimator.leakage_power(module_prefix);

  WatermarkCharacterization ch;
  ch.period = period;
  ch.leakage_w = leak;
  ch.wmark_bits.resize(period);
  ch.power_w.resize(period);

  // Which modules belong to the watermark?
  const std::size_t modules = netlist.module_count();
  std::vector<bool> match(modules, false);
  for (std::size_t m = 0; m < modules; ++m) {
    match[m] = netlist.module_path(static_cast<std::uint32_t>(m))
                   .rfind(module_prefix, 0) == 0;
  }

  double active_sum = 0.0, idle_sum = 0.0;
  std::size_t active_n = 0, idle_n = 0;
  for (std::size_t i = 0; i < period; ++i) {
    // WMARK's settled value *before* the edge is the cycle-i bit.
    ch.wmark_bits[i] = sim.net_value(wmark);
    const auto& act = sim.step();
    double energy = 0.0;
    const std::size_t n = std::min(modules, act.per_module.size());
    for (std::size_t m = 0; m < n; ++m) {
      if (match[m]) energy += estimator.dynamic_cycle_energy(act.per_module[m]);
    }
    ch.power_w[i] = energy * tech.clock_hz + leak;
    if (ch.wmark_bits[i]) {
      active_sum += ch.power_w[i];
      ++active_n;
    } else {
      idle_sum += ch.power_w[i];
      ++idle_n;
    }
  }
  ch.mean_active_w = active_n > 0 ? active_sum / static_cast<double>(active_n)
                                  : 0.0;
  ch.mean_idle_w =
      idle_n > 0 ? idle_sum / static_cast<double>(idle_n) : 0.0;
  return ch;
}

std::vector<double> tile_watermark_power(
    const WatermarkCharacterization& ch, std::size_t n,
    std::size_t phase_offset) {
  std::vector<double> out(n);
  // Tiling is a pure copy, so chunked copies (one per period wrap)
  // replace the per-element modulo of the naive loop.
  std::size_t src = phase_offset % ch.period;
  std::size_t dst = 0;
  while (dst < n) {
    const std::size_t len = std::min(n - dst, ch.period - src);
    std::copy_n(ch.power_w.begin() + static_cast<std::ptrdiff_t>(src), len,
                out.begin() + static_cast<std::ptrdiff_t>(dst));
    dst += len;
    src = 0;
  }
  return out;
}

std::vector<bool> tile_wmark_bits(const WatermarkCharacterization& ch,
                                  std::size_t n, std::size_t phase_offset) {
  std::vector<bool> out(n);
  std::size_t src = phase_offset % ch.period;
  std::size_t dst = 0;
  while (dst < n) {
    const std::size_t len = std::min(n - dst, ch.period - src);
    std::copy_n(ch.wmark_bits.begin() + static_cast<std::ptrdiff_t>(src),
                len, out.begin() + static_cast<std::ptrdiff_t>(dst));
    dst += len;
    src = 0;
  }
  return out;
}

}  // namespace clockmark::watermark
