// Embedding the clock-modulation watermark into *existing* logic — the
// paper's intended end application (Fig. 1(b)): the original clock-gate
// control CLK_CTRL is ANDed with WMARK, so the IP block's own clock tree
// becomes the watermark's power source and the watermark stops being a
// removable stand-alone circuit (Section VI).
//
// Also provides:
//  * a demo functional IP block with clock-gated register groups to embed
//    into (used by examples, tests and the robustness bench), and
//  * gate-level power characterisation of a watermark module over one
//    full WMARK period, which the experiment layer tiles into long traces.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "power/estimator.h"
#include "rtl/netlist.h"
#include "rtl/simulator.h"
#include "wgc/wgc.h"

namespace clockmark::watermark {

/// A small functional IP block: a free-running mode counter decodes into
/// per-group clock-gate enables (the "CLK_CTRL" signals); each group is a
/// register pipeline whose XOR-reduced parity drives a primary output.
struct DemoIpBlock {
  std::vector<rtl::CellId> icgs;       ///< functional clock gates
  std::vector<rtl::NetId> ctrl_nets;   ///< original enable (CLK_CTRL) nets
  std::vector<rtl::CellId> flops;      ///< functional registers
  rtl::NetId data_out = rtl::kInvalidNet;  ///< reaches a primary output
};

struct DemoIpConfig {
  std::size_t groups = 4;
  std::size_t registers_per_group = 64;
};

DemoIpBlock build_demo_ip_block(rtl::Netlist& netlist,
                                const std::string& module_path,
                                rtl::NetId root_clock,
                                const DemoIpConfig& config = {});

/// Result of weaving a WGC into existing clock gates.
struct EmbedResult {
  wgc::WgcHardware wgc;
  std::vector<rtl::CellId> and_gates;  ///< CLK_CTRL AND WMARK per ICG
  rtl::NetId wmark = rtl::kInvalidNet;
};

/// Builds a WGC under `wgc_module_path` and rewires each target ICG's
/// enable to (original_enable AND WMARK). The target ICGs keep their
/// functional role; the watermark merely modulates them.
EmbedResult embed_clock_modulation(rtl::Netlist& netlist,
                                   const std::string& wgc_module_path,
                                   rtl::NetId root_clock,
                                   const wgc::WgcConfig& config,
                                   std::span<const rtl::CellId> target_icgs);

/// Diversified embedding — the countermeasure to the fanout-signature
/// tamper attack (attack/tamper.h): instead of fanning one WMARK net out
/// to every modulation AND, ICG g is driven from WGC *stage* g mod width.
/// Each stage emits the same m-sequence advanced by its index, so no
/// single net has the tell-tale high fan-out, while the vendor — who
/// knows the stage assignment — detects with the composite model vector
/// from diversified_model_pattern().
struct DiversifiedEmbedResult {
  wgc::WgcHardware wgc;
  std::vector<rtl::CellId> and_gates;
  std::vector<unsigned> stage_of_icg;  ///< WGC stage feeding each target
};

DiversifiedEmbedResult embed_clock_modulation_diversified(
    rtl::Netlist& netlist, const std::string& wgc_module_path,
    rtl::NetId root_clock, const wgc::WgcConfig& config,
    std::span<const rtl::CellId> target_icgs);

/// The CPA model vector for a diversified embedding: one period of
///   pattern[i] = sum_g base[(i + stage_g) mod P]
/// (stage s of the shift register carries the output sequence advanced
/// by s cycles). Non-binary; the rotation correlators accept it as-is.
std::vector<double> diversified_model_pattern(
    const wgc::WgcConfig& config, std::span<const unsigned> stages);

/// Gate-level power characterisation of a watermark module over one full
/// WMARK period. The experiment layer tiles `power_w` (aligned with
/// `wmark_bits`) to synthesise arbitrarily long watermark power traces
/// exactly, without re-running gate-level simulation.
struct WatermarkCharacterization {
  std::vector<bool> wmark_bits;   ///< WMARK value in each cycle
  std::vector<double> power_w;    ///< module power in each cycle (dyn+leak)
  double mean_active_w = 0.0;     ///< average over WMARK = 1 cycles
  double mean_idle_w = 0.0;       ///< average over WMARK = 0 cycles
  double leakage_w = 0.0;
  std::size_t period = 0;
};

WatermarkCharacterization characterize_watermark(
    const rtl::Netlist& netlist, rtl::NetId root_clock, rtl::NetId wmark,
    const std::string& module_prefix, std::size_t period,
    const power::TechLibrary& tech);

/// Tiles a characterised period into an n-cycle power trace starting at
/// `phase_offset` cycles into the period.
std::vector<double> tile_watermark_power(
    const WatermarkCharacterization& ch, std::size_t n,
    std::size_t phase_offset);

/// Tiles the WMARK bit pattern the same way (model vector for CPA).
std::vector<bool> tile_wmark_bits(const WatermarkCharacterization& ch,
                                  std::size_t n, std::size_t phase_offset);

}  // namespace clockmark::watermark
