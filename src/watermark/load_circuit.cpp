#include "watermark/load_circuit.h"

#include <stdexcept>

namespace clockmark::watermark {

LoadCircuitWatermark build_load_circuit_watermark(
    rtl::Netlist& netlist, const std::string& module_path,
    rtl::NetId root_clock, const LoadCircuitConfig& config) {
  if (config.load_registers < 2) {
    throw std::invalid_argument(
        "build_load_circuit_watermark: need at least 2 load registers");
  }
  LoadCircuitWatermark wm;
  const std::uint32_t module = netlist.module(module_path);
  const std::string base =
      module_path.empty() ? std::string("lc") : module_path + "/lc";

  wm.wgc = wgc::build_wgc(netlist, module, root_clock, config.wgc);
  wm.wmark = wm.wgc.wmark;

  // One ICG gates the whole load ring; its enable is WMARK.
  auto group = clocktree::build_gated_group(
      netlist, module, root_clock, wm.wmark, config.load_registers, base,
      clocktree::ClockTreeOptions{/*max_fanout=*/32, "ct", true});
  wm.icg = group.icg;
  wm.clock_cells = group.tree.buffers;

  // Ring of registers initialised 1010...: each stage loads its
  // neighbour, so every enabled shift toggles every register.
  std::vector<rtl::NetId> q(config.load_registers);
  for (std::size_t i = 0; i < config.load_registers; ++i) {
    q[i] = netlist.add_net(base + "_q" + std::to_string(i));
  }
  for (std::size_t i = 0; i < config.load_registers; ++i) {
    const rtl::NetId d = q[(i + 1) % config.load_registers];
    const bool init = (i % 2) == 0;  // 1010... pattern
    wm.load_flops.push_back(netlist.add_flop(
        rtl::CellKind::kDff, base + "_ff" + std::to_string(i), module, {d},
        q[i], group.tree.leaf_nets[i], init));
  }

  wm.total_registers = wm.wgc.register_count + config.load_registers;
  return wm;
}

}  // namespace clockmark::watermark
