// The paper's proposed clock-modulation watermark (Fig. 1(b) / Fig. 4(a)).
// The WGC's WMARK output drives the enables of the ICGs gating an IP
// block's clock tree; when WMARK = 1 the clock propagates and the block's
// clock buffers burn dynamic power, when WMARK = 0 the clock is stopped.
// No load circuit exists — the watermark reuses switching that is
// intrinsic to the system.
//
// Two usage forms are provided:
//  * build_clock_modulation_watermark(): the test-chip configuration —
//    a redundant register bank (default 32 words x 32 bits) whose ICG
//    enables are WMARK. Registers hold their value (D = Q), so dynamic
//    power is consumed entirely by clock buffers; a configurable number
//    of registers can instead toggle every cycle (D = ~Q) to reproduce
//    the Table I sweep.
//  * embedder.h: modulating an *existing* IP block's clock gates
//    (enable = CLK_CTRL AND WMARK), the intended end application.
#pragma once

#include <cstddef>

#include "clocktree/builder.h"
#include "rtl/netlist.h"
#include "wgc/wgc.h"

namespace clockmark::watermark {

struct ClockModConfig {
  wgc::WgcConfig wgc;
  std::size_t words = 32;          ///< gated words (Fig. 4(a): 32)
  std::size_t bits_per_word = 32;  ///< registers per word (32)
  /// Number of registers built with D = ~Q (toggle when clocked); the
  /// rest hold state (D = Q, clock-buffer power only). Paper Table I
  /// sweeps 0 / 256 / 512 / 1024.
  std::size_t switching_registers = 0;
};

struct ClockModWatermark {
  wgc::WgcHardware wgc;
  clocktree::BankClocking bank;          ///< ICGs + clock subtrees
  std::vector<rtl::CellId> flops;        ///< the redundant registers
  std::vector<rtl::CellId> inverters;    ///< for switching registers
  rtl::NetId wmark = rtl::kInvalidNet;
  std::size_t total_registers = 0;       ///< WGC + bank registers
  std::size_t wgc_registers = 0;         ///< area that CPA detection needs
};

ClockModWatermark build_clock_modulation_watermark(
    rtl::Netlist& netlist, const std::string& module_path,
    rtl::NetId root_clock, const ClockModConfig& config);

}  // namespace clockmark::watermark
