#include "watermark/scheduler.h"

#include <algorithm>
#include <stdexcept>

namespace clockmark::watermark {

std::vector<bool> build_schedule(const ScheduleConfig& config,
                                 std::size_t cycles,
                                 const std::vector<bool>& idle) {
  std::vector<bool> enabled(cycles, false);
  switch (config.policy) {
    case SchedulePolicy::kAlwaysOn:
      std::fill(enabled.begin(), enabled.end(), true);
      break;
    case SchedulePolicy::kDutyCycled: {
      if (config.window_cycles == 0) {
        throw std::invalid_argument("build_schedule: zero window");
      }
      const double duty = std::clamp(config.duty, 0.0, 1.0);
      const auto active = static_cast<std::size_t>(
          duty * static_cast<double>(config.window_cycles));
      for (std::size_t i = 0; i < cycles; ++i) {
        enabled[i] = (i % config.window_cycles) < active;
      }
      break;
    }
    case SchedulePolicy::kIdleWindows: {
      if (idle.size() < cycles) {
        throw std::invalid_argument(
            "build_schedule: idle mask shorter than trace");
      }
      for (std::size_t i = 0; i < cycles; ++i) enabled[i] = idle[i];
      break;
    }
  }
  return enabled;
}

std::vector<double> apply_schedule(const std::vector<double>& watermark_w,
                                   const std::vector<bool>& enabled,
                                   double idle_power_w) {
  if (watermark_w.size() != enabled.size()) {
    throw std::invalid_argument("apply_schedule: length mismatch");
  }
  std::vector<double> out(watermark_w.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = enabled[i] ? watermark_w[i] : idle_power_w;
  }
  return out;
}

double effective_duty(const std::vector<bool>& enabled) noexcept {
  if (enabled.empty()) return 0.0;
  std::size_t on = 0;
  for (const bool e : enabled) on += e ? 1 : 0;
  return static_cast<double>(on) / static_cast<double>(enabled.size());
}

}  // namespace clockmark::watermark
