// Watermark activity scheduling. The paper notes that modulating a
// *functional* IP block "may require an additional synchronization
// between the watermark modulated and other IP blocks to ensure data is
// not corrupted", and that the watermark can instead run "while the
// entire system is inactive". This module provides that policy layer:
// a duty-cycled / idle-window gate on top of the WMARK stream.
//
// When the watermark is only active a fraction of the time, the CPA
// correlation shrinks proportionally to the duty cycle (the model vector
// still covers all cycles); abl_duty_cycle quantifies the trade-off.
#pragma once

#include <cstddef>
#include <vector>

namespace clockmark::watermark {

enum class SchedulePolicy {
  kAlwaysOn,     ///< modulate every cycle (the test-chip configuration)
  kDutyCycled,   ///< periodic on/off windows (e.g. thermal/power budget)
  kIdleWindows,  ///< modulate only inside externally supplied idle spans
};

struct ScheduleConfig {
  SchedulePolicy policy = SchedulePolicy::kAlwaysOn;
  /// kDutyCycled: window period in cycles and the active fraction.
  std::size_t window_cycles = 2048;
  double duty = 1.0;  ///< fraction of each window the watermark runs
};

/// Computes the per-cycle watermark-enable mask for `cycles` cycles.
/// `idle` (only used by kIdleWindows) flags externally detected idle
/// cycles (e.g. the CPU in WFI, bus quiescent).
std::vector<bool> build_schedule(const ScheduleConfig& config,
                                 std::size_t cycles,
                                 const std::vector<bool>& idle = {});

/// Applies a schedule to a watermark power trace: scheduled-off cycles
/// fall back to the idle power level.
std::vector<double> apply_schedule(const std::vector<double>& watermark_w,
                                   const std::vector<bool>& enabled,
                                   double idle_power_w);

/// Effective duty cycle of a schedule (fraction of enabled cycles).
double effective_duty(const std::vector<bool>& enabled) noexcept;

}  // namespace clockmark::watermark
