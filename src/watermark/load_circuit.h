// State-of-the-art power watermark baseline (paper Fig. 1(a); Becker et
// al. HOST'10, Ziener & Teich FPT'06): the WGC drives the shift-enable of
// a load circuit — a ring of registers initialised with a 1010... pattern
// so that every enabled shift toggles every register, maximising dynamic
// power while WMARK is '1'. As synthesis maps enable-registers onto clock
// gating, the load ring sits behind one ICG controlled by WMARK, so each
// active register burns clock-buffer *and* data-switching energy — the
// (1.476 uW + 1.126 uW) per register that Table II divides by.
#pragma once

#include <cstddef>

#include "clocktree/tree.h"
#include "rtl/netlist.h"
#include "wgc/wgc.h"

namespace clockmark::watermark {

struct LoadCircuitConfig {
  wgc::WgcConfig wgc;
  std::size_t load_registers = 576;  ///< ~1.5 mW worth (paper Table II)
};

struct LoadCircuitWatermark {
  wgc::WgcHardware wgc;
  rtl::CellId icg = 0;                     ///< WMARK-controlled clock gate
  std::vector<rtl::CellId> load_flops;     ///< the ring registers
  std::vector<rtl::CellId> clock_cells;    ///< load-ring clock buffers
  rtl::NetId wmark = rtl::kInvalidNet;
  std::size_t total_registers = 0;         ///< WGC + load (area unit)
};

/// Builds the complete baseline watermark under module path
/// `module_path` (created if needed), clocked from root_clock.
LoadCircuitWatermark build_load_circuit_watermark(
    rtl::Netlist& netlist, const std::string& module_path,
    rtl::NetId root_clock, const LoadCircuitConfig& config);

}  // namespace clockmark::watermark
