#include "watermark/clock_modulation.h"

#include <stdexcept>

namespace clockmark::watermark {

ClockModWatermark build_clock_modulation_watermark(
    rtl::Netlist& netlist, const std::string& module_path,
    rtl::NetId root_clock, const ClockModConfig& config) {
  const std::size_t total = config.words * config.bits_per_word;
  if (total == 0) {
    throw std::invalid_argument(
        "build_clock_modulation_watermark: empty register bank");
  }
  if (config.switching_registers > total) {
    throw std::invalid_argument(
        "build_clock_modulation_watermark: switching_registers > bank size");
  }
  ClockModWatermark wm;
  const std::uint32_t module = netlist.module(module_path);
  const std::string base =
      module_path.empty() ? std::string("cmw") : module_path + "/cmw";

  wm.wgc = wgc::build_wgc(netlist, module, root_clock, config.wgc);
  wm.wmark = wm.wgc.wmark;
  wm.wgc_registers = wm.wgc.register_count;

  clocktree::BankClockingOptions bank_opt;
  bank_opt.words = config.words;
  bank_opt.bits_per_word = config.bits_per_word;
  bank_opt.tree.max_fanout = 32;  // one ICG drives a 32-leaf word directly
  wm.bank = clocktree::build_bank_clocking(netlist, module, root_clock,
                                           wm.wmark, base, bank_opt);

  // Redundant registers: first `switching_registers` toggle every clocked
  // cycle (D = ~Q); the rest retain state (D = Q) so their only dynamic
  // power is the clock network — exactly the chip configuration.
  std::size_t built = 0;
  for (std::size_t w = 0; w < config.words; ++w) {
    for (std::size_t b = 0; b < config.bits_per_word; ++b, ++built) {
      const std::string name =
          base + "_r" + std::to_string(w) + "_" + std::to_string(b);
      const rtl::NetId q = netlist.add_net(name + "_q");
      rtl::NetId d = q;
      if (built < config.switching_registers) {
        d = netlist.add_net(name + "_d");
        wm.inverters.push_back(netlist.add_gate(
            rtl::CellKind::kInv, name + "_inv", module, {q}, d));
      }
      wm.flops.push_back(netlist.add_flop(rtl::CellKind::kDff, name, module,
                                          {d}, q, wm.bank.leaf_nets[w][b],
                                          /*init_state=*/false));
    }
  }

  wm.total_registers = wm.wgc_registers + total;
  return wm;
}

}  // namespace clockmark::watermark
