#include "detect/session.h"

#include <stdexcept>
#include <utility>

#include "cpa/confidence.h"
#include "measure/trace_io.h"
#include "sync/engine.h"
#include "sync/search.h"
#include "sync/warp.h"

namespace clockmark::detect {

namespace {

// Batch decision with the request's sync handling applied up front.
// `engine` is non-null exactly when the request is kBlind (and the
// pattern non-empty); it carries the same pattern as `pattern`.
Report run_batch(const Request& request, std::span<const double> y,
                 std::span<const double> pattern,
                 const sync::CandidateEngine* engine,
                 runtime::Executor* executor) {
  Report report;
  report.cycles = y.size();
  std::vector<double> warped;
  std::span<const double> input = y;
  switch (request.sync) {
    case sync::SyncPolicy::kTriggered:
      break;
    case sync::SyncPolicy::kKnownOffset:
      if (!request.known_warp.is_identity()) {
        warped = sync::warp_trace(y, request.known_warp);
        input = warped;
        sync::SyncEstimate applied;
        applied.correction = request.known_warp;
        applied.locked = true;
        report.sync = applied;
      }
      break;
    case sync::SyncPolicy::kBlind: {
      const sync::SyncEstimate est =
          engine != nullptr
              ? sync::find_sync(*engine, y, request.blind, executor)
              : sync::find_sync(y, pattern, request.blind, executor);
      report.sync = est;
      if (!est.correction.is_identity()) {
        warped = sync::warp_trace(y, est.correction);
        input = warped;
      }
      break;
    }
  }
  const cpa::Detector detector(request.policy);
  report.detection = detector.detect(input, pattern, request.method);
  report.detected = report.detection.detected;
  report.confidence = cpa::detection_confidence(report.detection.spectrum);
  return report;
}

}  // namespace

Session::Session(Request request, std::vector<double> pattern,
                 std::shared_ptr<EngineCache> engines)
    : request_(std::move(request)),
      pattern_(std::move(pattern)),
      engine_cache_(engines != nullptr ? std::move(engines)
                                       : std::make_shared<EngineCache>()) {}

std::shared_ptr<const sync::CandidateEngine> Session::engine_for(
    std::span<const double> pattern) const {
  if (request_.sync != sync::SyncPolicy::kBlind || pattern.empty()) {
    return nullptr;
  }
  return engine_cache_->acquire(pattern);
}

Report Session::run(std::span<const double> y,
                    runtime::Executor* executor) const {
  if (pattern_.empty()) {
    throw std::logic_error(
        "detect::Session: no pattern bound; construct the Session with the "
        "expected watermark pattern (or use the Scenario overload)");
  }
  return run_batch(request_, y, pattern_, engine_for(pattern_).get(),
                   executor);
}

Report Session::run(const sim::Scenario& scenario, std::size_t repetition,
                    runtime::Executor* executor) const {
  sim::ScenarioResult result = scenario.run(repetition);
  Report report = run_batch(request_, result.acquisition.per_cycle_power_w,
                            result.pattern, engine_for(result.pattern).get(),
                            executor);
  report.scenario = std::move(result);
  return report;
}

stream::OnlineDetectorConfig stream_detector_config(const Request& request) {
  stream::OnlineDetectorConfig d;
  d.policy = request.policy;
  d.method = request.method;
  d.early_stop = request.streaming.early_stop;
  d.confidence_threshold = request.streaming.confidence_threshold;
  d.consecutive_evaluations = request.streaming.consecutive_evaluations;
  d.evaluate_every_chunks = request.streaming.evaluate_every_chunks;
  d.min_cycles = request.streaming.min_cycles;
  d.sync_policy = request.sync;
  d.known_warp = request.known_warp;
  d.blind = request.blind;
  d.lock_cycles = request.lock_cycles;
  return d;
}

Report report_from_decision(const stream::OnlineDecision& decision,
                            const Request& request) {
  Report report;
  report.detection = decision.result;
  report.detected = decision.detected;
  report.confidence = decision.confidence;
  report.cycles =
      decision.decided ? decision.decision_cycles : decision.cycles;
  report.sync = decision.sync;
  if (!report.sync && request.sync == sync::SyncPolicy::kKnownOffset &&
      !request.known_warp.is_identity()) {
    sync::SyncEstimate applied;
    applied.correction = request.known_warp;
    applied.locked = true;
    report.sync = applied;
  }
  return report;
}

stream::StreamPipelineConfig Session::pipeline_config(
    const Request& request) const {
  stream::StreamPipelineConfig cfg;
  cfg.queue_capacity = request.streaming.queue_capacity;
  cfg.detector = stream_detector_config(request);
  // Blind streams reuse the session's cached engine for the lock; the
  // lock itself is bit-identical either way (same pattern, same search).
  if (request.sync == sync::SyncPolicy::kBlind) {
    cfg.detector.engine = engine_cache_->acquire(pattern_);
  }
  return cfg;
}

Report Session::run_stream(stream::TraceSource& source,
                           const Request& request,
                           runtime::Executor* executor) const {
  if (pattern_.empty()) {
    throw std::logic_error(
        "detect::Session: no pattern bound; construct the Session with the "
        "expected watermark pattern");
  }
  const stream::StreamPipeline pipeline(pipeline_config(request));
  stream::StreamReport sr = pipeline.run(source, pattern_, executor);
  Report report = report_from_decision(sr.decision, request);
  report.stream = std::move(sr);
  return report;
}

Report Session::run(stream::TraceSource& source,
                    runtime::Executor* executor) const {
  return run_stream(source, request_, executor);
}

Request Session::with_file_meta(Request request,
                                const measure::TraceMeta& meta) {
  if (request.use_file_meta && request.sync == sync::SyncPolicy::kTriggered &&
      meta.trigger_offset_cycles != 0.0) {
    request.sync = sync::SyncPolicy::kKnownOffset;
    request.known_warp = sync::WarpSpec{};
    // The metadata records the misalignment (a capture that started m
    // cycles late reads y[m + k]); the warp is the correction applied on
    // top, so it must shift the other way — the same convention as
    // SyncEstimate, whose offset_cycles is -correction.offset_cycles.
    request.known_warp.offset_cycles = -meta.trigger_offset_cycles;
  }
  return request;
}

Report Session::run_file(const std::string& path,
                         runtime::Executor* executor) const {
  stream::ReplaySource source(path, request_.streaming.chunk_cycles);
  return run_stream(source, with_file_meta(request_, source.meta()),
                    executor);
}

}  // namespace clockmark::detect
