// The unified detection facade: one Request → Session → Report flow in
// front of every way this repo can decide "watermark present?".
//
//   detect::Request   what to decide and how — detector policy, sweep
//                     method, and the SyncPolicy (triggered / known
//                     offset / blind) with its warp or search config.
//   detect::Session   the bound entry point. One Session runs any number
//                     of inputs: a materialised Y vector, a Scenario
//                     repetition, a live TraceSource, or a trace file.
//   detect::Report    the decision plus everything that produced it —
//                     the full cpa::DetectionResult, the blind-lock
//                     SyncEstimate when one ran, the StreamReport for
//                     streamed inputs, and the ScenarioResult for
//                     simulated ones.
//
// Path equivalences (asserted in tests/test_detect.cpp):
//   * run(span) under kTriggered is bit-identical to the deprecated
//     sim::run_detection / cpa::Detector::detect pair.
//   * run(TraceSource&) with early_stop off is bit-identical to
//     run(span) over the concatenated chunks, for every SyncPolicy
//     (the streaming blind lock with lock_cycles >= the stream length
//     sees the exact full trace — see stream/online_detector.h).
//   * run_file replays write_trace_* output bit-exactly, and uses the
//     CMTRACE2 / "# meta" capture metadata to pick the sync handling
//     when the request allows it (use_file_meta).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cpa/detector.h"
#include "detect/engine_cache.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "stream/pipeline.h"
#include "sync/types.h"

namespace clockmark::measure {
struct TraceMeta;
}

namespace clockmark::runtime {
class Executor;
}

namespace clockmark::sync {
class CandidateEngine;
}

namespace clockmark::detect {

/// What to decide and how. Default-constructed = the paper's triggered
/// batch detection with the repo-default thresholds.
struct Request {
  cpa::DetectorPolicy policy;  ///< decision thresholds (z, isolation, guard)
  cpa::CorrelationMethod method = cpa::CorrelationMethod::kFft;

  /// Alignment handling (sync/types.h). kTriggered trusts the input,
  /// kKnownOffset applies `known_warp` before CPA, kBlind runs the
  /// coarse-to-fine search (sync/search.h) configured by `blind`.
  sync::SyncPolicy sync = sync::SyncPolicy::kTriggered;
  sync::WarpSpec known_warp;
  sync::BlindSyncConfig blind;
  /// kBlind, streamed inputs only: raw cycles buffered before the lock
  /// runs mid-stream; 0 = four pattern periods (see OnlineDetectorConfig).
  std::size_t lock_cycles = 0;

  /// Knobs that only apply to streamed inputs (run(TraceSource&) and
  /// run_file).
  struct Streaming {
    std::size_t chunk_cycles = 4096;
    std::size_t queue_capacity = 8;
    bool early_stop = true;
    double confidence_threshold = 0.999;
    std::size_t consecutive_evaluations = 3;
    std::size_t evaluate_every_chunks = 1;
    std::size_t min_cycles = 0;  ///< 0 = one pattern period
  };
  Streaming streaming;

  /// run_file: when the file's capture metadata records a trigger
  /// offset and the request is kTriggered, upgrade to kKnownOffset with
  /// that offset instead of trusting the alignment. An explicit
  /// kKnownOffset / kBlind request always wins over the metadata.
  bool use_file_meta = true;
};

/// The decision and everything behind it. Optional members are set by
/// the paths that produce them and left empty otherwise.
struct Report {
  bool detected = false;
  double confidence = 0.0;          ///< cpa::detection_confidence
  cpa::DetectionResult detection;   ///< full spectrum + reason
  std::size_t cycles = 0;           ///< raw input cycles the decision used
  /// Sync outcome when a correction was applied (kKnownOffset echoes the
  /// requested warp; kBlind reports the recovered estimate).
  std::optional<sync::SyncEstimate> sync;
  std::optional<stream::StreamReport> stream;   ///< streamed inputs
  std::optional<sim::ScenarioResult> scenario;  ///< simulated inputs
};

/// The OnlineDetector configuration a Request maps to — the single
/// translation both Session's streaming path and external drivers (the
/// cm_serve service runs detectors directly for cancellability) use, so
/// their verdicts stay bit-identical to Session::run.
stream::OnlineDetectorConfig stream_detector_config(const Request& request);

/// Folds a finished OnlineDecision into a Report under `request` —
/// verdict, confidence, cycles, and the sync echo for kKnownOffset
/// (Report.stream / .scenario are left for the caller to attach).
Report report_from_decision(const stream::OnlineDecision& decision,
                            const Request& request);

class Session {
 public:
  /// Binds a request and the expected watermark pattern (one period of
  /// WMARK). The pattern may be empty only if every run goes through the
  /// Scenario overload, which carries its own pattern. A non-null
  /// `engines` cache is shared (e.g. across a service's sessions);
  /// otherwise the Session owns a private one.
  explicit Session(Request request = {}, std::vector<double> pattern = {},
                   std::shared_ptr<EngineCache> engines = nullptr);

  /// Batch detection over a materialised per-cycle power trace. The
  /// executor, when non-null, parallelises the blind search (the sweep
  /// itself is single-shot); output is bit-identical at any thread
  /// count.
  Report run(std::span<const double> y,
             runtime::Executor* executor = nullptr) const;

  /// Simulates one scenario repetition (Scenario::run) and decides on
  /// its Y vector with the scenario's own pattern. Report.scenario holds
  /// the full ScenarioResult. Bit-identical to the deprecated
  /// sim::run_detection under the default (kTriggered) request.
  Report run(const sim::Scenario& scenario, std::size_t repetition = 0,
             runtime::Executor* executor = nullptr) const;

  /// Streams the source through a StreamPipeline / OnlineDetector with
  /// the request's sync policy and streaming knobs.
  Report run(stream::TraceSource& source,
             runtime::Executor* executor = nullptr) const;

  /// Replays a trace file (CSV / CMTRACE binary) through the streaming
  /// path. With use_file_meta, a recorded trigger offset upgrades a
  /// kTriggered request to kKnownOffset (see Request).
  Report run_file(const std::string& path,
                  runtime::Executor* executor = nullptr) const;

  /// The metadata upgrade run_file applies, exposed for callers that
  /// stream file-shaped payloads themselves (the service receives
  /// CMTRACE2 frames over the wire): when `request` is kTriggered, the
  /// metadata upgrade is allowed (use_file_meta) and the capture
  /// records a trigger offset, returns the request upgraded to
  /// kKnownOffset with the compensating warp; otherwise returns the
  /// request unchanged.
  static Request with_file_meta(Request request,
                                const measure::TraceMeta& meta);

  const Request& request() const noexcept { return request_; }
  const std::vector<double>& pattern() const noexcept { return pattern_; }
  /// The shared engine cache (never null). Its stats answer "how often
  /// did runs reuse a blind-search engine?".
  const std::shared_ptr<EngineCache>& engines() const noexcept {
    return engine_cache_;
  }

 private:
  stream::StreamPipelineConfig pipeline_config(const Request& request) const;
  Report run_stream(stream::TraceSource& source, const Request& request,
                    runtime::Executor* executor) const;
  /// kBlind requests only: the sync::CandidateEngine for `pattern` from
  /// the shared cache. nullptr for non-blind requests.
  std::shared_ptr<const sync::CandidateEngine> engine_for(
      std::span<const double> pattern) const;

  Request request_;
  std::vector<double> pattern_;
  std::shared_ptr<EngineCache> engine_cache_;
};

}  // namespace clockmark::detect
