// Shared, size-capped LRU cache of sync::CandidateEngine instances,
// keyed by the watermark pattern they were built for.
//
// Why it exists: a CandidateEngine front-loads the expensive part of a
// blind-sync search (the pattern's FFT, per-length fold statistics,
// scoring arenas — see sync/engine.h), so reusing one across runs is
// the difference between paying that cost once per pattern and once per
// search. detect::Session has always shared one engine between its
// copies; a long-running process (the cm_serve detection service) runs
// jobs for *many* patterns through *many* sessions, which needs the
// cache to be shareable, bounded, and observable:
//
//   * bounded — at most `capacity` engines are retained; inserting past
//     the cap evicts the least-recently-used entry, so a daemon fed a
//     stream of one-off keys cannot grow the cache without bound.
//     Evicted engines stay alive while any acquired shared_ptr holds
//     them — eviction only drops the cache's reference.
//   * shareable — acquire() is thread-safe (one mutex; engines are
//     immutable once built) and any number of Sessions, OnlineDetectors
//     and service workers may hold the same cache.
//   * observable — hit / miss / eviction counters for capacity tuning
//     and for the service's per-job cache telemetry.
//
// Duplicate builds under contention are avoided by holding the lock
// across the build: engines for distinct patterns are rarely requested
// at the same instant, and a duplicate engine would waste far more
// memory than the brief serialisation costs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace clockmark::sync {
class CandidateEngine;
}

namespace clockmark::detect {

struct EngineCacheStats {
  std::size_t hits = 0;       ///< acquire() found the pattern cached
  std::size_t misses = 0;     ///< acquire() had to build an engine
  std::size_t evictions = 0;  ///< entries dropped by the LRU cap
  std::size_t entries = 0;    ///< engines currently retained
  std::size_t capacity = 0;   ///< the configured cap
};

class EngineCache {
 public:
  /// Default cap: a handful of concurrently-hot patterns (the service's
  /// tenants typically share one or two watermark keys per chip).
  static constexpr std::size_t kDefaultCapacity = 4;

  explicit EngineCache(std::size_t capacity = kDefaultCapacity);

  /// The engine for `pattern`, built on first use and LRU-retained.
  /// Returns nullptr for an empty pattern (no engine is definable).
  /// When non-null, `*hit` reports whether this call was served from
  /// the cache — exact per call, unlike sampling the global counters
  /// around a call, which races with other threads.
  std::shared_ptr<const sync::CandidateEngine> acquire(
      std::span<const double> pattern, bool* hit = nullptr);

  EngineCacheStats stats() const;

 private:
  struct Entry {
    std::uint64_t key = 0;  ///< FNV-1a over the pattern bytes
    std::shared_ptr<const sync::CandidateEngine> engine;
    std::uint64_t last_use = 0;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;  ///< small N: linear scan beats a map
  std::uint64_t clock_ = 0;
  EngineCacheStats stats_;
};

}  // namespace clockmark::detect
