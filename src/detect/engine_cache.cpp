#include "detect/engine_cache.h"

#include <algorithm>
#include <cstring>

#include "sync/engine.h"

namespace clockmark::detect {

namespace {

// FNV-1a over the pattern's byte image. Cheap and good enough as a
// first-pass discriminator; a full element compare backs it up, so a
// hash collision costs a comparison, never a wrong engine.
std::uint64_t pattern_key(std::span<const double> pattern) {
  std::uint64_t h = 1469598103934665603ull;
  for (const double v : pattern) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (bits >> shift) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

bool same_pattern(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace

EngineCache::EngineCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  stats_.capacity = capacity_;
  entries_.reserve(capacity_);
}

std::shared_ptr<const sync::CandidateEngine> EngineCache::acquire(
    std::span<const double> pattern, bool* hit) {
  if (pattern.empty()) {
    if (hit != nullptr) *hit = false;
    return nullptr;
  }
  const std::uint64_t key = pattern_key(pattern);
  std::lock_guard<std::mutex> lock(mu_);
  ++clock_;
  for (Entry& entry : entries_) {
    if (entry.key == key && same_pattern(entry.engine->pattern(), pattern)) {
      entry.last_use = clock_;
      ++stats_.hits;
      if (hit != nullptr) *hit = true;
      return entry.engine;
    }
  }
  ++stats_.misses;
  if (hit != nullptr) *hit = false;
  auto engine = std::make_shared<const sync::CandidateEngine>(
      std::vector<double>(pattern.begin(), pattern.end()));
  if (entries_.size() >= capacity_) {
    auto victim = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.last_use < b.last_use; });
    ++stats_.evictions;
    *victim = Entry{key, engine, clock_};
  } else {
    entries_.push_back(Entry{key, engine, clock_});
  }
  stats_.entries = entries_.size();
  return engine;
}

EngineCacheStats EngineCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineCacheStats out = stats_;
  out.entries = entries_.size();
  out.capacity = capacity_;
  return out;
}

}  // namespace clockmark::detect
