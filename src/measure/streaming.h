// Chunked (bounded-memory) variant of the acquisition pipeline. The
// batch AcquisitionChain expands the whole trace to a sample-rate
// waveform — 50 doubles per cycle, the dominant allocation of a
// repetition — before filtering and digitising it. This chain processes
// one whole-cycle chunk at a time and carries the analog state (PDN and
// probe filter registers, probe/scope RNG streams, ADC range) across
// chunks, so memory stays O(chunk * samples_per_cycle).
//
// Exactness contract: feeding the same per-cycle power trace chunk by
// chunk, in order, produces per-cycle Y values bit-identical to
// AcquisitionChain::measure on the whole trace. Every filter, RNG and
// quantiser consumes its samples in the same order; chunk boundaries
// only decide where the loops pause (asserted in tests).
//
// Two passes, mirroring the operator's workflow: the scope's vertical
// range depends on the full waveform (auto_range takes its min/max), so
// under RangePolicy::kAutoRange the caller streams the trace once through
// the range pass, then again through the acquire pass. Both passes seed
// their analog chains identically, so the acquire pass sees the exact
// waveform the range was chosen from. This trades ~2x synthesis compute
// for O(N) less memory — the streaming bargain.
//
// Since the fused-kernel refactor this class is a thin front-end over
// measure::AcquisitionKernel, which implements the chunked multi-pass
// pipeline for both the batch and the streaming entry points (see
// kernel.h for the exactness contract). Trigger-offset captures
// (config.trigger_sim != kAligned) stream a third pass — range, then
// trigger, then acquire — because the edge-trigger phase, like the scope
// range, is a whole-waveform statistic.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "measure/acquisition.h"
#include "measure/kernel.h"

namespace clockmark::measure {

class StreamingAcquisitionChain {
 public:
  /// `clock_hz` is the chip clock of the incoming per-cycle trace (the
  /// batch chain reads it from the PowerTrace).
  StreamingAcquisitionChain(const AcquisitionConfig& config, double clock_hz);

  /// True when the scope range must be learned from a first full pass
  /// (config.range_policy == kAutoRange); otherwise acquire_feed may be
  /// called directly.
  bool needs_range_pass() const noexcept;

  /// Range pass: feed every chunk in order, then fix_range().
  void range_feed(std::span<const double> cycle_power_w);
  void fix_range();

  /// True when a trigger pass must stream the trace between the range
  /// and acquire passes (config.trigger_sim != kAligned).
  bool needs_trigger_pass() const noexcept;

  /// Trigger pass: feed the same chunks in the same order, after
  /// fix_range(), then fix_trigger().
  void trigger_feed(std::span<const double> cycle_power_w);
  void fix_trigger();

  /// Acquire pass: feed the same chunks in the same order. Returns this
  /// chunk's per-cycle Y values (chunk length preserved when aligned;
  /// a simulated trigger offset loses up to one cycle at the front and
  /// one at the back of the whole stream).
  std::vector<double> acquire_feed(std::span<const double> cycle_power_w);

  struct Summary {
    std::size_t cycles = 0;     ///< Y values produced so far
    double mean_power_w = 0.0;  ///< running mean of Y
    double lsb_power_w = 0.0;   ///< one ADC code as chip power
  };
  /// Valid after the last acquire_feed; matches the batch Acquisition
  /// metadata bit for bit.
  Summary summary() const;

  const AcquisitionConfig& config() const noexcept {
    return kernel_.config();
  }

 private:
  AcquisitionKernel kernel_;
};

}  // namespace clockmark::measure
