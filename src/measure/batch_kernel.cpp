#include "measure/batch_kernel.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

#include "dsp/filter.h"
#include "measure/kernel.h"
#include "util/rng.h"

namespace clockmark::measure {

namespace {

/// Same block sizing target as AcquisitionKernel: ~4096 samples keeps
/// one lane's scratch walks L1/L2-resident; with K interleaved lanes the
/// working set is K blocks plus the cache stripe, still L2-sized.
constexpr std::size_t kBlockSamplesTarget = 4096;

/// SoA lane width: four doubles fill one AVX2 register, and four
/// independent IIR chains cover the FMA latency on the scalar path too.
constexpr std::size_t kLaneWidth = 4;

/// Reusable scratch for run_group: the interleaved waveform cache and
/// the per-block noise staging buffer. Allocating (and first-touching)
/// up to cache_budget_bytes_ per run() call costs more than a whole
/// acquisition pass in page faults + zero-init, so the buffers persist
/// thread-locally across groups and runs — same arena discipline as
/// cpa::SweepArena. Contents carry no state: pass 1 writes every cached
/// sample before pass 2 reads it, and the noise buffer is refilled per
/// block before use.
struct GroupArena {
  std::vector<double> wcache;
  std::vector<double> noise;
};

GroupArena& group_arena() {
  thread_local GroupArena arena;
  return arena;
}

/// Per-lane analog state threaded through the blocks of one group.
struct LaneState {
  util::Pcg32 probe_rng{0, 0};  ///< range-pass probe stream (fork 1)
  util::Pcg32 scope_rng{0, 0};  ///< acquire-pass scope stream (fork 2)
  double pdn_y = 0.0;
  double probe_y = 0.0;
  double volts_min = std::numeric_limits<double>::infinity();
  double volts_max = -std::numeric_limits<double>::infinity();
  double offset_v = 0.0;      ///< fixed scope offset after the range pass
  double full_scale_v = 0.0;  ///< fixed scope range after the range pass
  double lsb_v = 0.0;
  double sum_power_w = 0.0;
};

}  // namespace

BatchAcquisitionKernel::BatchAcquisitionKernel(
    const AcquisitionConfig& config, double clock_hz)
    : config_(config), clock_hz_(clock_hz) {
  if (config_.probe.sample_rate_hz != config_.scope.sample_rate_hz) {
    throw std::invalid_argument(
        "BatchAcquisitionKernel: probe/scope sample rates must match");
  }
  if (clock_hz_ <= 0.0) {
    throw std::invalid_argument(
        "BatchAcquisitionKernel: clock_hz must be > 0");
  }
  if (config_.scope.resolution_bits < 2 ||
      config_.scope.resolution_bits > 16) {
    throw std::invalid_argument(
        "BatchAcquisitionKernel: resolution must be 2..16 bit");
  }
  if (config_.scope.full_scale_v <= 0.0) {
    throw std::invalid_argument(
        "BatchAcquisitionKernel: full scale must be > 0");
  }
  template_ = power::cycle_pulse_template(config_.waveform);  // throws on spc=0

  const std::size_t spc = config_.waveform.samples_per_cycle;
  block_cycles_ = config_.block_cycles > 0
                      ? config_.block_cycles
                      : std::max<std::size_t>(8, kBlockSamplesTarget / spc);
}

bool BatchAcquisitionKernel::supports(
    const AcquisitionConfig& config) noexcept {
  // Trigger-offset capture re-aligns mid-cycle windows (a per-lane
  // stream cursor) and a disabled PDN filter changes the recurrence
  // shape; both are rare study configurations, served per lane.
  return config.trigger_sim == TriggerSim::kAligned &&
         config.enable_pdn_filter;
}

std::size_t BatchAcquisitionKernel::group_width(
    std::size_t trace_cycles) const noexcept {
  const std::size_t spc = config_.waveform.samples_per_cycle;
  const std::size_t lane_bytes = trace_cycles * spc * sizeof(double);
  if (lane_bytes == 0 || lane_bytes > cache_budget_bytes_) return 0;
  std::size_t width = kLaneWidth;
  while (width > 1 && width * lane_bytes > cache_budget_bytes_) width /= 2;
  return width;
}

std::vector<Acquisition> BatchAcquisitionKernel::run(
    std::span<const BatchLane> lanes) const {
  std::vector<Acquisition> out(lanes.size());
  if (lanes.empty()) return out;

  bool batched = supports(config_);
  const std::size_t cycles = lanes[0].cycle_power_w.size();
  if (cycles == 0) batched = false;
  for (const BatchLane& lane : lanes) {
    if (lane.cycle_power_w.size() != cycles) {
      batched = false;
      break;
    }
  }
  const std::size_t width = batched ? group_width(cycles) : 0;
  if (width == 0) {
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      run_fallback_lane(lanes[i], out[i]);
    }
    return out;
  }
  for (std::size_t l0 = 0; l0 < lanes.size(); l0 += width) {
    const std::size_t lg = std::min(width, lanes.size() - l0);
    run_group(lanes.subspan(l0, lg),
              std::span<Acquisition>(out.data() + l0, lg));
  }
  return out;
}

void BatchAcquisitionKernel::run_fallback_lane(const BatchLane& lane,
                                               Acquisition& out) const {
  AcquisitionConfig cfg = config_;
  cfg.noise_seed = lane.noise_seed;
  AcquisitionKernel kernel(cfg, clock_hz_);
  if (kernel.needs_range_pass()) {
    kernel.range_feed(lane.cycle_power_w);
    kernel.fix_range();
  }
  if (kernel.needs_trigger_pass()) {
    kernel.trigger_feed(lane.cycle_power_w);
    kernel.fix_trigger();
  }
  kernel.acquire_feed(lane.cycle_power_w, out.per_cycle_power_w);
  const AcquisitionKernel::Summary s = kernel.summary();
  out.mean_power_w = s.mean_power_w;
  out.lsb_power_w = s.lsb_power_w;
}

// The group engine. Two passes over the trace, K lanes interleaved:
//
//   pass 1 (range): expand -> PDN -> shunt -> probe (+noise), tracking
//     each lane's min/max and storing the post-probe sample stream into
//     the interleaved waveform cache. This stream is exactly the
//     acquire pass's pre-scope-noise input — both passes fork the probe
//     RNG from the same base with the same salt — so it is cached, not
//     recomputed.
//   fix_range: per lane, the scalar kernel's auto_range arithmetic.
//   pass 2 (acquire): scope noise + clip + quantise + reconstruct over
//     the cached stream, fused with the per-cycle averaging.
//
// Per lane the floating-point op sequence is the scalar kernel's; lanes
// never mix. The AVX2 bodies map each scalar op to its per-element
// IEEE-exact vector twin — note the two places the reference has an
// unfused multiply+add (probe gain + noise; quantiser reconstruction):
// those stay split vmul/vadd, because the scalar TU compiles with
// -ffp-contract=off.
void BatchAcquisitionKernel::run_group(std::span<const BatchLane> lanes,
                                       std::span<Acquisition> out) const {
  const std::size_t lg = lanes.size();
  const std::size_t spc = config_.waveform.samples_per_cycle;
  const double spc_d = static_cast<double>(spc);
  const std::size_t cycles = lanes[0].cycle_power_w.size();
  const double vdd = config_.vdd_v;
  const double r_shunt = config_.shunt.resistance_ohm();
  const double gain = config_.probe.gain;
  const double probe_noise = config_.probe.noise_v_rms;
  const double scope_noise = config_.scope.noise_v_rms;
  const double fs = clock_hz_ * spc_d;
  const double* tpl = template_.data();

  // Filter coefficients are lane-invariant (pure functions of config).
  const double pdn_alpha =
      dsp::OnePoleLowPass(config_.pdn_cutoff_hz, fs).alpha();
  const double probe_alpha =
      dsp::OnePoleLowPass(config_.probe.bandwidth_hz,
                          config_.probe.sample_rate_hz)
          .alpha();

  std::vector<LaneState> st(lg);
  for (std::size_t k = 0; k < lg; ++k) {
    // Per-lane streams: fresh base + forks, exactly AcquisitionKernel's
    // Pass construction (fork reads the base state without advancing
    // it, so fork(2) here equals the acquire pass's fork(2)).
    util::Pcg32 base(lanes[k].noise_seed, 0x0b5e7fa11ULL);
    st[k].probe_rng = base.fork(1);
    st[k].scope_rng = base.fork(2);
    // PDN priming: DC of the first min(stream, 8 cycles) samples, the
    // exact prime_pdn accumulation (aligned capture, offset 0).
    const std::span<const double> power = lanes[k].cycle_power_w;
    const std::size_t settle = std::min(cycles * spc, spc * 8);
    double dc = 0.0;
    std::size_t tpl_i = 0;
    std::size_t cyc = 0;
    double scale = power[0] / vdd * spc_d;
    for (std::size_t i = 0; i < settle; ++i) {
      dc += scale * tpl[tpl_i];
      if (++tpl_i == spc) {
        tpl_i = 0;
        ++cyc;
        if (i + 1 < settle) scale = power[cyc] / vdd * spc_d;
      }
    }
    st[k].pdn_y = dc / static_cast<double>(settle);
    out[k].per_cycle_power_w.reserve(cycles);
  }

  // Interleaved waveform cache: sample j of lane k at wcache[j*lg + k]
  // (unit-stride vector loads when lg == kLaneWidth). run() sized the
  // group so the cache respects cache_budget_bytes_; the backing arena
  // is thread-local and reused across groups and runs.
  GroupArena& arena = group_arena();
  if (arena.wcache.size() < cycles * spc * lg) {
    arena.wcache.resize(cycles * spc * lg);
  }
  if (arena.noise.size() < lg * block_cycles_ * spc) {
    arena.noise.resize(lg * block_cycles_ * spc);
  }
  double* const wcache = arena.wcache.data();
  double* const noise = arena.noise.data();

  // ---- Pass 1: expand + PDN + shunt + probe, store + min/max ---------
  for (std::size_t start = 0; start < cycles; start += block_cycles_) {
    const std::size_t bc = std::min(block_cycles_, cycles - start);
    const std::size_t sc = bc * spc;
    for (std::size_t k = 0; k < lg; ++k) {
      st[k].probe_rng.fill_gaussian(
          std::span<double>(noise + k * sc, sc), 0.0, probe_noise);
    }
    double* dst = wcache + start * spc * lg;
#if defined(__AVX2__) && defined(__FMA__)
    if (lg == kLaneWidth) {
      const __m256d va = _mm256_set1_pd(pdn_alpha);
      const __m256d vb = _mm256_set1_pd(probe_alpha);
      const __m256d vr = _mm256_set1_pd(r_shunt);
      const __m256d vg = _mm256_set1_pd(gain);
      const __m256d vvdd = _mm256_set1_pd(vdd);
      const __m256d vspc = _mm256_set1_pd(spc_d);
      __m256d py = _mm256_setr_pd(st[0].pdn_y, st[1].pdn_y, st[2].pdn_y,
                                  st[3].pdn_y);
      __m256d qy = _mm256_setr_pd(st[0].probe_y, st[1].probe_y,
                                  st[2].probe_y, st[3].probe_y);
      __m256d mn = _mm256_setr_pd(st[0].volts_min, st[1].volts_min,
                                  st[2].volts_min, st[3].volts_min);
      __m256d mx = _mm256_setr_pd(st[0].volts_max, st[1].volts_max,
                                  st[2].volts_max, st[3].volts_max);
      const double* n0 = noise;
      const double* n1 = noise + sc;
      const double* n2 = noise + 2 * sc;
      const double* n3 = noise + 3 * sc;
      const double* p0 = lanes[0].cycle_power_w.data() + start;
      const double* p1 = lanes[1].cycle_power_w.data() + start;
      const double* p2 = lanes[2].cycle_power_w.data() + start;
      const double* p3 = lanes[3].cycle_power_w.data() + start;
      std::size_t j = 0;
      for (std::size_t c = 0; c < bc; ++c) {
        // scale = power / vdd * spc, the expansion's per-cycle factor.
        const __m256d scale = _mm256_mul_pd(
            _mm256_div_pd(_mm256_setr_pd(p0[c], p1[c], p2[c], p3[c]), vvdd),
            vspc);
        for (std::size_t i = 0; i < spc; ++i, ++j) {
          const __m256d wv = _mm256_mul_pd(scale, _mm256_set1_pd(tpl[i]));
          py = _mm256_fmadd_pd(va, _mm256_sub_pd(wv, py), py);
          const __m256d v = _mm256_mul_pd(py, vr);
          qy = _mm256_fmadd_pd(vb, _mm256_sub_pd(v, qy), qy);
          const __m256d nz = _mm256_setr_pd(n0[j], n1[j], n2[j], n3[j]);
          const __m256d w = _mm256_add_pd(_mm256_mul_pd(qy, vg), nz);
          _mm256_storeu_pd(dst + j * kLaneWidth, w);
          mn = _mm256_min_pd(w, mn);
          mx = _mm256_max_pd(w, mx);
        }
      }
      alignas(32) double t_py[4], t_qy[4], t_mn[4], t_mx[4];
      _mm256_store_pd(t_py, py);
      _mm256_store_pd(t_qy, qy);
      _mm256_store_pd(t_mn, mn);
      _mm256_store_pd(t_mx, mx);
      for (std::size_t k = 0; k < kLaneWidth; ++k) {
        st[k].pdn_y = t_py[k];
        st[k].probe_y = t_qy[k];
        st[k].volts_min = t_mn[k];
        st[k].volts_max = t_mx[k];
      }
      continue;
    }
#endif
    double py[kLaneWidth];
    double qy[kLaneWidth];
    double mn[kLaneWidth];
    double mx[kLaneWidth];
    double scale[kLaneWidth];
    for (std::size_t k = 0; k < lg; ++k) {
      py[k] = st[k].pdn_y;
      qy[k] = st[k].probe_y;
      mn[k] = st[k].volts_min;
      mx[k] = st[k].volts_max;
    }
    std::size_t j = 0;
    for (std::size_t c = 0; c < bc; ++c) {
      for (std::size_t k = 0; k < lg; ++k) {
        scale[k] = lanes[k].cycle_power_w[start + c] / vdd * spc_d;
      }
      for (std::size_t i = 0; i < spc; ++i, ++j) {
        for (std::size_t k = 0; k < lg; ++k) {
          const double wv = scale[k] * tpl[i];
          py[k] = std::fma(pdn_alpha, wv - py[k], py[k]);
          const double v = py[k] * r_shunt;
          qy[k] = std::fma(probe_alpha, v - qy[k], qy[k]);
          const double w = qy[k] * gain + noise[k * sc + j];
          dst[j * lg + k] = w;
          mn[k] = std::min(mn[k], w);
          mx[k] = std::max(mx[k], w);
        }
      }
    }
    for (std::size_t k = 0; k < lg; ++k) {
      st[k].pdn_y = py[k];
      st[k].probe_y = qy[k];
      st[k].volts_min = mn[k];
      st[k].volts_max = mx[k];
    }
  }

  // ---- fix_range: per lane, the kernel's auto_range arithmetic -------
  const bool auto_range = config_.range_policy == RangePolicy::kAutoRange;
  const double codes =
      static_cast<double>(1u << config_.scope.resolution_bits);
  for (std::size_t k = 0; k < lg; ++k) {
    if (auto_range) {
      const double span =
          std::max(st[k].volts_max - st[k].volts_min, 1e-9);
      st[k].offset_v = (st[k].volts_max + st[k].volts_min) / 2.0;
      st[k].full_scale_v = span / 0.8;
    } else {
      st[k].offset_v = config_.scope.offset_v;
      st[k].full_scale_v = config_.scope.full_scale_v;
    }
    st[k].lsb_v = st[k].full_scale_v / codes;
  }

  // ---- Pass 2: scope noise + quantise + per-cycle average ------------
  const double max_code =
      static_cast<double>((1u << config_.scope.resolution_bits) - 1u);
  for (std::size_t start = 0; start < cycles; start += block_cycles_) {
    const std::size_t bc = std::min(block_cycles_, cycles - start);
    const std::size_t sc = bc * spc;
    for (std::size_t k = 0; k < lg; ++k) {
      st[k].scope_rng.fill_gaussian(
          std::span<double>(noise + k * sc, sc), 0.0, scope_noise);
    }
    const double* src = wcache + start * spc * lg;
#if defined(__AVX2__) && defined(__FMA__)
    if (lg == kLaneWidth) {
      const __m256d lsbv = _mm256_setr_pd(st[0].lsb_v, st[1].lsb_v,
                                          st[2].lsb_v, st[3].lsb_v);
      const __m256d half = _mm256_setr_pd(
          st[0].full_scale_v / 2.0, st[1].full_scale_v / 2.0,
          st[2].full_scale_v / 2.0, st[3].full_scale_v / 2.0);
      const __m256d offv = _mm256_setr_pd(st[0].offset_v, st[1].offset_v,
                                          st[2].offset_v, st[3].offset_v);
      const __m256d vzero = _mm256_setzero_pd();
      const __m256d nhalf = _mm256_sub_pd(vzero, half);
      const __m256d himax = _mm256_sub_pd(half, lsbv);
      const __m256d vmaxcode = _mm256_set1_pd(max_code);
      const __m256d vhalfcode = _mm256_set1_pd(0.5);
      const double* n0 = noise;
      const double* n1 = noise + sc;
      const double* n2 = noise + 2 * sc;
      const double* n3 = noise + 3 * sc;
      std::size_t j = 0;
      for (std::size_t c = 0; c < bc; ++c) {
        __m256d s = vzero;
        for (std::size_t i = 0; i < spc; ++i, ++j) {
          const __m256d cw = _mm256_loadu_pd(src + j * kLaneWidth);
          const __m256d nz = _mm256_setr_pd(n0[j], n1[j], n2[j], n3[j]);
          const __m256d noisy = _mm256_sub_pd(_mm256_add_pd(cw, nz), offv);
          const __m256d clipped =
              _mm256_min_pd(_mm256_max_pd(noisy, nhalf), himax);
          __m256d code = _mm256_floor_pd(
              _mm256_div_pd(_mm256_add_pd(clipped, half), lsbv));
          code = _mm256_min_pd(_mm256_max_pd(code, vzero), vmaxcode);
          const __m256d recon = _mm256_add_pd(
              _mm256_sub_pd(
                  _mm256_mul_pd(_mm256_add_pd(code, vhalfcode), lsbv),
                  half),
              offv);
          s = _mm256_add_pd(s, recon);
        }
        alignas(32) double ss[4];
        _mm256_store_pd(ss, s);
        for (std::size_t k = 0; k < kLaneWidth; ++k) {
          const double averaged = ss[k] / spc_d;
          const double y = (averaged / gain) / r_shunt * vdd;
          out[k].per_cycle_power_w.push_back(y);
          st[k].sum_power_w += y;
        }
      }
      continue;
    }
#endif
    double lsb[kLaneWidth];
    double half[kLaneWidth];
    double offv[kLaneWidth];
    for (std::size_t k = 0; k < lg; ++k) {
      lsb[k] = st[k].lsb_v;
      half[k] = st[k].full_scale_v / 2.0;
      offv[k] = st[k].offset_v;
    }
    std::size_t j = 0;
    for (std::size_t c = 0; c < bc; ++c) {
      double s[kLaneWidth] = {0.0, 0.0, 0.0, 0.0};
      for (std::size_t i = 0; i < spc; ++i, ++j) {
        for (std::size_t k = 0; k < lg; ++k) {
          const double noisy = src[j * lg + k] + noise[k * sc + j] - offv[k];
          const double clipped =
              std::clamp(noisy, -half[k], half[k] - lsb[k]);
          double code = std::floor((clipped + half[k]) / lsb[k]);
          code = std::clamp(code, 0.0, max_code);
          s[k] += (code + 0.5) * lsb[k] - half[k] + offv[k];
        }
      }
      for (std::size_t k = 0; k < lg; ++k) {
        const double averaged = s[k] / spc_d;
        const double y = (averaged / gain) / r_shunt * vdd;
        out[k].per_cycle_power_w.push_back(y);
        st[k].sum_power_w += y;
      }
    }
  }

  for (std::size_t k = 0; k < lg; ++k) {
    out[k].mean_power_w =
        st[k].sum_power_w / static_cast<double>(cycles);
    out[k].lsb_power_w = st[k].lsb_v / r_shunt / gain * vdd;
  }
}

}  // namespace clockmark::measure
