// End-to-end acquisition pipeline — the simulator-side equivalent of the
// paper's test bench (Fig. 4(b)): chip current -> PDN decoupling ->
// 270 mOhm shunt -> active probe -> oscilloscope ADC -> per-cycle
// averaging into the CPA measurement vector Y.
//
// The PDN (power delivery network) stage matters: on-board decoupling
// capacitance low-passes the current seen by the shunt, attenuating the
// cycle-rate watermark square wave by more than an order of magnitude.
// This — together with ADC quantisation — is why the paper's correlation
// peaks are ~0.015 rather than ~0.5 even though the watermark block draws
// milliwatts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dsp/filter.h"
#include "measure/oscilloscope.h"
#include "measure/probe.h"
#include "measure/shunt.h"
#include "power/trace.h"
#include "power/waveform.h"

namespace clockmark::measure {

/// How the scope's vertical range is chosen.
enum class RangePolicy {
  /// Learn the range from the full waveform's min/max before acquiring
  /// (the two-pass operator workflow; the historical default).
  kAutoRange,
  /// Use OscilloscopeConfig::{full_scale_v, offset_v} as configured.
  kFixedRange,
};

/// Whether (and how) the capture start is misaligned inside a clock
/// cycle — the single-shot un-triggered capture study. Alignment is
/// recovered in-pipeline by the software edge trigger (measure/
/// trigger.h); the averaged trace then loses up to one cycle at the
/// front and one at the back.
enum class TriggerSim {
  kAligned,       ///< capture starts exactly on a cycle boundary
  kRandomOffset,  ///< offset drawn from the noise seed (the paper study)
  kFixedOffset,   ///< offset = trigger_offset_samples (mod spc)
};

struct AcquisitionConfig {
  power::WaveformOptions waveform;  ///< sub-cycle current synthesis
  double vdd_v = 1.2;
  /// PDN low-pass cutoff seen by the shunt (board decoupling).
  double pdn_cutoff_hz = 400.0e3;
  bool enable_pdn_filter = true;
  ShuntResistor shunt{0.270};
  ProbeConfig probe;
  OscilloscopeConfig scope;
  RangePolicy range_policy = RangePolicy::kAutoRange;
  TriggerSim trigger_sim = TriggerSim::kAligned;
  /// Capture-start offset in samples for TriggerSim::kFixedOffset
  /// (taken modulo samples_per_cycle).
  std::size_t trigger_offset_samples = 0;
  /// Whole-cycle block length of the fused kernel (0 = pick a block of
  /// ~4096 samples, at least 8 cycles). Exposed for the block-size
  /// invariance tests; results never depend on it.
  std::size_t block_cycles = 0;
  std::uint64_t noise_seed = 1;
};

/// The acquired measurement, ready for CPA.
struct Acquisition {
  std::vector<double> per_cycle_power_w;  ///< Y: 50-sample averages
  double mean_power_w = 0.0;
  double lsb_power_w = 0.0;  ///< one ADC code expressed as chip power
};

class AcquisitionChain {
 public:
  explicit AcquisitionChain(const AcquisitionConfig& config);

  /// Measures a device power trace: expands to a sample-rate current
  /// waveform, runs the analog chain + ADC, block-averages back to one
  /// power value per clock cycle. Always routed through the fused
  /// measure::AcquisitionKernel (see kernel.h), including the
  /// trigger-offset studies (TriggerSim != kAligned), which add a
  /// trigger pass between the range and acquire passes.
  Acquisition measure(const power::PowerTrace& device_power);

  /// The original materialise-then-filter-then-quantise pipeline, kept
  /// purely as the per-sample test oracle: the fused kernel is asserted
  /// bit-identical to it (tests/test_measure_kernel.cpp) and it remains
  /// the reference-vs-fused baseline for bench/abl_acq_speed. No
  /// production path calls it.
  Acquisition acquire_reference(const power::PowerTrace& device_power);

  const AcquisitionConfig& config() const noexcept { return config_; }

 private:
  AcquisitionConfig config_;
};

}  // namespace clockmark::measure
