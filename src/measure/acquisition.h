// End-to-end acquisition pipeline — the simulator-side equivalent of the
// paper's test bench (Fig. 4(b)): chip current -> PDN decoupling ->
// 270 mOhm shunt -> active probe -> oscilloscope ADC -> per-cycle
// averaging into the CPA measurement vector Y.
//
// The PDN (power delivery network) stage matters: on-board decoupling
// capacitance low-passes the current seen by the shunt, attenuating the
// cycle-rate watermark square wave by more than an order of magnitude.
// This — together with ADC quantisation — is why the paper's correlation
// peaks are ~0.015 rather than ~0.5 even though the watermark block draws
// milliwatts.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/filter.h"
#include "measure/oscilloscope.h"
#include "measure/probe.h"
#include "measure/shunt.h"
#include "power/trace.h"
#include "power/waveform.h"

namespace clockmark::measure {

struct AcquisitionConfig {
  power::WaveformOptions waveform;  ///< sub-cycle current synthesis
  double vdd_v = 1.2;
  /// PDN low-pass cutoff seen by the shunt (board decoupling).
  double pdn_cutoff_hz = 400.0e3;
  bool enable_pdn_filter = true;
  ShuntResistor shunt{0.270};
  ProbeConfig probe;
  OscilloscopeConfig scope;
  bool scope_auto_range = true;
  /// Simulate an arbitrary capture start inside a clock cycle (as a real
  /// un-triggered single-shot capture would have) and recover alignment
  /// with the software edge trigger (measure/trigger.h). The averaged
  /// trace then loses up to one cycle at the front.
  bool simulate_trigger_offset = false;
  std::uint64_t noise_seed = 1;
};

/// The acquired measurement, ready for CPA.
struct Acquisition {
  std::vector<double> per_cycle_power_w;  ///< Y: 50-sample averages
  double mean_power_w = 0.0;
  double lsb_power_w = 0.0;  ///< one ADC code expressed as chip power
};

class AcquisitionChain {
 public:
  explicit AcquisitionChain(const AcquisitionConfig& config);

  /// Measures a device power trace: expands to a sample-rate current
  /// waveform, runs the analog chain + ADC, block-averages back to one
  /// power value per clock cycle. Routed through the fused
  /// measure::AcquisitionKernel (see kernel.h); simulate_trigger_offset
  /// falls back to acquire_reference, the only path that drops a
  /// sub-cycle sample prefix.
  Acquisition measure(const power::PowerTrace& device_power);

  /// The original materialise-then-filter-then-quantise pipeline, kept
  /// as the per-sample reference implementation. The fused kernel is
  /// bit-identical to it (asserted in tests/test_measure_kernel.cpp);
  /// this path also remains the reference-vs-fused baseline for
  /// bench/abl_acq_speed.
  Acquisition acquire_reference(const power::PowerTrace& device_power);

  const AcquisitionConfig& config() const noexcept { return config_; }

 private:
  AcquisitionConfig config_;
};

}  // namespace clockmark::measure
