// Shunt-resistor current sensing (paper Fig. 4(b): all power domains
// joined by jumpers, total chip current measured across a 270 mOhm shunt).
#pragma once

#include <span>
#include <vector>

namespace clockmark::measure {

class ShuntResistor {
 public:
  explicit ShuntResistor(double resistance_ohm = 0.270);

  double resistance_ohm() const noexcept { return r_; }

  /// Voltage developed by a current (V = I * R).
  double voltage(double current_a) const noexcept { return current_a * r_; }

  /// Converts a current waveform (A) to the sensed voltage waveform (V).
  std::vector<double> sense(std::span<const double> current_a) const;

  /// Inverse: recovers current from a sensed voltage.
  double current(double voltage_v) const noexcept { return voltage_v / r_; }

 private:
  double r_;
};

}  // namespace clockmark::measure
