#include "measure/acquisition.h"

#include <algorithm>
#include <stdexcept>

#include "measure/kernel.h"
#include "measure/trigger.h"
#include "util/rng.h"

namespace clockmark::measure {

AcquisitionChain::AcquisitionChain(const AcquisitionConfig& config)
    : config_(config) {
  const double fs = config_.probe.sample_rate_hz;
  if (fs != config_.scope.sample_rate_hz) {
    throw std::invalid_argument(
        "AcquisitionChain: probe/scope sample rates must match");
  }
}

Acquisition AcquisitionChain::measure(const power::PowerTrace& device_power) {
  AcquisitionKernel kernel(config_, device_power.clock_hz());
  const auto cycles = device_power.span();
  if (kernel.needs_range_pass()) {
    kernel.range_feed(cycles);
    kernel.fix_range();
  }
  if (kernel.needs_trigger_pass()) {
    kernel.trigger_feed(cycles);
    kernel.fix_trigger();
  }
  Acquisition result;
  kernel.acquire_feed(cycles, result.per_cycle_power_w);
  const auto s = kernel.summary();
  result.mean_power_w = s.mean_power_w;
  result.lsb_power_w = s.lsb_power_w;
  return result;
}

Acquisition AcquisitionChain::acquire_reference(
    const power::PowerTrace& device_power) {
  const std::size_t spc = config_.waveform.samples_per_cycle;
  const double fs = device_power.clock_hz() * static_cast<double>(spc);
  const bool sim_offset = config_.trigger_sim != TriggerSim::kAligned;

  // 1. Chip current at sample rate.
  std::vector<double> current = power::expand_to_current_waveform(
      device_power, config_.vdd_v, config_.waveform);

  // Optional: the capture starts at an arbitrary point inside a cycle.
  util::Pcg32 offset_rng(config_.noise_seed ^ 0x7219a9ULL, 0x0ff5e7u);
  if (sim_offset && spc > 1 && !current.empty()) {
    const std::size_t offset =
        config_.trigger_sim == TriggerSim::kRandomOffset
            ? offset_rng.bounded(static_cast<std::uint32_t>(spc))
            : config_.trigger_offset_samples % spc;
    current.erase(current.begin(),
                  current.begin() + static_cast<long>(
                                        std::min(offset, current.size())));
  }

  // 2. PDN decoupling low-pass (what the shunt actually sees).
  if (config_.enable_pdn_filter) {
    dsp::OnePoleLowPass pdn(config_.pdn_cutoff_hz, fs);
    // Prime the filter with the DC level (mean of the first cycles) so
    // the trace does not start with a settling transient.
    if (!current.empty()) {
      const std::size_t settle =
          std::min<std::size_t>(current.size(), spc * 8);
      double dc = 0.0;
      for (std::size_t i = 0; i < settle; ++i) dc += current[i];
      pdn.reset(dc / static_cast<double>(settle));
    }
    pdn.process(current);
  }

  // 3. Shunt voltage.
  std::vector<double> volts = config_.shunt.sense(current);

  // 4. Probe: bandwidth + gain + noise.
  util::Pcg32 rng(config_.noise_seed, 0x0b5e7fa11ULL);
  Probe probe(config_.probe, rng.fork(1));
  probe.process(volts);

  // 5. Oscilloscope: range, noise, quantisation.
  Oscilloscope scope(config_.scope, rng.fork(2));
  if (config_.range_policy == RangePolicy::kAutoRange) {
    scope.auto_range(volts);
  }
  std::vector<double> acquired = scope.acquire(volts);

  // Recover cycle alignment with the software edge trigger.
  if (sim_offset) {
    acquired = auto_align(acquired, spc);
  }

  // 6. Back to chip power, averaged per clock cycle (Y vector).
  Acquisition result;
  result.lsb_power_w = scope.lsb_v() / config_.shunt.resistance_ohm() /
                       config_.probe.gain * config_.vdd_v;
  const auto averaged = dsp::block_average(acquired, spc);
  result.per_cycle_power_w.resize(averaged.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < averaged.size(); ++i) {
    const double current_a =
        config_.shunt.current(averaged[i] / config_.probe.gain);
    result.per_cycle_power_w[i] = current_a * config_.vdd_v;
    sum += result.per_cycle_power_w[i];
  }
  result.mean_power_w =
      averaged.empty() ? 0.0
                       : sum / static_cast<double>(averaged.size());
  return result;
}

}  // namespace clockmark::measure
