#include "measure/trace_io.h"

#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace clockmark::measure {
namespace {

constexpr char kMagicV1[8] = {'C', 'M', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr char kMagicV2[8] = {'C', 'M', 'T', 'R', 'A', 'C', 'E', '2'};

// Raw doubles / u64 are written in host byte order; every platform this
// simulator targets is little-endian, and the magic check rejects files
// that are not CMTRACE* at all.

void write_meta_csv(std::ofstream& out, const TraceMeta& meta) {
  char buf[96];
  if (meta.clock_hz != 0.0) {
    std::snprintf(buf, sizeof(buf), "# meta clock_hz=%.17g\n", meta.clock_hz);
    out << buf;
  }
  if (meta.sample_rate_hz != 0.0) {
    std::snprintf(buf, sizeof(buf), "# meta sample_rate_hz=%.17g\n",
                  meta.sample_rate_hz);
    out << buf;
  }
  if (meta.trigger_offset_cycles != 0.0) {
    std::snprintf(buf, sizeof(buf), "# meta trigger_offset_cycles=%.17g\n",
                  meta.trigger_offset_cycles);
    out << buf;
  }
}

// Parses one "meta key=value" payload (the "# " prefix already stripped)
// into *meta. Unknown keys are ignored so newer writers stay readable.
bool parse_meta_line(const std::string& payload, TraceMeta* meta) {
  constexpr const char kPrefix[] = "meta ";
  if (payload.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0) return false;
  const auto eq = payload.find('=', sizeof(kPrefix) - 1);
  if (eq == std::string::npos) return false;
  const std::string key =
      payload.substr(sizeof(kPrefix) - 1, eq - (sizeof(kPrefix) - 1));
  std::istringstream vs(payload.substr(eq + 1));
  double v = 0.0;
  if (!(vs >> v)) return false;
  if (key == "clock_hz") {
    meta->clock_hz = v;
  } else if (key == "sample_rate_hz") {
    meta->sample_rate_hz = v;
  } else if (key == "trigger_offset_cycles") {
    meta->trigger_offset_cycles = v;
  } else {
    return false;
  }
  return true;
}

}  // namespace

void write_trace_csv(const std::string& path, std::span<const double> y,
                     const TraceMeta& meta) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_trace_csv: cannot open " + path);
  }
  out << "# clockmark per-cycle power trace (W), one cycle per line\n";
  write_meta_csv(out, meta);
  char buf[64];
  for (const double v : y) {
    std::snprintf(buf, sizeof(buf), "%.17g\n", v);
    out << buf;
  }
  if (!out.good()) {
    throw std::runtime_error("write_trace_csv: write failed for " + path);
  }
}

void write_trace_binary(const std::string& path, std::span<const double> y,
                        const TraceMeta& meta) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("write_trace_binary: cannot open " + path);
  }
  out.write(kMagicV2, sizeof(kMagicV2));
  const std::uint64_t count = y.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(&meta.clock_hz), sizeof(double));
  out.write(reinterpret_cast<const char*>(&meta.sample_rate_hz),
            sizeof(double));
  out.write(reinterpret_cast<const char*>(&meta.trigger_offset_cycles),
            sizeof(double));
  out.write(reinterpret_cast<const char*>(y.data()),
            static_cast<std::streamsize>(y.size() * sizeof(double)));
  if (!out.good()) {
    throw std::runtime_error("write_trace_binary: write failed for " + path);
  }
}

TraceFileReader::TraceFileReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_) {
    throw std::runtime_error("TraceFileReader: cannot open " + path);
  }
  char magic[sizeof(kMagicV1)] = {};
  in_.read(magic, sizeof(magic));
  const bool v1 = in_.gcount() == sizeof(magic) &&
                  std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0;
  const bool v2 = in_.gcount() == sizeof(magic) &&
                  std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0;
  if (v1 || v2) {
    binary_ = true;
    version_ = v2 ? 2 : 1;
    std::uint64_t count = 0;
    in_.read(reinterpret_cast<char*>(&count), sizeof(count));
    if (in_.gcount() != sizeof(count)) {
      throw std::runtime_error("TraceFileReader: truncated header in " +
                               path);
    }
    if (v2) {
      double fields[3] = {};
      in_.read(reinterpret_cast<char*>(fields), sizeof(fields));
      if (in_.gcount() != sizeof(fields)) {
        throw std::runtime_error("TraceFileReader: truncated header in " +
                                 path);
      }
      meta_.clock_hz = fields[0];
      meta_.sample_rate_hz = fields[1];
      meta_.trigger_offset_cycles = fields[2];
    }
    // Validate the payload size up front so a truncated or corrupt file
    // fails at open, with a diagnosable message, instead of silently
    // replaying a short trace (a too-short trace reads as "watermark
    // absent" — the worst possible failure mode for a detector input).
    const std::streamoff header_bytes = in_.tellg();
    in_.seekg(0, std::ios::end);
    const std::streamoff file_bytes = in_.tellg();
    in_.seekg(header_bytes);
    if (header_bytes < 0 || file_bytes < header_bytes || !in_.good()) {
      throw std::runtime_error("TraceFileReader: cannot size " + path);
    }
    const std::uint64_t payload =
        static_cast<std::uint64_t>(file_bytes - header_bytes);
    if (count > payload / sizeof(double)) {
      throw std::runtime_error(
          "TraceFileReader: truncated trace " + path + ": header claims " +
          std::to_string(count) + " cycles (" +
          std::to_string(count * static_cast<std::uint64_t>(sizeof(double))) +
          " payload bytes) but the file holds only " +
          std::to_string(payload) + " bytes of samples");
    }
    if (payload != count * sizeof(double)) {
      throw std::runtime_error(
          "TraceFileReader: corrupt trace " + path + ": " +
          std::to_string(payload - count * sizeof(double)) +
          " trailing bytes after the " + std::to_string(count) +
          " cycles the header claims");
    }
    total_ = static_cast<std::size_t>(count);
  } else {
    // CSV: rewind, then consume the leading comment/blank block looking
    // for "# meta key=value" lines. The scan stops at the first data
    // line and rewinds to it, so read() sees every value exactly once.
    in_.clear();
    in_.seekg(0);
    std::string line;
    for (;;) {
      const std::streampos pos = in_.tellg();
      if (!std::getline(in_, line)) break;
      const auto content = line.find_first_not_of(" \t\r");
      if (content == std::string::npos) continue;  // blank line
      if (line[content] != '#') {
        in_.clear();
        in_.seekg(pos);
        break;
      }
      const auto payload = line.find_first_not_of(" \t", content + 1);
      if (payload != std::string::npos &&
          parse_meta_line(line.substr(payload), &meta_)) {
        version_ = 2;
      }
    }
  }
}

std::size_t TraceFileReader::read(std::span<double> out) {
  if (out.empty()) return 0;
  if (binary_) {
    std::size_t want = out.size();
    if (total_) want = std::min(want, *total_ - produced_);
    if (want == 0) return 0;
    in_.read(reinterpret_cast<char*>(out.data()),
             static_cast<std::streamsize>(want * sizeof(double)));
    const auto got = static_cast<std::size_t>(in_.gcount()) / sizeof(double);
    if (got < want && produced_ + got < *total_) {
      // The open-time size check makes this unreachable for a file that
      // held still; it fires when the file shrank after open.
      throw std::runtime_error(
          "TraceFileReader: file shorter than header: got " +
          std::to_string(produced_ + got) + " of " + std::to_string(*total_) +
          " cycles");
    }
    produced_ += got;
    return got;
  }
  // CSV path: same per-line rules as util::read_series ('#' comments,
  // first comma-separated field, blank lines skipped).
  std::size_t got = 0;
  std::string line;
  while (got < out.size() && std::getline(in_, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto comma = line.find(',');
    if (comma != std::string::npos) line.resize(comma);
    std::istringstream ls(line);
    double v = 0.0;
    if (ls >> v) out[got++] = v;
  }
  produced_ += got;
  return got;
}

std::vector<double> read_trace(const std::string& path, TraceMeta* meta) {
  TraceFileReader reader(path);
  if (meta != nullptr) *meta = reader.meta();
  std::vector<double> values;
  double buf[4096];
  for (;;) {
    const std::size_t got = reader.read(std::span<double>(buf, 4096));
    if (got == 0) break;
    values.insert(values.end(), buf, buf + got);
  }
  return values;
}

}  // namespace clockmark::measure
