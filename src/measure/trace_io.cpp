#include "measure/trace_io.h"

#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace clockmark::measure {
namespace {

constexpr char kMagic[8] = {'C', 'M', 'T', 'R', 'A', 'C', 'E', '1'};

// Raw doubles / u64 are written in host byte order; every platform this
// simulator targets is little-endian, and the magic check rejects files
// that are not CMTRACE1 at all.

}  // namespace

void write_trace_csv(const std::string& path, std::span<const double> y) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_trace_csv: cannot open " + path);
  }
  out << "# clockmark per-cycle power trace (W), one cycle per line\n";
  char buf[64];
  for (const double v : y) {
    std::snprintf(buf, sizeof(buf), "%.17g\n", v);
    out << buf;
  }
  if (!out.good()) {
    throw std::runtime_error("write_trace_csv: write failed for " + path);
  }
}

void write_trace_binary(const std::string& path, std::span<const double> y) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("write_trace_binary: cannot open " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t count = y.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(y.data()),
            static_cast<std::streamsize>(y.size() * sizeof(double)));
  if (!out.good()) {
    throw std::runtime_error("write_trace_binary: write failed for " + path);
  }
}

TraceFileReader::TraceFileReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_) {
    throw std::runtime_error("TraceFileReader: cannot open " + path);
  }
  char magic[sizeof(kMagic)] = {};
  in_.read(magic, sizeof(magic));
  if (in_.gcount() == sizeof(magic) &&
      std::memcmp(magic, kMagic, sizeof(kMagic)) == 0) {
    binary_ = true;
    std::uint64_t count = 0;
    in_.read(reinterpret_cast<char*>(&count), sizeof(count));
    if (in_.gcount() != sizeof(count)) {
      throw std::runtime_error("TraceFileReader: truncated header in " +
                               path);
    }
    total_ = static_cast<std::size_t>(count);
  } else {
    // CSV: rewind and parse line by line.
    in_.clear();
    in_.seekg(0);
  }
}

std::size_t TraceFileReader::read(std::span<double> out) {
  if (out.empty()) return 0;
  if (binary_) {
    std::size_t want = out.size();
    if (total_) want = std::min(want, *total_ - produced_);
    if (want == 0) return 0;
    in_.read(reinterpret_cast<char*>(out.data()),
             static_cast<std::streamsize>(want * sizeof(double)));
    const auto got = static_cast<std::size_t>(in_.gcount()) / sizeof(double);
    if (got < want && produced_ + got < *total_) {
      throw std::runtime_error("TraceFileReader: file shorter than header");
    }
    produced_ += got;
    return got;
  }
  // CSV path: same per-line rules as util::read_series ('#' comments,
  // first comma-separated field, blank lines skipped).
  std::size_t got = 0;
  std::string line;
  while (got < out.size() && std::getline(in_, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto comma = line.find(',');
    if (comma != std::string::npos) line.resize(comma);
    std::istringstream ls(line);
    double v = 0.0;
    if (ls >> v) out[got++] = v;
  }
  produced_ += got;
  return got;
}

std::vector<double> read_trace(const std::string& path) {
  TraceFileReader reader(path);
  std::vector<double> values;
  double buf[4096];
  for (;;) {
    const std::size_t got = reader.read(std::span<double>(buf, 4096));
    if (got == 0) break;
    values.insert(values.end(), buf, buf + got);
  }
  return values;
}

}  // namespace clockmark::measure
