#include "measure/kernel.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "util/rng.h"

namespace clockmark::measure {

namespace {
/// Block sizing target: a block of ~4096 samples keeps the five scratch
/// walks (synthesize, noise, filter, quantise, average) inside L1/L2.
constexpr std::size_t kBlockSamplesTarget = 4096;
}  // namespace

// One pass's analog chain state. The waveform expansion is per-cycle
// pure, but the PDN low-pass, the probe filter and the two noise streams
// all carry state from sample to sample — exactly the state the
// reference path threads implicitly by processing the whole waveform in
// one call. Both noise streams fork from the same base stream (and with
// the same salts) as the reference path, so the draw sequences are
// identical. Trigger-offset streams also carry the sample cursor, the
// previous digitised sample (edge fold) and the partial averaging
// window across feeds.
struct AcquisitionKernel::Pass {
  Pass(const AcquisitionConfig& config, double fs)
      : probe_filter(config.probe.bandwidth_hz, config.probe.sample_rate_hz),
        probe_rng(0, 0),
        scope_rng(0, 0) {
    if (config.enable_pdn_filter) pdn.emplace(config.pdn_cutoff_hz, fs);
    util::Pcg32 base(config.noise_seed, 0x0b5e7fa11ULL);
    probe_rng = base.fork(1);
    scope_rng = base.fork(2);
  }

  std::optional<dsp::OnePoleLowPass> pdn;
  dsp::OnePoleLowPass probe_filter;
  util::Pcg32 probe_rng;
  util::Pcg32 scope_rng;
  bool primed = false;
  std::size_t prime_samples = 0;  ///< samples the DC priming averaged

  std::size_t stream_pos = 0;  ///< samples of the (offset) stream done
  std::size_t cycles_in = 0;   ///< input cycles consumed by past feeds
  double prev_sample = 0.0;    ///< last digitised sample (edge fold)
  double win_sum = 0.0;        ///< partial averaging window (align pass)
  std::size_t win_count = 0;
};

AcquisitionKernel::AcquisitionKernel(const AcquisitionConfig& config,
                                     double clock_hz)
    : config_(config), clock_hz_(clock_hz) {
  if (config_.probe.sample_rate_hz != config_.scope.sample_rate_hz) {
    throw std::invalid_argument(
        "AcquisitionKernel: probe/scope sample rates must match");
  }
  if (clock_hz_ <= 0.0) {
    throw std::invalid_argument("AcquisitionKernel: clock_hz must be > 0");
  }
  // Same front-door validation the reference path's Oscilloscope
  // constructor performs before any range decision.
  if (config_.scope.resolution_bits < 2 || config_.scope.resolution_bits > 16) {
    throw std::invalid_argument(
        "AcquisitionKernel: resolution must be 2..16 bit");
  }
  if (config_.scope.full_scale_v <= 0.0) {
    throw std::invalid_argument("AcquisitionKernel: full scale must be > 0");
  }
  template_ = power::cycle_pulse_template(config_.waveform);  // throws on spc=0

  const std::size_t spc = config_.waveform.samples_per_cycle;
  block_cycles_ = config_.block_cycles > 0
                      ? config_.block_cycles
                      : std::max<std::size_t>(8, kBlockSamplesTarget / spc);
  wave_.resize(block_cycles_ * spc);
  noise_.resize(block_cycles_ * spc);

  if (config_.trigger_sim != TriggerSim::kAligned) {
    if (spc > 1) {
      if (config_.trigger_sim == TriggerSim::kRandomOffset) {
        // The same derivation the reference path uses, so both paths
        // simulate the identical capture start for a given noise seed.
        util::Pcg32 offset_rng(config_.noise_seed ^ 0x7219a9ULL, 0x0ff5e7u);
        offset_ = offset_rng.bounded(static_cast<std::uint32_t>(spc));
      } else {
        offset_ = config_.trigger_offset_samples % spc;
      }
    }
    edge_fold_.assign(spc, 0.0);
  }
}

AcquisitionKernel::~AcquisitionKernel() = default;

bool AcquisitionKernel::needs_range_pass() const noexcept {
  return config_.range_policy == RangePolicy::kAutoRange;
}

bool AcquisitionKernel::needs_trigger_pass() const noexcept {
  return config_.trigger_sim != TriggerSim::kAligned;
}

void AcquisitionKernel::prime_pdn(Pass& pass,
                                  std::span<const double> cycle_power_w) {
  const std::size_t spc = config_.waveform.samples_per_cycle;
  if (!pass.pdn || cycle_power_w.empty()) return;
  if (pass.primed) {
    if (pass.prime_samples < spc * 8) {
      throw std::invalid_argument(
          "AcquisitionKernel: first chunk must span at least 8 cycles "
          "(9 with a trigger offset) — the PDN priming window");
    }
    return;
  }
  // The reference path primes the filter with the DC level of the first
  // min(stream, 8 cycles) samples of the (possibly offset) sample
  // stream. Accumulate the synthesized samples in the exact order the
  // reference sums them — no buffer needed, the expansion is recomputed
  // per sample.
  const std::size_t chunk_samples = cycle_power_w.size() * spc - offset_;
  const std::size_t settle = std::min(chunk_samples, spc * 8);
  double dc = 0.0;
  std::size_t tpl_i = offset_;
  std::size_t cyc = 0;
  double scale = cycle_power_w[0] / config_.vdd_v * static_cast<double>(spc);
  for (std::size_t i = 0; i < settle; ++i) {
    dc += scale * template_[tpl_i];
    if (++tpl_i == spc) {
      tpl_i = 0;
      ++cyc;
      if (i + 1 < settle) {
        scale = cycle_power_w[cyc] / config_.vdd_v *
                static_cast<double>(spc);
      }
    }
  }
  pass.pdn->reset(dc / static_cast<double>(settle));
  pass.primed = true;
  pass.prime_samples = settle;
}

void AcquisitionKernel::run_pass(Pass& pass,
                                 std::span<const double> cycle_power_w,
                                 PassKind kind, std::vector<double>* y_out) {
  const std::size_t spc = config_.waveform.samples_per_cycle;
  const double spc_d = static_cast<double>(spc);
  const double vdd = config_.vdd_v;
  const double r_shunt = config_.shunt.resistance_ohm();
  const double gain = config_.probe.gain;
  const double probe_noise = config_.probe.noise_v_rms;

  // ADC grid (acquire/trigger passes; config_.scope holds the range).
  const double lsb =
      config_.scope.full_scale_v /
      static_cast<double>(1u << config_.scope.resolution_bits);
  const double half_scale = config_.scope.full_scale_v / 2.0;
  const double offset_v = config_.scope.offset_v;
  const double scope_noise = config_.scope.noise_v_rms;
  const double max_code =
      static_cast<double>((1u << config_.scope.resolution_bits) - 1u);

  prime_pdn(pass, cycle_power_w);

  // Offset streams (simulated trigger offset): the sample stream is the
  // aligned waveform minus its first `offset_` samples, so blocks are no
  // longer cycle-aligned — synthesis walks a (cycle, template) cursor
  // and the acquire pass averages phase-aligned windows instead of
  // per-input-cycle blocks.
  const bool offset_stream = needs_trigger_pass();

  const double* tpl = template_.data();
  double* wave = wave_.data();
  double* noise = noise_.data();

  // The two one-pole recurrences are the serial backbone of the pipeline
  // (everything else is an independent-per-sample array pass). Pull
  // their state into locals for the block loop — through the Pass
  // pointer gcc must assume the wave stores could alias the filter
  // object and would reload the state every sample — and fuse
  // PDN -> shunt -> probe into one loop so the two dependency chains
  // overlap instead of paying their latency twice. The per-sample
  // dataflow (and thus every bit) is unchanged: each recurrence sees
  // exactly the inputs and state it saw as separate passes.
  const bool use_pdn = pass.pdn.has_value();
  const double pdn_alpha = use_pdn ? pass.pdn->alpha() : 0.0;
  double pdn_y = use_pdn ? pass.pdn->state() : 0.0;
  const double probe_alpha = pass.probe_filter.alpha();
  double probe_y = pass.probe_filter.state();

  for (std::size_t start = 0; start < cycle_power_w.size();
       start += block_cycles_) {
    const std::size_t bc =
        std::min(block_cycles_, cycle_power_w.size() - start);
    std::size_t sc;

    // 1. Chip current at sample rate (same ops as
    //    power::expand_to_current_waveform, block-resident).
    if (!offset_stream) {
      sc = bc * spc;
      for (std::size_t c = 0; c < bc; ++c) {
        const double avg_current = cycle_power_w[start + c] / vdd;
        const double scale = avg_current * spc_d;
        double* w = wave + c * spc;
        for (std::size_t i = 0; i < spc; ++i) w[i] = scale * tpl[i];
      }
    } else {
      const std::size_t g0 = pass.cycles_in + start;  // global first cycle
      sc = (g0 + bc) * spc - offset_ - pass.stream_pos;
      const std::size_t gp = pass.stream_pos + offset_;
      std::size_t cyc = gp / spc;  // global cycle of the next sample
      std::size_t tpl_i = gp % spc;
      double scale = cycle_power_w[start + (cyc - g0)] / vdd * spc_d;
      for (std::size_t j = 0; j < sc; ++j) {
        wave[j] = scale * tpl[tpl_i];
        if (++tpl_i == spc) {
          tpl_i = 0;
          ++cyc;
          if (j + 1 < sc) {
            scale = cycle_power_w[start + (cyc - g0)] / vdd * spc_d;
          }
        }
      }
    }

    // 2.-4. PDN low-pass -> shunt voltage -> probe bandwidth + gain +
    //    batched noise, fused. The noise block is drawn up front — same
    //    stream, same order as the per-sample reference — so the serial
    //    loop carries only the filter states.
    pass.probe_rng.fill_gaussian(std::span<double>(noise, sc), 0.0,
                                 probe_noise);

    if (kind == PassKind::kRange) {
      // Range pass: accumulate the exact min/max the reference scope's
      // auto_range would see over the full waveform. The per-sample
      // volts value is consumed by the min/max right away — nothing is
      // stored. Seeding with +/-inf is exact: min(inf, w) == w for the
      // first finite sample, so the result equals the reference's
      // first-element initialisation.
      double mn = volts_seen_ ? volts_min_
                              : std::numeric_limits<double>::infinity();
      double mx = volts_seen_ ? volts_max_
                              : -std::numeric_limits<double>::infinity();
      if (sc > 0) volts_seen_ = true;
      if (use_pdn) {
        for (std::size_t j = 0; j < sc; ++j) {
          pdn_y = std::fma(pdn_alpha, wave[j] - pdn_y, pdn_y);
          const double v = pdn_y * r_shunt;
          probe_y = std::fma(probe_alpha, v - probe_y, probe_y);
          const double w = probe_y * gain + noise[j];
          mn = std::min(mn, w);
          mx = std::max(mx, w);
        }
      } else {
        for (std::size_t j = 0; j < sc; ++j) {
          const double v = wave[j] * r_shunt;
          probe_y = std::fma(probe_alpha, v - probe_y, probe_y);
          const double w = probe_y * gain + noise[j];
          mn = std::min(mn, w);
          mx = std::max(mx, w);
        }
      }
      volts_min_ = mn;
      volts_max_ = mx;
      pass.stream_pos += sc;
      continue;
    }

    if (use_pdn) {
      for (std::size_t j = 0; j < sc; ++j) {
        pdn_y = std::fma(pdn_alpha, wave[j] - pdn_y, pdn_y);
        const double v = pdn_y * r_shunt;
        probe_y = std::fma(probe_alpha, v - probe_y, probe_y);
        wave[j] = probe_y * gain + noise[j];
      }
    } else {
      for (std::size_t j = 0; j < sc; ++j) {
        const double v = wave[j] * r_shunt;
        probe_y = std::fma(probe_alpha, v - probe_y, probe_y);
        wave[j] = probe_y * gain + noise[j];
      }
    }

    // 5. Oscilloscope: batched front-end noise, clip, quantise,
    //    reconstruct. All in the double domain so the loop vectorizes:
    //    the code values are small integers, for which floor/clamp on
    //    doubles is bit-identical to the reference's long round-trip.
    pass.scope_rng.fill_gaussian(std::span<double>(noise, sc), 0.0,
                                 scope_noise);
    for (std::size_t j = 0; j < sc; ++j) {
      const double noisy = wave[j] + noise[j] - offset_v;
      const double clipped =
          std::clamp(noisy, -half_scale, half_scale - lsb);
      double code = std::floor((clipped + half_scale) / lsb);
      code = std::clamp(code, 0.0, max_code);
      wave[j] = (code + 0.5) * lsb - half_scale + offset_v;
    }

    if (kind == PassKind::kTrigger) {
      // Fold the positive first-differences of the digitised stream
      // modulo spc — the exact estimate_trigger_phase accumulation, in
      // the same sample order (the fold bins are written in increasing
      // stream index, so the FP sums match the batch fold bit for bit).
      for (std::size_t j = 0; j < sc; ++j) {
        const std::size_t i = pass.stream_pos + j;
        const double v = wave[j];
        if (i > 0) {
          const double d = v - pass.prev_sample;
          if (d > 0.0) edge_fold_[i % spc] += d;
        }
        pass.prev_sample = v;
      }
    } else if (!offset_stream) {
      // 6. Back to chip power, averaged per clock cycle (Y vector). The
      //    running sum crosses block boundaries in cycle order, so the
      //    mean matches the reference's single accumulation chain.
      for (std::size_t c = 0; c < bc; ++c) {
        const double* w = wave + c * spc;
        double s = 0.0;
        for (std::size_t i = 0; i < spc; ++i) s += w[i];
        const double averaged = s / spc_d;
        const double current_a = (averaged / gain) / r_shunt;
        const double y = current_a * vdd;
        y_out->push_back(y);
        sum_power_w_ += y;
      }
      cycles_out_ += bc;
    } else {
      // 6'. Trigger-offset acquire: drop the first `phase_` samples
      //    (align_to_trigger) and average consecutive spc-sample
      //    windows (block_average), the partial window carried across
      //    feeds; a trailing partial window is never emitted — exactly
      //    the reference's trailing-drop semantics.
      for (std::size_t j = 0; j < sc; ++j) {
        const std::size_t i = pass.stream_pos + j;
        if (i < phase_) continue;
        pass.win_sum += wave[j];
        if (++pass.win_count == spc) {
          const double averaged = pass.win_sum / spc_d;
          const double current_a = (averaged / gain) / r_shunt;
          const double y = current_a * vdd;
          y_out->push_back(y);
          sum_power_w_ += y;
          ++cycles_out_;
          pass.win_sum = 0.0;
          pass.win_count = 0;
        }
      }
    }
    pass.stream_pos += sc;
  }
  pass.cycles_in += cycle_power_w.size();

  // Hand the register-resident recurrence states back to the pass so the
  // next feed resumes exactly where this one stopped.
  if (use_pdn) pass.pdn->reset(pdn_y);
  pass.probe_filter.reset(probe_y);
}

void AcquisitionKernel::range_feed(std::span<const double> cycle_power_w) {
  if (range_fixed_) {
    throw std::logic_error("AcquisitionKernel: range already fixed");
  }
  if (!range_pass_) {
    range_pass_ = std::make_unique<Pass>(
        config_, clock_hz_ * static_cast<double>(
                                 config_.waveform.samples_per_cycle));
  }
  run_pass(*range_pass_, cycle_power_w, PassKind::kRange, nullptr);
}

void AcquisitionKernel::fix_range() {
  if (range_fixed_) return;
  // Same arithmetic as Oscilloscope::auto_range over the full waveform —
  // the chunk-wise min/max is exact, so the chosen range is identical.
  if (volts_seen_) {
    const double span = std::max(volts_max_ - volts_min_, 1e-9);
    config_.scope.offset_v = (volts_max_ + volts_min_) / 2.0;
    config_.scope.full_scale_v = span / 0.8;
  }
  range_fixed_ = true;
  range_pass_.reset();  // the acquire pass re-creates the analog chain
}

void AcquisitionKernel::trigger_feed(std::span<const double> cycle_power_w) {
  if (!needs_trigger_pass()) {
    throw std::logic_error(
        "AcquisitionKernel: no trigger pass configured (trigger_sim is "
        "kAligned)");
  }
  if (trigger_fixed_) {
    throw std::logic_error("AcquisitionKernel: trigger already fixed");
  }
  if (needs_range_pass() && !range_fixed_) {
    throw std::logic_error(
        "AcquisitionKernel: fix the range before the trigger pass (the "
        "edge fold runs on the digitised stream)");
  }
  if (!trigger_pass_) {
    trigger_pass_ = std::make_unique<Pass>(
        config_, clock_hz_ * static_cast<double>(
                                 config_.waveform.samples_per_cycle));
  }
  run_pass(*trigger_pass_, cycle_power_w, PassKind::kTrigger, nullptr);
}

void AcquisitionKernel::fix_trigger() {
  if (trigger_fixed_) return;
  trigger_fixed_ = true;
  if (!needs_trigger_pass()) return;
  // Same decision rule as estimate_trigger_phase: streams shorter than
  // two cycles are assumed aligned; otherwise the phase is the bin with
  // the largest folded rising-edge energy (first maximum wins).
  const std::size_t spc = config_.waveform.samples_per_cycle;
  const std::size_t stream_len =
      trigger_pass_ ? trigger_pass_->stream_pos : 0;
  phase_ = 0;
  if (stream_len >= 2 * spc) {
    for (std::size_t p = 1; p < spc; ++p) {
      if (edge_fold_[p] > edge_fold_[phase_]) phase_ = p;
    }
  }
  trigger_pass_.reset();  // the acquire pass re-creates the analog chain
}

void AcquisitionKernel::acquire_feed(std::span<const double> cycle_power_w,
                                     std::vector<double>& y_out) {
  if (needs_range_pass() && !range_fixed_) {
    throw std::logic_error(
        "AcquisitionKernel: run the range pass (range_feed + fix_range) "
        "before acquiring");
  }
  if (needs_trigger_pass() && !trigger_fixed_) {
    throw std::logic_error(
        "AcquisitionKernel: run the trigger pass (trigger_feed + "
        "fix_trigger) before acquiring");
  }
  if (!acquire_pass_) {
    acquire_pass_ = std::make_unique<Pass>(
        config_, clock_hz_ * static_cast<double>(
                                 config_.waveform.samples_per_cycle));
  }
  y_out.reserve(y_out.size() + cycle_power_w.size());
  run_pass(*acquire_pass_, cycle_power_w, PassKind::kAcquire, &y_out);
}

AcquisitionKernel::Summary AcquisitionKernel::summary() const {
  Summary s;
  s.cycles = cycles_out_;
  s.mean_power_w =
      cycles_out_ > 0 ? sum_power_w_ / static_cast<double>(cycles_out_)
                      : 0.0;
  const double lsb_v =
      config_.scope.full_scale_v /
      static_cast<double>(1u << config_.scope.resolution_bits);
  s.lsb_power_w = lsb_v / config_.shunt.resistance_ohm() /
                  config_.probe.gain * config_.vdd_v;
  return s;
}

}  // namespace clockmark::measure
