// Active differential probe model (paper: Agilent 1130A). A gain stage,
// a single-pole bandwidth limit and additive input-referred Gaussian
// noise.
#pragma once

#include <span>
#include <vector>

#include "dsp/filter.h"
#include "util/rng.h"

namespace clockmark::measure {

struct ProbeConfig {
  double gain = 1.0;
  double bandwidth_hz = 120.0e6;   ///< -3 dB, well above the clock
  double noise_v_rms = 1.0e-3;     ///< input-referred
  double sample_rate_hz = 500.0e6;
};

class Probe {
 public:
  Probe(const ProbeConfig& config, util::Pcg32 rng);

  /// Processes a voltage waveform in place: bandwidth limit, gain, noise.
  void process(std::span<double> volts);

  const ProbeConfig& config() const noexcept { return config_; }

 private:
  ProbeConfig config_;
  dsp::OnePoleLowPass filter_;
  util::Pcg32 rng_;
};

}  // namespace clockmark::measure
