#include "measure/streaming.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace clockmark::measure {

// One pass's analog chain state: the waveform expansion is per-cycle
// pure, but the PDN low-pass, the probe filter and the probe noise RNG
// all carry state from sample to sample — exactly the state the batch
// chain threads implicitly by processing the whole waveform in one call.
struct StreamingAcquisitionChain::AnalogPass {
  AnalogPass(const AcquisitionConfig& config, double fs)
      : pdn(config.pdn_cutoff_hz, fs),
        base_rng(config.noise_seed, 0x0b5e7fa11ULL),
        probe(config.probe, base_rng.fork(1)) {}

  dsp::OnePoleLowPass pdn;
  util::Pcg32 base_rng;  ///< never drawn from directly; fork source only
  Probe probe;
  bool primed = false;
  std::size_t prime_samples = 0;  ///< samples the DC priming averaged
};

StreamingAcquisitionChain::StreamingAcquisitionChain(
    const AcquisitionConfig& config, double clock_hz)
    : config_(config), clock_hz_(clock_hz) {
  if (config_.probe.sample_rate_hz != config_.scope.sample_rate_hz) {
    throw std::invalid_argument(
        "StreamingAcquisitionChain: probe/scope sample rates must match");
  }
  if (clock_hz_ <= 0.0) {
    throw std::invalid_argument(
        "StreamingAcquisitionChain: clock_hz must be > 0");
  }
  if (config_.simulate_trigger_offset) {
    throw std::invalid_argument(
        "StreamingAcquisitionChain: simulate_trigger_offset drops a "
        "sub-cycle sample prefix and is only supported by the batch chain");
  }
}

StreamingAcquisitionChain::~StreamingAcquisitionChain() = default;

bool StreamingAcquisitionChain::needs_range_pass() const noexcept {
  return config_.scope_auto_range;
}

std::vector<double> StreamingAcquisitionChain::run_analog(
    AnalogPass& pass, std::span<const double> cycle_power_w) {
  const std::size_t spc = config_.waveform.samples_per_cycle;

  // 1. Chip current at sample rate (per-cycle pure: a chunk's expansion
  //    equals the matching slice of the batch waveform).
  std::vector<double> current = power::expand_to_current_waveform(
      cycle_power_w, config_.vdd_v, config_.waveform);

  // 2. PDN decoupling low-pass. The batch chain primes the filter with
  //    the DC level of the first spc*8 samples of the whole waveform;
  //    the first chunk must cover them (or be the entire trace) for the
  //    priming to match.
  if (config_.enable_pdn_filter && !current.empty()) {
    if (!pass.primed) {
      const std::size_t settle = std::min<std::size_t>(current.size(),
                                                       spc * 8);
      double dc = 0.0;
      for (std::size_t i = 0; i < settle; ++i) dc += current[i];
      pass.pdn.reset(dc / static_cast<double>(settle));
      pass.primed = true;
      pass.prime_samples = settle;
    } else if (pass.prime_samples < spc * 8) {
      throw std::invalid_argument(
          "StreamingAcquisitionChain: first chunk must span at least 8 "
          "cycles (PDN priming window)");
    }
    pass.pdn.process(current);
  }

  // 3. Shunt voltage (per-sample pure).
  std::vector<double> volts = config_.shunt.sense(current);

  // 4. Probe: bandwidth + gain + noise (stateful, carried across chunks).
  pass.probe.process(volts);
  return volts;
}

void StreamingAcquisitionChain::range_feed(
    std::span<const double> cycle_power_w) {
  if (range_fixed_) {
    throw std::logic_error(
        "StreamingAcquisitionChain: range already fixed");
  }
  if (!range_pass_) {
    range_pass_ = std::make_unique<AnalogPass>(
        config_, clock_hz_ * static_cast<double>(
                                 config_.waveform.samples_per_cycle));
  }
  const auto volts = run_analog(*range_pass_, cycle_power_w);
  for (const double v : volts) {
    if (!volts_seen_) {
      volts_min_ = volts_max_ = v;
      volts_seen_ = true;
    } else {
      volts_min_ = std::min(volts_min_, v);
      volts_max_ = std::max(volts_max_, v);
    }
  }
}

void StreamingAcquisitionChain::fix_range() {
  if (range_fixed_) return;
  // Same arithmetic as Oscilloscope::auto_range over the full waveform —
  // the chunk-wise min/max is exact, so the chosen range is identical.
  if (volts_seen_) {
    const double span = std::max(volts_max_ - volts_min_, 1e-9);
    config_.scope.offset_v = (volts_max_ + volts_min_) / 2.0;
    config_.scope.full_scale_v = span / 0.8;
  }
  range_fixed_ = true;
  range_pass_.reset();  // the acquire pass re-creates the analog chain
}

std::vector<double> StreamingAcquisitionChain::acquire_feed(
    std::span<const double> cycle_power_w) {
  if (needs_range_pass() && !range_fixed_) {
    throw std::logic_error(
        "StreamingAcquisitionChain: run the range pass (range_feed + "
        "fix_range) before acquiring");
  }
  if (!acquire_pass_) {
    acquire_pass_ = std::make_unique<AnalogPass>(
        config_, clock_hz_ * static_cast<double>(
                                 config_.waveform.samples_per_cycle));
    // The scope draws from fork(2) of the same base stream the batch
    // chain uses, so its noise/quantisation sequence is identical.
    scope_ = std::make_unique<Oscilloscope>(
        config_.scope, acquire_pass_->base_rng.fork(2));
  }
  const std::size_t spc = config_.waveform.samples_per_cycle;
  const auto volts = run_analog(*acquire_pass_, cycle_power_w);
  const std::vector<double> acquired = scope_->acquire(volts);

  // Back to chip power, averaged per clock cycle. Chunks hold whole
  // cycles, so the block boundaries match the batch block_average.
  const auto averaged = dsp::block_average(acquired, spc);
  std::vector<double> y(averaged.size());
  for (std::size_t i = 0; i < averaged.size(); ++i) {
    const double current_a =
        config_.shunt.current(averaged[i] / config_.probe.gain);
    y[i] = current_a * config_.vdd_v;
    sum_power_w_ += y[i];
  }
  cycles_out_ += y.size();
  return y;
}

StreamingAcquisitionChain::Summary StreamingAcquisitionChain::summary()
    const {
  Summary s;
  s.cycles = cycles_out_;
  s.mean_power_w =
      cycles_out_ > 0 ? sum_power_w_ / static_cast<double>(cycles_out_)
                      : 0.0;
  const double lsb_v =
      scope_ ? scope_->lsb_v()
             : config_.scope.full_scale_v /
                   static_cast<double>(1u << config_.scope.resolution_bits);
  s.lsb_power_w = lsb_v / config_.shunt.resistance_ohm() /
                  config_.probe.gain * config_.vdd_v;
  return s;
}

}  // namespace clockmark::measure
