#include "measure/streaming.h"

namespace clockmark::measure {

StreamingAcquisitionChain::StreamingAcquisitionChain(
    const AcquisitionConfig& config, double clock_hz)
    : kernel_(config, clock_hz) {}

bool StreamingAcquisitionChain::needs_range_pass() const noexcept {
  return kernel_.needs_range_pass();
}

void StreamingAcquisitionChain::range_feed(
    std::span<const double> cycle_power_w) {
  kernel_.range_feed(cycle_power_w);
}

void StreamingAcquisitionChain::fix_range() { kernel_.fix_range(); }

bool StreamingAcquisitionChain::needs_trigger_pass() const noexcept {
  return kernel_.needs_trigger_pass();
}

void StreamingAcquisitionChain::trigger_feed(
    std::span<const double> cycle_power_w) {
  kernel_.trigger_feed(cycle_power_w);
}

void StreamingAcquisitionChain::fix_trigger() { kernel_.fix_trigger(); }

std::vector<double> StreamingAcquisitionChain::acquire_feed(
    std::span<const double> cycle_power_w) {
  std::vector<double> y;
  kernel_.acquire_feed(cycle_power_w, y);
  return y;
}

StreamingAcquisitionChain::Summary StreamingAcquisitionChain::summary()
    const {
  const AcquisitionKernel::Summary s = kernel_.summary();
  Summary out;
  out.cycles = s.cycles;
  out.mean_power_w = s.mean_power_w;
  out.lsb_power_w = s.lsb_power_w;
  return out;
}

}  // namespace clockmark::measure
