// Fused, block-processed acquisition kernel — the performance core of the
// Fig. 4(b) test-bench model. The original pipeline materialises the full
// sample-rate waveform (50 doubles per cycle, the dominant allocation and
// memory traffic of a repetition) and walks it once per analog stage with
// one scalar Gaussian call per sample. This kernel processes fixed-size
// whole-cycle blocks that stay L1/L2-resident: per block it synthesizes
// the sub-cycle waveform, pulls probe/scope noise from the batched
// generator (util::Pcg32::fill_gaussian), runs the PDN + probe one-pole
// cascade, quantises, and accumulates straight into the per-cycle Y
// averages — the full sample-rate vector is never materialised.
//
// Exactness contract (asserted in tests/test_measure_kernel.cpp):
//  - synthesis, noise generation and quantisation perform the exact
//    per-element op sequence of the reference path
//    (AcquisitionChain::acquire_reference), so those stages — and with
//    the shared inline filter step, the whole pipeline — are
//    bit-identical to the reference;
//  - block boundaries only decide where loops pause, never the FP
//    evaluation order, so results are independent of the block length;
//  - detection decisions (peak rotation, presence verdict) on the chip
//    I/II presets are identical to the reference path.
//
// Auto-range keeps the streaming chain's two-pass shape: the scope range
// depends on the whole waveform's min/max, so the caller runs a range
// pass (range_feed + fix_range) and then the acquire pass, both seeded
// identically. That mirrors what StreamingAcquisitionChain always did —
// the kernel is now the single implementation behind both the batch and
// the streaming front-ends.
//
// Trigger-offset captures (config.trigger_sim != kAligned) add a third
// pass between range and acquire: the capture starts mid-cycle (the
// synthesis cursor simply skips the first `offset` sub-cycle samples, so
// nothing is materialised-and-erased), and the cycle boundary must be
// recovered from the digitised waveform itself. The trigger pass
// (trigger_feed + fix_trigger) replays the acquire-pass sample stream to
// fold rising-edge energy modulo samples_per_cycle — the exact
// estimate_trigger_phase computation — and the acquire pass then drops
// `phase` leading samples and averages spc-sample windows, reproducing
// auto_align + block_average of the reference path bit for bit.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "measure/acquisition.h"

namespace clockmark::measure {

class AcquisitionKernel {
 public:
  /// `clock_hz` is the chip clock of the incoming per-cycle trace. All
  /// remaining knobs (block length, range policy, trigger simulation)
  /// live in the AcquisitionConfig aggregate.
  AcquisitionKernel(const AcquisitionConfig& config, double clock_hz);
  ~AcquisitionKernel();

  AcquisitionKernel(const AcquisitionKernel&) = delete;
  AcquisitionKernel& operator=(const AcquisitionKernel&) = delete;

  /// True when the scope range must be learned from a first full pass
  /// (config.range_policy == kAutoRange); otherwise acquire_feed may be
  /// called directly.
  bool needs_range_pass() const noexcept;

  /// True when the capture is misaligned (config.trigger_sim !=
  /// kAligned) and the trigger pass must run before acquiring.
  bool needs_trigger_pass() const noexcept;

  /// Range pass: feed every whole-cycle chunk in order, then fix_range().
  void range_feed(std::span<const double> cycle_power_w);
  void fix_range();

  /// Trigger pass (trigger_sim != kAligned only): feed the same chunks
  /// in the same order, after the range is fixed, then fix_trigger().
  void trigger_feed(std::span<const double> cycle_power_w);
  void fix_trigger();

  /// Acquire pass: feed the same chunks in the same order. Appends this
  /// chunk's per-cycle Y values to `y_out` — one per input cycle when
  /// aligned; with a simulated trigger offset the pipeline loses up to
  /// one cycle at the front (alignment) and one at the back (partial
  /// window), so slightly fewer values than input cycles emerge overall.
  void acquire_feed(std::span<const double> cycle_power_w,
                    std::vector<double>& y_out);

  struct Summary {
    std::size_t cycles = 0;     ///< Y values produced so far
    double mean_power_w = 0.0;  ///< running mean of Y
    double lsb_power_w = 0.0;   ///< one ADC code as chip power
  };
  /// Valid after the last acquire_feed; matches the batch Acquisition
  /// metadata bit for bit.
  Summary summary() const;

  const AcquisitionConfig& config() const noexcept { return config_; }
  std::size_t block_cycles() const noexcept { return block_cycles_; }
  /// Simulated capture-start offset in samples (0 when aligned).
  std::size_t trigger_offset() const noexcept { return offset_; }
  /// Recovered edge-trigger phase; valid after fix_trigger().
  std::size_t trigger_phase() const noexcept { return phase_; }

 private:
  struct Pass;  // per-pass analog state (filters + noise streams)
  enum class PassKind { kRange, kTrigger, kAcquire };

  void run_pass(Pass& pass, std::span<const double> cycle_power_w,
                PassKind kind, std::vector<double>* y_out);
  void prime_pdn(Pass& pass, std::span<const double> cycle_power_w);

  AcquisitionConfig config_;
  double clock_hz_;
  std::size_t block_cycles_;
  std::vector<double> template_;  ///< per-cycle pulse template (sums to 1)

  std::unique_ptr<Pass> range_pass_;
  std::unique_ptr<Pass> trigger_pass_;
  std::unique_ptr<Pass> acquire_pass_;
  bool range_fixed_ = false;
  bool trigger_fixed_ = false;
  double volts_min_ = 0.0;
  double volts_max_ = 0.0;
  bool volts_seen_ = false;
  std::size_t offset_ = 0;  ///< capture-start offset (samples)
  std::size_t phase_ = 0;   ///< recovered trigger phase (samples)
  std::vector<double> edge_fold_;  ///< edge energy folded modulo spc
  double sum_power_w_ = 0.0;
  std::size_t cycles_out_ = 0;

  // Block-resident scratch, reused across feeds (no per-block allocation).
  std::vector<double> wave_;   ///< synthesized current, one block
  std::vector<double> noise_;  ///< batched Gaussian draws, one block
};

}  // namespace clockmark::measure
