// Oscilloscope front-end model (paper: Agilent MSO6032A at 500 MS/s):
// vertical-range selection, additive front-end noise, and 8-bit
// quantisation. The quantiser is the dominant information bottleneck of
// the real measurement — the watermark's per-cycle amplitude is a small
// fraction of one LSB and only survives because averaging over many
// samples and cycles dithers it back out.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace clockmark::measure {

struct OscilloscopeConfig {
  double sample_rate_hz = 500.0e6;
  unsigned resolution_bits = 8;
  /// Full-scale vertical range (volts, total span). The operator chooses
  /// this to fit the signal; auto_range picks it from the waveform.
  double full_scale_v = 0.2;
  /// Front-end noise referred to the input.
  double noise_v_rms = 9.0e-3;
  /// Vertical offset subtracted before quantisation (screen centring).
  double offset_v = 0.0;
};

class Oscilloscope {
 public:
  Oscilloscope(const OscilloscopeConfig& config, util::Pcg32 rng);

  /// Chooses offset and full-scale so the waveform occupies ~80 % of the
  /// screen, as an operator would.
  void auto_range(std::span<const double> volts);

  /// Adds front-end noise and quantises each sample to the ADC grid.
  /// Returns the *reconstructed* voltage (code centre), i.e. what the
  /// scope hands to post-processing.
  std::vector<double> acquire(std::span<const double> volts);

  double lsb_v() const noexcept;
  const OscilloscopeConfig& config() const noexcept { return config_; }

 private:
  OscilloscopeConfig config_;
  util::Pcg32 rng_;
};

}  // namespace clockmark::measure
