#include "measure/probe.h"

namespace clockmark::measure {

Probe::Probe(const ProbeConfig& config, util::Pcg32 rng)
    : config_(config),
      filter_(config.bandwidth_hz, config.sample_rate_hz),
      rng_(rng) {}

void Probe::process(std::span<double> volts) {
  for (auto& v : volts) {
    v = filter_.step(v) * config_.gain +
        rng_.gaussian(0.0, config_.noise_v_rms);
  }
}

}  // namespace clockmark::measure
