// Clock-phase trigger recovery. A real capture starts at an arbitrary
// point inside a clock cycle; block-averaging only recovers per-cycle
// power if the 50-sample windows are aligned to cycle boundaries. This
// module estimates the sample offset of the clock edge from the current
// waveform itself (the edge pulses are the strongest periodic feature),
// the software equivalent of the scope's edge trigger.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace clockmark::measure {

/// Estimates the phase (0..samples_per_cycle-1) of the cycle boundary in
/// the waveform by folding it modulo samples_per_cycle and locating the
/// rising-edge energy peak.
std::size_t estimate_trigger_phase(std::span<const double> waveform,
                                   std::size_t samples_per_cycle);

/// Rotates the waveform so cycle boundaries land on multiples of
/// samples_per_cycle (drops up to one partial cycle at the front).
std::vector<double> align_to_trigger(std::span<const double> waveform,
                                     std::size_t samples_per_cycle,
                                     std::size_t phase);

/// Convenience: estimate + align.
std::vector<double> auto_align(std::span<const double> waveform,
                               std::size_t samples_per_cycle);

}  // namespace clockmark::measure
