#include "measure/trigger.h"

#include <stdexcept>

namespace clockmark::measure {

std::size_t estimate_trigger_phase(std::span<const double> waveform,
                                   std::size_t samples_per_cycle) {
  if (samples_per_cycle == 0) {
    throw std::invalid_argument("estimate_trigger_phase: zero spc");
  }
  if (waveform.size() < 2 * samples_per_cycle) {
    return 0;  // too short to estimate; assume aligned
  }
  // Fold the first-difference (edge energy) by phase; the rising clock
  // edge is the largest positive step in the cycle.
  std::vector<double> edge(samples_per_cycle, 0.0);
  for (std::size_t i = 1; i < waveform.size(); ++i) {
    const double d = waveform[i] - waveform[i - 1];
    if (d > 0.0) edge[i % samples_per_cycle] += d;
  }
  std::size_t best = 0;
  for (std::size_t p = 1; p < samples_per_cycle; ++p) {
    if (edge[p] > edge[best]) best = p;
  }
  return best;
}

std::vector<double> align_to_trigger(std::span<const double> waveform,
                                     std::size_t samples_per_cycle,
                                     std::size_t phase) {
  if (samples_per_cycle == 0) {
    throw std::invalid_argument("align_to_trigger: zero spc");
  }
  phase %= samples_per_cycle;
  if (phase >= waveform.size()) return {};
  return std::vector<double>(waveform.begin() + static_cast<long>(phase),
                             waveform.end());
}

std::vector<double> auto_align(std::span<const double> waveform,
                               std::size_t samples_per_cycle) {
  return align_to_trigger(
      waveform, samples_per_cycle,
      estimate_trigger_phase(waveform, samples_per_cycle));
}

}  // namespace clockmark::measure
