// Trace export / replay formats for the streaming subsystem: a measured
// per-cycle power vector Y can be written to disk and later replayed
// chunk by chunk (stream::ReplaySource) without loading the whole file.
//
// Two formats:
//   CSV    one value per line, '#' comments — the same shape
//          util::read_series and examples/trace_detect already consume.
//          Capture metadata rides in "# meta key=value" header comments,
//          which v1 consumers skip as ordinary comments.
//   binary "CMTRACE2" magic, little-endian u64 cycle count, the TraceMeta
//          doubles, then raw little-endian doubles. Compact and
//          self-describing enough for resume (the reader knows the total
//          up front). v1 files ("CMTRACE1", no metadata block) are still
//          read; writers emit v2.
//
// The metadata exists for desynchronised captures: a trace file recorded
// without a cycle-aligned trigger carries its known misalignment (or
// just its time base) so replayed detection can pick the right
// SyncPolicy — kKnownOffset when trigger_offset_cycles is recorded,
// kBlind when nothing is known.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace clockmark::measure {

/// Capture metadata persisted alongside a trace (all optional; 0 means
/// "not recorded" for the rates, and offsets default to aligned).
struct TraceMeta {
  double clock_hz = 0.0;         ///< device clock of the per-cycle trace
  double sample_rate_hz = 0.0;   ///< scope rate the capture came from
  /// Known capture-start misalignment in cycles (fractional part =
  /// sub-cycle shift). 0 = cycle-aligned (triggered) capture.
  double trigger_offset_cycles = 0.0;

  bool is_default() const noexcept {
    return clock_hz == 0.0 && sample_rate_hz == 0.0 &&
           trigger_offset_cycles == 0.0;
  }
};

/// Writes Y as CSV (one value per line, %.17g so the replay is
/// bit-exact); non-default metadata becomes "# meta key=value" header
/// lines. Throws std::runtime_error if the file cannot be written.
void write_trace_csv(const std::string& path, std::span<const double> y,
                     const TraceMeta& meta = {});

/// Writes Y in the binary CMTRACE2 format (always v2; the metadata block
/// is part of the fixed header). Throws on I/O failure.
void write_trace_binary(const std::string& path, std::span<const double> y,
                        const TraceMeta& meta = {});

/// Incremental reader for both formats (auto-detected from the first
/// bytes; CMTRACE1 and CMTRACE2 binaries both accepted). read() fills at
/// most out.size() values and returns how many were produced; 0 means
/// end of file.
class TraceFileReader {
 public:
  explicit TraceFileReader(const std::string& path);

  std::size_t read(std::span<double> out);

  /// Total cycle count when the format records it (binary); nullopt for
  /// CSV, whose length is only known once the file has been drained.
  std::optional<std::size_t> total_cycles() const noexcept { return total_; }

  /// Capture metadata from the header ("# meta" lines / the CMTRACE2
  /// block); default-constructed for v1 files and bare CSV.
  const TraceMeta& meta() const noexcept { return meta_; }

  bool binary() const noexcept { return binary_; }
  /// 1 = CMTRACE1 or bare CSV, 2 = CMTRACE2 or CSV with meta lines.
  int format_version() const noexcept { return version_; }

 private:
  std::ifstream in_;
  bool binary_ = false;
  int version_ = 1;
  TraceMeta meta_;
  std::optional<std::size_t> total_;
  std::size_t produced_ = 0;
};

/// Convenience: drains a TraceFileReader into one vector (tests, and the
/// batch half of the stream_detect example). Fills *meta when non-null.
std::vector<double> read_trace(const std::string& path,
                               TraceMeta* meta = nullptr);

}  // namespace clockmark::measure
