// Trace export / replay formats for the streaming subsystem: a measured
// per-cycle power vector Y can be written to disk and later replayed
// chunk by chunk (stream::ReplaySource) without loading the whole file.
//
// Two formats:
//   CSV    one value per line, '#' comments — the same shape
//          util::read_series and examples/trace_detect already consume.
//   binary "CMTRACE1" magic, little-endian u64 cycle count, then raw
//          little-endian doubles. Compact and self-describing enough for
//          resume (the reader knows the total up front).
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace clockmark::measure {

/// Writes Y as CSV (one value per line, %.17g so the replay is
/// bit-exact). Throws std::runtime_error if the file cannot be written.
void write_trace_csv(const std::string& path, std::span<const double> y);

/// Writes Y in the binary CMTRACE1 format. Throws on I/O failure.
void write_trace_binary(const std::string& path, std::span<const double> y);

/// Incremental reader for both formats (auto-detected from the first
/// bytes). read() fills at most out.size() values and returns how many
/// were produced; 0 means end of file.
class TraceFileReader {
 public:
  explicit TraceFileReader(const std::string& path);

  std::size_t read(std::span<double> out);

  /// Total cycle count when the format records it (binary); nullopt for
  /// CSV, whose length is only known once the file has been drained.
  std::optional<std::size_t> total_cycles() const noexcept { return total_; }

  bool binary() const noexcept { return binary_; }

 private:
  std::ifstream in_;
  bool binary_ = false;
  std::optional<std::size_t> total_;
  std::size_t produced_ = 0;
};

/// Convenience: drains a TraceFileReader into one vector (tests, and the
/// batch half of the stream_detect example).
std::vector<double> read_trace(const std::string& path);

}  // namespace clockmark::measure
