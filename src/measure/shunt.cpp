#include "measure/shunt.h"

#include <stdexcept>

namespace clockmark::measure {

ShuntResistor::ShuntResistor(double resistance_ohm) : r_(resistance_ohm) {
  if (r_ <= 0.0) {
    throw std::invalid_argument("ShuntResistor: resistance must be > 0");
  }
}

std::vector<double> ShuntResistor::sense(
    std::span<const double> current_a) const {
  std::vector<double> v(current_a.size());
  for (std::size_t i = 0; i < current_a.size(); ++i) {
    v[i] = current_a[i] * r_;
  }
  return v;
}

}  // namespace clockmark::measure
