// Structure-of-arrays multi-repetition acquisition: R repetitions ride
// through the Fig. 4(b) measurement chain as interleaved lanes of one
// block-processed pass, instead of R sequential AcquisitionKernel runs.
//
// Why batching the *repetition* axis pays: one repetition's pipeline is
// two long dependency chains (the PDN and probe one-pole recurrences)
// that a single lane cannot overlap — the FPU sits mostly idle waiting
// on the previous sample's filter state. Carrying K lanes side by side
// fills those latency slots with the other lanes' independent chains
// (explicit AVX2/FMA vectors when available, interleaved scalar lanes
// otherwise), and the auto-range structure adds a second saving: the
// range pass already computes every pre-scope-noise sample, so caching
// it lets the acquire pass skip the waveform expansion, the probe noise
// stream and both IIRs entirely.
//
// Bit-identity contract (asserted in tests/test_measure_batch.cpp and
// tests/test_sim_batch.cpp): for every lane, run() returns exactly what
// AcquisitionChain::measure returns for a PowerTrace of that lane's
// cycle power and an AcquisitionConfig whose noise_seed is the lane's
// seed. The guarantees stack like this:
//  * RNG streams: each lane forks probe/scope streams from its own
//    seed exactly as AcquisitionKernel::Pass does, and fill_gaussian
//    over a block decomposition draws the identical sequence, so the
//    per-sample noise values match the per-rep path bit for bit.
//  * Filtering: the PDN/probe recurrences use one std::fma per step —
//    the same op the scalar kernel executes — and the AVX2 path maps
//    each scalar op to its per-element-IEEE-exact vector twin
//    (vfmadd/vmul/vdiv/vmin/vmax/vfloor; mul+add stays split where the
//    reference is compiled with -ffp-contract=off). Lane interleaving
//    never mixes values across lanes, so each lane's FP sequence is
//    untouched.
//  * Waveform cache: the range pass's post-probe sample stream *is* the
//    acquire pass's pre-scope-noise stream — both passes fork their
//    probe RNG from the same base with the same salt — so replaying the
//    cached samples through quantisation is the reference acquire pass
//    with its front half elided, not approximated.
//  * Group/block boundaries only decide where loops pause; results are
//    independent of both (and of how lanes are grouped).
//
// Configurations the fused path does not model (trigger-offset capture,
// disabled PDN filter) and degenerate shapes (empty/unequal lanes) run
// each lane through the per-rep AcquisitionKernel instead — run() is
// correct for every AcquisitionConfig, just not always batched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "measure/acquisition.h"

namespace clockmark::measure {

/// One repetition's inputs: the device's per-cycle power trace and the
/// repetition-unique noise seed (sim: runtime::derive_acquisition_seed).
struct BatchLane {
  std::span<const double> cycle_power_w;
  std::uint64_t noise_seed = 1;
};

class BatchAcquisitionKernel {
 public:
  /// Same validation as AcquisitionKernel (probe/scope rates, clock,
  /// resolution, full scale); throws std::invalid_argument like it.
  /// `clock_hz` is the chip clock of the incoming per-cycle traces.
  BatchAcquisitionKernel(const AcquisitionConfig& config, double clock_hz);

  /// True when `config` takes the fused SoA path; false means run()
  /// falls back to one AcquisitionKernel per lane (still bit-identical,
  /// just without the batching win).
  static bool supports(const AcquisitionConfig& config) noexcept;

  /// Acquires every lane; out[i] corresponds to lanes[i]. Thread-safe:
  /// const, all mutable state is local to the call.
  std::vector<Acquisition> run(std::span<const BatchLane> lanes) const;

  /// Caps the range-pass waveform cache (group_width * cycles * spc
  /// doubles). When a full-width group would not fit, the group width
  /// degrades (4 -> 2 -> 1); if even one lane's waveform exceeds the
  /// budget, run() uses the per-lane fallback. Results never depend on
  /// the budget — only the speed does. Default 1 GiB (a 300k-cycle
  /// paper-shaped study stays fully batched).
  void set_cache_budget_bytes(std::size_t bytes) noexcept {
    cache_budget_bytes_ = bytes;
  }
  std::size_t cache_budget_bytes() const noexcept {
    return cache_budget_bytes_;
  }

  std::size_t block_cycles() const noexcept { return block_cycles_; }
  const AcquisitionConfig& config() const noexcept { return config_; }

 private:
  std::size_t group_width(std::size_t trace_cycles) const noexcept;
  void run_group(std::span<const BatchLane> lanes,
                 std::span<Acquisition> out) const;
  void run_fallback_lane(const BatchLane& lane, Acquisition& out) const;

  AcquisitionConfig config_;
  double clock_hz_;
  std::size_t block_cycles_;
  std::vector<double> template_;  ///< per-cycle pulse template (sums to 1)
  std::size_t cache_budget_bytes_ = std::size_t{1} << 30;
};

}  // namespace clockmark::measure
