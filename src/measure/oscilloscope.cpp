#include "measure/oscilloscope.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace clockmark::measure {

Oscilloscope::Oscilloscope(const OscilloscopeConfig& config, util::Pcg32 rng)
    : config_(config), rng_(rng) {
  if (config_.resolution_bits < 2 || config_.resolution_bits > 16) {
    throw std::invalid_argument("Oscilloscope: resolution must be 2..16 bit");
  }
  if (config_.full_scale_v <= 0.0) {
    throw std::invalid_argument("Oscilloscope: full scale must be > 0");
  }
}

double Oscilloscope::lsb_v() const noexcept {
  return config_.full_scale_v /
         static_cast<double>(1u << config_.resolution_bits);
}

void Oscilloscope::auto_range(std::span<const double> volts) {
  if (volts.empty()) return;
  const auto [lo_it, hi_it] = std::minmax_element(volts.begin(), volts.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  const double span = std::max(hi - lo, 1e-9);
  config_.offset_v = (hi + lo) / 2.0;
  config_.full_scale_v = span / 0.8;  // waveform fills ~80 % of the screen
}

std::vector<double> Oscilloscope::acquire(std::span<const double> volts) {
  const double lsb = lsb_v();
  const double half_scale = config_.full_scale_v / 2.0;
  const auto max_code =
      static_cast<long>((1u << config_.resolution_bits) - 1u);
  std::vector<double> out(volts.size());
  for (std::size_t i = 0; i < volts.size(); ++i) {
    const double noisy =
        volts[i] + rng_.gaussian(0.0, config_.noise_v_rms) -
        config_.offset_v;
    // Clip to the screen, quantise to the code grid, reconstruct.
    const double clipped = std::clamp(noisy, -half_scale, half_scale - lsb);
    long code = static_cast<long>(std::floor((clipped + half_scale) / lsb));
    code = std::clamp(code, 0L, max_code);
    out[i] = (static_cast<double>(code) + 0.5) * lsb - half_scale +
             config_.offset_v;
  }
  return out;
}

}  // namespace clockmark::measure
