#include "rtl/netlist.h"

#include <algorithm>
#include <stdexcept>

namespace clockmark::rtl {

Netlist::Netlist() {
  modules_.push_back("");  // module 0: top
  module_index_[""] = 0;
}

std::uint32_t Netlist::module(const std::string& path) {
  const auto it = module_index_.find(path);
  if (it != module_index_.end()) return it->second;
  const auto idx = static_cast<std::uint32_t>(modules_.size());
  modules_.push_back(path);
  module_index_[path] = idx;
  return idx;
}

const std::string& Netlist::module_path(std::uint32_t index) const {
  return modules_.at(index);
}

NetId Netlist::add_net(const std::string& name) {
  if (net_index_.count(name) > 0) {
    throw std::invalid_argument("Netlist: duplicate net name " + name);
  }
  const auto id = static_cast<NetId>(net_names_.size());
  net_names_.push_back(name);
  net_index_[name] = id;
  return id;
}

const std::string& Netlist::net_name(NetId id) const {
  return net_names_.at(id);
}

std::optional<NetId> Netlist::find_net(const std::string& name) const {
  const auto it = net_index_.find(name);
  if (it == net_index_.end()) return std::nullopt;
  return it->second;
}

void Netlist::mark_input(NetId id) { inputs_.push_back(id); }
void Netlist::mark_output(NetId id) { outputs_.push_back(id); }

CellId Netlist::add_gate(CellKind kind, const std::string& name,
                         std::uint32_t module_idx,
                         const std::vector<NetId>& inputs, NetId output) {
  if (is_sequential(kind) || is_clock_cell(kind)) {
    throw std::invalid_argument("add_gate: use add_flop/add_icg for " +
                                std::string(kind_name(kind)));
  }
  if (inputs.size() != input_count(kind)) {
    throw std::invalid_argument("add_gate: wrong input count for " +
                                std::string(kind_name(kind)));
  }
  Cell c;
  c.kind = kind;
  c.name = name;
  c.module = module_idx;
  c.inputs = inputs;
  c.output = output;
  cells_.push_back(std::move(c));
  return static_cast<CellId>(cells_.size() - 1);
}

CellId Netlist::add_flop(CellKind kind, const std::string& name,
                         std::uint32_t module_idx,
                         const std::vector<NetId>& inputs, NetId q,
                         NetId clock, bool init_state) {
  if (!is_sequential(kind)) {
    throw std::invalid_argument("add_flop: not a sequential kind");
  }
  if (inputs.size() != input_count(kind)) {
    throw std::invalid_argument("add_flop: wrong input count");
  }
  Cell c;
  c.kind = kind;
  c.name = name;
  c.module = module_idx;
  c.inputs = inputs;
  c.output = q;
  c.clock = clock;
  c.init_state = init_state;
  cells_.push_back(std::move(c));
  return static_cast<CellId>(cells_.size() - 1);
}

CellId Netlist::add_clock_buffer(const std::string& name,
                                 std::uint32_t module_idx, NetId clock_in,
                                 NetId clock_out) {
  Cell c;
  c.kind = CellKind::kClockBuffer;
  c.name = name;
  c.module = module_idx;
  c.clock = clock_in;
  c.output = clock_out;
  cells_.push_back(std::move(c));
  return static_cast<CellId>(cells_.size() - 1);
}

CellId Netlist::add_icg(const std::string& name, std::uint32_t module_idx,
                        NetId clock_in, NetId enable, NetId gated_clock) {
  Cell c;
  c.kind = CellKind::kIcg;
  c.name = name;
  c.module = module_idx;
  c.clock = clock_in;
  c.inputs = {enable};
  c.output = gated_clock;
  cells_.push_back(std::move(c));
  return static_cast<CellId>(cells_.size() - 1);
}

void Netlist::remove_cells(const std::vector<CellId>& ids) {
  std::vector<bool> dead(cells_.size(), false);
  for (const CellId id : ids) {
    if (id < cells_.size()) dead[id] = true;
  }
  std::vector<Cell> kept;
  kept.reserve(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (!dead[i]) kept.push_back(std::move(cells_[i]));
  }
  cells_ = std::move(kept);
}

std::vector<CellId> Netlist::drivers_of(NetId net) const {
  std::vector<CellId> out;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].output == net) out.push_back(static_cast<CellId>(i));
  }
  return out;
}

std::vector<CellId> Netlist::loads_of(NetId net) const {
  std::vector<CellId> out;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    const bool on_input =
        std::find(c.inputs.begin(), c.inputs.end(), net) != c.inputs.end();
    if (on_input || c.clock == net) out.push_back(static_cast<CellId>(i));
  }
  return out;
}

bool Netlist::cell_in_module(CellId id, const std::string& prefix) const {
  const std::string& path = modules_.at(cells_.at(id).module);
  return path.rfind(prefix, 0) == 0;
}

std::unordered_map<CellKind, std::size_t> Netlist::census(
    const std::string& module_prefix) const {
  std::unordered_map<CellKind, std::size_t> counts;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cell_in_module(static_cast<CellId>(i), module_prefix)) {
      ++counts[cells_[i].kind];
    }
  }
  return counts;
}

std::size_t Netlist::register_count(const std::string& module_prefix) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (is_sequential(cells_[i].kind) &&
        cell_in_module(static_cast<CellId>(i), module_prefix)) {
      ++n;
    }
  }
  return n;
}

}  // namespace clockmark::rtl
