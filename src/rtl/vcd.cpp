#include "rtl/vcd.h"

#include <stdexcept>

namespace clockmark::rtl {

std::string VcdWriter::identifier(std::size_t index) {
  // Printable VCD identifier characters: '!' (33) .. '~' (126).
  std::string id;
  do {
    id += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index > 0);
  return id;
}

VcdWriter::VcdWriter(const std::string& path, const Simulator& simulator,
                     std::vector<Signal> signals, unsigned timescale_ns)
    : simulator_(simulator),
      signals_(std::move(signals)),
      last_values_(signals_.size(), -1),
      out_(path),
      timescale_ns_(timescale_ns) {
  if (!out_) {
    throw std::runtime_error("VcdWriter: cannot open " + path);
  }
  out_ << "$date clockmark simulation $end\n"
       << "$version clockmark 1.0 $end\n"
       << "$timescale " << timescale_ns_ << "ns $end\n"
       << "$scope module clockmark $end\n";
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    out_ << "$var wire 1 " << identifier(i) << ' ' << signals_[i].name
         << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
}

void VcdWriter::sample() {
  bool stamped = false;
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    const char v = simulator_.net_value(signals_[i].net) ? 1 : 0;
    if (v == last_values_[i]) continue;
    if (!stamped) {
      out_ << '#' << sample_count_ << '\n';
      stamped = true;
    }
    out_ << (v != 0 ? '1' : '0') << identifier(i) << '\n';
    last_values_[i] = v;
  }
  ++sample_count_;
}

void VcdWriter::close() {
  if (out_.is_open()) {
    out_ << '#' << sample_count_ << '\n';
    out_.close();
  }
}

VcdWriter::~VcdWriter() { close(); }

}  // namespace clockmark::rtl
