// Structural cell model. The netlist is deliberately small — just the
// cell types needed to build watermark circuits, clock trees and the WGC
// at gate level: flip-flops, integrated clock gates (ICG), clock buffers
// and basic combinational gates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace clockmark::rtl {

using NetId = std::uint32_t;
using CellId = std::uint32_t;

inline constexpr NetId kInvalidNet = 0xffffffffu;

enum class CellKind : std::uint8_t {
  kConst0,      ///< constant 0 driver, no inputs
  kConst1,      ///< constant 1 driver, no inputs
  kBuf,         ///< data buffer, 1 input
  kInv,         ///< inverter, 1 input
  kAnd2,        ///< 2-input AND
  kOr2,         ///< 2-input OR
  kXor2,        ///< 2-input XOR
  kNand2,       ///< 2-input NAND
  kNor2,        ///< 2-input NOR
  kMux2,        ///< inputs {sel, a, b}: out = sel ? b : a
  kDff,         ///< inputs {d}; clocked by clock_net; output q
  kDffEn,       ///< inputs {d, en}; holds q when en = 0
  kClockBuffer, ///< clock-tree buffer, 1 clock input, clock output
  kIcg,         ///< integrated clock gate: clock input + inputs {en}
};

/// Number of data inputs each kind expects (clock pins are separate).
unsigned input_count(CellKind kind) noexcept;

/// True for cells that live on the clock network (their output is a
/// clock net, not a data net).
bool is_clock_cell(CellKind kind) noexcept;

/// True for state-holding cells.
bool is_sequential(CellKind kind) noexcept;

/// Human-readable kind name for reports.
std::string_view kind_name(CellKind kind) noexcept;

/// One instantiated cell. Plain aggregate; the Netlist owns all of them
/// contiguously and refers to nets by index.
struct Cell {
  CellKind kind = CellKind::kBuf;
  std::string name;                ///< instance name, unique within module
  std::uint32_t module = 0;        ///< index into Netlist module table
  std::vector<NetId> inputs;       ///< data inputs, see CellKind comments
  NetId output = kInvalidNet;      ///< data or gated-clock output
  NetId clock = kInvalidNet;       ///< clock pin (kDff*, kIcg, kClockBuffer)
  bool init_state = false;         ///< power-on Q value for flip-flops
};

}  // namespace clockmark::rtl
