// Structural netlist serialisation — the "soft IP deliverable". A vendor
// ships the watermarked design as a text netlist; the SoC integrator (or
// an attacker, Section VI) reads it back. Round-trip safe.
//
// Format (one statement per line, '#' comments):
//   net <name>
//   input <net-name>
//   output <net-name>
//   cell <KIND> <name> <module-path|-> <out-net|-> <clock-net|->
//        <init:0|1> <in1,in2,...|->
#pragma once

#include <iosfwd>
#include <string>

#include "rtl/netlist.h"

namespace clockmark::rtl {

/// Serialises the netlist. Stable output: nets in id order, cells in id
/// order.
void write_netlist(std::ostream& out, const Netlist& netlist);
std::string netlist_to_string(const Netlist& netlist);

/// Parses a netlist written by write_netlist (or by hand). Throws
/// std::runtime_error with a line number on malformed input.
Netlist read_netlist(std::istream& in);
Netlist netlist_from_string(const std::string& text);

/// Structural equality: same nets (by name), same cells (kind, name,
/// module path, connections by net name, init state) in the same order.
bool structurally_equal(const Netlist& a, const Netlist& b);

}  // namespace clockmark::rtl
