#include "rtl/simulator.h"

#include <queue>
#include <stdexcept>

namespace clockmark::rtl {
namespace {

// Kahn topological sort of a cell subset. `deps(cell) -> nets` gives the
// nets the cell waits on; only dependencies driven by cells inside the
// subset create ordering edges.
template <typename DepsFn>
std::vector<CellId> topo_sort(const Netlist& nl,
                              const std::vector<CellId>& subset,
                              DepsFn deps, const char* what) {
  std::unordered_map<NetId, CellId> driver_in_subset;
  for (const CellId id : subset) {
    const Cell& c = nl.cell(id);
    if (c.output == kInvalidNet) continue;
    if (driver_in_subset.count(c.output) > 0) {
      throw std::invalid_argument(std::string("Simulator: net '") +
                                  nl.net_name(c.output) +
                                  "' is multiply driven");
    }
    driver_in_subset[c.output] = id;
  }
  std::unordered_map<CellId, std::size_t> indegree;
  std::unordered_map<CellId, std::vector<CellId>> fanout;
  for (const CellId id : subset) indegree[id] = 0;
  for (const CellId id : subset) {
    for (const NetId net : deps(nl.cell(id))) {
      const auto it = driver_in_subset.find(net);
      if (it != driver_in_subset.end()) {
        fanout[it->second].push_back(id);
        ++indegree[id];
      }
    }
  }
  std::queue<CellId> ready;
  for (const auto& [id, deg] : indegree) {
    if (deg == 0) ready.push(id);
  }
  std::vector<CellId> order;
  order.reserve(subset.size());
  while (!ready.empty()) {
    const CellId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (const CellId next : fanout[id]) {
      if (--indegree[next] == 0) ready.push(next);
    }
  }
  if (order.size() != subset.size()) {
    throw std::invalid_argument(std::string("Simulator: cycle detected in ") +
                                what + " network");
  }
  return order;
}

}  // namespace

Simulator::Simulator(const Netlist& netlist) : netlist_(netlist) {
  net_values_.assign(netlist.net_count(), false);
  clock_active_.assign(netlist.net_count(), false);
  is_clock_source_.assign(netlist.net_count(), false);
  flop_states_.assign(netlist.cell_count(), false);

  std::vector<CellId> comb_cells;
  std::vector<CellId> clock_cells;
  for (std::size_t i = 0; i < netlist.cell_count(); ++i) {
    const auto id = static_cast<CellId>(i);
    const Cell& c = netlist.cell(id);
    if (is_sequential(c.kind)) {
      flops_.push_back(id);
      flop_states_[id] = c.init_state;
    } else if (is_clock_cell(c.kind)) {
      clock_cells.push_back(id);
    } else {
      comb_cells.push_back(id);
    }
  }

  comb_order_ = topo_sort(
      netlist_, comb_cells,
      [](const Cell& c) -> const std::vector<NetId>& { return c.inputs; },
      "combinational");
  clock_order_ = topo_sort(
      netlist_, clock_cells,
      [](const Cell& c) { return std::vector<NetId>{c.clock}; }, "clock");

  activity_.per_module.resize(netlist.module_count());
  settle();
}

void Simulator::set_input(NetId net, bool value) {
  net_values_.at(net) = value;
}

void Simulator::set_clock_source(NetId net) {
  is_clock_source_.at(net) = true;
}

bool Simulator::eval_gate(const Cell& c) const {
  const auto in = [&](std::size_t i) {
    return static_cast<bool>(net_values_[c.inputs[i]]);
  };
  switch (c.kind) {
    case CellKind::kConst0: return false;
    case CellKind::kConst1: return true;
    case CellKind::kBuf: return in(0);
    case CellKind::kInv: return !in(0);
    case CellKind::kAnd2: return in(0) && in(1);
    case CellKind::kOr2: return in(0) || in(1);
    case CellKind::kXor2: return in(0) != in(1);
    case CellKind::kNand2: return !(in(0) && in(1));
    case CellKind::kNor2: return !(in(0) || in(1));
    case CellKind::kMux2: return in(0) ? in(2) : in(1);
    default:
      throw std::logic_error("eval_gate: non-combinational cell");
  }
}

void Simulator::settle() {
  // Flop outputs first, then combinational logic in dependency order.
  for (const CellId id : flops_) {
    const Cell& c = netlist_.cell(id);
    if (c.output != kInvalidNet) net_values_[c.output] = flop_states_[id];
  }
  for (const CellId id : comb_order_) {
    const Cell& c = netlist_.cell(id);
    if (c.output != kInvalidNet) net_values_[c.output] = eval_gate(c);
  }
}

void Simulator::propagate_clocks() {
  std::fill(clock_active_.begin(), clock_active_.end(), false);
  for (std::size_t n = 0; n < clock_active_.size(); ++n) {
    if (is_clock_source_[n]) clock_active_[n] = true;
  }
  for (const CellId id : clock_order_) {
    const Cell& c = netlist_.cell(id);
    const bool in_active =
        c.clock != kInvalidNet && clock_active_[c.clock];
    bool out_active = in_active;
    if (c.kind == CellKind::kIcg) {
      // Latch-based ICG: enable sampled while the clock is low, i.e. the
      // settled combinational value of this cycle.
      out_active = in_active && net_values_[c.inputs[0]];
    }
    if (c.output != kInvalidNet) clock_active_[c.output] = out_active;
  }
}

const CycleActivity& Simulator::step() {
  // 1. Combinational settle with the current flop states and inputs;
  //    count comb output toggles against the previous settled values.
  activity_.total = ModuleActivity{};
  for (auto& m : activity_.per_module) m = ModuleActivity{};

  std::vector<bool> prev_values = net_values_;
  settle();
  for (const CellId id : comb_order_) {
    const Cell& c = netlist_.cell(id);
    if (c.output != kInvalidNet &&
        net_values_[c.output] != prev_values[c.output]) {
      ++activity_.total.comb_toggles;
      ++activity_.per_module[c.module].comb_toggles;
    }
  }

  // 2. Clock propagation + clock-cell activity.
  propagate_clocks();
  for (const CellId id : clock_order_) {
    const Cell& c = netlist_.cell(id);
    ModuleActivity& mod = activity_.per_module[c.module];
    if (c.kind == CellKind::kClockBuffer) {
      if (c.output != kInvalidNet && clock_active_[c.output]) {
        ++activity_.total.active_buffers;
        ++mod.active_buffers;
      }
    } else {  // ICG
      const bool in_active = c.clock != kInvalidNet && clock_active_[c.clock];
      if (in_active && c.output != kInvalidNet && clock_active_[c.output]) {
        ++activity_.total.active_icgs;
        ++mod.active_icgs;
      } else {
        ++activity_.total.gated_icgs;
        ++mod.gated_icgs;
      }
    }
  }

  // 3. Sequential update on the (conceptual) rising edge.
  std::vector<bool> next_states(flop_states_);
  for (const CellId id : flops_) {
    const Cell& c = netlist_.cell(id);
    if (c.clock == kInvalidNet || !clock_active_[c.clock]) continue;
    ModuleActivity& mod = activity_.per_module[c.module];
    ++activity_.total.clocked_flops;
    ++mod.clocked_flops;
    bool d = net_values_[c.inputs[0]];
    if (c.kind == CellKind::kDffEn && !net_values_[c.inputs[1]]) {
      d = flop_states_[id];  // enable low: hold
    }
    if (d != static_cast<bool>(flop_states_[id])) {
      ++activity_.total.flop_toggles;
      ++mod.flop_toggles;
    }
    next_states[id] = d;
  }
  flop_states_ = std::move(next_states);

  // Publish new flop outputs so net_value() reflects post-edge state.
  for (const CellId id : flops_) {
    const Cell& c = netlist_.cell(id);
    if (c.output != kInvalidNet) net_values_[c.output] = flop_states_[id];
  }
  ++cycle_;
  return activity_;
}

std::vector<CycleActivity> Simulator::run(std::size_t n) {
  std::vector<CycleActivity> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(step());
  return out;
}

bool Simulator::net_value(NetId net) const { return net_values_.at(net); }

bool Simulator::clock_active(NetId net) const {
  return clock_active_.at(net);
}

bool Simulator::flop_state(CellId id) const { return flop_states_.at(id); }

}  // namespace clockmark::rtl
