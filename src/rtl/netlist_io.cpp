#include "rtl/netlist_io.h"

#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace clockmark::rtl {
namespace {

constexpr char kNone = '-';

std::optional<CellKind> kind_from_name(const std::string& name) {
  static const std::map<std::string, CellKind> table = {
      {"CONST0", CellKind::kConst0}, {"CONST1", CellKind::kConst1},
      {"BUF", CellKind::kBuf},       {"INV", CellKind::kInv},
      {"AND2", CellKind::kAnd2},     {"OR2", CellKind::kOr2},
      {"XOR2", CellKind::kXor2},     {"NAND2", CellKind::kNand2},
      {"NOR2", CellKind::kNor2},     {"MUX2", CellKind::kMux2},
      {"DFF", CellKind::kDff},       {"DFFE", CellKind::kDffEn},
      {"CLKBUF", CellKind::kClockBuffer},
      {"ICG", CellKind::kIcg},
  };
  const auto it = table.find(name);
  if (it == table.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

void write_netlist(std::ostream& out, const Netlist& netlist) {
  out << "# clockmark structural netlist\n";
  for (std::size_t i = 0; i < netlist.net_count(); ++i) {
    out << "net " << netlist.net_name(static_cast<NetId>(i)) << '\n';
  }
  for (const NetId in : netlist.primary_inputs()) {
    out << "input " << netlist.net_name(in) << '\n';
  }
  for (const NetId o : netlist.primary_outputs()) {
    out << "output " << netlist.net_name(o) << '\n';
  }
  for (std::size_t i = 0; i < netlist.cell_count(); ++i) {
    const Cell& c = netlist.cell(static_cast<CellId>(i));
    out << "cell " << kind_name(c.kind) << ' ' << c.name << ' ';
    const std::string& mod = netlist.module_path(c.module);
    out << (mod.empty() ? std::string(1, kNone) : mod) << ' ';
    out << (c.output == kInvalidNet ? std::string(1, kNone)
                                    : netlist.net_name(c.output))
        << ' ';
    out << (c.clock == kInvalidNet ? std::string(1, kNone)
                                   : netlist.net_name(c.clock))
        << ' ';
    out << (c.init_state ? '1' : '0') << ' ';
    if (c.inputs.empty()) {
      out << kNone;
    } else {
      for (std::size_t k = 0; k < c.inputs.size(); ++k) {
        if (k > 0) out << ',';
        out << netlist.net_name(c.inputs[k]);
      }
    }
    out << '\n';
  }
}

std::string netlist_to_string(const Netlist& netlist) {
  std::ostringstream os;
  write_netlist(os, netlist);
  return os.str();
}

Netlist read_netlist(std::istream& in) {
  Netlist nl;
  std::string line;
  std::size_t line_no = 0;

  auto fail = [&](const std::string& msg) -> void {
    throw std::runtime_error("netlist line " + std::to_string(line_no) +
                             ": " + msg);
  };
  auto net_by_name = [&](const std::string& name) -> NetId {
    const auto id = nl.find_net(name);
    if (!id.has_value()) fail("unknown net '" + name + "'");
    return *id;
  };

  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;

    if (keyword == "net") {
      std::string name;
      if (!(ls >> name)) fail("net: missing name");
      nl.add_net(name);
    } else if (keyword == "input" || keyword == "output") {
      std::string name;
      if (!(ls >> name)) fail(keyword + ": missing net name");
      const NetId id = net_by_name(name);
      if (keyword == "input") {
        nl.mark_input(id);
      } else {
        nl.mark_output(id);
      }
    } else if (keyword == "cell") {
      std::string kind_s, name, module_s, out_s, clock_s, init_s, ins_s;
      if (!(ls >> kind_s >> name >> module_s >> out_s >> clock_s >>
            init_s >> ins_s)) {
        fail("cell: expected 7 fields");
      }
      const auto kind = kind_from_name(kind_s);
      if (!kind.has_value()) fail("unknown cell kind '" + kind_s + "'");
      const std::uint32_t module =
          module_s == std::string(1, kNone) ? 0 : nl.module(module_s);
      const NetId out_net = out_s == std::string(1, kNone)
                                ? kInvalidNet
                                : net_by_name(out_s);
      const NetId clock_net = clock_s == std::string(1, kNone)
                                  ? kInvalidNet
                                  : net_by_name(clock_s);
      const bool init = init_s == "1";
      std::vector<NetId> inputs;
      if (ins_s != std::string(1, kNone)) {
        for (const auto& n : split(ins_s, ',')) {
          inputs.push_back(net_by_name(n));
        }
      }
      if (inputs.size() != input_count(*kind)) {
        fail("cell " + name + ": wrong input count for " + kind_s);
      }
      if (is_sequential(*kind)) {
        if (clock_net == kInvalidNet) fail("flop without clock");
        nl.add_flop(*kind, name, module, inputs, out_net, clock_net, init);
      } else if (*kind == CellKind::kClockBuffer) {
        if (clock_net == kInvalidNet) fail("clock buffer without clock");
        nl.add_clock_buffer(name, module, clock_net, out_net);
      } else if (*kind == CellKind::kIcg) {
        if (clock_net == kInvalidNet) fail("ICG without clock");
        nl.add_icg(name, module, clock_net, inputs.at(0), out_net);
      } else {
        nl.add_gate(*kind, name, module, inputs, out_net);
      }
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  return nl;
}

Netlist netlist_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_netlist(is);
}

bool structurally_equal(const Netlist& a, const Netlist& b) {
  if (a.net_count() != b.net_count() || a.cell_count() != b.cell_count()) {
    return false;
  }
  for (std::size_t i = 0; i < a.net_count(); ++i) {
    if (a.net_name(static_cast<NetId>(i)) !=
        b.net_name(static_cast<NetId>(i))) {
      return false;
    }
  }
  auto port_names = [](const Netlist& nl, const std::vector<NetId>& ids) {
    std::vector<std::string> names;
    for (const NetId id : ids) names.push_back(nl.net_name(id));
    return names;
  };
  if (port_names(a, a.primary_inputs()) != port_names(b, b.primary_inputs()) ||
      port_names(a, a.primary_outputs()) !=
          port_names(b, b.primary_outputs())) {
    return false;
  }
  auto net_name_or_none = [](const Netlist& nl, NetId id) {
    return id == kInvalidNet ? std::string("-") : nl.net_name(id);
  };
  for (std::size_t i = 0; i < a.cell_count(); ++i) {
    const Cell& ca = a.cell(static_cast<CellId>(i));
    const Cell& cb = b.cell(static_cast<CellId>(i));
    if (ca.kind != cb.kind || ca.name != cb.name ||
        ca.init_state != cb.init_state ||
        a.module_path(ca.module) != b.module_path(cb.module) ||
        net_name_or_none(a, ca.output) != net_name_or_none(b, cb.output) ||
        net_name_or_none(a, ca.clock) != net_name_or_none(b, cb.clock) ||
        ca.inputs.size() != cb.inputs.size()) {
      return false;
    }
    for (std::size_t k = 0; k < ca.inputs.size(); ++k) {
      if (a.net_name(ca.inputs[k]) != b.net_name(cb.inputs[k])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace clockmark::rtl
