// VCD (Value Change Dump) waveform writer. Lets any simulation run be
// inspected in GTKWave & co. — the Fig. 2 functional waveforms, WGC
// bring-up, or attack-analysis before/after traces.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "rtl/simulator.h"

namespace clockmark::rtl {

/// Records selected nets of a running Simulator into an IEEE 1364 VCD
/// file. Usage:
///   VcdWriter vcd("trace.vcd", sim, {{"wmark", wmark_net}, ...});
///   for (...) { sim.step(); vcd.sample(); }
class VcdWriter {
 public:
  struct Signal {
    std::string name;
    NetId net;
  };

  /// Opens the file and writes the header. timescale_ns is the length of
  /// one clock cycle in nanoseconds (100 ns at the paper's 10 MHz).
  VcdWriter(const std::string& path, const Simulator& simulator,
            std::vector<Signal> signals, unsigned timescale_ns = 100);

  /// Emits value changes for the current simulator state at the current
  /// cycle (call once per step()).
  void sample();

  /// Flushes and closes; also invoked by the destructor.
  void close();

  ~VcdWriter();
  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

 private:
  static std::string identifier(std::size_t index);

  const Simulator& simulator_;
  std::vector<Signal> signals_;
  std::vector<char> last_values_;  // -1 = never sampled
  std::ofstream out_;
  unsigned timescale_ns_;
  std::size_t sample_count_ = 0;
};

}  // namespace clockmark::rtl
