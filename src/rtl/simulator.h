// Cycle-based gate-level simulator with clock-network activity
// accounting. One step() = one full clock cycle: combinational settle,
// clock propagation through buffers and ICGs (counting which clock cells
// toggle — clock nets switch twice per cycle, which is why clock power
// dominates, cf. Section II of the paper), then the sequential update.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtl/netlist.h"

namespace clockmark::rtl {

/// Activity of one module (by module index) during one clock cycle.
struct ModuleActivity {
  std::size_t clocked_flops = 0;   ///< flops that received a clock edge
  std::size_t flop_toggles = 0;    ///< flops whose Q changed
  std::size_t active_buffers = 0;  ///< clock buffers that propagated clock
  std::size_t active_icgs = 0;     ///< ICGs that were enabled
  std::size_t gated_icgs = 0;      ///< ICGs present but disabled
  std::size_t comb_toggles = 0;    ///< combinational outputs that changed
};

/// Whole-design activity during one clock cycle, plus per-module detail.
struct CycleActivity {
  ModuleActivity total;
  std::vector<ModuleActivity> per_module;  ///< indexed by module id
};

class Simulator {
 public:
  /// Builds evaluation orders and initial state. Throws on multiply
  /// driven nets or combinational loops.
  explicit Simulator(const Netlist& netlist);

  /// Declares a primary-input value (held until changed).
  void set_input(NetId net, bool value);

  /// Declares a net as a free-running clock source (toggles every cycle).
  void set_clock_source(NetId net);

  /// Evaluates combinational logic only (no clock edge). Useful to
  /// observe net values before the first cycle.
  void settle();

  /// Runs one full clock cycle and returns the activity it generated.
  const CycleActivity& step();

  /// Runs n cycles, accumulating activity into the returned vector.
  std::vector<CycleActivity> run(std::size_t n);

  /// Value of a data net after the last settle/step.
  bool net_value(NetId net) const;

  /// True if the clock net received edges during the last step.
  bool clock_active(NetId net) const;

  /// Current state of a flip-flop cell.
  bool flop_state(CellId id) const;

  std::size_t cycle() const noexcept { return cycle_; }

  const Netlist& netlist() const noexcept { return netlist_; }

 private:
  bool eval_gate(const Cell& c) const;
  void propagate_clocks();

  const Netlist& netlist_;
  std::vector<bool> net_values_;
  std::vector<bool> clock_active_;      // per net
  std::vector<bool> is_clock_source_;   // per net
  std::vector<bool> flop_states_;       // per cell (indexed by CellId)
  std::vector<CellId> comb_order_;      // topological order of comb cells
  std::vector<CellId> clock_order_;     // topological order of clock cells
  std::vector<CellId> flops_;
  CycleActivity activity_;
  std::size_t cycle_ = 0;
};

}  // namespace clockmark::rtl
