// Netlist connectivity analysis. This is the substrate for the removal-
// attack study (Section VI): an attacker inspecting soft IP at RTL looks
// for stand-alone subcircuits — logic that never influences a primary
// output — because those can be deleted without breaking the design.
#pragma once

#include <cstddef>
#include <vector>

#include "rtl/netlist.h"

namespace clockmark::rtl {

/// Directed cell graph derived from a netlist: an edge a -> b exists when
/// a's output net feeds any input or clock pin of b.
class ConnectivityGraph {
 public:
  explicit ConnectivityGraph(const Netlist& netlist);

  /// Cells whose output value can (transitively) influence a primary
  /// output. Everything else is functionally dead weight.
  std::vector<bool> reaches_primary_output() const;

  /// Cells reachable (transitively) from any primary input.
  std::vector<bool> reachable_from_primary_inputs() const;

  /// Cells transitively in the fan-in cone of the given cells.
  std::vector<bool> fanin_cone(const std::vector<CellId>& roots) const;

  /// Cells transitively in the fan-out cone of the given cells.
  std::vector<bool> fanout_cone(const std::vector<CellId>& roots) const;

  /// Weakly connected components; returns a component id per cell.
  std::vector<std::size_t> weakly_connected_components(
      std::size_t* count = nullptr) const;

  const std::vector<std::vector<CellId>>& successors() const noexcept {
    return succ_;
  }
  const std::vector<std::vector<CellId>>& predecessors() const noexcept {
    return pred_;
  }
  const Netlist& netlist() const noexcept { return netlist_; }

 private:
  std::vector<bool> reverse_reach(const std::vector<CellId>& roots) const;
  std::vector<bool> forward_reach(const std::vector<CellId>& roots) const;

  const Netlist& netlist_;
  std::vector<std::vector<CellId>> succ_;
  std::vector<std::vector<CellId>> pred_;
  std::vector<CellId> output_drivers_;  // cells driving primary outputs
  std::vector<CellId> input_loads_;     // cells loading primary inputs
};

}  // namespace clockmark::rtl
