// Flat structural netlist with a lightweight module hierarchy. Watermark
// circuits, clock trees and the WGC are built directly on this API; the
// removal-attack analysis (Section VI of the paper) operates on the same
// data structure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtl/cell.h"

namespace clockmark::rtl {

class Netlist {
 public:
  Netlist();

  // --- module hierarchy -------------------------------------------------
  /// Registers (or finds) a hierarchical module path such as
  /// "soc/watermark/wgc". Returns its index for use in add_* calls.
  std::uint32_t module(const std::string& path);
  const std::string& module_path(std::uint32_t index) const;
  std::size_t module_count() const noexcept { return modules_.size(); }

  // --- nets ---------------------------------------------------------------
  NetId add_net(const std::string& name);
  const std::string& net_name(NetId id) const;
  std::size_t net_count() const noexcept { return net_names_.size(); }
  std::optional<NetId> find_net(const std::string& name) const;

  /// Marks a net as a primary input / output of the design.
  void mark_input(NetId id);
  void mark_output(NetId id);
  const std::vector<NetId>& primary_inputs() const noexcept { return inputs_; }
  const std::vector<NetId>& primary_outputs() const noexcept {
    return outputs_;
  }

  // --- cells ----------------------------------------------------------
  /// Adds a combinational cell. inputs must match input_count(kind).
  CellId add_gate(CellKind kind, const std::string& name,
                  std::uint32_t module, const std::vector<NetId>& inputs,
                  NetId output);

  /// Adds a flip-flop (kDff or kDffEn).
  CellId add_flop(CellKind kind, const std::string& name,
                  std::uint32_t module, const std::vector<NetId>& inputs,
                  NetId q, NetId clock, bool init_state = false);

  /// Adds a clock buffer: clock_in -> clock_out.
  CellId add_clock_buffer(const std::string& name, std::uint32_t module,
                          NetId clock_in, NetId clock_out);

  /// Adds an integrated clock gate: gated = clock_in when enable is 1.
  CellId add_icg(const std::string& name, std::uint32_t module,
                 NetId clock_in, NetId enable, NetId gated_clock);

  const Cell& cell(CellId id) const { return cells_.at(id); }
  Cell& cell(CellId id) { return cells_.at(id); }
  std::size_t cell_count() const noexcept { return cells_.size(); }
  const std::vector<Cell>& cells() const noexcept { return cells_; }

  /// Removes the given cells from the netlist (used by removal attacks).
  /// Nets are left in place; dangling loads simply see an undriven net.
  void remove_cells(const std::vector<CellId>& ids);

  /// Cells whose output drives the given net (usually 0 or 1).
  std::vector<CellId> drivers_of(NetId net) const;

  /// Cells that consume the given net on any input or clock pin.
  std::vector<CellId> loads_of(NetId net) const;

  /// Counts cells per kind under a module path prefix ("" = whole design).
  std::unordered_map<CellKind, std::size_t> census(
      const std::string& module_prefix = "") const;

  /// Number of flip-flops under a module path prefix — the paper's area
  /// unit ("number of registers").
  std::size_t register_count(const std::string& module_prefix = "") const;

  /// True if the cell's module path starts with the given prefix.
  bool cell_in_module(CellId id, const std::string& prefix) const;

 private:
  std::vector<std::string> modules_;
  std::unordered_map<std::string, std::uint32_t> module_index_;
  std::vector<std::string> net_names_;
  std::unordered_map<std::string, NetId> net_index_;
  std::vector<Cell> cells_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
};

}  // namespace clockmark::rtl
