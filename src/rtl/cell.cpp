#include "rtl/cell.h"

namespace clockmark::rtl {

unsigned input_count(CellKind kind) noexcept {
  switch (kind) {
    case CellKind::kConst0:
    case CellKind::kConst1:
      return 0;
    case CellKind::kBuf:
    case CellKind::kInv:
    case CellKind::kDff:
      return 1;
    case CellKind::kClockBuffer:
      return 0;  // its single input is the clock pin, not a data input
    case CellKind::kAnd2:
    case CellKind::kOr2:
    case CellKind::kXor2:
    case CellKind::kNand2:
    case CellKind::kNor2:
    case CellKind::kDffEn:
      return 2;
    case CellKind::kMux2:
      return 3;
    case CellKind::kIcg:
      return 1;  // enable
  }
  return 0;
}

bool is_clock_cell(CellKind kind) noexcept {
  return kind == CellKind::kClockBuffer || kind == CellKind::kIcg;
}

bool is_sequential(CellKind kind) noexcept {
  return kind == CellKind::kDff || kind == CellKind::kDffEn;
}

std::string_view kind_name(CellKind kind) noexcept {
  switch (kind) {
    case CellKind::kConst0: return "CONST0";
    case CellKind::kConst1: return "CONST1";
    case CellKind::kBuf: return "BUF";
    case CellKind::kInv: return "INV";
    case CellKind::kAnd2: return "AND2";
    case CellKind::kOr2: return "OR2";
    case CellKind::kXor2: return "XOR2";
    case CellKind::kNand2: return "NAND2";
    case CellKind::kNor2: return "NOR2";
    case CellKind::kMux2: return "MUX2";
    case CellKind::kDff: return "DFF";
    case CellKind::kDffEn: return "DFFE";
    case CellKind::kClockBuffer: return "CLKBUF";
    case CellKind::kIcg: return "ICG";
  }
  return "?";
}

}  // namespace clockmark::rtl
