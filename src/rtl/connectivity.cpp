#include "rtl/connectivity.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

namespace clockmark::rtl {

ConnectivityGraph::ConnectivityGraph(const Netlist& netlist)
    : netlist_(netlist) {
  const std::size_t n = netlist.cell_count();
  succ_.resize(n);
  pred_.resize(n);

  std::unordered_map<NetId, std::vector<CellId>> driver_map;
  for (std::size_t i = 0; i < n; ++i) {
    const Cell& c = netlist.cell(static_cast<CellId>(i));
    if (c.output != kInvalidNet) {
      driver_map[c.output].push_back(static_cast<CellId>(i));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<CellId>(i);
    const Cell& c = netlist.cell(id);
    auto link = [&](NetId net) {
      const auto it = driver_map.find(net);
      if (it == driver_map.end()) return;
      for (const CellId d : it->second) {
        succ_[d].push_back(id);
        pred_[id].push_back(d);
      }
    };
    for (const NetId net : c.inputs) link(net);
    if (c.clock != kInvalidNet) link(c.clock);
  }
  for (auto& v : succ_) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  for (auto& v : pred_) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  for (const NetId out : netlist.primary_outputs()) {
    const auto it = driver_map.find(out);
    if (it == driver_map.end()) continue;
    output_drivers_.insert(output_drivers_.end(), it->second.begin(),
                           it->second.end());
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<CellId>(i);
    const Cell& c = netlist.cell(id);
    for (const NetId in : netlist.primary_inputs()) {
      const bool loads =
          std::find(c.inputs.begin(), c.inputs.end(), in) != c.inputs.end() ||
          c.clock == in;
      if (loads) {
        input_loads_.push_back(id);
        break;
      }
    }
  }
}

std::vector<bool> ConnectivityGraph::reverse_reach(
    const std::vector<CellId>& roots) const {
  std::vector<bool> seen(netlist_.cell_count(), false);
  std::queue<CellId> work;
  for (const CellId r : roots) {
    if (!seen[r]) {
      seen[r] = true;
      work.push(r);
    }
  }
  while (!work.empty()) {
    const CellId id = work.front();
    work.pop();
    for (const CellId p : pred_[id]) {
      if (!seen[p]) {
        seen[p] = true;
        work.push(p);
      }
    }
  }
  return seen;
}

std::vector<bool> ConnectivityGraph::forward_reach(
    const std::vector<CellId>& roots) const {
  std::vector<bool> seen(netlist_.cell_count(), false);
  std::queue<CellId> work;
  for (const CellId r : roots) {
    if (!seen[r]) {
      seen[r] = true;
      work.push(r);
    }
  }
  while (!work.empty()) {
    const CellId id = work.front();
    work.pop();
    for (const CellId s : succ_[id]) {
      if (!seen[s]) {
        seen[s] = true;
        work.push(s);
      }
    }
  }
  return seen;
}

std::vector<bool> ConnectivityGraph::reaches_primary_output() const {
  return reverse_reach(output_drivers_);
}

std::vector<bool> ConnectivityGraph::reachable_from_primary_inputs() const {
  return forward_reach(input_loads_);
}

std::vector<bool> ConnectivityGraph::fanin_cone(
    const std::vector<CellId>& roots) const {
  return reverse_reach(roots);
}

std::vector<bool> ConnectivityGraph::fanout_cone(
    const std::vector<CellId>& roots) const {
  return forward_reach(roots);
}

std::vector<std::size_t> ConnectivityGraph::weakly_connected_components(
    std::size_t* count) const {
  const std::size_t n = netlist_.cell_count();
  constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);
  std::vector<std::size_t> comp(n, kUnassigned);
  std::size_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (comp[i] != kUnassigned) continue;
    const std::size_t c = next++;
    std::queue<CellId> work;
    work.push(static_cast<CellId>(i));
    comp[i] = c;
    while (!work.empty()) {
      const CellId id = work.front();
      work.pop();
      auto visit = [&](CellId other) {
        if (comp[other] == kUnassigned) {
          comp[other] = c;
          work.push(other);
        }
      };
      for (const CellId s : succ_[id]) visit(s);
      for (const CellId p : pred_[id]) visit(p);
    }
  }
  if (count != nullptr) *count = next;
  return comp;
}

}  // namespace clockmark::rtl
