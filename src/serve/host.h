// Blocking-socket TCP front door for the detection service. One accept
// thread, one thread per connection, one Dispatcher per connection —
// plain threads over the same FairQueue backpressure the in-process
// path has, which is all a trusted-LAN verification daemon needs (the
// paper's workflow is an IP vendor submitting traces for verdicts, not
// a public endpoint).
//
// Lifecycle: the constructor binds (port 0 = ephemeral; port() tells
// you what the kernel picked) and starts accepting. A kShutdown frame
// from any client acknowledges, then unblocks wait(); the daemon's main
// thread then calls stop(), which closes the listener and every live
// connection and joins all threads. stop() is also safe to call first
// (Ctrl-C path) and from the destructor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"

namespace clockmark::serve {

struct HostConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral, read back via port()
  int backlog = 16;
};

class ServiceHost {
 public:
  /// Binds and starts the accept loop; throws std::runtime_error when
  /// the socket can't be bound. The service must outlive the host.
  ServiceHost(DetectionService& service, HostConfig config = {});
  ~ServiceHost();

  ServiceHost(const ServiceHost&) = delete;
  ServiceHost& operator=(const ServiceHost&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Blocks until a client sent kShutdown or stop() was called.
  void wait_for_shutdown();

  /// Closes the listener and all connections, joins every thread.
  /// Idempotent. Does NOT shut down the DetectionService — the daemon
  /// decides whether to drain it first.
  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);
  void request_shutdown();

  DetectionService& service_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;

  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool stopped_ = false;
  std::vector<std::thread> connections_;
  std::vector<int> connection_fds_;
};

}  // namespace clockmark::serve
