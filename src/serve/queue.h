// Priority / fair job queue with backpressure — the scheduling heart of
// the detection service. It keeps BoundedQueue's lifecycle semantics
// (blocking push while full, drain-after-close, stats counters; see
// stream/bounded_queue.h) but replaces the single FIFO with a two-level
// discipline:
//
//   1. strict priority: a pop always serves the highest non-empty
//      priority level (kHigh before kNormal before kLow);
//   2. tenant fairness within a level: each tenant has its own FIFO
//      lane, and a rotating cursor round-robins pops across the lanes —
//      a tenant that dumps 60 jobs cannot starve one that submits 4,
//      which is the multi-tenant governance property the service
//      promises (asserted in tests/test_serve.cpp).
//
// The capacity bound is global (total buffered jobs across all lanes):
// backpressure is a *service* resource limit, so one saturated tenant
// blocks further submits from everyone — by design, the service's
// reject_when_full mode turns that into an immediate rejection instead.
//
// try_remove() supports cancelling still-queued jobs without waking a
// worker: the predicate pulls the job out of its lane in O(lane).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace clockmark::serve {

/// Scheduling class of a job. Values order the levels: lower value =
/// served first.
enum class JobPriority : int {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};

/// BoundedQueue-style counters, surfaced via DetectionService::stats().
struct JobQueueStats {
  std::size_t capacity = 0;
  std::size_t pushes = 0;      ///< jobs accepted
  std::size_t pops = 0;        ///< jobs handed to workers
  std::size_t removed = 0;     ///< jobs pulled out while queued (cancel)
  std::size_t push_waits = 0;  ///< submit blocked on a full queue
  std::size_t pop_waits = 0;   ///< worker blocked on an empty queue
  std::size_t high_water = 0;  ///< max buffered jobs observed
};

template <typename T>
class FairQueue {
 public:
  explicit FairQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  FairQueue(const FairQueue&) = delete;
  FairQueue& operator=(const FairQueue&) = delete;

  /// Blocks while the queue is full. Returns true when the item was
  /// enqueued, false when the queue was closed meanwhile (the item is
  /// dropped — submitters stop).
  bool push(T item, JobPriority priority, const std::string& tenant) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (size_ >= capacity_ && !closed_) {
      ++stats_.push_waits;
      not_full_.wait(lock, [&] { return size_ < capacity_ || closed_; });
    }
    if (closed_) return false;
    levels_[static_cast<std::size_t>(priority)].lanes[tenant].push_back(
        std::move(item));
    ++size_;
    ++stats_.pushes;
    stats_.high_water = std::max(stats_.high_water, size_);
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when the queue is full or closed (the
  /// service's reject_when_full mode).
  bool try_push(T item, JobPriority priority, const std::string& tenant) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || size_ >= capacity_) return false;
      levels_[static_cast<std::size_t>(priority)].lanes[tenant].push_back(
          std::move(item));
      ++size_;
      ++stats_.pushes;
      stats_.high_water = std::max(stats_.high_water, size_);
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty and open. nullopt = closed and
  /// drained. Serves the highest non-empty priority level; within it,
  /// round-robins across tenant lanes.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (size_ == 0 && !closed_) {
      ++stats_.pop_waits;
      not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    }
    if (size_ == 0) return std::nullopt;  // closed and drained
    for (Level& level : levels_) {
      if (std::optional<T> item = pop_level(level)) {
        --size_;
        ++stats_.pops;
        lock.unlock();
        not_full_.notify_one();
        return item;
      }
    }
    return std::nullopt;  // unreachable: size_ > 0 implies a non-empty level
  }

  /// Removes the first queued item matching `pred` (any level, any
  /// lane) without involving a worker. Returns it, or nullopt when no
  /// queued item matches (it may already be running).
  template <typename Pred>
  std::optional<T> try_remove(Pred pred) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (Level& level : levels_) {
      for (auto& [tenant, lane] : level.lanes) {
        const auto it = std::find_if(lane.begin(), lane.end(), pred);
        if (it == lane.end()) continue;
        T item = std::move(*it);
        lane.erase(it);
        --size_;
        ++stats_.removed;
        lock.unlock();
        not_full_.notify_one();
        return item;
      }
    }
    return std::nullopt;
  }

  /// No more pushes; buffered jobs remain poppable (drain semantics).
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  JobQueueStats stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    JobQueueStats s = stats_;
    s.capacity = capacity_;
    return s;
  }

 private:
  struct Level {
    /// Tenant lanes. std::map keeps lane iteration order deterministic
    /// (lexicographic by tenant), so the round-robin is reproducible.
    std::map<std::string, std::deque<T>> lanes;
    /// Round-robin cursor: the tenant to serve next, by key. Lanes come
    /// and go as tenants drain, so the cursor is a key resolved with
    /// lower_bound against the live lane set — a lane vanishing never
    /// skips the rotation past a still-waiting tenant.
    std::string next_tenant;
  };

  std::optional<T> pop_level(Level& level) {
    // Drop exhausted lanes first so the cursor walks live lanes only.
    for (auto it = level.lanes.begin(); it != level.lanes.end();) {
      it = it->second.empty() ? level.lanes.erase(it) : std::next(it);
    }
    if (level.lanes.empty()) return std::nullopt;
    auto lane = level.lanes.lower_bound(level.next_tenant);
    if (lane == level.lanes.end()) lane = level.lanes.begin();  // wrap
    T item = std::move(lane->second.front());
    lane->second.pop_front();
    const auto following = std::next(lane);
    level.next_tenant =
        following == level.lanes.end() ? std::string() : following->first;
    return item;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<Level> levels_ = std::vector<Level>(3);
  std::size_t size_ = 0;
  bool closed_ = false;
  JobQueueStats stats_;
};

}  // namespace clockmark::serve
