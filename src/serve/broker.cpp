#include "serve/broker.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "dsp/fft_plan.h"
#include "serve/job.h"
#include "sim/scenario.h"
#include "sync/engine.h"

namespace clockmark::serve {

namespace {

// Canonical identity of a scenario memo. The repetition is deliberately
// absent: one Scenario serves every repetition (Scenario::run(rep) is
// const and thread-safe), which is exactly what makes the memo worth
// sharing across a batch of jobs.
std::string scenario_key(const ScenarioRef& ref) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "scenario:chip=%d;cycles=%zu;seed=%llu;wm=%d;sn=%.17g;pn=%.17g",
                ref.chip, ref.trace_cycles,
                static_cast<unsigned long long>(ref.seed),
                ref.watermark_active ? 1 : 0, ref.scope_noise_v_rms,
                ref.probe_noise_v_rms);
  return buf;
}

// Estimated resident size of a Scenario memo: the per-repetition-
// invariant traces it caches (background + watermark overlay) scale
// with the trace length, plus a generous constant for the gate-level
// characterisation. An *estimate* is fine — the caps govern order of
// magnitude, not byte-exact accounting.
std::size_t scenario_bytes(const ScenarioRef& ref) {
  return ref.trace_cycles * 3 * sizeof(double) + (1u << 20u);
}

}  // namespace

sim::ScenarioConfig to_scenario_config(const ScenarioRef& ref) {
  sim::ScenarioConfig cfg =
      ref.chip == 2 ? sim::chip2_default() : sim::chip1_default();
  cfg.trace_cycles = ref.trace_cycles;
  cfg.seed = ref.seed;
  cfg.watermark_active = ref.watermark_active;
  if (ref.scope_noise_v_rms != 0.0) {
    cfg.acquisition.scope.noise_v_rms = ref.scope_noise_v_rms;
  }
  if (ref.probe_noise_v_rms != 0.0) {
    cfg.acquisition.probe.noise_v_rms = ref.probe_noise_v_rms;
  }
  return cfg;
}

ResourceBroker::ResourceBroker(BrokerConfig config)
    : config_(config),
      engines_(std::make_shared<detect::EngineCache>(
          config.engine_capacity)) {}

std::shared_ptr<const sim::Scenario> ResourceBroker::scenario(
    const std::string& tenant, const ScenarioRef& ref, bool* hit) {
  auto value = acquire(tenant, scenario_key(ref), hit, scenario_bytes(ref),
                       [&ref]() -> std::shared_ptr<const void> {
                         return std::make_shared<const sim::Scenario>(
                             to_scenario_config(ref));
                       });
  return std::static_pointer_cast<const sim::Scenario>(std::move(value));
}

std::shared_ptr<const sync::CandidateEngine> ResourceBroker::engine(
    const std::string& tenant, std::span<const double> pattern, bool* hit) {
  (void)tenant;  // engines are keyed by pattern; tenants share freely
  return engines_->acquire(pattern, hit);
}

std::shared_ptr<const dsp::FftPlan> ResourceBroker::plan(
    const std::string& tenant, std::size_t n, bool* hit) {
  if (n == 0 || n > dsp::kMaxPlannedFftSize) {
    if (hit != nullptr) *hit = false;
    return nullptr;
  }
  // Route through dsp::get_fft_plan so the broker's handle is the same
  // plan every other caller sees; the broker entry pins it and makes
  // plan reuse visible in the unified accounting. The size estimate is
  // ~4 complex doubles per point (twiddles both directions + scratch).
  auto value = acquire(tenant, "plan:" + std::to_string(n), hit,
                       n * 8 * sizeof(double),
                       [n]() -> std::shared_ptr<const void> {
                         return dsp::get_fft_plan(n);
                       });
  return std::static_pointer_cast<const dsp::FftPlan>(std::move(value));
}

std::shared_ptr<const void> ResourceBroker::acquire(
    const std::string& tenant, const std::string& key, bool* hit,
    std::size_t bytes, const std::function<std::shared_ptr<const void>()>& build) {
  std::unique_lock<std::mutex> lock(mu_);
  ++clock_;
  for (Entry& entry : entries_) {
    if (entry.key == key) {
      entry.last_use = clock_;
      ++hits_;
      if (hit != nullptr) *hit = true;
      return entry.value;
    }
  }
  ++misses_;
  if (hit != nullptr) *hit = false;
  // Build outside the lock: scenario characterisation takes hundreds of
  // milliseconds and must not stall unrelated acquires. A racing build
  // of the same key is wasteful-but-correct (deterministic value); the
  // re-check below keeps only one copy.
  lock.unlock();
  std::shared_ptr<const void> value = build();
  lock.lock();
  ++clock_;
  for (Entry& entry : entries_) {
    if (entry.key == key) {  // someone else built it meanwhile
      entry.last_use = clock_;
      return entry.value;
    }
  }
  const bool fits_global = make_room(bytes);
  const bool fits_quota =
      fits_global && make_tenant_room(tenant, bytes);
  if (!fits_global || !fits_quota) {
    ++uncached_;  // handed out unretained: correctness over residency
    return value;
  }
  entries_.push_back(Entry{key, value, bytes, tenant, clock_});
  bytes_ += bytes;
  TenantUsage& usage = tenants_[tenant];
  usage.bytes += bytes;
  usage.entries += 1;
  return value;
}

bool ResourceBroker::make_room(std::size_t need) {
  if (need > config_.max_bytes) return false;
  auto over = [&] {
    return bytes_ + need > config_.max_bytes ||
           entries_.size() + 1 > config_.max_entries;
  };
  while (over()) {
    std::size_t victim = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].value.use_count() > 1) continue;  // pinned by a job
      if (victim == entries_.size() ||
          entries_[i].last_use < entries_[victim].last_use) {
        victim = i;
      }
    }
    if (victim == entries_.size()) return false;  // everything pinned
    evict(victim);
  }
  return true;
}

bool ResourceBroker::make_tenant_room(const std::string& tenant,
                                      std::size_t need) {
  if (config_.tenant_max_bytes == 0) return true;
  if (need > config_.tenant_max_bytes) return false;
  auto over = [&] {
    const auto it = tenants_.find(tenant);
    return it != tenants_.end() &&
           it->second.bytes + need > config_.tenant_max_bytes;
  };
  while (over()) {
    std::size_t victim = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].tenant != tenant) continue;
      if (entries_[i].value.use_count() > 1) continue;
      if (victim == entries_.size() ||
          entries_[i].last_use < entries_[victim].last_use) {
        victim = i;
      }
    }
    if (victim == entries_.size()) return false;
    evict(victim);
  }
  return true;
}

void ResourceBroker::evict(std::size_t index) {
  Entry& entry = entries_[index];
  bytes_ -= entry.bytes;
  const auto it = tenants_.find(entry.tenant);
  if (it != tenants_.end()) {
    it->second.bytes -= entry.bytes;
    it->second.entries -= 1;
    if (it->second.entries == 0) tenants_.erase(it);
  }
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
  ++evictions_;
}

BrokerStats ResourceBroker::stats() const {
  BrokerStats s;
  s.engines = engines_->stats();
  const std::lock_guard<std::mutex> lock(mu_);
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.uncached = uncached_;
  s.bytes = bytes_;
  s.entries = entries_.size();
  s.tenants = tenants_;
  return s;
}

}  // namespace clockmark::serve
