// Frame-level request handling, shared by every transport: the TCP host
// hands each decoded frame to a Dispatcher, and the in-process
// LocalClient round-trips frames through one directly — same code path,
// so a behaviour the tests pin down in-process is the behaviour on the
// socket.
//
// One Dispatcher per connection: it owns the JobTickets for the jobs
// *this* connection submitted (a kWait can only await your own jobs —
// ticket futures are the capability, ids alone are not).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>

#include "serve/protocol.h"
#include "serve/service.h"

namespace clockmark::serve {

class Dispatcher {
 public:
  explicit Dispatcher(DetectionService& service) : service_(service) {}

  /// Handles one request frame and returns the response frame. kWait
  /// blocks until the awaited job is terminal. Malformed or unexpected
  /// frames come back as kError — the connection survives; a request
  /// that *cannot* produce a response does not exist in this protocol.
  ///
  /// Responses by request type:
  ///   kSubmit   → kSubmitAck (queued) | kResult (immediate rejection)
  ///   kWait     → kResult | kError (unknown id)
  ///   kCancel   → kCancelAck
  ///   kShutdown → kShutdownAck (the transport decides what "stop"
  ///               means — see ServiceHost)
  Frame handle(const Frame& request);

 private:
  DetectionService& service_;
  std::mutex mu_;
  std::map<std::uint64_t, JobTicket> tickets_;
};

}  // namespace clockmark::serve
