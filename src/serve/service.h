// The detection service: jobs in, verdicts out, under governance.
//
// DetectionService runs a pool of worker threads over a FairQueue of
// JobSpecs. Each job resolves its payload to a chunk stream, builds a
// stream::OnlineDetector configured exactly as detect::Session would
// (detect::stream_detector_config — the single Request translation), and
// drives it chunk by chunk. That one loop gives every service promise a
// place to live:
//
//   verdict fidelity   kBatch jobs force early-stop off and a full-trace
//                      blind lock, so the verdict is bit-identical to
//                      batch Session::run over the same input; kStream
//                      jobs honour the streaming knobs and match
//                      Session::run(TraceSource&). Asserted in
//                      tests/test_serve.cpp for chips I and II.
//   cancellation       the job's CancelToken is checked at every chunk
//                      boundary and again before finalisation; a cancel
//                      lands at the next boundary (cooperative — a CPA
//                      kernel mid-sweep is never interrupted). Queued
//                      jobs are pulled straight out of the queue.
//   budgets            JobSpec::max_cycles stops feeding after the
//                      budget and decides on what was ingested.
//   shared caches      scenario memos and blind-search engines come
//                      from the ResourceBroker; per-job hit telemetry
//                      rides back on the JobResult.
//   backpressure       the queue is bounded; submit() blocks (or
//                      rejects, with reject_when_full) when the service
//                      is saturated.
//   lifecycle          drain() waits for quiescence; shutdown() stops
//                      accepting, optionally drains, cancels what
//                      remains, and joins the workers. The destructor
//                      shuts down without draining.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/broker.h"
#include "serve/cancel.h"
#include "serve/job.h"
#include "serve/queue.h"

namespace clockmark::runtime {
class Executor;
}

namespace clockmark::serve {

struct ServiceConfig {
  std::size_t workers = 1;
  std::size_t queue_capacity = 64;
  /// Full queue: false = submit() blocks (backpressure), true = the job
  /// is rejected immediately (its future resolves to kRejected).
  bool reject_when_full = false;
  /// Chunking of inline-trace and scenario payloads (file payloads use
  /// the request's streaming.chunk_cycles, matching Session::run_file).
  std::size_t chunk_cycles = 4096;
  /// Optional executor parallelising per-job detector work (the blind
  /// lock, the evaluation sweeps). Verdicts are bit-identical with or
  /// without it. Not owned; must outlive the service.
  runtime::Executor* executor = nullptr;
  BrokerConfig broker;
  /// Invoked for each accepted job reaching a terminal state
  /// (completion, cancellation, failure), immediately before its future
  /// is fulfilled — on the worker thread, except for a still-queued
  /// cancel, which resolves on the canceller's thread. Submit-time
  /// rejections do not fire it (the submitter already holds the
  /// resolved future).
  std::function<void(const JobResult&)> on_complete;
};

struct ServiceStats {
  JobQueueStats queue;
  BrokerStats broker;
  std::size_t submitted = 0;
  std::size_t completed = 0;  ///< kDone
  std::size_t cancelled = 0;
  std::size_t failed = 0;
  std::size_t rejected = 0;
  std::size_t running = 0;  ///< jobs on a worker right now
};

class DetectionService {
 public:
  /// A null broker means the service owns a private one built from
  /// config.broker; passing one shares caches across services.
  explicit DetectionService(ServiceConfig config = {},
                            std::shared_ptr<ResourceBroker> broker = nullptr);
  ~DetectionService();

  DetectionService(const DetectionService&) = delete;
  DetectionService& operator=(const DetectionService&) = delete;

  /// Validates and enqueues the job. Always returns a ticket whose
  /// future is eventually fulfilled; an invalid spec, a full queue
  /// (reject_when_full) or a shut-down service fulfil it immediately
  /// with kRejected.
  JobTicket submit(JobSpec spec);

  /// Requests cancellation. A still-queued job is removed and resolved
  /// kCancelled on the caller's thread; a running job stops at its next
  /// chunk boundary. Returns false when the id is unknown or already
  /// terminal.
  bool cancel(std::uint64_t id);

  /// Blocks until every job accepted so far has reached a terminal
  /// state. New submits stay possible (drain is a checkpoint, not a
  /// shutdown).
  void drain();

  /// Stops accepting jobs, then either drains the queue (drain_queued)
  /// or cancels everything still queued, and joins the workers.
  /// Idempotent.
  void shutdown(bool drain_queued = true);

  ServiceStats stats() const;
  const std::shared_ptr<ResourceBroker>& broker() const noexcept {
    return broker_;
  }

 private:
  struct JobState;

  void worker_loop();
  void run_job(const std::shared_ptr<JobState>& state);
  void finish(const std::shared_ptr<JobState>& state, JobResult result,
              bool invoke_callback);

  ServiceConfig config_;
  std::shared_ptr<ResourceBroker> broker_;
  FairQueue<std::shared_ptr<JobState>> queue_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable idle_;
  std::map<std::uint64_t, std::shared_ptr<JobState>> active_;  ///< not terminal
  std::uint64_t next_id_ = 1;
  bool shut_down_ = false;
  std::size_t running_ = 0;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t cancelled_ = 0;
  std::size_t failed_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace clockmark::serve
