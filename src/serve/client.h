// Clients for the detection service.
//
//   LocalClient  in-process: every request is packed to wire bytes,
//                unpacked, dispatched, and the response packed/unpacked
//                again — the full codec round trip with no socket, so
//                tests and benches exercise exactly the bytes a TCP
//                client would put on the wire.
//   TcpClient    the real thing: a blocking connection to a
//                ServiceHost. One request in flight at a time per
//                client (the protocol is strictly request/response).
//
// Both expose the same calls; throw ProtocolError on malformed peer
// responses and std::runtime_error on transport failure.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "serve/dispatch.h"
#include "serve/protocol.h"

namespace clockmark::serve {

/// What a submit came back with: an accepted id to wait on, or the
/// immediately-resolved rejection.
struct SubmitOutcome {
  std::uint64_t id = 0;
  std::optional<WireResult> rejected;

  bool accepted() const noexcept { return !rejected.has_value(); }
};

class LocalClient {
 public:
  explicit LocalClient(DetectionService& service) : dispatcher_(service) {}

  SubmitOutcome submit(const JobSpec& spec);
  /// Blocks until the job is terminal. The id must be one this client
  /// submitted (per-connection ticket scoping).
  WireResult wait(std::uint64_t id);
  bool cancel(std::uint64_t id);

 private:
  Frame round_trip(const Frame& request);

  Dispatcher dispatcher_;
};

class TcpClient {
 public:
  /// Connects (IPv4 dotted-quad host). Throws on refusal.
  TcpClient(const std::string& host, std::uint16_t port);
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  SubmitOutcome submit(const JobSpec& spec);
  WireResult wait(std::uint64_t id);
  bool cancel(std::uint64_t id);
  /// Asks the daemon to stop (acknowledged before it does).
  void shutdown_server();

 private:
  Frame round_trip(const Frame& request);

  int fd_ = -1;
};

/// Shared submit/response interpretation for both clients: kSubmitAck →
/// accepted id, kResult → immediate rejection, kError → throws.
SubmitOutcome interpret_submit_response(const Frame& response);

}  // namespace clockmark::serve
