#include "serve/protocol.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "cpa/spread_spectrum.h"

namespace clockmark::serve {

namespace {

constexpr char kTraceMagic[8] = {'C', 'M', 'T', 'R', 'A', 'C', 'E', '2'};

// Little-endian byte codec. Host order *is* little-endian on every
// platform this repo targets (the same assumption trace_io documents),
// so the codec is memcpy.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void str(const std::string& s) {
    if (s.size() > kMaxFrameBytes) throw ProtocolError("string too long");
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void doubles(std::span<const double> v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(double));
  }
  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), p, p + n);
  }

 private:
  std::vector<std::uint8_t>& out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    std::uint8_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  double f64() {
    double v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (n > remaining()) {
      throw ProtocolError("string length exceeds payload");
    }
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<double> doubles() {
    const std::uint64_t n = u64();
    if (n > remaining() / sizeof(double)) {
      throw ProtocolError("vector length exceeds payload");
    }
    std::vector<double> v(static_cast<std::size_t>(n));
    raw(v.data(), v.size() * sizeof(double));
    return v;
  }
  void raw(void* data, std::size_t n) {
    if (n > remaining()) throw ProtocolError("payload underrun");
    std::memcpy(data, bytes_.data() + pos_, n);
    pos_ += n;
  }
  std::size_t remaining() const { return bytes_.size() - pos_; }
  void expect_end() const {
    if (remaining() != 0) {
      throw ProtocolError(std::to_string(remaining()) +
                          " trailing bytes after message");
    }
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

void expect_type(const Frame& frame, MsgType type, const char* what) {
  if (frame.type != type) {
    throw ProtocolError(std::string("expected ") + what + " frame, got type " +
                        std::to_string(static_cast<int>(frame.type)));
  }
}

template <typename Enum>
Enum checked_enum(std::uint8_t raw, std::uint8_t max, const char* what) {
  if (raw > max) {
    throw ProtocolError(std::string("bad ") + what + " value " +
                        std::to_string(raw));
  }
  return static_cast<Enum>(raw);
}

Frame id_frame(MsgType type, std::uint64_t id) {
  Frame frame;
  frame.type = type;
  ByteWriter w(frame.payload);
  w.u64(id);
  return frame;
}

std::uint64_t decode_id(const Frame& frame, MsgType type, const char* what) {
  expect_type(frame, type, what);
  ByteReader r(frame.payload);
  const std::uint64_t id = r.u64();
  r.expect_end();
  return id;
}

}  // namespace

WireResult to_wire(const JobResult& result) {
  WireResult w;
  w.id = result.id;
  w.tenant = result.tenant;
  w.status = result.status;
  w.detected = result.report.detected;
  w.confidence = result.report.confidence;
  w.cycles = result.report.cycles;
  w.peak_rotation = result.report.detection.spectrum.peak_rotation;
  w.peak_z = result.report.detection.spectrum.peak_z;
  w.reason = result.report.detection.reason;
  if (result.report.sync.has_value()) {
    const sync::SyncEstimate& est = *result.report.sync;
    WireSync s;
    s.offset_cycles = est.correction.offset_cycles;
    s.ratio = est.correction.ratio;
    s.drift = est.correction.drift;
    s.peak_rotation = est.peak_rotation;
    s.total_offset_cycles = est.offset_cycles;
    s.peak_z = est.peak_z;
    s.confidence = est.confidence;
    s.locked = est.locked;
    s.evaluations = est.evaluations;
    w.sync = s;
  }
  w.error = result.error;
  w.queue_s = result.timing.queue_s;
  w.run_s = result.timing.run_s;
  w.engine_hit = result.cache.engine_hit;
  w.scenario_hit = result.cache.scenario_hit;
  w.broker_hits = result.cache.broker.hits;
  w.broker_misses = result.cache.broker.misses;
  w.broker_evictions = result.cache.broker.evictions;
  w.engine_hits = result.cache.broker.engines.hits;
  w.engine_misses = result.cache.broker.engines.misses;
  w.engine_evictions = result.cache.broker.engines.evictions;
  return w;
}

Frame encode_submit(const JobSpec& spec) {
  if (spec.source_fn) {
    throw ProtocolError("source_fn payloads are in-process only");
  }
  Frame frame;
  frame.type = MsgType::kSubmit;
  ByteWriter w(frame.payload);
  w.str(spec.tenant);
  w.u8(static_cast<std::uint8_t>(spec.priority));
  w.u8(static_cast<std::uint8_t>(spec.mode));
  w.u64(spec.max_cycles);

  const detect::Request& rq = spec.request;
  w.f64(rq.policy.min_peak_z);
  w.f64(rq.policy.min_isolation);
  w.u64(rq.policy.guard);
  w.u8(static_cast<std::uint8_t>(rq.method));
  w.u8(static_cast<std::uint8_t>(rq.sync));
  w.f64(rq.known_warp.offset_cycles);
  w.f64(rq.known_warp.ratio);
  w.f64(rq.known_warp.drift);
  w.f64(rq.blind.max_ratio_dev);
  w.f64(rq.blind.max_drift);
  w.u64(rq.blind.coarse_window_cycles);
  w.u64(rq.blind.refine_rounds);
  w.u64(rq.blind.descent_rounds);
  w.f64(rq.blind.min_lock_z);
  w.u64(rq.blind.guard);
  w.u8(rq.blind.search_drift ? 1 : 0);
  w.u64(rq.blind.coarse_top_k);
  w.u64(rq.lock_cycles);
  w.u64(rq.streaming.chunk_cycles);
  w.u64(rq.streaming.queue_capacity);
  w.u8(rq.streaming.early_stop ? 1 : 0);
  w.f64(rq.streaming.confidence_threshold);
  w.u64(rq.streaming.consecutive_evaluations);
  w.u64(rq.streaming.evaluate_every_chunks);
  w.u64(rq.streaming.min_cycles);
  w.u8(rq.use_file_meta ? 1 : 0);

  w.doubles(spec.pattern);

  if (spec.trace.has_value()) {
    w.u8(0);  // inline CMTRACE2 block
    w.raw(kTraceMagic, sizeof(kTraceMagic));
    w.u64(spec.trace->size());
    w.f64(spec.trace_meta.clock_hz);
    w.f64(spec.trace_meta.sample_rate_hz);
    w.f64(spec.trace_meta.trigger_offset_cycles);
    w.raw(spec.trace->data(), spec.trace->size() * sizeof(double));
  } else if (spec.scenario.has_value()) {
    w.u8(1);
    const ScenarioRef& ref = *spec.scenario;
    w.u8(static_cast<std::uint8_t>(ref.chip));
    w.u64(ref.trace_cycles);
    w.u64(ref.seed);
    w.u64(ref.repetition);
    w.u8(ref.watermark_active ? 1 : 0);
    w.f64(ref.scope_noise_v_rms);
    w.f64(ref.probe_noise_v_rms);
  } else if (!spec.trace_file.empty()) {
    w.u8(2);
    w.str(spec.trace_file);
  } else {
    throw ProtocolError("JobSpec has no payload");
  }
  return frame;
}

JobSpec decode_submit(const Frame& frame) {
  expect_type(frame, MsgType::kSubmit, "submit");
  ByteReader r(frame.payload);
  JobSpec spec;
  spec.tenant = r.str();
  spec.priority = checked_enum<JobPriority>(r.u8(), 2, "priority");
  spec.mode = checked_enum<JobMode>(r.u8(), 1, "mode");
  spec.max_cycles = static_cast<std::size_t>(r.u64());

  detect::Request& rq = spec.request;
  rq.policy.min_peak_z = r.f64();
  rq.policy.min_isolation = r.f64();
  rq.policy.guard = static_cast<std::size_t>(r.u64());
  rq.method = checked_enum<cpa::CorrelationMethod>(r.u8(), 2, "method");
  rq.sync = checked_enum<sync::SyncPolicy>(r.u8(), 2, "sync policy");
  rq.known_warp.offset_cycles = r.f64();
  rq.known_warp.ratio = r.f64();
  rq.known_warp.drift = r.f64();
  rq.blind.max_ratio_dev = r.f64();
  rq.blind.max_drift = r.f64();
  rq.blind.coarse_window_cycles = static_cast<std::size_t>(r.u64());
  rq.blind.refine_rounds = static_cast<std::size_t>(r.u64());
  rq.blind.descent_rounds = static_cast<std::size_t>(r.u64());
  rq.blind.min_lock_z = r.f64();
  rq.blind.guard = static_cast<std::size_t>(r.u64());
  rq.blind.search_drift = r.u8() != 0;
  rq.blind.coarse_top_k = static_cast<std::size_t>(r.u64());
  rq.lock_cycles = static_cast<std::size_t>(r.u64());
  rq.streaming.chunk_cycles = static_cast<std::size_t>(r.u64());
  rq.streaming.queue_capacity = static_cast<std::size_t>(r.u64());
  rq.streaming.early_stop = r.u8() != 0;
  rq.streaming.confidence_threshold = r.f64();
  rq.streaming.consecutive_evaluations = static_cast<std::size_t>(r.u64());
  rq.streaming.evaluate_every_chunks = static_cast<std::size_t>(r.u64());
  rq.streaming.min_cycles = static_cast<std::size_t>(r.u64());
  rq.use_file_meta = r.u8() != 0;

  spec.pattern = r.doubles();

  const std::uint8_t kind = r.u8();
  switch (kind) {
    case 0: {
      char magic[sizeof(kTraceMagic)] = {};
      r.raw(magic, sizeof(magic));
      if (std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0) {
        throw ProtocolError("inline trace: bad CMTRACE2 magic");
      }
      const std::uint64_t count = r.u64();
      spec.trace_meta.clock_hz = r.f64();
      spec.trace_meta.sample_rate_hz = r.f64();
      spec.trace_meta.trigger_offset_cycles = r.f64();
      // The trace_io truncation rule, applied to the wire: the claimed
      // cycle count must match the bytes actually present.
      if (count > r.remaining() / sizeof(double)) {
        throw ProtocolError(
            "inline trace truncated: header claims " + std::to_string(count) +
            " cycles but the frame holds " +
            std::to_string(r.remaining() / sizeof(double)));
      }
      std::vector<double> y(static_cast<std::size_t>(count));
      r.raw(y.data(), y.size() * sizeof(double));
      spec.trace = std::move(y);
      break;
    }
    case 1: {
      ScenarioRef ref;
      ref.chip = r.u8();
      if (ref.chip != 1 && ref.chip != 2) {
        throw ProtocolError("scenario: chip must be 1 or 2");
      }
      ref.trace_cycles = static_cast<std::size_t>(r.u64());
      ref.seed = r.u64();
      ref.repetition = static_cast<std::size_t>(r.u64());
      ref.watermark_active = r.u8() != 0;
      ref.scope_noise_v_rms = r.f64();
      ref.probe_noise_v_rms = r.f64();
      spec.scenario = ref;
      break;
    }
    case 2:
      spec.trace_file = r.str();
      if (spec.trace_file.empty()) {
        throw ProtocolError("file payload: empty path");
      }
      break;
    default:
      throw ProtocolError("unknown payload kind " + std::to_string(kind));
  }
  r.expect_end();
  return spec;
}

Frame encode_submit_ack(std::uint64_t id) {
  return id_frame(MsgType::kSubmitAck, id);
}
std::uint64_t decode_submit_ack(const Frame& frame) {
  return decode_id(frame, MsgType::kSubmitAck, "submit-ack");
}

Frame encode_wait(std::uint64_t id) { return id_frame(MsgType::kWait, id); }
std::uint64_t decode_wait(const Frame& frame) {
  return decode_id(frame, MsgType::kWait, "wait");
}

Frame encode_cancel(std::uint64_t id) {
  return id_frame(MsgType::kCancel, id);
}
std::uint64_t decode_cancel(const Frame& frame) {
  return decode_id(frame, MsgType::kCancel, "cancel");
}

Frame encode_cancel_ack(bool accepted) {
  Frame frame;
  frame.type = MsgType::kCancelAck;
  ByteWriter w(frame.payload);
  w.u8(accepted ? 1 : 0);
  return frame;
}
bool decode_cancel_ack(const Frame& frame) {
  expect_type(frame, MsgType::kCancelAck, "cancel-ack");
  ByteReader r(frame.payload);
  const bool accepted = r.u8() != 0;
  r.expect_end();
  return accepted;
}

Frame encode_result(const WireResult& result) {
  Frame frame;
  frame.type = MsgType::kResult;
  ByteWriter w(frame.payload);
  w.u64(result.id);
  w.str(result.tenant);
  w.u8(static_cast<std::uint8_t>(result.status));
  w.u8(result.detected ? 1 : 0);
  w.f64(result.confidence);
  w.u64(result.cycles);
  w.u64(result.peak_rotation);
  w.f64(result.peak_z);
  w.str(result.reason);
  w.u8(result.sync.has_value() ? 1 : 0);
  if (result.sync.has_value()) {
    const WireSync& s = *result.sync;
    w.f64(s.offset_cycles);
    w.f64(s.ratio);
    w.f64(s.drift);
    w.u64(s.peak_rotation);
    w.f64(s.total_offset_cycles);
    w.f64(s.peak_z);
    w.f64(s.confidence);
    w.u8(s.locked ? 1 : 0);
    w.u64(s.evaluations);
  }
  w.str(result.error);
  w.f64(result.queue_s);
  w.f64(result.run_s);
  w.u8(result.engine_hit ? 1 : 0);
  w.u8(result.scenario_hit ? 1 : 0);
  w.u64(result.broker_hits);
  w.u64(result.broker_misses);
  w.u64(result.broker_evictions);
  w.u64(result.engine_hits);
  w.u64(result.engine_misses);
  w.u64(result.engine_evictions);
  return frame;
}

WireResult decode_result(const Frame& frame) {
  expect_type(frame, MsgType::kResult, "result");
  ByteReader r(frame.payload);
  WireResult result;
  result.id = r.u64();
  result.tenant = r.str();
  result.status = checked_enum<JobStatus>(r.u8(), 5, "job status");
  result.detected = r.u8() != 0;
  result.confidence = r.f64();
  result.cycles = r.u64();
  result.peak_rotation = r.u64();
  result.peak_z = r.f64();
  result.reason = r.str();
  if (r.u8() != 0) {
    WireSync s;
    s.offset_cycles = r.f64();
    s.ratio = r.f64();
    s.drift = r.f64();
    s.peak_rotation = r.u64();
    s.total_offset_cycles = r.f64();
    s.peak_z = r.f64();
    s.confidence = r.f64();
    s.locked = r.u8() != 0;
    s.evaluations = r.u64();
    result.sync = s;
  }
  result.error = r.str();
  result.queue_s = r.f64();
  result.run_s = r.f64();
  result.engine_hit = r.u8() != 0;
  result.scenario_hit = r.u8() != 0;
  result.broker_hits = r.u64();
  result.broker_misses = r.u64();
  result.broker_evictions = r.u64();
  result.engine_hits = r.u64();
  result.engine_misses = r.u64();
  result.engine_evictions = r.u64();
  r.expect_end();
  return result;
}

Frame encode_shutdown() { return Frame{MsgType::kShutdown, {}}; }
Frame encode_shutdown_ack() { return Frame{MsgType::kShutdownAck, {}}; }

Frame encode_error(const std::string& message) {
  Frame frame;
  frame.type = MsgType::kError;
  ByteWriter w(frame.payload);
  w.str(message);
  return frame;
}
std::string decode_error(const Frame& frame) {
  expect_type(frame, MsgType::kError, "error");
  ByteReader r(frame.payload);
  std::string message = r.str();
  r.expect_end();
  return message;
}

std::vector<std::uint8_t> pack_frame(const Frame& frame) {
  if (frame.payload.size() + 1 > kMaxFrameBytes) {
    throw ProtocolError("frame too large");
  }
  std::vector<std::uint8_t> bytes;
  bytes.reserve(frame.payload.size() + 5);
  ByteWriter w(bytes);
  w.u32(static_cast<std::uint32_t>(frame.payload.size() + 1));
  w.u8(static_cast<std::uint8_t>(frame.type));
  w.raw(frame.payload.data(), frame.payload.size());
  return bytes;
}

Frame unpack_frame(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const std::uint32_t length = r.u32();
  if (length == 0 || length > kMaxFrameBytes) {
    throw ProtocolError("bad frame length " + std::to_string(length));
  }
  if (length != r.remaining()) {
    throw ProtocolError("frame length " + std::to_string(length) +
                        " does not match " + std::to_string(r.remaining()) +
                        " available bytes");
  }
  Frame frame;
  frame.type = static_cast<MsgType>(r.u8());
  frame.payload.resize(length - 1);
  r.raw(frame.payload.data(), frame.payload.size());
  return frame;
}

namespace {

void write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t wrote = ::write(fd, data, n);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("write failed: ") +
                          std::strerror(errno));
    }
    data += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
}

/// Returns false on EOF before the first byte; throws on EOF mid-read.
bool read_all(int fd, std::uint8_t* data, std::size_t n, bool eof_ok) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, data + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("read failed: ") +
                          std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0 && eof_ok) return false;
      throw ProtocolError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

void write_frame(int fd, const Frame& frame) {
  const std::vector<std::uint8_t> bytes = pack_frame(frame);
  write_all(fd, bytes.data(), bytes.size());
}

std::optional<Frame> read_frame(int fd) {
  std::uint32_t length = 0;
  if (!read_all(fd, reinterpret_cast<std::uint8_t*>(&length), sizeof(length),
                /*eof_ok=*/true)) {
    return std::nullopt;
  }
  if (length == 0 || length > kMaxFrameBytes) {
    throw ProtocolError("bad frame length " + std::to_string(length));
  }
  Frame frame;
  std::uint8_t type = 0;
  read_all(fd, &type, 1, /*eof_ok=*/false);
  frame.type = static_cast<MsgType>(type);
  frame.payload.resize(length - 1);
  if (!frame.payload.empty()) {
    read_all(fd, frame.payload.data(), frame.payload.size(),
             /*eof_ok=*/false);
  }
  return frame;
}

}  // namespace clockmark::serve
