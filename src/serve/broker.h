// Cross-tenant resource governance: one broker owns every expensive,
// reusable artefact the service's jobs need, so N tenants submitting
// M jobs pay for each artefact once — under explicit limits — instead
// of M×N times.
//
// Three artefact classes, two stores:
//   * sync::CandidateEngine instances (blind-search pattern tables) —
//     delegated to a shared detect::EngineCache, which is already the
//     size-capped LRU the detection layer uses; the broker adds the
//     per-job hit telemetry.
//   * sim::Scenario memos (the gate-level characterisation behind a
//     ScenarioRef — hundreds of ms to build, shared across repetitions)
//     and dsp::FftPlan handles — kept in a unified byte-accounted LRU
//     store with a global cap and per-tenant quotas.
//
// Governance rules of the unified store:
//   * ref-counted pinning: an entry whose shared_ptr is still held by a
//     running job (use_count > 1) is never evicted — eviction only
//     drops the broker's reference, so nothing a job is using dies
//     under it;
//   * global caps: inserting past max_bytes / max_entries evicts
//     least-recently-used unpinned entries until the new entry fits;
//   * per-tenant quota: a tenant over its byte quota first evicts its
//     *own* LRU entries; if the new artefact still doesn't fit the
//     quota, it is handed to the job unretained (the job works, the
//     tenant just doesn't get to occupy shared cache) — quota pressure
//     degrades a tenant's hit rate, never its correctness, and never
//     its neighbours'.
//
// Everything here is caching of deterministic constructions, so sharing
// is invisible to verdicts: a Scenario built fresh and a memoized one
// produce bit-identical traces (sim/scenario.h's memoization contract),
// and engine sharing is score-identical (sync/engine.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "detect/engine_cache.h"

namespace clockmark::dsp {
class FftPlan;
}

namespace clockmark::sim {
class Scenario;
struct ScenarioConfig;
}

namespace clockmark::sync {
class CandidateEngine;
}

namespace clockmark::serve {

struct ScenarioRef;

/// The deterministic ScenarioConfig a ScenarioRef denotes — the one
/// mapping shared by the broker's builds and by tests asserting that
/// service verdicts match direct Session runs bit for bit.
sim::ScenarioConfig to_scenario_config(const ScenarioRef& ref);

struct BrokerConfig {
  /// Engines retained by the shared detect::EngineCache.
  std::size_t engine_capacity = detect::EngineCache::kDefaultCapacity;
  /// Unified store caps (scenario memos + plan handles).
  std::size_t max_bytes = 256u << 20u;  ///< 256 MiB of estimated memo size
  std::size_t max_entries = 32;
  /// Per-tenant byte quota in the unified store; 0 = no quota.
  std::size_t tenant_max_bytes = 0;
};

struct TenantUsage {
  std::size_t bytes = 0;
  std::size_t entries = 0;
};

struct BrokerStats {
  detect::EngineCacheStats engines;
  std::size_t hits = 0;        ///< unified-store hits
  std::size_t misses = 0;      ///< unified-store builds
  std::size_t evictions = 0;   ///< entries dropped by caps/quota
  std::size_t uncached = 0;    ///< built but not retained (quota pressure)
  std::size_t bytes = 0;       ///< estimated bytes currently retained
  std::size_t entries = 0;
  std::map<std::string, TenantUsage> tenants;
};

class ResourceBroker {
 public:
  explicit ResourceBroker(BrokerConfig config = {});

  /// The Scenario for `ref`, memoized across jobs, repetitions and
  /// tenants (the ref's repetition is *not* part of the identity — one
  /// Scenario serves all repetitions; see sim/scenario.h). `*hit`
  /// reports whether this call reused a cached construction.
  std::shared_ptr<const sim::Scenario> scenario(const std::string& tenant,
                                                const ScenarioRef& ref,
                                                bool* hit = nullptr);

  /// The blind-search engine for `pattern`, via the shared EngineCache.
  std::shared_ptr<const sync::CandidateEngine> engine(
      const std::string& tenant, std::span<const double> pattern,
      bool* hit = nullptr);

  /// A pinned FFT-plan handle for transform size n (nullptr when the
  /// registry declines — n == 0 or beyond dsp::kMaxPlannedFftSize).
  /// dsp::get_fft_plan already keeps a process-wide registry; the
  /// broker's entry pins the handle so plan reuse shows up in the same
  /// accounting as every other shared artefact.
  std::shared_ptr<const dsp::FftPlan> plan(const std::string& tenant,
                                           std::size_t n,
                                           bool* hit = nullptr);

  /// The engine cache itself — Sessions constructed for service jobs
  /// share it directly.
  const std::shared_ptr<detect::EngineCache>& engines() const noexcept {
    return engines_;
  }

  BrokerStats stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    std::string tenant;  ///< who caused the build (quota accounting)
    std::uint64_t last_use = 0;
  };

  /// Returns the cached value for `key` or builds it via `build` and
  /// retains it (at an estimated `bytes`) subject to caps and quota.
  std::shared_ptr<const void> acquire(
      const std::string& tenant, const std::string& key, bool* hit,
      std::size_t bytes, const std::function<std::shared_ptr<const void>()>& build);

  /// Evicts unpinned LRU entries until `need` more bytes and one more
  /// entry fit under the global caps; returns false when pinned entries
  /// make that impossible. Caller holds mu_.
  bool make_room(std::size_t need);
  /// Same, against `tenant`'s quota, evicting only that tenant's
  /// entries. Caller holds mu_.
  bool make_tenant_room(const std::string& tenant, std::size_t need);
  void evict(std::size_t index);

  const BrokerConfig config_;
  std::shared_ptr<detect::EngineCache> engines_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::map<std::string, TenantUsage> tenants_;
  std::uint64_t clock_ = 0;
  std::size_t bytes_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
  std::size_t uncached_ = 0;
};

}  // namespace clockmark::serve
