#include "serve/host.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "serve/dispatch.h"
#include "serve/protocol.h"

namespace clockmark::serve {

namespace {

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

ServiceHost::ServiceHost(DetectionService& service, HostConfig config)
    : service_(service) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("ServiceHost: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.bind_address.c_str(), &addr.sin_addr) != 1) {
    close_quietly(listen_fd_);
    throw std::runtime_error("ServiceHost: bad bind address " +
                             config.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, config.backlog) != 0) {
    const std::string why = std::strerror(errno);
    close_quietly(listen_fd_);
    throw std::runtime_error("ServiceHost: bind/listen on " +
                             config.bind_address + ":" +
                             std::to_string(config.port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    const std::string why = std::strerror(errno);
    close_quietly(listen_fd_);
    throw std::runtime_error("ServiceHost: getsockname: " + why);
  }
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ServiceHost::~ServiceHost() { stop(); }

void ServiceHost::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      close_quietly(fd);
      return;
    }
    connection_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void ServiceHost::serve_connection(int fd) {
  Dispatcher dispatcher(service_);
  try {
    while (std::optional<Frame> request = read_frame(fd)) {
      const Frame response = dispatcher.handle(*request);
      write_frame(fd, response);
      if (request->type == MsgType::kShutdown) {
        request_shutdown();
        break;
      }
    }
  } catch (const std::exception&) {
    // Torn frame or dead peer: drop the connection. The protocol has no
    // recovery point inside a frame, and per-connection state dies with
    // the Dispatcher.
  }
  ::shutdown(fd, SHUT_RDWR);
  // The fd itself is closed by stop() (it stays in connection_fds_ so a
  // concurrent stop() never races a close with our reads).
}

void ServiceHost::request_shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void ServiceHost::wait_for_shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [&] { return shutdown_requested_ || stopped_; });
}

void ServiceHost::stop() {
  std::vector<std::thread> connections;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    shutdown_requested_ = true;
    connections.swap(connections_);
  }
  shutdown_cv_.notify_all();
  // Unblock accept() and every blocked read; then join.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : connection_fds_) close_quietly(fd);
    connection_fds_.clear();
  }
  close_quietly(listen_fd_);
  listen_fd_ = -1;
}

}  // namespace clockmark::serve
