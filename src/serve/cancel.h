// Cooperative cancellation for service jobs: a CancelSource flips a
// flag, any number of CancelToken copies observe it. Cancellation in
// the detection paths is *cooperative by design* — a batch CPA sweep or
// a blind-search probe is not interruptible mid-kernel, so the service
// checks the token at the natural safe points (chunk boundaries in the
// stream loop, between phases in the batch path) and a cancel lands at
// the next one. std::stop_token would fit, but a 20-line shared atomic
// keeps the dependency surface of cm_serve at "what the repo already
// uses" and makes the memory-order story explicit.
#pragma once

#include <atomic>
#include <memory>

namespace clockmark::serve {

class CancelToken {
 public:
  CancelToken() = default;

  /// True once the owning source requested cancellation. Relaxed order
  /// is enough: the flag carries no data, and a check that narrowly
  /// misses the flip just runs to the next boundary.
  bool cancelled() const noexcept {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<std::atomic<bool>> flag_;
};

class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancelToken token() const { return CancelToken(flag_); }
  void cancel() noexcept { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace clockmark::serve
