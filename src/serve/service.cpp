#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>

#include "sim/scenario.h"
#include "stream/online_detector.h"
#include "stream/trace_source.h"

namespace clockmark::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

/// Chunks an inline trace owned by the JobSpec (stable for the job's
/// lifetime — the spec lives in the JobState the worker holds).
class InlineTraceSource : public stream::TraceSource {
 public:
  InlineTraceSource(const std::vector<double>& y, std::size_t chunk_cycles)
      : y_(y), chunk_cycles_(chunk_cycles == 0 ? 4096 : chunk_cycles) {}

  std::optional<stream::Chunk> next() override {
    if (position_ >= y_.size()) return std::nullopt;
    const std::size_t take = std::min(chunk_cycles_, y_.size() - position_);
    stream::Chunk chunk;
    chunk.index = index_++;
    chunk.start_cycle = position_;
    chunk.values.assign(y_.begin() + static_cast<std::ptrdiff_t>(position_),
                        y_.begin() +
                            static_cast<std::ptrdiff_t>(position_ + take));
    position_ += take;
    return chunk;
  }

  std::size_t total_cycles() const override { return y_.size(); }

 private:
  const std::vector<double>& y_;
  std::size_t chunk_cycles_;
  std::size_t position_ = 0;
  std::size_t index_ = 0;
};

std::string validate(const JobSpec& spec) {
  const int payloads = (spec.trace.has_value() ? 1 : 0) +
                       (spec.scenario.has_value() ? 1 : 0) +
                       (spec.trace_file.empty() ? 0 : 1) +
                       (spec.source_fn ? 1 : 0);
  if (payloads != 1) {
    return "JobSpec needs exactly one payload (trace, scenario, trace_file "
           "or source_fn); got " +
           std::to_string(payloads);
  }
  if (!spec.scenario.has_value() && spec.pattern.empty()) {
    return "JobSpec needs the expected watermark pattern for non-scenario "
           "payloads";
  }
  if (spec.tenant.empty()) {
    return "JobSpec needs a tenant id";
  }
  return {};
}

}  // namespace

struct DetectionService::JobState {
  std::uint64_t id = 0;
  JobSpec spec;
  CancelSource cancel;
  std::promise<JobResult> promise;
  std::shared_future<JobResult> future;
  Clock::time_point submitted_at;
};

DetectionService::DetectionService(ServiceConfig config,
                                   std::shared_ptr<ResourceBroker> broker)
    : config_(std::move(config)),
      broker_(broker != nullptr
                  ? std::move(broker)
                  : std::make_shared<ResourceBroker>(config_.broker)),
      queue_(config_.queue_capacity) {
  const std::size_t workers = std::max<std::size_t>(1, config_.workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

DetectionService::~DetectionService() { shutdown(/*drain_queued=*/false); }

JobTicket DetectionService::submit(JobSpec spec) {
  auto state = std::make_shared<JobState>();
  state->spec = std::move(spec);
  state->future = state->promise.get_future().share();
  state->submitted_at = Clock::now();

  auto reject = [&](const std::string& why) {
    JobResult result;
    result.id = state->id;
    result.tenant = state->spec.tenant;
    result.status = JobStatus::kRejected;
    result.error = why;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++rejected_;
      if (state->id != 0) active_.erase(state->id);
    }
    idle_.notify_all();
    state->promise.set_value(std::move(result));
    return JobTicket{state->id, state->future};
  };

  if (const std::string why = validate(state->spec); !why.empty()) {
    return reject(why);
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) {
      // id stays 0: the job never entered the service.
    } else {
      state->id = next_id_++;
      ++submitted_;
      active_.emplace(state->id, state);
    }
  }
  if (state->id == 0) {
    return reject("service is shut down");
  }
  const JobPriority priority = state->spec.priority;
  const std::string tenant = state->spec.tenant;
  const bool queued =
      config_.reject_when_full
          ? queue_.try_push(state, priority, tenant)
          : queue_.push(state, priority, tenant);
  if (!queued) {
    return reject(config_.reject_when_full && !queue_.closed()
                      ? "queue full"
                      : "service is shutting down");
  }
  return JobTicket{state->id, state->future};
}

bool DetectionService::cancel(std::uint64_t id) {
  std::shared_ptr<JobState> state;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = active_.find(id);
    if (it == active_.end()) return false;  // unknown or already terminal
    state = it->second;
  }
  // Flag first: if the worker pops the job between here and try_remove,
  // it sees the flag before ingesting anything.
  state->cancel.cancel();
  auto removed = queue_.try_remove(
      [id](const std::shared_ptr<JobState>& s) { return s->id == id; });
  if (removed.has_value()) {
    JobResult result;
    result.id = id;
    result.tenant = state->spec.tenant;
    result.status = JobStatus::kCancelled;
    result.timing.queue_s = seconds_since(state->submitted_at, Clock::now());
    finish(state, std::move(result), /*was_running=*/false);
  }
  return true;
}

void DetectionService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [&] { return active_.empty(); });
}

void DetectionService::shutdown(bool drain_queued) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) {
      // Idempotent: a second call still joins below if the first is
      // mid-flight, but workers_ joins are guarded per-thread.
    }
    shut_down_ = true;
  }
  if (!drain_queued) {
    // Cancel running jobs (they stop at their next chunk boundary) and
    // resolve everything still queued.
    {
      const std::lock_guard<std::mutex> lock(mu_);
      for (auto& [id, state] : active_) state->cancel.cancel();
    }
    while (true) {
      auto removed = queue_.try_remove(
          [](const std::shared_ptr<JobState>&) { return true; });
      if (!removed.has_value()) break;
      const std::shared_ptr<JobState>& state = *removed;
      JobResult result;
      result.id = state->id;
      result.tenant = state->spec.tenant;
      result.status = JobStatus::kCancelled;
      result.timing.queue_s =
          seconds_since(state->submitted_at, Clock::now());
      finish(state, std::move(result), /*was_running=*/false);
    }
  }
  queue_.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void DetectionService::worker_loop() {
  while (auto state = queue_.pop()) {
    run_job(*state);
  }
}

void DetectionService::run_job(const std::shared_ptr<JobState>& state) {
  const Clock::time_point picked_up = Clock::now();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++running_;
  }
  JobResult result;
  result.id = state->id;
  result.tenant = state->spec.tenant;
  result.timing.queue_s = seconds_since(state->submitted_at, picked_up);
  const CancelToken token = state->cancel.token();
  const JobSpec& spec = state->spec;

  if (token.cancelled()) {
    result.status = JobStatus::kCancelled;
    result.timing.run_s = seconds_since(picked_up, Clock::now());
    finish(state, std::move(result), /*was_running=*/true);
    return;
  }

  try {
    // --- Resolve the payload to a chunk source + pattern + request. ---
    detect::Request eff = spec.request;
    std::vector<double> pattern = spec.pattern;
    std::shared_ptr<const sim::Scenario> scenario;  // pins the broker entry
    std::unique_ptr<stream::TraceSource> source;
    if (spec.scenario.has_value()) {
      scenario = broker_->scenario(spec.tenant, *spec.scenario,
                                   &result.cache.scenario_hit);
      auto s = std::make_unique<stream::ScenarioSource>(
          *scenario, spec.scenario->repetition, config_.chunk_cycles);
      pattern = s->pattern();
      source = std::move(s);
    } else if (spec.trace.has_value()) {
      // Inline traces are file-shaped payloads (the wire carries them as
      // CMTRACE2 frames): honour the capture metadata like run_file does.
      eff = detect::Session::with_file_meta(eff, spec.trace_meta);
      source = std::make_unique<InlineTraceSource>(*spec.trace,
                                                   config_.chunk_cycles);
    } else if (!spec.trace_file.empty()) {
      auto s = std::make_unique<stream::ReplaySource>(
          spec.trace_file, eff.streaming.chunk_cycles);
      eff = detect::Session::with_file_meta(eff, s->meta());
      source = std::move(s);
    } else {
      source = spec.source_fn();
      if (source == nullptr) {
        throw std::runtime_error("source_fn returned no TraceSource");
      }
    }
    if (spec.mode == JobMode::kBatch) {
      // Decide over the whole input: this is the configuration under
      // which streamed == batch holds bit-exactly for every SyncPolicy
      // (stream/online_detector.h), so the verdict equals
      // Session::run(span) / run_file on the same input.
      eff.streaming.early_stop = false;
      eff.lock_cycles = std::numeric_limits<std::size_t>::max();
    }
    stream::OnlineDetectorConfig cfg = detect::stream_detector_config(eff);
    if (eff.sync == sync::SyncPolicy::kBlind) {
      cfg.engine =
          broker_->engine(spec.tenant, pattern, &result.cache.engine_hit);
    }
    stream::OnlineDetector detector(pattern, cfg);

    // --- The chunk loop: every governance hook lives here. ---
    bool cancelled = false;
    while (std::optional<stream::Chunk> chunk = source->next()) {
      if (token.cancelled()) {
        cancelled = true;
        break;
      }
      if (spec.max_cycles != 0) {
        if (chunk->start_cycle >= spec.max_cycles) break;
        if (chunk->end_cycle() > spec.max_cycles) {
          chunk->values.resize(spec.max_cycles - chunk->start_cycle);
        }
      }
      const bool decided = detector.ingest(*chunk, config_.executor);
      if (decided) break;
      if (spec.max_cycles != 0 &&
          detector.cycles_consumed() >= spec.max_cycles) {
        break;
      }
    }
    if (cancelled || token.cancelled()) {
      result.status = JobStatus::kCancelled;
      result.report.cycles = detector.cycles_consumed();
    } else {
      const stream::OnlineDecision& decision =
          detector.finalize(config_.executor);
      result.report = detect::report_from_decision(decision, eff);
      result.status = JobStatus::kDone;
    }
  } catch (const std::exception& e) {
    result.status = JobStatus::kFailed;
    result.error = e.what();
  }
  result.timing.run_s = seconds_since(picked_up, Clock::now());
  result.cache.broker = broker_->stats();
  finish(state, std::move(result), /*was_running=*/true);
}

void DetectionService::finish(const std::shared_ptr<JobState>& state,
                              JobResult result, bool was_running) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    active_.erase(state->id);
    if (was_running) --running_;
    switch (result.status) {
      case JobStatus::kDone:
        ++completed_;
        break;
      case JobStatus::kCancelled:
        ++cancelled_;
        break;
      case JobStatus::kFailed:
        ++failed_;
        break;
      default:
        break;
    }
  }
  idle_.notify_all();
  // Callback before the future resolves: a caller returning from
  // future.get() can rely on its completion callback having run.
  if (config_.on_complete) config_.on_complete(result);
  state->promise.set_value(std::move(result));
}

ServiceStats DetectionService::stats() const {
  ServiceStats s;
  s.queue = queue_.stats();
  s.broker = broker_->stats();
  const std::lock_guard<std::mutex> lock(mu_);
  s.submitted = submitted_;
  s.completed = completed_;
  s.cancelled = cancelled_;
  s.failed = failed_;
  s.rejected = rejected_;
  s.running = running_;
  return s;
}

}  // namespace clockmark::serve
