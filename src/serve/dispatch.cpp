#include "serve/dispatch.h"

#include <chrono>
#include <utility>

namespace clockmark::serve {

Frame Dispatcher::handle(const Frame& request) {
  try {
    switch (request.type) {
      case MsgType::kSubmit: {
        JobSpec spec = decode_submit(request);
        JobTicket ticket = service_.submit(std::move(spec));
        // A rejection resolves the future before submit() returns;
        // answer with the result straight away instead of making the
        // client wait on an id that may be 0.
        if (ticket.result.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
          const JobResult& result = ticket.result.get();
          if (result.status == JobStatus::kRejected) {
            return encode_result(to_wire(result));
          }
        }
        {
          const std::lock_guard<std::mutex> lock(mu_);
          tickets_.emplace(ticket.id, ticket);
        }
        return encode_submit_ack(ticket.id);
      }
      case MsgType::kWait: {
        const std::uint64_t id = decode_wait(request);
        JobTicket ticket;
        {
          const std::lock_guard<std::mutex> lock(mu_);
          const auto it = tickets_.find(id);
          if (it == tickets_.end()) {
            return encode_error("unknown job id " + std::to_string(id) +
                                " (not submitted on this connection?)");
          }
          ticket = it->second;
        }
        const JobResult& result = ticket.result.get();  // blocks
        {
          const std::lock_guard<std::mutex> lock(mu_);
          tickets_.erase(id);
        }
        return encode_result(to_wire(result));
      }
      case MsgType::kCancel: {
        const std::uint64_t id = decode_cancel(request);
        return encode_cancel_ack(service_.cancel(id));
      }
      case MsgType::kShutdown:
        return encode_shutdown_ack();
      default:
        return encode_error("unexpected frame type " +
                            std::to_string(static_cast<int>(request.type)));
    }
  } catch (const std::exception& e) {
    return encode_error(e.what());
  }
}

}  // namespace clockmark::serve
