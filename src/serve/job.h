// The service's unit of work. A JobSpec is everything one detection
// needs — who asked (tenant), how to decide (detect::Request + the
// expected pattern), and what to decide on (exactly one payload:
// an inline trace, a simulator scenario reference, a trace file path,
// or an in-process TraceSource factory — the test seam). A JobResult is
// the verdict plus the operational telemetry a service owes its
// callers: where the time went (queued vs running) and whether the
// shared caches carried the job.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "detect/session.h"
#include "measure/trace_io.h"
#include "serve/broker.h"
#include "serve/queue.h"

namespace clockmark::stream {
class TraceSource;
}

namespace clockmark::serve {

/// How the verdict is produced.
enum class JobMode : int {
  /// Decide over the complete input: early stop is forced off and a
  /// kBlind lock waits for the full trace, so the verdict is
  /// bit-identical to batch detect::Session::run over the same input
  /// (the facade's streamed ≡ batch contract).
  kBatch = 0,
  /// Honour the request's streaming knobs as-is (early stop, mid-stream
  /// blind lock) — bit-identical to detect::Session::run(TraceSource&).
  kStream = 1,
};

/// A simulator-backed payload: enough to reconstruct the Scenario
/// deterministically on the service side (the broker memoizes the
/// expensive gate-level characterisation across jobs and tenants).
/// Matching tests' fast_config, the noise overrides keep short traces
/// deterministic; 0 = keep the chip default.
struct ScenarioRef {
  int chip = 1;  ///< 1 = chip I (hard macro), 2 = chip II (RTL-embedded)
  std::size_t trace_cycles = 300000;
  std::uint64_t seed = 1;
  std::size_t repetition = 0;
  bool watermark_active = true;
  double scope_noise_v_rms = 0.0;
  double probe_noise_v_rms = 0.0;
};

struct JobSpec {
  std::string tenant = "default";
  JobPriority priority = JobPriority::kNormal;
  JobMode mode = JobMode::kBatch;
  detect::Request request;
  /// Expected watermark pattern (one period of WMARK). Required for
  /// every payload except `scenario`, which carries its own.
  std::vector<double> pattern;
  /// Per-job cycle budget: the service stops feeding the detector after
  /// this many raw cycles and decides on what it has (0 = unlimited).
  /// The governance knob for tenants streaming unbounded captures.
  std::size_t max_cycles = 0;

  /// Exactly one of the four payloads below.
  std::optional<std::vector<double>> trace;  ///< inline per-cycle trace
  measure::TraceMeta trace_meta;             ///< capture metadata for `trace`
  std::optional<ScenarioRef> scenario;
  std::string trace_file;  ///< non-empty = replay this CSV/CMTRACE file
  /// In-process source factory (tests: latch-gated sources for the
  /// cancellation-at-chunk-boundary assertions). Not serialisable.
  std::function<std::unique_ptr<stream::TraceSource>()> source_fn;
};

enum class JobStatus : int {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,       ///< verdict produced (detected either way)
  kCancelled = 3,  ///< stopped at a chunk boundary or pulled from queue
  kFailed = 4,     ///< payload/detector threw; see error
  kRejected = 5,   ///< never queued (bad spec, full queue, shutdown)
};

struct JobTiming {
  double queue_s = 0.0;  ///< submit → worker pickup
  double run_s = 0.0;    ///< worker pickup → verdict
};

/// Did the shared caches carry this job? The per-job booleans are exact
/// (sampled at acquisition time, not inferred from racy global
/// counters); `broker` is the broker-wide snapshot after the job.
struct JobCacheStats {
  bool engine_hit = false;    ///< blind-search engine served from cache
  bool scenario_hit = false;  ///< scenario characterisation reused
  BrokerStats broker;
};

struct JobResult {
  std::uint64_t id = 0;
  std::string tenant;
  JobStatus status = JobStatus::kQueued;
  detect::Report report;  ///< meaningful when status == kDone
  std::string error;      ///< kFailed / kRejected reason
  JobTiming timing;
  JobCacheStats cache;
};

/// Handle returned by DetectionService::submit. The future is shared so
/// callers can hand copies to waiters; it is fulfilled exactly once,
/// whatever the outcome (including rejection).
struct JobTicket {
  std::uint64_t id = 0;
  std::shared_future<JobResult> result;
};

}  // namespace clockmark::serve
