// The service's wire protocol: length-prefixed binary frames over a
// byte stream.
//
// Frame layout (little-endian, like every on-disk format in this repo):
//
//   u32 length      bytes that follow (type byte + payload)
//   u8  type        MsgType
//   ... payload     message-specific, see the codec functions
//
// A kSubmit's inline trace rides inside the frame as a CMTRACE2 block —
// byte-for-byte the header+payload measure::write_trace_binary writes
// (magic, u64 cycle count, 3×f64 capture metadata, raw doubles) — so
// the service speaks the same trace dialect on the wire as on disk, and
// applies the same truncation rejection: a count that doesn't match the
// bytes actually present is a ProtocolError, never a silently short
// trace.
//
// Results cross the wire as a WireResult summary (verdict, confidence,
// peak statistics, sync estimate, timing, cache telemetry). The full
// rho spectrum stays server-side: it is O(pattern period) doubles per
// job and remote callers decide on the summary; in-process callers who
// need the spectrum hold the JobTicket future, which carries the whole
// detect::Report.
//
// Every decoder validates its input and throws ProtocolError on
// underrun, overrun, bad magic or an unknown enum value — a malformed
// frame must fail the one request, not wedge the connection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/job.h"

namespace clockmark::serve {

class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& reason)
      : std::runtime_error("serve protocol: " + reason) {}
};

enum class MsgType : std::uint8_t {
  kSubmit = 1,       ///< client → server: JobSpec
  kSubmitAck = 2,    ///< server → client: job id
  kWait = 3,         ///< client → server: block until job id is terminal
  kResult = 4,       ///< server → client: WireResult
  kCancel = 5,       ///< client → server: job id
  kCancelAck = 6,    ///< server → client: cancellation accepted?
  kShutdown = 7,     ///< client → server: stop the daemon
  kShutdownAck = 8,  ///< server → client: acknowledged, closing
  kError = 9,        ///< server → client: request failed, message
};

struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
};

/// Frames larger than this are rejected before allocation — a corrupt
/// length prefix must not look like a 4 GiB allocation request.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 28u;  // 256 MiB

/// The blind-lock / known-offset estimate, flattened.
struct WireSync {
  double offset_cycles = 0.0;  ///< correction warp
  double ratio = 1.0;
  double drift = 0.0;
  std::uint64_t peak_rotation = 0;
  double total_offset_cycles = 0.0;  ///< SyncEstimate::offset_cycles
  double peak_z = 0.0;
  double confidence = 0.0;
  bool locked = false;
  std::uint64_t evaluations = 0;
};

/// The result summary that crosses the wire (see header comment).
struct WireResult {
  std::uint64_t id = 0;
  std::string tenant;
  JobStatus status = JobStatus::kQueued;
  bool detected = false;
  double confidence = 0.0;
  std::uint64_t cycles = 0;
  std::uint64_t peak_rotation = 0;
  double peak_z = 0.0;
  std::string reason;  ///< cpa::DetectionResult::reason
  std::optional<WireSync> sync;
  std::string error;
  double queue_s = 0.0;
  double run_s = 0.0;
  bool engine_hit = false;
  bool scenario_hit = false;
  std::uint64_t broker_hits = 0;
  std::uint64_t broker_misses = 0;
  std::uint64_t broker_evictions = 0;
  std::uint64_t engine_hits = 0;
  std::uint64_t engine_misses = 0;
  std::uint64_t engine_evictions = 0;
};

/// JobResult → wire summary.
WireResult to_wire(const JobResult& result);

// --- message codecs -------------------------------------------------
// encode_* produce a complete Frame; decode_* validate the frame type
// and payload and throw ProtocolError on anything malformed.

Frame encode_submit(const JobSpec& spec);
JobSpec decode_submit(const Frame& frame);

Frame encode_submit_ack(std::uint64_t id);
std::uint64_t decode_submit_ack(const Frame& frame);

Frame encode_wait(std::uint64_t id);
std::uint64_t decode_wait(const Frame& frame);

Frame encode_result(const WireResult& result);
WireResult decode_result(const Frame& frame);

Frame encode_cancel(std::uint64_t id);
std::uint64_t decode_cancel(const Frame& frame);

Frame encode_cancel_ack(bool accepted);
bool decode_cancel_ack(const Frame& frame);

Frame encode_shutdown();
Frame encode_shutdown_ack();

Frame encode_error(const std::string& message);
std::string decode_error(const Frame& frame);

// --- frame I/O over a byte stream ----------------------------------

/// Serialises a frame (length prefix + type + payload).
std::vector<std::uint8_t> pack_frame(const Frame& frame);

/// Parses one frame from `bytes`, which must hold exactly one packed
/// frame (tests; socket I/O uses the fd variants below).
Frame unpack_frame(std::span<const std::uint8_t> bytes);

/// Blocking frame I/O on a connected socket / pipe fd. read_frame
/// returns nullopt on clean EOF before any byte of a frame; a torn
/// frame (EOF mid-frame) or oversized length throws ProtocolError.
void write_frame(int fd, const Frame& frame);
std::optional<Frame> read_frame(int fd);

}  // namespace clockmark::serve
