#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace clockmark::serve {

SubmitOutcome interpret_submit_response(const Frame& response) {
  if (response.type == MsgType::kSubmitAck) {
    return SubmitOutcome{decode_submit_ack(response), std::nullopt};
  }
  if (response.type == MsgType::kResult) {
    WireResult result = decode_result(response);
    return SubmitOutcome{result.id, std::move(result)};
  }
  if (response.type == MsgType::kError) {
    throw std::runtime_error("submit failed: " + decode_error(response));
  }
  throw ProtocolError("unexpected submit response type " +
                      std::to_string(static_cast<int>(response.type)));
}

namespace {

WireResult interpret_wait_response(const Frame& response) {
  if (response.type == MsgType::kResult) return decode_result(response);
  if (response.type == MsgType::kError) {
    throw std::runtime_error("wait failed: " + decode_error(response));
  }
  throw ProtocolError("unexpected wait response type " +
                      std::to_string(static_cast<int>(response.type)));
}

}  // namespace

Frame LocalClient::round_trip(const Frame& request) {
  // Pack/unpack both directions: the in-process path must not be able
  // to pass anything the wire couldn't carry.
  const Frame decoded_request = unpack_frame(pack_frame(request));
  const Frame response = dispatcher_.handle(decoded_request);
  return unpack_frame(pack_frame(response));
}

SubmitOutcome LocalClient::submit(const JobSpec& spec) {
  return interpret_submit_response(round_trip(encode_submit(spec)));
}

WireResult LocalClient::wait(std::uint64_t id) {
  return interpret_wait_response(round_trip(encode_wait(id)));
}

bool LocalClient::cancel(std::uint64_t id) {
  return decode_cancel_ack(round_trip(encode_cancel(id)));
}

TcpClient::TcpClient(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("TcpClient: socket: ") +
                             std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("TcpClient: bad host address " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("TcpClient: connect to " + host + ":" +
                             std::to_string(port) + ": " + why);
  }
}

TcpClient::~TcpClient() {
  if (fd_ >= 0) ::close(fd_);
}

Frame TcpClient::round_trip(const Frame& request) {
  write_frame(fd_, request);
  std::optional<Frame> response = read_frame(fd_);
  if (!response.has_value()) {
    throw std::runtime_error("TcpClient: server closed the connection");
  }
  return std::move(*response);
}

SubmitOutcome TcpClient::submit(const JobSpec& spec) {
  return interpret_submit_response(round_trip(encode_submit(spec)));
}

WireResult TcpClient::wait(std::uint64_t id) {
  return interpret_wait_response(round_trip(encode_wait(id)));
}

bool TcpClient::cancel(std::uint64_t id) {
  return decode_cancel_ack(round_trip(encode_cancel(id)));
}

void TcpClient::shutdown_server() {
  const Frame response = round_trip(encode_shutdown());
  if (response.type != MsgType::kShutdownAck) {
    throw ProtocolError("unexpected shutdown response type " +
                        std::to_string(static_cast<int>(response.type)));
  }
}

}  // namespace clockmark::serve
