#include "wgc/wgc.h"

#include <stdexcept>

#include "clocktree/tree.h"

namespace clockmark::wgc {

WgcSequence::WgcSequence(const WgcConfig& config)
    : config_(config),
      period_(config.mode == WgcMode::kLfsr
                  ? static_cast<std::size_t>(
                        sequence::maximal_period(config.width))
                  : config.width),
      lfsr_(config.width,
            config.mode == WgcMode::kLfsr ? config.effective_taps()
                                          : sequence::maximal_taps(config.width),
            config.seed == 0 ? 1u : config.seed),
      circular_(config.width, config.seed) {}

bool WgcSequence::step() {
  return config_.mode == WgcMode::kLfsr ? lfsr_.step() : circular_.step();
}

std::vector<bool> WgcSequence::generate(std::size_t n) {
  return config_.mode == WgcMode::kLfsr ? lfsr_.generate(n)
                                        : circular_.generate(n);
}

std::vector<bool> WgcSequence::one_period() {
  WgcSequence fresh(config_);
  return fresh.generate(period_);
}

WgcHardware build_wgc(rtl::Netlist& netlist, std::uint32_t module,
                      rtl::NetId root_clock, const WgcConfig& config) {
  if (config.width < 2 || config.width > 32) {
    throw std::invalid_argument("build_wgc: width must be in [2, 32]");
  }
  if (config.seed == 0 && config.mode == WgcMode::kLfsr) {
    throw std::invalid_argument("build_wgc: LFSR seed must be nonzero");
  }
  WgcHardware hw;
  const std::string prefix = netlist.module_path(module);
  const std::string base =
      prefix.empty() ? std::string("wgc") : prefix + "/wgc";

  // Per-stage clock leaves (the WGC clock is never gated).
  clocktree::ClockTreeOptions tree_opt;
  tree_opt.max_fanout = 32;
  tree_opt.name_prefix = base + "_ct";
  const auto tree = clocktree::build_clock_tree(netlist, module, root_clock,
                                                config.width, tree_opt);
  hw.clock_cells = tree.buffers;

  // Stage outputs.
  std::vector<rtl::NetId> q(config.width);
  for (unsigned i = 0; i < config.width; ++i) {
    q[i] = netlist.add_net(base + "_q" + std::to_string(i));
  }

  // Feedback network.
  rtl::NetId msb_d = rtl::kInvalidNet;
  if (config.mode == WgcMode::kLfsr) {
    // XOR chain over tapped state bits.
    const std::uint32_t taps = config.effective_taps();
    std::vector<rtl::NetId> tapped;
    for (unsigned i = 0; i < config.width; ++i) {
      if (taps & (1u << i)) tapped.push_back(q[i]);
    }
    rtl::NetId acc = tapped.front();
    for (std::size_t i = 1; i < tapped.size(); ++i) {
      const rtl::NetId out =
          netlist.add_net(base + "_fb" + std::to_string(i));
      hw.xor_gates.push_back(netlist.add_gate(
          rtl::CellKind::kXor2, base + "_xor" + std::to_string(i), module,
          {acc, tapped[i]}, out));
      acc = out;
    }
    msb_d = acc;
  } else {
    msb_d = q[0];  // circular rotate
  }

  // Shift-register stages: bit i loads bit i+1; the MSB loads feedback.
  for (unsigned i = 0; i < config.width; ++i) {
    const rtl::NetId d = (i + 1 < config.width) ? q[i + 1] : msb_d;
    const bool init = ((config.seed >> i) & 1u) != 0u;
    hw.flops.push_back(netlist.add_flop(
        rtl::CellKind::kDff, base + "_ff" + std::to_string(i), module, {d},
        q[i], tree.leaf_nets[i], init));
  }

  hw.wmark = q[0];
  hw.register_count = config.width;
  return hw;
}

}  // namespace clockmark::wgc
