// Watermark Generation Circuit (WGC). The paper's WGC contains two
// sequence generators configurable as 32-bit LFSRs or circular shift
// registers; the experiments use a single generator configured as a
// 12-bit maximal-length LFSR. This module provides both a behavioural
// model (fast bit stream for long traces) and a gate-level realisation
// (for functional simulation, power characterisation and the removal-
// attack analysis).
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/netlist.h"
#include "sequence/circular.h"
#include "sequence/lfsr.h"
#include "sequence/polynomials.h"

namespace clockmark::wgc {

enum class WgcMode {
  kLfsr,      ///< maximal-length LFSR (paper's configuration)
  kCircular,  ///< circular shift register with a fixed signature
};

struct WgcConfig {
  WgcMode mode = WgcMode::kLfsr;
  unsigned width = 12;      ///< register stages used (2..32)
  std::uint32_t taps = 0;   ///< 0 = sequence::maximal_taps(width)
  std::uint32_t seed = 1;   ///< initial state / circular pattern

  std::uint32_t effective_taps() const {
    return taps != 0 ? taps : sequence::maximal_taps(width);
  }
};

/// Behavioural WGC: emits the WMARK bit stream.
class WgcSequence {
 public:
  explicit WgcSequence(const WgcConfig& config);

  bool step();
  std::vector<bool> generate(std::size_t n);

  /// Sequence period: 2^width - 1 for a maximal LFSR, width for a
  /// circular register (upper bound; actual may divide it).
  std::size_t period() const noexcept { return period_; }

  const WgcConfig& config() const noexcept { return config_; }

  /// One full period of the sequence, from the configured seed.
  std::vector<bool> one_period();

 private:
  WgcConfig config_;
  std::size_t period_;
  sequence::Lfsr lfsr_;
  sequence::CircularShiftRegister circular_;
};

/// Gate-level WGC built into a netlist.
struct WgcHardware {
  std::vector<rtl::CellId> flops;       ///< shift-register stages
  std::vector<rtl::CellId> xor_gates;   ///< feedback network (LFSR mode)
  std::vector<rtl::CellId> clock_cells; ///< leaf clock buffers
  rtl::NetId wmark = rtl::kInvalidNet;  ///< the WMARK output net
  std::size_t register_count = 0;       ///< paper's area unit
};

/// Builds the WGC under `module`, clocked (un-gated — the WGC itself
/// always runs) from root_clock. The gate-level sequence matches
/// WgcSequence bit-for-bit.
WgcHardware build_wgc(rtl::Netlist& netlist, std::uint32_t module,
                      rtl::NetId root_clock, const WgcConfig& config);

}  // namespace clockmark::wgc
