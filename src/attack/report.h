// The Section VI study as a runnable comparison: build the same
// functional IP twice, protect it with (a) the state-of-the-art
// load-circuit watermark and (b) the proposed clock-modulation watermark
// embedded into the IP's own clock gates, then attack both designs and
// tabulate detectability and removal impact.
#pragma once

#include <string>

#include "attack/analysis.h"
#include "attack/removal.h"
#include "watermark/embedder.h"
#include "watermark/load_circuit.h"

namespace clockmark::attack {

struct ArchitectureRobustness {
  std::string architecture;
  std::size_t watermark_cells = 0;
  std::size_t watermark_registers = 0;
  std::size_t suspicious_circuits_found = 0;
  double attacker_recall = 0.0;  ///< wm cells flagged / wm cells
  RemovalOutcome removal;        ///< consequences of deleting the wm
};

struct RobustnessReport {
  ArchitectureRobustness load_circuit;
  ArchitectureRobustness clock_modulation;
};

struct RobustnessStudyConfig {
  watermark::DemoIpConfig ip;
  wgc::WgcConfig wgc;
  std::size_t load_registers = 576;
  std::size_t compare_cycles = 256;
};

RobustnessReport run_robustness_study(const RobustnessStudyConfig& config);

/// Formats the report as the bench/sec6 table.
std::string to_string(const RobustnessReport& report);

}  // namespace clockmark::attack
