#include "attack/report.h"

#include <sstream>

namespace clockmark::attack {
namespace {

ArchitectureRobustness analyze_design(const rtl::Netlist& netlist,
                                      rtl::NetId root_clock,
                                      rtl::NetId observe_net,
                                      const std::string& wm_prefix,
                                      const std::string& architecture,
                                      std::size_t compare_cycles) {
  ArchitectureRobustness r;
  r.architecture = architecture;
  const auto wm_cells = cells_under_module(netlist, wm_prefix);
  r.watermark_cells = wm_cells.size();
  r.watermark_registers = netlist.register_count(wm_prefix);

  const auto suspicious = find_standalone_circuits(netlist);
  r.suspicious_circuits_found = suspicious.size();
  r.attacker_recall = attacker_recall(suspicious, wm_cells);

  r.removal = simulate_removal_attack(netlist, wm_cells, root_clock,
                                      observe_net, compare_cycles);
  return r;
}

}  // namespace

RobustnessReport run_robustness_study(const RobustnessStudyConfig& config) {
  RobustnessReport report;

  // ---- Design A: functional IP + stand-alone load-circuit watermark ----
  {
    rtl::Netlist nl;
    const rtl::NetId clk = nl.add_net("clk");
    const auto ip = watermark::build_demo_ip_block(nl, "soc/ip", clk,
                                                   config.ip);
    watermark::LoadCircuitConfig lc;
    lc.wgc = config.wgc;
    lc.load_registers = config.load_registers;
    watermark::build_load_circuit_watermark(nl, "soc/watermark", clk, lc);
    report.load_circuit =
        analyze_design(nl, clk, ip.data_out, "soc/watermark",
                       "load-circuit (state of the art)",
                       config.compare_cycles);
  }

  // ---- Design B: the same IP with clock-modulation embedded -------------
  {
    rtl::Netlist nl;
    const rtl::NetId clk = nl.add_net("clk");
    const auto ip = watermark::build_demo_ip_block(nl, "soc/ip", clk,
                                                   config.ip);
    watermark::embed_clock_modulation(nl, "soc/watermark", clk, config.wgc,
                                      ip.icgs);
    report.clock_modulation =
        analyze_design(nl, clk, ip.data_out, "soc/watermark",
                       "clock modulation (proposed)",
                       config.compare_cycles);
  }
  return report;
}

std::string to_string(const RobustnessReport& report) {
  std::ostringstream os;
  auto row = [&os](const ArchitectureRobustness& a) {
    os << a.architecture << "\n"
       << "  watermark cells / registers : " << a.watermark_cells << " / "
       << a.watermark_registers << "\n"
       << "  stand-alone circuits found  : " << a.suspicious_circuits_found
       << "\n"
       << "  attacker recall on wm cells : " << a.attacker_recall * 100.0
       << " %\n"
       << "  removal: unclocked func regs: "
       << a.removal.unclocked_registers << "\n"
       << "  removal: output mismatches  : "
       << a.removal.output_mismatch_cycles << " / "
       << a.removal.compared_cycles << " cycles -> "
       << (a.removal.functionally_intact()
               ? "design intact (watermark removable)"
               : "design BROKEN (removal destroys function)")
       << "\n";
  };
  row(report.load_circuit);
  row(report.clock_modulation);
  return os.str();
}

}  // namespace clockmark::attack
