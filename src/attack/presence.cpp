#include "attack/presence.h"

#include <algorithm>

#include "cpa/correlation.h"
#include "sequence/lfsr.h"
#include "sequence/polynomials.h"

namespace clockmark::attack {
namespace {

std::uint64_t euler_phi(std::uint64_t n) {
  std::uint64_t result = n;
  for (std::uint64_t p = 2; p * p <= n; ++p) {
    if (n % p == 0) {
      while (n % p == 0) n /= p;
      result -= result / p;
    }
  }
  if (n > 1) result -= result / n;
  return result;
}

}  // namespace

std::uint64_t primitive_polynomial_count(unsigned width) {
  if (width == 0 || width > 63) return 0;
  const std::uint64_t order = (1ULL << width) - 1ULL;
  return euler_phi(order) / width;
}

PresenceScanResult scan_for_watermark(std::span<const double> measurement,
                                      unsigned min_width,
                                      unsigned max_width,
                                      const cpa::DetectorPolicy& policy,
                                      runtime::Executor* executor) {
  PresenceScanResult result;
  const cpa::Detector detector(policy);
  std::vector<unsigned> widths;
  for (unsigned w = std::max(2u, min_width);
       w <= std::min(20u, max_width); ++w) {
    const std::size_t period = (1u << w) - 1u;
    if (measurement.size() < period) continue;  // cannot resolve rotations
    widths.push_back(w);
  }

  const auto evaluate = [&](std::size_t i) -> PresenceCandidate {
    const unsigned w = widths[i];
    const std::size_t period = (1u << w) - 1u;
    sequence::Lfsr lfsr(w, sequence::maximal_taps(w), 1);
    std::vector<double> pattern(period);
    for (auto& v : pattern) v = lfsr.step() ? 1.0 : 0.0;

    const auto verdict = detector.detect(measurement, pattern);
    PresenceCandidate c;
    c.width = w;
    c.taps = sequence::maximal_taps(w);
    c.peak_rho = verdict.spectrum.peak_value;
    c.peak_z = verdict.spectrum.peak_z;
    c.peak_rotation = verdict.spectrum.peak_rotation;
    c.detected = verdict.detected;
    return c;
  };

  if (executor != nullptr && executor->thread_count() > 1) {
    result.candidates = executor->parallel_map<PresenceCandidate>(
        widths.size(), evaluate);
  } else {
    result.candidates.reserve(widths.size());
    for (std::size_t i = 0; i < widths.size(); ++i) {
      result.candidates.push_back(evaluate(i));
    }
  }
  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const PresenceCandidate& a, const PresenceCandidate& b) {
              return a.peak_z > b.peak_z;
            });
  result.watermark_found =
      !result.candidates.empty() && result.candidates.front().detected;
  result.best = 0;
  return result;
}

}  // namespace clockmark::attack
