#include "attack/analysis.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace clockmark::attack {

std::vector<SuspiciousCircuit> find_standalone_circuits(
    const rtl::Netlist& netlist, std::size_t min_cells) {
  const rtl::ConnectivityGraph graph(netlist);
  const std::vector<bool> reaches = graph.reaches_primary_output();

  // Group dead cells by weakly-connected component of the full graph,
  // then keep only components made entirely of dead cells — a component
  // with any live cell is part of the functional design.
  std::size_t component_count = 0;
  const auto comp = graph.weakly_connected_components(&component_count);

  std::vector<bool> component_all_dead(component_count, true);
  std::vector<std::vector<rtl::CellId>> members(component_count);
  for (std::size_t i = 0; i < netlist.cell_count(); ++i) {
    const std::size_t c = comp[i];
    members[c].push_back(static_cast<rtl::CellId>(i));
    if (reaches[i]) component_all_dead[c] = false;
  }

  std::vector<SuspiciousCircuit> out;
  for (std::size_t c = 0; c < component_count; ++c) {
    if (!component_all_dead[c] || members[c].size() < min_cells) continue;
    SuspiciousCircuit sc;
    sc.cells = members[c];
    std::set<std::string> mods;
    for (const rtl::CellId id : sc.cells) {
      const auto& cell = netlist.cell(id);
      if (rtl::is_sequential(cell.kind)) ++sc.register_count;
      mods.insert(netlist.module_path(cell.module));
    }
    sc.module_paths.assign(mods.begin(), mods.end());
    out.push_back(std::move(sc));
  }
  std::sort(out.begin(), out.end(),
            [](const SuspiciousCircuit& a, const SuspiciousCircuit& b) {
              return a.size() > b.size();
            });
  return out;
}

double attacker_recall(const std::vector<SuspiciousCircuit>& found,
                       const std::vector<rtl::CellId>& watermark_cells) {
  if (watermark_cells.empty()) return 0.0;
  std::unordered_set<rtl::CellId> flagged;
  for (const auto& sc : found) {
    flagged.insert(sc.cells.begin(), sc.cells.end());
  }
  std::size_t hit = 0;
  for (const rtl::CellId id : watermark_cells) {
    if (flagged.count(id) > 0) ++hit;
  }
  return static_cast<double>(hit) /
         static_cast<double>(watermark_cells.size());
}

}  // namespace clockmark::attack
