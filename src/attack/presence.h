// Presence-scan attack: a third party without the watermark key tries to
// *discover* that a power watermark exists. The LFSR key space is small —
// for width w there are phi(2^w - 1)/w primitive polynomials and the CPA
// rotation sweep already covers every seed — so an attacker can simply
// try every (width, polynomial) candidate against a captured trace. A
// significant peak for any candidate reveals the watermark *and* its
// polynomial (the seed/phase only sets where the peak lands).
//
// This is the classic argument for upgrading LFSR watermark keys to
// larger widths or Gold-code keys: the defender's key space must be too
// large to enumerate. abl_presence_scan quantifies the scan cost.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cpa/detector.h"
#include "runtime/executor.h"

namespace clockmark::attack {

struct PresenceCandidate {
  unsigned width = 0;
  std::uint32_t taps = 0;
  double peak_rho = 0.0;
  double peak_z = 0.0;
  std::size_t peak_rotation = 0;
  bool detected = false;
};

struct PresenceScanResult {
  std::vector<PresenceCandidate> candidates;  ///< all tried, best first
  bool watermark_found = false;
  /// Index into candidates of the winning hypothesis (if found).
  std::size_t best = 0;
};

/// Scans the measurement against the maximal-length sequence of every
/// width in [min_width, max_width] (one representative primitive
/// polynomial per width — the library's table; a determined attacker
/// would enumerate all of them, which scales the cost by ~phi(2^w-1)/w).
/// Each width hypothesis is an independent CPA sweep; a non-null
/// executor evaluates them concurrently with identical results.
PresenceScanResult scan_for_watermark(std::span<const double> measurement,
                                      unsigned min_width,
                                      unsigned max_width,
                                      const cpa::DetectorPolicy& policy = {},
                                      runtime::Executor* executor = nullptr);

/// Number of primitive polynomials of degree w over GF(2):
/// phi(2^w - 1) / w. The attacker's full enumeration cost per width.
std::uint64_t primitive_polynomial_count(unsigned width);

}  // namespace clockmark::attack
