#include "attack/desync.h"

#include <cmath>
#include <cstddef>

#include "sync/engine.h"
#include "sync/search.h"
#include "sync/warp.h"
#include "util/rng.h"

namespace clockmark::attack {
namespace {

// Clamped linear interpolation at a fractional position — the same
// sampling rule sync::warp_trace applies, reproduced here for the
// stochastic (jitter) positions a WarpSpec cannot express.
double sample_clamped(std::span<const double> y, double pos) {
  if (pos <= 0.0) return y.front();
  const double last = static_cast<double>(y.size() - 1);
  if (pos >= last) return y.back();
  const double base = std::floor(pos);
  const auto q = static_cast<std::size_t>(base);
  const double frac = pos - base;
  return y[q] + frac * (y[q + 1] - y[q]);
}

}  // namespace

sync::WarpSpec desync_warp(const DesyncAttack& attack) {
  sync::WarpSpec spec;
  switch (attack.kind) {
    case DesyncKind::kFixedOffset:
      spec.offset_cycles = attack.offset_cycles;
      break;
    case DesyncKind::kResample:
      spec.ratio = attack.ratio;
      break;
    case DesyncKind::kDrift:
      spec.ratio = attack.ratio;
      spec.drift = attack.drift;
      break;
    case DesyncKind::kJitter:
      break;  // identity: jitter is not a time-base change
  }
  return spec;
}

std::vector<double> apply_desync(std::span<const double> y,
                                 const DesyncAttack& attack) {
  if (y.empty()) return {};
  if (attack.kind != DesyncKind::kJitter) {
    return sync::warp_trace(y, desync_warp(attack));
  }
  util::Pcg32 rng(attack.seed, 0xdE5C17u);
  std::vector<double> out(y.size());
  for (std::size_t k = 0; k < y.size(); ++k) {
    const double pos =
        static_cast<double>(k) + rng.gaussian(0.0, attack.jitter_cycles);
    out[k] = sample_clamped(y, pos);
  }
  return out;
}

DesyncOutcome run_desync_attack(std::span<const double> y,
                                std::span<const double> pattern,
                                const DesyncAttack& attack,
                                const cpa::DetectorPolicy& policy,
                                const sync::BlindSyncConfig& blind,
                                runtime::Executor* executor) {
  const sync::CandidateEngine engine(
      std::vector<double>(pattern.begin(), pattern.end()));
  return run_desync_attack(engine, y, attack, policy, blind, executor);
}

DesyncOutcome run_desync_attack(const sync::CandidateEngine& engine,
                                std::span<const double> y,
                                const DesyncAttack& attack,
                                const cpa::DetectorPolicy& policy,
                                const sync::BlindSyncConfig& blind,
                                runtime::Executor* executor) {
  const std::span<const double> pattern = engine.pattern();
  DesyncOutcome outcome;
  outcome.attack = attack;
  const cpa::Detector detector(policy);
  outcome.baseline_peak_z = detector.detect(y, pattern).spectrum.peak_z;

  const std::vector<double> attacked = apply_desync(y, attack);
  outcome.naive = detector.detect(attacked, pattern);

  outcome.sync = sync::find_sync(engine, attacked, blind, executor);
  if (outcome.sync.correction.is_identity()) {
    outcome.synced = detector.detect(attacked, pattern);
  } else {
    const std::vector<double> corrected =
        sync::warp_trace(attacked, outcome.sync.correction);
    outcome.synced = detector.detect(corrected, pattern);
  }
  return outcome;
}

std::vector<DesyncAttack> default_desync_suite(std::uint64_t seed) {
  std::vector<DesyncAttack> suite;
  {
    DesyncAttack a;
    a.kind = DesyncKind::kFixedOffset;
    a.name = "offset+37.4cyc";
    a.offset_cycles = 37.4;
    suite.push_back(a);
  }
  {
    DesyncAttack a;
    a.kind = DesyncKind::kResample;
    a.name = "resample+80ppm";
    a.ratio = 1.0 + 80e-6;
    suite.push_back(a);
  }
  {
    DesyncAttack a;
    a.kind = DesyncKind::kDrift;
    a.name = "drift-40ppm+2e-9";
    a.ratio = 1.0 - 40e-6;
    a.drift = 2e-9;
    suite.push_back(a);
  }
  {
    DesyncAttack a;
    a.kind = DesyncKind::kJitter;
    a.name = "jitter0.2cyc";
    a.jitter_cycles = 0.2;
    a.seed = seed;
    suite.push_back(a);
  }
  return suite;
}

}  // namespace clockmark::attack
