// Removal-attack simulation: delete a set of cells from a copy of the
// netlist and quantify the damage — structurally (functional registers
// that lose their clock) and behaviourally (does a functional output
// still produce the same waveform?).
#pragma once

#include <cstddef>
#include <vector>

#include "rtl/netlist.h"

namespace clockmark::attack {

struct RemovalOutcome {
  std::size_t cells_removed = 0;
  /// Surviving flip-flops whose clock net is no longer driven by any
  /// clock source (their state is frozen after the attack).
  std::size_t unclocked_registers = 0;
  /// Cycles (out of the compared window) where the reference output net
  /// differs from the attacked design's output.
  std::size_t output_mismatch_cycles = 0;
  std::size_t compared_cycles = 0;
  bool functionally_intact() const noexcept {
    return output_mismatch_cycles == 0;
  }
};

/// Removes `victim_cells` from a copy of `netlist`, then
///  * counts surviving registers with an undriven clock, and
///  * simulates reference vs attacked design for `compare_cycles`
///    cycles, comparing the value of `observe_net` each cycle.
/// `root_clock` is the free-running clock source net.
RemovalOutcome simulate_removal_attack(const rtl::Netlist& netlist,
                                       const std::vector<rtl::CellId>& victim_cells,
                                       rtl::NetId root_clock,
                                       rtl::NetId observe_net,
                                       std::size_t compare_cycles = 256);

/// All cells under a module-path prefix — the typical victim set when an
/// attacker deletes "the watermark module".
std::vector<rtl::CellId> cells_under_module(const rtl::Netlist& netlist,
                                            const std::string& prefix);

}  // namespace clockmark::attack
