// Desynchronisation attacks on watermark detection. The paper's examiner
// relies on a scope trigger for cycle-aligned traces; an uncooperative
// party (or an attacker re-publishing traces) can deny that alignment
// without touching the silicon: start the capture at an arbitrary
// offset, resample it at a slightly wrong clock, let the time base
// drift, or inject per-sample timing jitter. Each smears the CPA
// correlation peak across rotations — the cheapest "removal" attack of
// all, because it costs zero area.
//
// The deterministic attacks are exactly a sync::WarpSpec applied to the
// trace (the attacker's warp; the detector's blind search recovers the
// approximate inverse). Jitter has no deterministic inverse — the
// detection must average through it, which the per-cycle CPA fold
// already does.
//
// run_desync_attack measures both sides: the naive (triggered) detector
// on the desynchronised trace versus the blind-synchronised detector,
// giving the margin the sync subsystem buys back. Wired into
// bench/sec6_robustness alongside the structural removal study.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cpa/detector.h"
#include "sync/types.h"

namespace clockmark::runtime {
class Executor;
}

namespace clockmark::sync {
class CandidateEngine;
}

namespace clockmark::attack {

enum class DesyncKind {
  kFixedOffset,  ///< capture starts offset_cycles into the trace
  kResample,     ///< examiner clock off by (ratio - 1), e.g. ppm error
  kDrift,        ///< time base slope changes linearly over the capture
  kJitter,       ///< zero-mean per-cycle sampling jitter (RMS in cycles)
};

struct DesyncAttack {
  DesyncKind kind = DesyncKind::kFixedOffset;
  std::string name;             ///< label for reports/CSV
  double offset_cycles = 0.0;   ///< kFixedOffset (fractional allowed)
  double ratio = 1.0;           ///< kResample: attacker resample step
  double drift = 0.0;           ///< kDrift: per-cycle slope of the step
  double jitter_cycles = 0.0;   ///< kJitter: RMS timing noise
  std::uint64_t seed = 1;       ///< kJitter noise stream
};

/// The attacker's warp for the deterministic kinds; identity for
/// kJitter (which is stochastic, not a time-base change).
sync::WarpSpec desync_warp(const DesyncAttack& attack);

/// Applies the attack to a cycle-aligned per-cycle trace: what the
/// examiner actually captures. Deterministic kinds resample through
/// desync_warp (shared arithmetic with sync::warp_trace); kJitter reads
/// position k + N(0, jitter) per output cycle, clamped lerp like the
/// warp.
std::vector<double> apply_desync(std::span<const double> y,
                                 const DesyncAttack& attack);

/// Both sides of one attack: the triggered detector on the attacked
/// trace vs the blind-synchronised detector on the same trace.
struct DesyncOutcome {
  DesyncAttack attack;
  cpa::DetectionResult naive;    ///< kTriggered on the attacked trace
  cpa::DetectionResult synced;   ///< after the blind lock's correction
  sync::SyncEstimate sync;       ///< what the blind search recovered
  double baseline_peak_z = 0.0;  ///< triggered detection, aligned trace

  /// Fraction of the aligned peak z the blind-synced detection keeps
  /// (1.0 = full recovery; the acceptance bar is >= 0.9).
  double recovered_margin() const noexcept {
    return baseline_peak_z > 0.0 ? synced.spectrum.peak_z / baseline_peak_z
                                 : 0.0;
  }
};

/// Runs one attack end to end on an aligned trace + pattern. The
/// executor, when non-null, parallelises the blind search.
DesyncOutcome run_desync_attack(std::span<const double> y,
                                std::span<const double> pattern,
                                const DesyncAttack& attack,
                                const cpa::DetectorPolicy& policy = {},
                                const sync::BlindSyncConfig& blind = {},
                                runtime::Executor* executor = nullptr);

/// Same study against a prebuilt sync::CandidateEngine (which carries
/// the pattern). Sweeping a whole attack suite repeats the blind search
/// against one pattern per attack — the engine's cached transforms are
/// shared across all of them. The span-pattern overload above is
/// exactly this with a throwaway engine.
DesyncOutcome run_desync_attack(const sync::CandidateEngine& engine,
                                std::span<const double> y,
                                const DesyncAttack& attack,
                                const cpa::DetectorPolicy& policy = {},
                                const sync::BlindSyncConfig& blind = {},
                                runtime::Executor* executor = nullptr);

/// The standard suite the robustness bench and tests sweep: a fixed
/// fractional offset, a ppm-class resample, thermal-class drift, and
/// sub-cycle jitter.
std::vector<DesyncAttack> default_desync_suite(std::uint64_t seed = 1);

}  // namespace clockmark::attack
