// Tampering (bypass) attack — the stronger follow-up to removal. Instead
// of deleting the watermark, the attacker *neutralises* it: rewire each
// WMARK-modulated clock-gate enable back to its original CLK_CTRL signal
// (bypassing the AND gate), restoring the design's un-watermarked
// behaviour while silencing the power signature.
//
// The attack's hard part is *finding* the modulation points. The naive
// embedding has a tell-tale structural signature: one net (WMARK) fans
// out to many AND gates that all feed ICG enables. find_wmark_fanout_
// signature() implements that detector; diversified embedding
// (embedder.h: embed_clock_modulation_diversified) removes the signature
// by driving every ICG from a different WGC stage.
#pragma once

#include <cstddef>
#include <vector>

#include "rtl/netlist.h"

namespace clockmark::attack {

/// A net suspected to be a watermark sequence line: it feeds at least
/// `min_fanout` AND gates whose outputs drive ICG enables.
struct FanoutSuspect {
  rtl::NetId net = rtl::kInvalidNet;
  std::vector<rtl::CellId> and_gates;  ///< the modulation points
  std::size_t icgs_reached = 0;
};

std::vector<FanoutSuspect> find_wmark_fanout_signature(
    const rtl::Netlist& netlist, std::size_t min_fanout = 3);

/// Outcome of bypassing the suspected modulation points.
struct TamperOutcome {
  std::size_t suspects_found = 0;
  std::size_t gates_bypassed = 0;
  /// Does the tampered design behave exactly like the un-watermarked
  /// reference over the compared window?
  bool function_restored = false;
  std::size_t output_mismatch_cycles = 0;
  std::size_t compared_cycles = 0;
  /// Do any ICG enables still depend (structurally) on the WGC?
  bool watermark_still_wired = true;
};

/// Runs the full attack: find suspects, bypass every suspect AND gate
/// (rewire each dependent ICG's enable to the AND's other input), then
/// compare the result against `reference` (the same IP without any
/// watermark) on `observe_net` for `compare_cycles`, and check whether
/// the cells under `wgc_prefix` still reach any ICG.
TamperOutcome bypass_attack(const rtl::Netlist& watermarked,
                            const rtl::Netlist& reference,
                            rtl::NetId root_clock_watermarked,
                            rtl::NetId root_clock_reference,
                            rtl::NetId observe_watermarked,
                            rtl::NetId observe_reference,
                            const std::string& wgc_prefix,
                            std::size_t min_fanout = 3,
                            std::size_t compare_cycles = 256);

}  // namespace clockmark::attack
