#include "attack/removal.h"

#include <unordered_set>

#include "rtl/simulator.h"

namespace clockmark::attack {

std::vector<rtl::CellId> cells_under_module(const rtl::Netlist& netlist,
                                            const std::string& prefix) {
  std::vector<rtl::CellId> out;
  for (std::size_t i = 0; i < netlist.cell_count(); ++i) {
    const auto id = static_cast<rtl::CellId>(i);
    if (netlist.cell_in_module(id, prefix)) out.push_back(id);
  }
  return out;
}

RemovalOutcome simulate_removal_attack(
    const rtl::Netlist& netlist, const std::vector<rtl::CellId>& victim_cells,
    rtl::NetId root_clock, rtl::NetId observe_net,
    std::size_t compare_cycles) {
  RemovalOutcome outcome;
  outcome.cells_removed = victim_cells.size();
  outcome.compared_cycles = compare_cycles;

  rtl::Netlist attacked = netlist;
  attacked.remove_cells(victim_cells);

  // Structural damage: surviving flops whose clock net lost its driver
  // chain back to the root clock. A net is "clock-alive" if it is the
  // root or is driven by a clock cell whose own clock input is alive.
  {
    // Iteratively propagate liveness through clock cells.
    std::unordered_set<rtl::NetId> alive{root_clock};
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < attacked.cell_count(); ++i) {
        const auto& c = attacked.cell(static_cast<rtl::CellId>(i));
        if (!rtl::is_clock_cell(c.kind)) continue;
        if (c.clock != rtl::kInvalidNet && alive.count(c.clock) > 0 &&
            c.output != rtl::kInvalidNet && alive.count(c.output) == 0) {
          alive.insert(c.output);
          changed = true;
        }
      }
    }
    for (std::size_t i = 0; i < attacked.cell_count(); ++i) {
      const auto& c = attacked.cell(static_cast<rtl::CellId>(i));
      if (rtl::is_sequential(c.kind) &&
          (c.clock == rtl::kInvalidNet || alive.count(c.clock) == 0)) {
        ++outcome.unclocked_registers;
      }
    }
  }

  // Behavioural damage: compare the observed net cycle by cycle.
  rtl::Simulator reference(netlist);
  reference.set_clock_source(root_clock);
  rtl::Simulator mutated(attacked);
  mutated.set_clock_source(root_clock);
  for (std::size_t i = 0; i < compare_cycles; ++i) {
    reference.step();
    mutated.step();
    if (reference.net_value(observe_net) != mutated.net_value(observe_net)) {
      ++outcome.output_mismatch_cycles;
    }
  }
  return outcome;
}

}  // namespace clockmark::attack
