// Removal-attack analysis (paper Section VI). A third party inspecting
// soft IP at the RTL level hunts for *stand-alone circuits*: logic whose
// outputs never influence a primary output, which can therefore be
// deleted with no functional impact. The state-of-the-art load-circuit
// watermark is exactly such a circuit; the clock-modulation watermark is
// woven into functional clock gating and is not.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rtl/connectivity.h"
#include "rtl/netlist.h"

namespace clockmark::attack {

/// A connected group of cells that never reaches a primary output.
struct SuspiciousCircuit {
  std::vector<rtl::CellId> cells;
  std::size_t register_count = 0;
  std::vector<std::string> module_paths;  ///< distinct modules touched

  std::size_t size() const noexcept { return cells.size(); }
};

/// Finds stand-alone circuits: weakly-connected components consisting
/// entirely of cells that cannot reach any primary output. Components
/// smaller than min_cells are ignored (isolated stubs, tie cells).
std::vector<SuspiciousCircuit> find_standalone_circuits(
    const rtl::Netlist& netlist, std::size_t min_cells = 4);

/// Fraction of the given watermark cells that appear in any suspicious
/// circuit — the attacker's recall when targeting this watermark.
double attacker_recall(const std::vector<SuspiciousCircuit>& found,
                       const std::vector<rtl::CellId>& watermark_cells);

}  // namespace clockmark::attack
