#include "attack/tamper.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "rtl/connectivity.h"
#include "rtl/simulator.h"

namespace clockmark::attack {

std::vector<FanoutSuspect> find_wmark_fanout_signature(
    const rtl::Netlist& netlist, std::size_t min_fanout) {
  // Which cells are ICGs, and which nets drive their enables?
  std::unordered_set<rtl::NetId> icg_enable_nets;
  for (std::size_t i = 0; i < netlist.cell_count(); ++i) {
    const auto& c = netlist.cell(static_cast<rtl::CellId>(i));
    if (c.kind == rtl::CellKind::kIcg && !c.inputs.empty()) {
      icg_enable_nets.insert(c.inputs[0]);
    }
  }
  // AND gates whose output is an ICG enable, grouped by each input net.
  std::map<rtl::NetId, FanoutSuspect> by_net;
  for (std::size_t i = 0; i < netlist.cell_count(); ++i) {
    const auto id = static_cast<rtl::CellId>(i);
    const auto& c = netlist.cell(id);
    if (c.kind != rtl::CellKind::kAnd2) continue;
    if (icg_enable_nets.count(c.output) == 0) continue;
    for (const rtl::NetId in : c.inputs) {
      auto& suspect = by_net[in];
      suspect.net = in;
      suspect.and_gates.push_back(id);
      ++suspect.icgs_reached;
    }
  }
  std::vector<FanoutSuspect> out;
  for (auto& [net, suspect] : by_net) {
    if (suspect.and_gates.size() >= min_fanout) {
      out.push_back(std::move(suspect));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FanoutSuspect& a, const FanoutSuspect& b) {
              return a.and_gates.size() > b.and_gates.size();
            });
  return out;
}

TamperOutcome bypass_attack(const rtl::Netlist& watermarked,
                            const rtl::Netlist& reference,
                            rtl::NetId root_clock_watermarked,
                            rtl::NetId root_clock_reference,
                            rtl::NetId observe_watermarked,
                            rtl::NetId observe_reference,
                            const std::string& wgc_prefix,
                            std::size_t min_fanout,
                            std::size_t compare_cycles) {
  TamperOutcome outcome;
  outcome.compared_cycles = compare_cycles;

  const auto suspects =
      find_wmark_fanout_signature(watermarked, min_fanout);
  outcome.suspects_found = suspects.size();

  rtl::Netlist tampered = watermarked;
  for (const auto& suspect : suspects) {
    for (const rtl::CellId and_id : suspect.and_gates) {
      const rtl::Cell& and_gate = tampered.cell(and_id);
      // The AND's other input is the original CLK_CTRL.
      rtl::NetId original = rtl::kInvalidNet;
      for (const rtl::NetId in : and_gate.inputs) {
        if (in != suspect.net) original = in;
      }
      if (original == rtl::kInvalidNet) continue;
      // Rewire every ICG fed by this AND back to the original control.
      for (std::size_t i = 0; i < tampered.cell_count(); ++i) {
        auto& c = tampered.cell(static_cast<rtl::CellId>(i));
        if (c.kind == rtl::CellKind::kIcg && !c.inputs.empty() &&
            c.inputs[0] == and_gate.output) {
          c.inputs[0] = original;
          ++outcome.gates_bypassed;
        }
      }
    }
  }

  // Behavioural comparison against the clean reference.
  rtl::Simulator ref(reference);
  ref.set_clock_source(root_clock_reference);
  rtl::Simulator tam(tampered);
  tam.set_clock_source(root_clock_watermarked);
  for (std::size_t i = 0; i < compare_cycles; ++i) {
    ref.step();
    tam.step();
    if (ref.net_value(observe_reference) !=
        tam.net_value(observe_watermarked)) {
      ++outcome.output_mismatch_cycles;
    }
  }
  outcome.function_restored = outcome.output_mismatch_cycles == 0;

  // Structural check: does the WGC still influence any ICG?
  const rtl::ConnectivityGraph graph(tampered);
  std::vector<rtl::CellId> wgc_cells;
  for (std::size_t i = 0; i < tampered.cell_count(); ++i) {
    const auto id = static_cast<rtl::CellId>(i);
    if (tampered.cell_in_module(id, wgc_prefix)) wgc_cells.push_back(id);
  }
  const auto cone = graph.fanout_cone(wgc_cells);
  outcome.watermark_still_wired = false;
  for (std::size_t i = 0; i < tampered.cell_count(); ++i) {
    const auto& c = tampered.cell(static_cast<rtl::CellId>(i));
    if (c.kind == rtl::CellKind::kIcg && cone[i] &&
        !tampered.cell_in_module(static_cast<rtl::CellId>(i),
                                 wgc_prefix)) {
      outcome.watermark_still_wired = true;
      break;
    }
  }
  return outcome;
}

}  // namespace clockmark::attack
