#include "socdesc/generator.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/rng.h"

namespace clockmark::socdesc {
namespace {

/// Fixed Pcg32 stream id: generation depends on nothing but the seed.
constexpr std::uint64_t kGeneratorStream = 0x50cdecc0u;

/// System-clock candidates (the measurement reference).
constexpr double kSysFrequencies[] = {25.0e6, 48.0e6, 50.0e6, 100.0e6};
/// Auxiliary input candidates (always slower than every sys choice).
constexpr double kAuxFrequencies[] = {12.0e6, 24.0e6, 8.0e6, 16.0e6};
/// WGC widths whose pairwise period LCMs exceed the static correlation
/// limit, so clean dual-watermark corpora stay at info severity.
constexpr unsigned kWidths[] = {7, 9, 10, 11};
constexpr unsigned kDivRatios[] = {2, 4, 8};

const char* const kRoles[] = {"core", "dsp",  "bus", "periph", "uart",
                              "spi",  "dma",  "ddr", "gpu",    "sram"};
constexpr std::size_t kRoleCount = sizeof(kRoles) / sizeof(kRoles[0]);

WatermarkSpec make_key(util::Pcg32& rng, unsigned width) {
  WatermarkSpec wm;
  wm.wgc.mode = wgc::WgcMode::kLfsr;
  wm.wgc.width = width;
  wm.wgc.taps = 0;  // table polynomial: primitive by construction
  const auto mask = static_cast<std::uint32_t>((1u << width) - 1u);
  wm.wgc.seed = 1u + rng.bounded(mask - 1u);  // never the lock-up state
  return wm;
}

/// The declared frequency a target must carry to satisfy the
/// elaborator's consistency check.
double declared_frequency(const ClockController& controller,
                          const TargetSpec& target) {
  return controller.find_input(target.links.front().input)->freq_hz /
         static_cast<double>(total_division(target));
}

}  // namespace

std::string_view defect_rule_id(DefectKind kind) noexcept {
  switch (kind) {
    case DefectKind::kAliasedDomain:
      return "domain-aliasing";
    case DefectKind::kTestBypass:
      return "test-bypassable-watermark";
    case DefectKind::kGlitchMux:
      return "glitch-prone-mux";
    case DefectKind::kKeyCollision:
      return "cross-domain-collision";
    case DefectKind::kNone:
      break;
  }
  return "";
}

DefectKind parse_defect_kind(std::string_view name) {
  if (name == "none") return DefectKind::kNone;
  if (name == "aliased-domain") return DefectKind::kAliasedDomain;
  if (name == "test-bypass") return DefectKind::kTestBypass;
  if (name == "glitch-mux") return DefectKind::kGlitchMux;
  if (name == "key-collision") return DefectKind::kKeyCollision;
  throw SocError("unknown defect kind '" + std::string(name) +
                 "' (expected none, aliased-domain, test-bypass, "
                 "glitch-mux or key-collision)");
}

SocDescription generate_soc(const GeneratorOptions& options) {
  util::Pcg32 rng(options.seed, kGeneratorStream);
  const DefectKind defect = options.defect;

  ClockController controller;
  controller.name = "gen" + std::to_string(options.seed);

  // --- inputs -----------------------------------------------------------
  const double sys_hz = kSysFrequencies[rng.bounded(4)];
  controller.inputs.push_back({"clk_sys", sys_hz, 0});
  const double aux_hz = kAuxFrequencies[rng.bounded(4)];
  controller.inputs.push_back({"clk_aux", aux_hz, 0});
  if (defect == DefectKind::kAliasedDomain) {
    // An input above the measurement reference: a watermark clocked
    // from it modulates faster than Y is averaged.
    controller.inputs.push_back({"clk_fast", 2.0 * sys_hz, 0});
  }

  // --- DFT bypass ---------------------------------------------------------
  const bool has_test_enable =
      defect == DefectKind::kTestBypass || rng.bernoulli(0.5);
  if (has_test_enable) controller.test_enable = "test_en";

  // --- targets -------------------------------------------------------------
  const std::size_t lo = std::max<std::size_t>(options.min_targets, 2);
  const std::size_t hi =
      std::min<std::size_t>(std::max(options.max_targets, lo), kRoleCount);
  const std::size_t count =
      lo + rng.bounded(static_cast<std::uint32_t>(hi - lo + 1));

  for (std::size_t i = 0; i < count; ++i) {
    TargetSpec target;
    target.name = std::string("t") + std::to_string(i) + "_" + kRoles[i];
    target.sinks = 8 + rng.bounded(120);

    const bool showcase = i == 0;  // always ICG-gated and watermarked
    // Watermarked domains carry paper-scale register banks (Table I
    // sweeps 256..1024); plain domains stay small to keep the
    // background realistic and elaboration cheap.
    if (showcase) target.sinks = 512 + 32 * rng.bounded(17);
    LinkSpec link;
    link.input = showcase || rng.bernoulli(0.7) ? "clk_sys" : "clk_aux";

    // Guarantee at least one divided target (i == 1); otherwise divide
    // at random, at link or target level.
    const bool divided = i == 1 || rng.bernoulli(0.5);
    if (divided) {
      DivSpec div;
      div.ratio = kDivRatios[rng.bounded(3)];
      if (rng.bernoulli(0.5)) div.reset = "rst_n";
      if (rng.bernoulli(0.5)) {
        link.div = div;
      } else {
        target.div = div;
      }
    }
    if (!showcase && rng.bernoulli(0.2)) link.inv = true;
    target.links.push_back(link);

    // A second parent behind a mux — glitch-free (with reset) unless the
    // defect asks for the reset-less implementation on the showcase.
    const bool glitch_defect =
        showcase && defect == DefectKind::kGlitchMux;
    if (glitch_defect || (!showcase && rng.bernoulli(0.3))) {
      LinkSpec alt;
      alt.input = link.input == "clk_sys" ? "clk_aux" : "clk_sys";
      target.links.push_back(alt);
      if (!glitch_defect) {
        MuxSpec mux;
        mux.select = target.name + "_sel";
        mux.reset = "rst_n";
        target.mux = mux;
      }
    }

    const bool gated = showcase || rng.bernoulli(0.6);
    if (gated) {
      IcgSpec icg;
      icg.enable = target.name + "_en";
      // Clean watermarked gates opt out of the DFT bypass; the
      // test-bypass defect leaves the showcase on it.
      if (showcase && has_test_enable &&
          defect != DefectKind::kTestBypass) {
        icg.test_bypass = false;
      }
      target.icg = icg;
    } else if (!divided && target.links.size() < 2) {
      // Never a bare buffer-only domain off the reference: those sinks
      // free-run and tilt the whole design toward background power.
      DivSpec div;
      div.ratio = kDivRatios[rng.bounded(3)];
      target.div = div;
    }

    if (showcase) {
      if (defect == DefectKind::kAliasedDomain) {
        target.links.front().input = "clk_fast";
        target.links.front().div.reset();
        target.div.reset();
      }
      target.watermark = make_key(rng, kWidths[rng.bounded(4)]);
    }

    target.freq_hz = declared_frequency(controller, target);
    controller.targets.push_back(std::move(target));
  }

  // --- optional second watermark ------------------------------------------
  if (defect == DefectKind::kKeyCollision) {
    // Same key, same rate as the showcase: unattributable by design.
    TargetSpec& twin = controller.targets[1];
    twin.links = controller.targets[0].links;
    twin.div = controller.targets[0].div;
    twin.inv = controller.targets[0].inv;
    twin.mux.reset();
    if (twin.links.size() > 1) twin.links.resize(1);
    if (!twin.icg) twin.icg = IcgSpec{twin.name + "_en", true};
    if (controller.targets[0].icg) {
      twin.icg->test_bypass = controller.targets[0].icg->test_bypass;
    }
    twin.watermark = controller.targets[0].watermark;
    twin.freq_hz = declared_frequency(controller, twin);
  } else if (defect == DefectKind::kNone && rng.bernoulli(0.4)) {
    // A coexisting, differently-keyed watermark in another gated domain.
    // Restricted to single-link reference-fed targets so the stretched
    // period stays well inside the planned trace (no warnings on the
    // clean corpus) and the reference-timeline expansion is integral.
    for (std::size_t i = 1; i < controller.targets.size(); ++i) {
      TargetSpec& other = controller.targets[i];
      if (!other.icg || other.links.size() > 1 ||
          other.links.front().input != "clk_sys") {
        continue;
      }
      std::uint32_t pick = rng.bounded(4);
      if (kWidths[pick] == controller.targets[0].watermark->wgc.width) {
        pick = (pick + 1) % 4;
      }
      other.watermark = make_key(rng, kWidths[pick]);
      if (has_test_enable) other.icg->test_bypass = false;
      break;
    }
  }

  // --- measurement plan ------------------------------------------------------
  controller.measure.clock = "clk_sys";
  controller.measure.trace_cycles = 300000;

  SocDescription description;
  description.controllers.push_back(std::move(controller));
  return description;
}

std::string generate_description(const GeneratorOptions& options) {
  return render_description(generate_soc(options));
}

}  // namespace clockmark::socdesc
