// Bridges a parsed + elaborated SoC description to the experiment layer:
// picks one watermarked clock domain and produces the sim::ScenarioConfig
// that models *that* domain's modulated clock tree against the rest of
// the SoC as background power — so `detect::Session` can reach a verdict
// on a user-described SoC exactly as it does on the chip presets.
//
// Mapping (DESIGN.md §14):
//  * chip model       -> kChip2 (a watermark embedded in a live SoC);
//                        fabric_power_w carries the elaborated power
//                        model's non-modulated background
//  * watermark        -> the domain's WGC key; bank geometry from the
//                        domain's sink count (words x bits_per_word)
//  * operating point  -> the technology library re-derived at the
//                        domain's effective clock
//  * acquisition      -> the paper's bench re-centred on the domain
//                        clock (50x oversampling, PDN cutoff at 1/25)
#pragma once

#include <cstdint>
#include <string>

#include "sim/scenario.h"
#include "socdesc/elaborate.h"

namespace clockmark::socdesc {

struct CompileOptions {
  /// Which watermarked domain to detect. Empty = the description's only
  /// watermarked domain (SocError if there are zero or several).
  std::string target;
  /// Override the measure block's trace length (domain cycles); 0 keeps
  /// the description's value. Tests shorten this for speed.
  std::size_t trace_cycles = 0;
  /// Scenario master seed (noise streams, phase derivation).
  std::uint64_t seed = 1;
};

/// Compiles one watermarked domain of an elaborated controller into a
/// runnable scenario configuration. Throws SocError when the requested
/// target does not exist, is not watermarked, or is ambiguous.
sim::ScenarioConfig compile_scenario(const ElaboratedSoc& soc,
                                     const CompileOptions& options = {});

}  // namespace clockmark::socdesc
