#include "socdesc/elaborate.h"

#include <cmath>
#include <memory>
#include <utility>

#include "clocktree/tree.h"
#include "measure/acquisition.h"
#include "rtl/netlist.h"
#include "watermark/embedder.h"
#include "wgc/wgc.h"

namespace clockmark::socdesc {
namespace {

/// Scope-to-clock oversampling when the description gives no explicit
/// sample rate (the paper's 500 MS/s against 10 MHz).
constexpr double kDefaultOversampling = 50.0;
/// PDN cutoff as a fraction of the reference clock (the paper's board:
/// 400 kHz against 10 MHz).
constexpr double kPdnCutoffRatio = 25.0;

/// Finds or creates a named control/clock net; control signals the
/// description references (enables, selects, resets, test_enable) are
/// primary inputs of the lowered netlist and may be shared across
/// targets by naming the same signal.
rtl::NetId signal_net(rtl::Netlist& netlist, const std::string& name) {
  if (const auto existing = netlist.find_net(name)) return *existing;
  const rtl::NetId id = netlist.add_net(name);
  netlist.mark_input(id);
  return id;
}

std::vector<rtl::CellId> collect_wgc_cells(const wgc::WgcHardware& hw) {
  std::vector<rtl::CellId> cells;
  cells.reserve(hw.flops.size() + hw.xor_gates.size() +
                hw.clock_cells.size());
  cells.insert(cells.end(), hw.flops.begin(), hw.flops.end());
  cells.insert(cells.end(), hw.xor_gates.begin(), hw.xor_gates.end());
  cells.insert(cells.end(), hw.clock_cells.begin(), hw.clock_cells.end());
  return cells;
}

/// Per-target lowering bookkeeping, fed into the power model.
struct DomainBuild {
  std::size_t chain_buffers = 0;   ///< dividers' re-emit + inv buffers
  std::size_t tree_buffers = 0;    ///< sink clock-tree buffers
  std::size_t divider_flops = 0;
  std::size_t wgc_registers = 0;
  std::size_t wgc_clock_cells = 0;
  bool has_icg = false;
  double pre_icg_hz = 0.0;         ///< rate at the ICG / WGC clock pin
};

/// Lowers a ripple divide-by-`ratio` fed from `clock`: ceil(log2 ratio)
/// toggle stages (stage i clocked by stage i-1's Q) and a clock buffer
/// re-emitting the last Q as a proper clock net. The netlist realises a
/// power-of-two divider; the exact declared ratio lives in the domain
/// metadata, which is what the frequency-sensitive rules read.
rtl::NetId lower_divider(rtl::Netlist& netlist, std::uint32_t module,
                         const std::string& base, rtl::NetId clock,
                         unsigned ratio, DomainBuild& build,
                         std::vector<rtl::CellId>& functional) {
  unsigned stages = 0;
  for (unsigned span = 1; span < ratio; span *= 2) ++stages;
  rtl::NetId stage_clock = clock;
  rtl::NetId q = rtl::kInvalidNet;
  for (unsigned s = 0; s < stages; ++s) {
    const std::string name = base + "_div" + std::to_string(s);
    q = netlist.add_net(name + "_q");
    const rtl::NetId d = netlist.add_net(name + "_d");
    netlist.add_gate(rtl::CellKind::kInv, name + "_fb", module, {q}, d);
    const rtl::CellId flop = netlist.add_flop(
        rtl::CellKind::kDff, name, module, {d}, q, stage_clock, false);
    functional.push_back(flop);  // the divide state machine is functional
    ++build.divider_flops;
    stage_clock = q;
  }
  const rtl::NetId divided = netlist.add_net(base + "_divclk");
  netlist.add_clock_buffer(base + "_divbuf", module, q, divided);
  ++build.chain_buffers;
  return divided;
}

/// A clock inverter lowers to a clock buffer so the lint walks (which
/// only traverse clock cells) stay connected; the polarity flip is
/// carried in ClockDomainView::inverted.
rtl::NetId lower_inverter(rtl::Netlist& netlist, std::uint32_t module,
                          const std::string& base, rtl::NetId clock,
                          DomainBuild& build) {
  const rtl::NetId inverted = netlist.add_net(base + "_invclk");
  netlist.add_clock_buffer(base + "_inv", module, clock, inverted);
  ++build.chain_buffers;
  return inverted;
}

}  // namespace

ElaboratedSoc elaborate(const ClockController& controller,
                        const ElaborateOptions& options) {
  // --- reference clock ------------------------------------------------
  const std::string reference_name = controller.measure.clock.empty()
                                         ? controller.inputs.front().name
                                         : controller.measure.clock;
  const InputSpec* reference = controller.find_input(reference_name);
  if (reference == nullptr) {
    throw SocError("controller '" + controller.name +
                       "' measures unknown input clock '" + reference_name +
                       "'",
                   controller.line);
  }

  auto netlist = std::make_shared<rtl::Netlist>();
  for (const InputSpec& input : controller.inputs) {
    signal_net(*netlist, input.name);
  }
  const rtl::NetId root_clock = *netlist->find_net(reference->name);
  const rtl::NetId test_en =
      controller.test_enable.empty()
          ? rtl::kInvalidNet
          : signal_net(*netlist, controller.test_enable);

  lint::Design design(controller.name, netlist, root_clock);
  SocPowerModel power;
  std::vector<rtl::CellId> functional;

  for (const TargetSpec& target : controller.targets) {
    // --- consistency: declared vs. computed frequency ----------------
    const double computed = effective_frequency(controller, target);
    if (std::fabs(computed - target.freq_hz) >
        options.frequency_tolerance * target.freq_hz) {
      throw SocError("target '" + target.name + "' declares " +
                         format_frequency(target.freq_hz) +
                         " but its chain divides " +
                         format_frequency(
                             controller.find_input(target.links.front()
                                                       .input)
                                 ->freq_hz) +
                         " down to " + format_frequency(computed),
                     target.line);
    }

    const std::uint32_t module = netlist->module("soc/" + target.name);
    const std::string base = "soc_" + target.name;
    DomainBuild build;

    // --- link-level processing (div -> inv), one chain per link ------
    std::vector<rtl::NetId> link_nets;
    for (std::size_t l = 0; l < target.links.size(); ++l) {
      const LinkSpec& link = target.links[l];
      if (controller.find_input(link.input) == nullptr) {
        throw SocError("target '" + target.name +
                           "' links unknown input '" + link.input + "'",
                       link.line != 0 ? link.line : target.line);
      }
      rtl::NetId net = *netlist->find_net(link.input);
      const std::string link_base = base + "_l" + std::to_string(l);
      if (link.div) {
        if (!link.div->reset.empty()) {
          signal_net(*netlist, link.div->reset);
        }
        net = lower_divider(*netlist, module, link_base, net,
                            link.div->ratio, build, functional);
      }
      if (link.inv) {
        net = lower_inverter(*netlist, module, link_base, net, build);
      }
      link_nets.push_back(net);
    }

    // --- target-level mux ---------------------------------------------
    rtl::NetId current = link_nets.front();
    const bool has_mux = target.links.size() > 1;
    if (has_mux) {
      const std::string select_name =
          target.mux && !target.mux->select.empty() ? target.mux->select
                                                    : target.name + "_sel";
      if (target.mux && !target.mux->reset.empty()) {
        signal_net(*netlist, target.mux->reset);
      }
      for (std::size_t l = 1; l < link_nets.size(); ++l) {
        const std::string stage = base + "_mux" + std::to_string(l - 1);
        const rtl::NetId sel = signal_net(
            *netlist, link_nets.size() == 2
                          ? select_name
                          : select_name + std::to_string(l - 1));
        const rtl::NetId out = netlist->add_net(stage + "_clk");
        netlist->add_gate(rtl::CellKind::kMux2, stage, module,
                          {sel, current, link_nets[l]}, out);
        current = out;
      }
    }

    // The mux output (or the bare link) is what clocks the ICG and the
    // WGC: the pre-ICG rate is the post-link-division rate.
    const LinkSpec& active = target.links.front();
    build.pre_icg_hz =
        controller.find_input(active.input)->freq_hz /
        (active.div ? static_cast<double>(active.div->ratio) : 1.0);

    // --- ICG + watermark embedding ------------------------------------
    rtl::CellId icg = 0;
    if (target.icg) {
      build.has_icg = true;
      const rtl::NetId enable = signal_net(*netlist, target.icg->enable);
      const rtl::NetId gated = netlist->add_net(base + "_gclk");
      icg = netlist->add_icg(base + "_icg", module, current, enable,
                             gated);
      if (target.watermark) {
        const wgc::WgcConfig& key = target.watermark->wgc;
        if (key.width < 2 || key.width > 32) {
          throw SocError("target '" + target.name +
                             "' watermark width " +
                             std::to_string(key.width) +
                             " is outside the buildable range [2, 32]",
                         target.line);
        }
        const std::string wgc_path = "soc/" + target.name + "/wgc";
        const auto embed = watermark::embed_clock_modulation(
            *netlist, wgc_path, current, key,
            std::vector<rtl::CellId>{icg});
        build.wgc_registers = embed.wgc.register_count;
        build.wgc_clock_cells = embed.wgc.clock_cells.size();

        lint::WatermarkView view;
        view.name = target.name;
        view.module_path = wgc_path;
        view.wgc = key;
        view.wmark = embed.wmark;
        view.wgc_cells = collect_wgc_cells(embed.wgc);
        // This target's ClockDomainView is appended below, at the index
        // clock_domains() currently has.
        view.domain = design.clock_domains().size();
        design.add_watermark(std::move(view));
      }
      // DFT bypass: the controller-wide test_enable forces the gate open
      // in test mode — *around* any watermark modulation.
      if (test_en != rtl::kInvalidNet && target.icg->test_bypass) {
        // Read the enable before add_gate: growing the cell vector
        // invalidates any Cell& into it.
        const rtl::NetId enable_in = netlist->cell(icg).inputs.at(0);
        const rtl::NetId bypassed = netlist->add_net(base + "_ten");
        netlist->add_gate(rtl::CellKind::kOr2, base + "_tor", module,
                          {enable_in, test_en}, bypassed);
        netlist->cell(icg).inputs[0] = bypassed;
      }
      current = gated;
    } else if (target.watermark) {
      // A watermark with no ICG has no power path; build the WGC anyway
      // (clocked from the domain chain) and let removable-watermark
      // report the architecture error — this is a lint frontend.
      const auto hw = wgc::build_wgc(*netlist, netlist->module(
                                                   "soc/" + target.name +
                                                   "/wgc"),
                                     current, target.watermark->wgc);
      build.wgc_registers = hw.register_count;
      build.wgc_clock_cells = hw.clock_cells.size();
      lint::WatermarkView view;
      view.name = target.name;
      view.module_path = "soc/" + target.name + "/wgc";
      view.wgc = target.watermark->wgc;
      view.wmark = hw.wmark;
      view.wgc_cells = collect_wgc_cells(hw);
      view.domain = design.clock_domains().size();
      design.add_watermark(std::move(view));
    }

    // --- target-level div -> inv ---------------------------------------
    if (target.div) {
      if (!target.div->reset.empty()) {
        signal_net(*netlist, target.div->reset);
      }
      current = lower_divider(*netlist, module, base + "_t", current,
                              target.div->ratio, build, functional);
    }
    if (target.inv) {
      current = lower_inverter(*netlist, module, base + "_t", current,
                               build);
    }

    // --- sink clock tree + hold registers ------------------------------
    clocktree::ClockTreeOptions tree_options;
    tree_options.name_prefix = base + "_ct";
    const auto tree = clocktree::build_clock_tree(
        *netlist, module, current, target.sinks, tree_options);
    build.tree_buffers = tree.buffers.size();
    for (std::size_t s = 0; s < target.sinks; ++s) {
      const rtl::NetId q =
          netlist->add_net(base + "_r" + std::to_string(s) + "_q");
      functional.push_back(netlist->add_flop(
          rtl::CellKind::kDff, base + "_r" + std::to_string(s), module,
          {q}, q, tree.leaf_nets[s], false));
    }

    // --- domain metadata -----------------------------------------------
    lint::ClockDomainView domain;
    domain.target = target.name;
    domain.source = active.input;
    domain.clock_hz = computed;
    domain.division = total_division(target);
    domain.inverted = active.inv != target.inv;
    domain.test_bypassable = test_en != rtl::kInvalidNet && target.icg &&
                             target.icg->test_bypass;
    domain.mux_glitch_prone =
        has_mux && (!target.mux || target.mux->reset.empty());
    domain.mux_sources = has_mux ? target.links.size() : 0;
    domain.sinks = target.sinks;
    design.add_clock_domain(std::move(domain));

    // --- power accounting ----------------------------------------------
    const power::TechLibrary& tech = options.tech;
    DomainPower dp;
    dp.target = target.name;
    dp.clock_hz = computed;
    dp.clock_buffers =
        build.tree_buffers + build.chain_buffers + build.wgc_clock_cells;
    dp.registers = target.sinks + build.divider_flops;
    dp.watermarked = target.watermark.has_value();
    // Tree buffers and any post-ICG divider run at the effective rate;
    // the ICG and WGC at the pre-ICG rate. Hold registers burn only
    // their (leaf-buffer) clock energy, already in tree_buffers.
    const double tree_w =
        tech.clock_buffer_cycle_j * static_cast<double>(build.tree_buffers) *
        computed;
    const double chain_w = tech.clock_buffer_cycle_j *
                               static_cast<double>(build.chain_buffers) *
                               build.pre_icg_hz +
                           tech.flop_data_toggle_j *
                               static_cast<double>(build.divider_flops) *
                               computed;
    const double icg_w = build.has_icg
                             ? tech.icg_active_cycle_j * build.pre_icg_hz
                             : 0.0;
    const double wgc_w =
        (tech.clock_buffer_cycle_j + 0.5 * tech.flop_data_toggle_j) *
        static_cast<double>(build.wgc_registers) * build.pre_icg_hz;
    dp.dynamic_w = tree_w + chain_w + icg_w + wgc_w;
    // What the ICG gates: everything downstream of it (tree + any
    // target-level divider); the WGC and the pre-ICG chain keep running.
    dp.modulated_w = build.has_icg ? tree_w : 0.0;
    power.total_w += dp.dynamic_w;
    power.background_w +=
        dp.watermarked ? dp.dynamic_w - dp.modulated_w : dp.dynamic_w;
    power.domains.push_back(std::move(dp));
  }

  design.declare_functional(functional);

  // --- experiment context ----------------------------------------------
  design.set_trace_cycles(controller.measure.trace_cycles);
  measure::AcquisitionConfig acq;
  const double sample_rate = controller.measure.sample_rate_hz > 0.0
                                 ? controller.measure.sample_rate_hz
                                 : kDefaultOversampling * reference->freq_hz;
  acq.scope.sample_rate_hz = sample_rate;
  const double ratio = sample_rate / reference->freq_hz;
  acq.waveform.samples_per_cycle =
      ratio >= 1.0 ? static_cast<std::size_t>(std::llround(ratio)) : 1;
  // Keep the paper's PDN-cutoff-to-clock ratio at any operating point.
  acq.pdn_cutoff_hz = reference->freq_hz / kPdnCutoffRatio;
  design.set_acquisition(acq);
  design.set_tech(
      options.tech.at_operating_point(reference->freq_hz,
                                      options.tech.vdd_v));

  ElaboratedSoc soc{std::move(design), std::move(power), reference->name,
                    reference->freq_hz};
  return soc;
}

}  // namespace clockmark::socdesc
