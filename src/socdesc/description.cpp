#include "socdesc/description.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace clockmark::socdesc {

double parse_frequency(const std::string& text, std::size_t line) {
  if (text.empty()) throw SocError("empty frequency", line);
  std::size_t pos = 0;
  bool digits = false;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
          text[pos] == '.')) {
    digits = digits ||
             std::isdigit(static_cast<unsigned char>(text[pos])) != 0;
    ++pos;
  }
  if (!digits) {
    throw SocError("bad frequency '" + text + "' (expected <number><unit>)",
                   line);
  }
  double value = 0.0;
  try {
    value = std::stod(text.substr(0, pos));
  } catch (const std::exception&) {
    throw SocError("bad frequency number in '" + text + "'", line);
  }
  std::string unit = text.substr(pos);
  for (char& c : unit) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  double scale = 1.0;
  if (unit.empty() || unit == "hz") {
    scale = 1.0;
  } else if (unit == "khz") {
    scale = 1e3;
  } else if (unit == "mhz") {
    scale = 1e6;
  } else if (unit == "ghz") {
    scale = 1e9;
  } else {
    throw SocError("unknown frequency unit '" + text.substr(pos) +
                       "' (expected Hz, kHz, MHz or GHz)",
                   line);
  }
  const double hz = value * scale;
  if (!(hz > 0.0)) {
    throw SocError("frequency '" + text + "' is not positive", line);
  }
  return hz;
}

std::string format_frequency(double hz) {
  const char* unit = "Hz";
  double value = hz;
  if (hz >= 1e9) {
    unit = "GHz";
    value = hz / 1e9;
  } else if (hz >= 1e6) {
    unit = "MHz";
    value = hz / 1e6;
  } else if (hz >= 1e3) {
    unit = "kHz";
    value = hz / 1e3;
  }
  char buf[64];
  // Up to 6 fractional digits, trailing zeros trimmed: enough for every
  // ratio of the generator's frequency table to round-trip exactly.
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  std::string s(buf);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s + unit;
}

namespace {

void render_div(std::ostringstream& os, const DivSpec& div,
                const std::string& indent) {
  os << indent << "div:\n";
  os << indent << "  default: " << div.ratio << "\n";
  if (!div.reset.empty()) os << indent << "  reset: " << div.reset << "\n";
}

void render_target(std::ostringstream& os, const TargetSpec& target) {
  os << "      " << target.name << ":\n";
  os << "        freq: " << format_frequency(target.freq_hz) << "\n";
  os << "        sinks: " << target.sinks << "\n";
  os << "        link:\n";
  for (const LinkSpec& link : target.links) {
    os << "          " << link.input << ":\n";
    if (link.div) render_div(os, *link.div, "            ");
    if (link.inv) os << "            inv: true\n";
  }
  if (target.mux &&
      (!target.mux->select.empty() || !target.mux->reset.empty())) {
    os << "        mux:\n";
    if (!target.mux->select.empty()) {
      os << "          select: " << target.mux->select << "\n";
    }
    if (!target.mux->reset.empty()) {
      os << "          reset: " << target.mux->reset << "\n";
    }
  }
  if (target.icg) {
    os << "        icg:\n";
    os << "          enable: " << target.icg->enable << "\n";
    if (!target.icg->test_bypass) os << "          test_bypass: false\n";
  }
  if (target.div) render_div(os, *target.div, "        ");
  if (target.inv) os << "        inv: true\n";
  if (target.watermark) {
    const wgc::WgcConfig& key = target.watermark->wgc;
    os << "        watermark:\n";
    os << "          mode: "
       << (key.mode == wgc::WgcMode::kLfsr ? "lfsr" : "circular") << "\n";
    os << "          width: " << key.width << "\n";
    if (key.taps != 0) os << "          taps: " << key.taps << "\n";
    os << "          seed: " << key.seed << "\n";
  }
}

}  // namespace

std::string render_description(const SocDescription& description) {
  std::ostringstream os;
  os << "clock:\n";
  for (const ClockController& controller : description.controllers) {
    os << "  - name: " << controller.name << "\n";
    if (!controller.test_enable.empty()) {
      os << "    test_enable: " << controller.test_enable << "\n";
    }
    os << "    input:\n";
    for (const InputSpec& input : controller.inputs) {
      os << "      " << input.name << ":\n";
      os << "        freq: " << format_frequency(input.freq_hz) << "\n";
    }
    os << "    target:\n";
    for (const TargetSpec& target : controller.targets) {
      render_target(os, target);
    }
    os << "    measure:\n";
    if (!controller.measure.clock.empty()) {
      os << "      clock: " << controller.measure.clock << "\n";
    }
    if (controller.measure.sample_rate_hz > 0.0) {
      os << "      sample_rate: "
         << format_frequency(controller.measure.sample_rate_hz) << "\n";
    }
    os << "      trace: " << controller.measure.trace_cycles << "\n";
  }
  return os.str();
}

const InputSpec* ClockController::find_input(
    const std::string& input_name) const noexcept {
  for (const InputSpec& input : inputs) {
    if (input.name == input_name) return &input;
  }
  return nullptr;
}

const TargetSpec* ClockController::find_target(
    const std::string& target_name) const noexcept {
  for (const TargetSpec& target : targets) {
    if (target.name == target_name) return &target;
  }
  return nullptr;
}

unsigned total_division(const TargetSpec& target) noexcept {
  unsigned ratio = 1;
  if (!target.links.empty() && target.links.front().div) {
    ratio *= target.links.front().div->ratio;
  }
  if (target.div) ratio *= target.div->ratio;
  return ratio;
}

double effective_frequency(const ClockController& controller,
                           const TargetSpec& target) {
  if (target.links.empty()) {
    throw SocError("target '" + target.name + "' has no link", target.line);
  }
  const LinkSpec& link = target.links.front();
  const InputSpec* input = controller.find_input(link.input);
  if (input == nullptr) {
    throw SocError("target '" + target.name + "' links unknown input '" +
                       link.input + "'",
                   link.line);
  }
  return input->freq_hz / static_cast<double>(total_division(target));
}

}  // namespace clockmark::socdesc
