// Lowers a parsed clock-controller description into the repo's analysis
// backends: a gate-level rtl::Netlist wrapped in a lint::Design (so every
// cm_lint rule runs on it) plus an analytic clock-tree power model (so
// compile.h can budget the watermark signal against the SoC background).
//
// Lowering semantics (DESIGN.md §14):
//  * inputs        -> primary-input clock nets
//  * link div      -> ripple toggle-flop chain (ceil(log2 ratio) stages,
//                     exact ratio kept in ClockDomainView::division) plus
//                     a clock buffer re-emitting the divided net
//  * link/target inv -> a clock buffer (polarity is metadata: the walks
//                     in lint::Design only traverse clock cells)
//  * >1 link       -> a kMux2 chain in front of the ICG; the select and
//                     reset become primary inputs, glitch-proneness
//                     (no reset) is recorded in the domain view
//  * icg           -> rtl ICG; with a controller test_enable and
//                     test_bypass, enable is OR-ed with test_enable
//  * watermark     -> wgc::build_wgc + watermark::embed_clock_modulation
//                     into the domain's ICG (enable = CLK_CTRL AND WMARK)
//  * sinks         -> clocktree::build_clock_tree + D=Q hold registers,
//                     declared functional (they stand in for the domain's
//                     real register file, exactly like the chip presets)
//
// Cross-reference and consistency checks (unknown link inputs, declared
// vs. computed target frequency) throw SocError here, not in the parser.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/design.h"
#include "power/tech65.h"
#include "socdesc/description.h"

namespace clockmark::socdesc {

/// Analytic per-domain power accounting (clocktree buffers dominate, per
/// the paper's Section V calibration).
struct DomainPower {
  std::string target;
  double clock_hz = 0.0;          ///< effective sink clock
  std::size_t clock_buffers = 0;  ///< tree + chain buffers in the domain
  std::size_t registers = 0;      ///< sinks + divider stages (WGC extra)
  bool watermarked = false;
  /// Dynamic power with every enable high and WMARK stuck at 1.
  double dynamic_w = 0.0;
  /// The share the domain's ICG actually gates — the watermark signal
  /// amplitude when WMARK modulates this domain (0 without an ICG).
  double modulated_w = 0.0;
};

struct SocPowerModel {
  std::vector<DomainPower> domains;
  double total_w = 0.0;       ///< sum of dynamic_w
  double background_w = 0.0;  ///< total_w minus watermarked modulated_w
};

/// One controller lowered into the analysis backends. The Design carries
/// a ClockDomainView per target (and WatermarkView::domain indices), so
/// the multi-domain lint rules have their metadata.
struct ElaboratedSoc {
  lint::Design design;
  SocPowerModel power;
  std::string reference_input;  ///< measurement reference clock name
  double reference_hz = 0.0;
};

struct ElaborateOptions {
  /// Technology library before re-derivation at the reference clock
  /// (vdd is kept; clock_hz is replaced per domain for power numbers).
  power::TechLibrary tech{};
  /// Relative tolerance between a target's declared `freq:` and the
  /// frequency computed along its chain before elaboration fails.
  double frequency_tolerance = 1e-3;
};

/// Lowers one controller. Throws SocError on unknown link inputs, on a
/// declared frequency that disagrees with the divider chain, or on a
/// watermark key outside the buildable WGC range.
ElaboratedSoc elaborate(const ClockController& controller,
                        const ElaborateOptions& options = {});

}  // namespace clockmark::socdesc
