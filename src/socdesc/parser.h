// Hand-rolled parser for the declarative clock-controller format
// (description.h). The accepted surface is the indentation-structured
// subset qsoc's `clock:` section uses — maps of `key: value` / `key:`
// blocks, `- ` list items, `#` comments — parsed strictly: tabs, ragged
// indentation, duplicate keys, unknown keys and missing required keys
// are all hard SocErrors with the offending line, never best-effort.
#pragma once

#include <string_view>

#include "socdesc/description.h"

namespace clockmark::socdesc {

/// Parses a clock-controller description. Throws SocError (with the
/// 1-based source line) on any syntactic or local semantic problem:
/// the cross-reference and consistency checks (link targets exist,
/// declared frequencies match the chain) live in elaborate.h.
SocDescription parse_description(std::string_view text);

/// Convenience: reads `path` and parses it. Throws SocError when the
/// file cannot be read.
SocDescription parse_description_file(const std::string& path);

}  // namespace clockmark::socdesc
