// Declarative SoC clock-controller descriptions — the ingestion frontend
// that turns *any* user-described clock tree into a chip-I/II-class
// experiment. The format follows qsoc's clock-controller section (two
// processing levels: link-level div→inv, target-level mux→icg→div→inv;
// automatic mux typing by reset presence; a controller-wide test_enable
// DFT bypass) with two repo-specific extensions grounded in the paper:
//
//   * `sinks: N` per target — how many clocked registers the domain
//     feeds, so the elaborator can build a real clock tree and the
//     power model can account buffers per domain, and
//   * `watermark:` per target — a WGC key (mode/width/taps/seed) to
//     embed into that domain's clock gate, plus an optional `measure:`
//     block per controller describing the planned acquisition
//     (reference clock, scope rate, trace length).
//
// This header is the parsed data model only; parser.h builds it from
// text, elaborate.h lowers it into lint::Design + a power model, and
// compile.h maps a watermarked domain onto a sim::ScenarioConfig.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "wgc/wgc.h"

namespace clockmark::socdesc {

/// Error type for everything in the frontend: parse errors carry the
/// 1-based source line, semantic (elaboration) errors carry line 0.
class SocError : public std::runtime_error {
 public:
  SocError(std::string message, std::size_t line = 0)
      : std::runtime_error(line == 0 ? message
                                     : "line " + std::to_string(line) +
                                           ": " + message),
        line_(line) {}

  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parses "24MHz" / "32.768kHz" / "1GHz" / "100Hz" / bare hertz numbers.
/// Throws SocError on anything else (including non-positive values).
double parse_frequency(const std::string& text, std::size_t line = 0);

/// Renders a frequency the way descriptions spell it ("24MHz", "12.5MHz",
/// "32.768kHz"). parse_frequency(format_frequency(f)) == f for the
/// values the generator emits.
std::string format_frequency(double hz);

/// A clock divider at either processing level. qsoc spells the ratio as
/// `default:` (static mode) or `ratio:`; both are accepted.
struct DivSpec {
  unsigned ratio = 1;   ///< division ratio, >= 2
  std::string reset;    ///< optional asynchronous reset signal
};

/// One source connection of a target. Link-level processing order is
/// div → inv (qsoc).
struct LinkSpec {
  std::string input;            ///< name of the controller input
  std::optional<DivSpec> div;   ///< link-level divider
  bool inv = false;             ///< link-level inverter
  std::size_t line = 0;         ///< source line (diagnostics)
};

/// Target-level mux attributes. qsoc picks the mux implementation from
/// reset presence: with `reset:` the glitch-free (ETH Zurich) mux is
/// instantiated, without it a plain combinational mux that can glitch
/// while the select changes.
struct MuxSpec {
  std::string select;   ///< select signal (defaults to <target>_sel)
  std::string reset;    ///< empty = plain (glitch-prone) mux
};

/// Target-level ICG. `test_bypass: false` opts this gate out of the
/// controller-wide test_enable DFT bypass (extension; qsoc wires
/// test_enable into every target ICG).
struct IcgSpec {
  std::string enable;      ///< enable signal (required)
  bool test_bypass = true; ///< forced on by test_enable in test mode
};

/// Watermark embedding point (extension): the WGC key to weave into the
/// target's clock gate, exactly as watermark/embedder.h does.
struct WatermarkSpec {
  wgc::WgcConfig wgc;
};

/// One clock target (= one clock domain). Target-level processing order
/// is mux → icg → div → inv (qsoc).
struct TargetSpec {
  std::string name;
  double freq_hz = 0.0;           ///< declared effective sink frequency
  std::size_t sinks = 32;         ///< clocked registers in the domain
  std::vector<LinkSpec> links;    ///< >= 1; > 1 implies a mux
  std::optional<MuxSpec> mux;
  std::optional<IcgSpec> icg;
  std::optional<DivSpec> div;     ///< target-level divider
  bool inv = false;               ///< target-level inverter
  std::optional<WatermarkSpec> watermark;
  std::size_t line = 0;
};

/// One controller input clock.
struct InputSpec {
  std::string name;
  double freq_hz = 0.0;
  std::size_t line = 0;
};

/// Planned acquisition (extension): how the device will be measured.
/// Defaults mirror the paper's bench: reference = the first input,
/// scope at 50x the reference, 300,000 reference cycles.
struct MeasureSpec {
  std::string clock;               ///< reference input name ("" = first)
  double sample_rate_hz = 0.0;     ///< 0 = 50x the reference clock
  std::size_t trace_cycles = 300000;
};

/// One clock controller instance.
struct ClockController {
  std::string name;
  std::string test_enable;         ///< DFT bypass signal ("" = none)
  std::vector<InputSpec> inputs;
  std::vector<TargetSpec> targets;
  MeasureSpec measure;
  std::size_t line = 0;

  const InputSpec* find_input(const std::string& input_name) const noexcept;
  const TargetSpec* find_target(
      const std::string& target_name) const noexcept;
};

/// A parsed description: the `clock:` section's controller list.
struct SocDescription {
  std::vector<ClockController> controllers;
};

/// Renders a description back into the text format parser.h accepts.
/// Deterministic (fixed key order, canonical frequency spelling), so the
/// generator's output is byte-identical per seed and
/// parse_description(render_description(d)) round-trips.
std::string render_description(const SocDescription& description);

/// The effective sink frequency of a target fed from its first (default-
/// selected) link: input freq / link div / target div. Throws SocError
/// when the link names an unknown input.
double effective_frequency(const ClockController& controller,
                           const TargetSpec& target);

/// Total division ratio along the first link (link div * target div).
unsigned total_division(const TargetSpec& target) noexcept;

}  // namespace clockmark::socdesc
