#include "socdesc/compile.h"

#include <algorithm>

namespace clockmark::socdesc {

sim::ScenarioConfig compile_scenario(const ElaboratedSoc& soc,
                                     const CompileOptions& options) {
  // --- pick the watermarked domain --------------------------------------
  const lint::Design& design = soc.design;
  const lint::WatermarkView* chosen = nullptr;
  for (const lint::WatermarkView& wm : design.watermarks()) {
    if (!wm.domain) continue;
    if (!options.target.empty() && wm.name != options.target) continue;
    if (chosen != nullptr) {
      throw SocError("controller '" + design.name() +
                     "' watermarks several domains ('" + chosen->name +
                     "', '" + wm.name +
                     "', ...): pick one with CompileOptions::target");
    }
    chosen = &wm;
  }
  if (chosen == nullptr) {
    throw SocError(options.target.empty()
                       ? "controller '" + design.name() +
                             "' declares no watermarked target"
                       : "controller '" + design.name() +
                             "' has no watermarked target '" +
                             options.target + "'");
  }
  const lint::ClockDomainView& domain =
      design.clock_domains().at(*chosen->domain);

  // --- scenario ----------------------------------------------------------
  sim::ScenarioConfig config;
  config.chip = sim::ChipModel::kChip2;
  config.watermark.wgc = chosen->wgc;
  // Bank geometry mirrors the domain's clock tree: `sinks` registers in
  // up-to-32-bit gated words, the shape the paper's Fig. 4(a) bank uses.
  const std::size_t sinks = std::max<std::size_t>(domain.sinks, 1);
  config.watermark.bits_per_word = std::min<std::size_t>(sinks, 32);
  config.watermark.words =
      (sinks + config.watermark.bits_per_word - 1) /
      config.watermark.bits_per_word;

  if (options.trace_cycles != 0) {
    config.trace_cycles = options.trace_cycles;
  } else if (design.trace_cycles()) {
    config.trace_cycles = *design.trace_cycles();
  }

  // Operating point: the experiment runs on the domain's own timeline
  // (one Y sample per domain cycle); the bench re-centres on it.
  power::TechLibrary tech =
      design.tech() ? *design.tech() : power::TechLibrary{};
  config.tech = tech.at_operating_point(domain.clock_hz, tech.vdd_v);
  config.acquisition.vdd_v = config.tech.vdd_v;
  config.acquisition.scope.sample_rate_hz =
      static_cast<double>(config.acquisition.waveform.samples_per_cycle) *
      domain.clock_hz;
  config.acquisition.probe.sample_rate_hz =
      config.acquisition.scope.sample_rate_hz;
  config.acquisition.pdn_cutoff_hz = domain.clock_hz / 25.0;

  // The rest of the SoC — every non-modulated domain plus the chosen
  // domain's always-on chain — is the deterministic background the
  // fabric term models.
  config.fabric_power_w = soc.power.background_w;
  config.seed = options.seed;
  return config;
}

}  // namespace clockmark::socdesc
