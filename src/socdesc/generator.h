// Seeded random-but-valid clock-controller topologies: an unbounded lint
// corpus. Generation is pure in the seed (util::Pcg32, no wall-clock, no
// global state): the same GeneratorOptions produce a byte-identical
// description, so corpus sweeps are reproducible in CI and failures
// replay from nothing but the seed.
//
// Clean topologies (DefectKind::kNone) elaborate and lint with no
// error-severity findings; each defect kind injects exactly one class of
// multi-domain violation with a known rule id, which the CI sweep
// asserts on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "socdesc/description.h"

namespace clockmark::socdesc {

enum class DefectKind {
  kNone,           ///< valid topology, lints with no errors
  kAliasedDomain,  ///< watermark in a domain above the measurement
                   ///< reference -> domain-aliasing
  kTestBypass,     ///< watermarked ICG on the DFT bypass
                   ///< -> test-bypassable-watermark
  kGlitchMux,      ///< watermarked domain behind a reset-less mux
                   ///< -> glitch-prone-mux
  kKeyCollision,   ///< two domains with the identical key and rate
                   ///< -> cross-domain-collision
};

/// The rule id the defect kind is expected to trip (empty for kNone).
std::string_view defect_rule_id(DefectKind kind) noexcept;

/// Parses "none" / "aliased-domain" / "test-bypass" / "glitch-mux" /
/// "key-collision"; throws SocError on anything else.
DefectKind parse_defect_kind(std::string_view name);

struct GeneratorOptions {
  std::uint64_t seed = 1;
  std::size_t min_targets = 3;  ///< >= 3 keeps every SoC multi-domain
  std::size_t max_targets = 6;
  DefectKind defect = DefectKind::kNone;
};

/// Generates one topology as parsed structures (for direct elaboration).
SocDescription generate_soc(const GeneratorOptions& options = {});

/// render_description(generate_soc(options)) — the canonical corpus
/// text, byte-identical per options.
std::string generate_description(const GeneratorOptions& options = {});

}  // namespace clockmark::socdesc
