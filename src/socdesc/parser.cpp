#include "socdesc/parser.h"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace clockmark::socdesc {
namespace {

// ---------------------------------------------------------------------
// Stage 1: text -> generic node tree. A Node is a scalar, a map (ordered
// key -> Node) or a list; exactly the shapes the clock format uses.

struct Node {
  std::size_t line = 0;
  bool is_scalar = false;
  std::string scalar;
  std::vector<std::pair<std::string, Node>> map;
  std::vector<Node> items;

  const Node* find(std::string_view key) const noexcept {
    for (const auto& [k, v] : map) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

struct Line {
  std::size_t number = 0;  ///< 1-based source line
  std::size_t indent = 0;  ///< spaces before the content
  std::string text;        ///< content, comment-stripped, right-trimmed
};

/// Strips a `#` comment. The format's scalars never contain '#', so a
/// hash at the start of the content or preceded by a space opens a
/// comment; anything else ("freq#x") is left for the value parser to
/// reject downstream.
std::string strip_comment(const std::string& raw) {
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '#') continue;
    if (i == 0 || raw[i - 1] == ' ') return raw.substr(0, i);
  }
  return raw;
}

std::string rtrim(std::string s) {
  while (!s.empty() && (s.back() == ' ' || s.back() == '\r')) s.pop_back();
  return s;
}

std::vector<Line> split_lines(std::string_view text) {
  std::vector<Line> lines;
  std::size_t number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    ++number;
    std::string raw(text.substr(start, end - start));
    start = end + 1;
    if (raw.find('\t') != std::string::npos) {
      throw SocError("tab character in indentation or content "
                     "(use spaces)", number);
    }
    std::size_t indent = 0;
    while (indent < raw.size() && raw[indent] == ' ') ++indent;
    std::string content = rtrim(strip_comment(raw.substr(indent)));
    if (content.empty()) continue;  // blank or comment-only line
    lines.push_back({number, indent, std::move(content)});
    if (end == text.size()) break;
  }
  return lines;
}

class TreeParser {
 public:
  explicit TreeParser(std::string_view text) : lines_(split_lines(text)) {}

  Node parse() {
    if (lines_.empty()) throw SocError("empty description", 1);
    if (lines_.front().indent != 0) {
      throw SocError("first entry must start at column 0",
                     lines_.front().number);
    }
    Node root = parse_container(0);
    if (pos_ < lines_.size()) {
      throw SocError("inconsistent indentation", lines_[pos_].number);
    }
    return root;
  }

 private:
  static bool is_list_item(const Line& line) {
    return line.text == "-" || line.text.rfind("- ", 0) == 0;
  }

  /// Parses the block whose entries sit at exactly `indent`. The block
  /// is either all list items or all map entries; mixing is an error.
  Node parse_container(std::size_t indent) {
    Node node;
    node.line = lines_[pos_].number;
    const bool list = is_list_item(lines_[pos_]);
    while (pos_ < lines_.size() && lines_[pos_].indent >= indent) {
      if (lines_[pos_].indent != indent) {
        throw SocError("inconsistent indentation", lines_[pos_].number);
      }
      if (is_list_item(lines_[pos_]) != list) {
        throw SocError("cannot mix list items and map keys in one block",
                       lines_[pos_].number);
      }
      if (list) {
        node.items.push_back(parse_list_item(indent));
      } else {
        parse_map_entry(indent, node);
      }
    }
    return node;
  }

  /// `- inline-content`: the item body (inline entry plus any following
  /// lines) is a map block aligned two columns past the dash.
  Node parse_list_item(std::size_t indent) {
    Line& line = lines_[pos_];
    const std::string rest =
        line.text == "-" ? std::string() : line.text.substr(2);
    if (rest.empty()) {
      const std::size_t item_line = line.number;
      ++pos_;
      if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
        return parse_container(lines_[pos_].indent);
      }
      Node empty;
      empty.line = item_line;
      return empty;
    }
    // Rewrite the line in place as the first entry of the item's map
    // block, aligned where the inline content starts.
    line.text = rest;
    line.indent = indent + 2;
    return parse_container(indent + 2);
  }

  void parse_map_entry(std::size_t indent, Node& parent) {
    const Line& line = lines_[pos_];
    const std::size_t colon = line.text.find(':');
    if (colon == std::string::npos || colon == 0) {
      throw SocError("expected 'key:' or 'key: value', got '" + line.text +
                         "'",
                     line.number);
    }
    const std::string key = rtrim(line.text.substr(0, colon));
    for (const char c : key) {
      if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') {
        throw SocError("bad key '" + key + "'", line.number);
      }
    }
    if (parent.find(key) != nullptr) {
      throw SocError("duplicate key '" + key + "'", line.number);
    }
    std::string value = line.text.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.erase(0, 1);

    Node child;
    child.line = line.number;
    ++pos_;
    if (!value.empty()) {
      child.is_scalar = true;
      child.scalar = std::move(value);
      if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
        throw SocError("scalar '" + key + "' cannot have a nested block",
                       lines_[pos_].number);
      }
    } else if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
      child = parse_container(lines_[pos_].indent);
      child.line = line.number;
    }
    parent.map.emplace_back(key, std::move(child));
  }

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Stage 2: node tree -> SocDescription, with strict key checking.

[[noreturn]] void unknown_key(const std::string& where,
                              const std::string& key, std::size_t line) {
  throw SocError("unknown key '" + key + "' in " + where, line);
}

const Node& require_key(const Node& node, std::string_view key,
                        const std::string& where) {
  const Node* child = node.find(key);
  if (child == nullptr) {
    throw SocError("missing required key '" + std::string(key) + "' in " +
                       where,
                   node.line);
  }
  return *child;
}

std::string require_scalar(const Node& node, const std::string& what) {
  if (!node.is_scalar || node.scalar.empty()) {
    throw SocError("expected a value for " + what, node.line);
  }
  return node.scalar;
}

bool parse_bool(const Node& node, const std::string& what) {
  const std::string value = require_scalar(node, what);
  if (value == "true") return true;
  if (value == "false") return false;
  throw SocError("expected true/false for " + what + ", got '" + value +
                     "'",
                 node.line);
}

std::uint64_t parse_uint(const Node& node, const std::string& what) {
  const std::string value = require_scalar(node, what);
  std::size_t used = 0;
  std::uint64_t parsed = 0;
  try {
    parsed = std::stoull(value, &used, 0);  // accepts decimal and 0x...
  } catch (const std::exception&) {
    throw SocError("bad number '" + value + "' for " + what, node.line);
  }
  if (used != value.size()) {
    throw SocError("bad number '" + value + "' for " + what, node.line);
  }
  return parsed;
}

DivSpec parse_div(const Node& node, const std::string& where) {
  DivSpec div;
  bool have_ratio = false;
  for (const auto& [key, child] : node.map) {
    if (key == "default" || key == "ratio") {
      if (have_ratio) {
        throw SocError("both 'default' and 'ratio' given in " + where,
                       child.line);
      }
      const std::uint64_t ratio = parse_uint(child, where + " ratio");
      if (ratio < 2 || ratio > 4096) {
        throw SocError("division ratio must be in [2, 4096], got " +
                           std::to_string(ratio),
                       child.line);
      }
      div.ratio = static_cast<unsigned>(ratio);
      have_ratio = true;
    } else if (key == "reset") {
      div.reset = require_scalar(child, where + " reset");
    } else {
      unknown_key(where, key, child.line);
    }
  }
  if (!have_ratio) {
    throw SocError("divider in " + where +
                       " needs a 'default:' or 'ratio:' value",
                   node.line);
  }
  return div;
}

MuxSpec parse_mux(const Node& node, const std::string& where) {
  MuxSpec mux;
  for (const auto& [key, child] : node.map) {
    if (key == "select") {
      mux.select = require_scalar(child, where + " select");
    } else if (key == "reset") {
      mux.reset = require_scalar(child, where + " reset");
    } else {
      unknown_key(where, key, child.line);
    }
  }
  return mux;
}

IcgSpec parse_icg(const Node& node, const std::string& where) {
  IcgSpec icg;
  for (const auto& [key, child] : node.map) {
    if (key == "enable") {
      icg.enable = require_scalar(child, where + " enable");
    } else if (key == "test_bypass") {
      icg.test_bypass = parse_bool(child, where + " test_bypass");
    } else {
      unknown_key(where, key, child.line);
    }
  }
  if (icg.enable.empty()) {
    throw SocError("icg in " + where + " needs an 'enable:' signal",
                   node.line);
  }
  return icg;
}

WatermarkSpec parse_watermark(const Node& node, const std::string& where) {
  WatermarkSpec wm;
  for (const auto& [key, child] : node.map) {
    if (key == "mode") {
      const std::string mode = require_scalar(child, where + " mode");
      if (mode == "lfsr") {
        wm.wgc.mode = wgc::WgcMode::kLfsr;
      } else if (mode == "circular") {
        wm.wgc.mode = wgc::WgcMode::kCircular;
      } else {
        throw SocError("watermark mode must be lfsr or circular, got '" +
                           mode + "'",
                       child.line);
      }
    } else if (key == "width") {
      wm.wgc.width = static_cast<unsigned>(
          parse_uint(child, where + " width"));
    } else if (key == "taps") {
      wm.wgc.taps = static_cast<std::uint32_t>(
          parse_uint(child, where + " taps"));
    } else if (key == "seed") {
      wm.wgc.seed = static_cast<std::uint32_t>(
          parse_uint(child, where + " seed"));
    } else {
      unknown_key(where, key, child.line);
    }
  }
  return wm;
}

LinkSpec parse_link(const std::string& input, const Node& node,
                    const std::string& where) {
  LinkSpec link;
  link.input = input;
  link.line = node.line;
  for (const auto& [key, child] : node.map) {
    if (key == "div") {
      link.div = parse_div(child, where + " div");
    } else if (key == "inv") {
      link.inv = parse_bool(child, where + " inv");
    } else {
      unknown_key(where, key, child.line);
    }
  }
  return link;
}

TargetSpec parse_target(const std::string& name, const Node& node) {
  TargetSpec target;
  target.name = name;
  target.line = node.line;
  const std::string where = "target '" + name + "'";
  bool have_freq = false;
  for (const auto& [key, child] : node.map) {
    if (key == "freq") {
      target.freq_hz =
          parse_frequency(require_scalar(child, where + " freq"),
                          child.line);
      have_freq = true;
    } else if (key == "sinks") {
      const std::uint64_t sinks = parse_uint(child, where + " sinks");
      if (sinks == 0 || sinks > 65536) {
        throw SocError("sinks must be in [1, 65536], got " +
                           std::to_string(sinks),
                       child.line);
      }
      target.sinks = static_cast<std::size_t>(sinks);
    } else if (key == "link") {
      if (child.map.empty()) {
        throw SocError(where + " 'link:' lists no inputs", child.line);
      }
      for (const auto& [input, attrs] : child.map) {
        target.links.push_back(
            parse_link(input, attrs, where + " link '" + input + "'"));
        if (target.links.back().line == 0) {
          target.links.back().line = child.line;
        }
      }
    } else if (key == "mux") {
      target.mux = parse_mux(child, where + " mux");
    } else if (key == "icg") {
      target.icg = parse_icg(child, where + " icg");
    } else if (key == "div") {
      target.div = parse_div(child, where + " div");
    } else if (key == "inv") {
      target.inv = parse_bool(child, where + " inv");
    } else if (key == "watermark") {
      target.watermark = parse_watermark(child, where + " watermark");
    } else {
      unknown_key(where, key, child.line);
    }
  }
  if (!have_freq) {
    throw SocError(where + " needs a declared 'freq:'", node.line);
  }
  if (target.links.empty()) {
    throw SocError(where + " needs a 'link:' block", node.line);
  }
  if (target.mux && target.links.size() < 2) {
    throw SocError(where + " declares a mux but links only one input",
                   node.line);
  }
  return target;
}

MeasureSpec parse_measure(const Node& node, const std::string& where) {
  MeasureSpec measure;
  for (const auto& [key, child] : node.map) {
    if (key == "clock") {
      measure.clock = require_scalar(child, where + " measure clock");
    } else if (key == "sample_rate") {
      measure.sample_rate_hz = parse_frequency(
          require_scalar(child, where + " sample_rate"), child.line);
    } else if (key == "trace") {
      const std::uint64_t trace = parse_uint(child, where + " trace");
      if (trace == 0) {
        throw SocError("measure trace must be positive", child.line);
      }
      measure.trace_cycles = static_cast<std::size_t>(trace);
    } else {
      unknown_key(where + " measure", key, child.line);
    }
  }
  return measure;
}

ClockController parse_controller(const Node& node) {
  ClockController ctrl;
  ctrl.line = node.line;
  for (const auto& [key, child] : node.map) {
    if (key == "name") {
      ctrl.name = require_scalar(child, "controller name");
    } else if (key == "test_enable" || key == "test_en") {
      ctrl.test_enable = require_scalar(child, "controller test_enable");
    } else if (key == "clock") {
      // qsoc's default synchronous clock for divider/mux control logic;
      // carried by the format but not modelled here.
      (void)require_scalar(child, "controller clock");
    } else if (key == "input") {
      for (const auto& [input, attrs] : child.map) {
        InputSpec spec;
        spec.name = input;
        spec.line = attrs.line;
        const Node& freq = require_key(attrs, "freq",
                                       "input '" + input + "'");
        spec.freq_hz = parse_frequency(
            require_scalar(freq, "input '" + input + "' freq"), freq.line);
        for (const auto& [ikey, ichild] : attrs.map) {
          if (ikey != "freq") {
            unknown_key("input '" + input + "'", ikey, ichild.line);
          }
        }
        ctrl.inputs.push_back(std::move(spec));
      }
    } else if (key == "target") {
      for (const auto& [target, attrs] : child.map) {
        ctrl.targets.push_back(parse_target(target, attrs));
      }
    } else if (key == "measure") {
      ctrl.measure = parse_measure(child, "controller");
    } else {
      unknown_key("clock controller", key, child.line);
    }
  }
  const std::string where =
      ctrl.name.empty() ? "clock controller" : "controller '" + ctrl.name +
                                                   "'";
  if (ctrl.name.empty()) {
    throw SocError(where + " needs a 'name:'", node.line);
  }
  if (ctrl.inputs.empty()) {
    throw SocError(where + " needs a nonempty 'input:' block", node.line);
  }
  if (ctrl.targets.empty()) {
    throw SocError(where + " needs a nonempty 'target:' block", node.line);
  }
  return ctrl;
}

}  // namespace

SocDescription parse_description(std::string_view text) {
  TreeParser tree(text);
  const Node root = tree.parse();
  if (root.find("clock") == nullptr) {
    throw SocError("description has no 'clock:' section", root.line);
  }
  SocDescription description;
  for (const auto& [key, section] : root.map) {
    if (key != "clock") unknown_key("description", key, section.line);
    if (section.items.empty()) {
      throw SocError("'clock:' section lists no controllers",
                     section.line);
    }
    for (const Node& item : section.items) {
      description.controllers.push_back(parse_controller(item));
    }
  }
  // Controller names must be unique so reports are unambiguous.
  for (std::size_t a = 0; a < description.controllers.size(); ++a) {
    for (std::size_t b = a + 1; b < description.controllers.size(); ++b) {
      if (description.controllers[a].name ==
          description.controllers[b].name) {
        throw SocError("duplicate controller name '" +
                           description.controllers[a].name + "'",
                       description.controllers[b].line);
      }
    }
  }
  return description;
}

SocDescription parse_description_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw SocError("cannot read description file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_description(buffer.str());
}

}  // namespace clockmark::socdesc
