// Fig. 6 reproduction: repeatability of detection. 100 independent runs
// per chip; box plots (95 % boxes, as in the paper) of the correlation at
// the true phase vs all off-phase rotations. The paper's finding: the
// peak is present in all 100 repetitions on both chips.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "cpa/detector.h"
#include "cpa/spread_spectrum.h"
#include "sim/experiment.h"
#include "util/ascii_chart.h"
#include "util/csv.h"

using namespace clockmark;

namespace {

// One full repetition on the planless reference path (run_uncached +
// CPA sweep + decision): the baseline the memoized study is compared
// against in the --json perf record. Returns CPU seconds per rep.
double time_uncached_reps(const sim::Scenario& scenario, std::size_t k,
                          const cpa::DetectorPolicy& policy,
                          std::size_t trials) {
  const cpa::Detector detector(policy);
  return bench::time_reps_best(
      [&](std::size_t rep) {
        const sim::ScenarioResult r = scenario.run_uncached(rep);
        const auto spectrum = cpa::compute_spread_spectrum(
            r.acquisition.per_cycle_power_w, r.pattern,
            cpa::CorrelationMethod::kFft, policy.guard);
        (void)detector.decide(spectrum);
      },
      k, trials);
}

// The pre-batching study loop (memoized run(rep) + planless sweep), the
// other --json baseline: what run_repeatability_study cost before the
// batched SoA acquisition path.
double time_sequential_reps(const sim::Scenario& scenario, std::size_t k,
                            const cpa::DetectorPolicy& policy,
                            std::size_t trials) {
  const cpa::Detector detector(policy);
  return bench::time_reps_best(
      [&](std::size_t rep) {
        const sim::ScenarioResult r = scenario.run(rep);
        const auto spectrum = cpa::compute_spread_spectrum(
            r.acquisition.per_cycle_power_w, r.pattern,
            cpa::CorrelationMethod::kFft, policy.guard);
        (void)detector.decide(spectrum);
      },
      k, trials);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv, {.reps = 100});
  cli.reject_unknown();
  const std::size_t reps = cli.reps();
  bench::BenchJson json("fig6_repeatability", cli.threads());

  bench::print_header(
      "fig6_repeatability — detection repeated " + std::to_string(reps) +
          " times per chip (" + std::to_string(cli.threads()) +
          " worker threads)",
      "paper Fig. 6(a,b): 100 repetitions, 95% boxes, all detected");

  util::CsvWriter csv(cli.out_file("fig6_repeatability.csv"));
  csv.text_row({"chip", "rep", "in_phase_rho", "max_off_phase_rho",
                "detected"});

  for (const bool chip2 : {false, true}) {
    auto cfg = chip2 ? sim::chip2_default() : sim::chip1_default();
    cli.apply(cfg);
    // Each capture has its own trigger alignment in the lab: let the
    // phase vary per repetition (the paper's Fig. 6 aggregates the peak
    // wherever it lands).
    cfg.phase_offset.reset();
    sim::Scenario scenario(cfg);
    const double study_t0 = bench::cpu_seconds();
    const auto result =
        sim::run_repeatability_study(scenario, reps, {}, cli.executor());
    double cached_s_per_rep =
        (bench::cpu_seconds() - study_t0) / static_cast<double>(reps);
    // --trials > 1 (the tier-1 smoke): re-run the study and keep the
    // fastest pass, so the gated cpu_s_per_rep is a best-of-N minimum
    // rather than a single noisy sample. The result itself is
    // deterministic, so only the timing varies.
    for (std::size_t trial = 1; trial < cli.trials(); ++trial) {
      const double t0 = bench::cpu_seconds();
      (void)sim::run_repeatability_study(scenario, reps, {}, cli.executor());
      cached_s_per_rep =
          std::min(cached_s_per_rep, (bench::cpu_seconds() - t0) /
                                         static_cast<double>(reps));
    }

    const std::string chip = chip2 ? "chip II" : "chip I";
    std::cout << "\n--- " << chip << " (" << reps << " repetitions, "
              << cli.cycles() << " cycles each) ---\n";
    const double lo = std::min(result.off_phase.whisker_low, -0.005);
    const double hi = std::max(result.in_phase.whisker_high, 0.02);
    std::cout << util::box_plot_row("in-phase rho", result.in_phase, lo, hi)
              << "\n";
    std::cout << util::box_plot_row("off-phase rho", result.off_phase, lo,
                                    hi)
              << "\n";
    std::cout << "  in-phase:  median=" << result.in_phase.median
              << "  95% box=[" << result.in_phase.q_low << ", "
              << result.in_phase.q_high << "]\n";
    std::cout << "  off-phase: median=" << result.off_phase.median
              << "  95% box=[" << result.off_phase.q_low << ", "
              << result.off_phase.q_high << "]\n";
    std::cout << "  detections: " << result.detections << "/"
              << result.repetitions
              << (result.detections == result.repetitions
                      ? "  (all repetitions detected, as in the paper)"
                      : "  (!!! not all detected)")
              << "\n";

    for (std::size_t i = 0; i < result.samples.size(); ++i) {
      const auto& s = result.samples[i];
      csv.text_row({chip, std::to_string(i),
                    util::format_double(s.in_phase_rho, 8),
                    util::format_double(s.max_off_phase, 8),
                    s.detected ? "1" : "0"});
    }

    // --json: measure the planless reference in the same process so the
    // perf record compares memoized and uncached repetitions under
    // identical conditions (CPU-time basis; valid on a 1-core box).
    if (!cli.json_path().empty()) {
      const std::size_t k_full = std::min<std::size_t>(reps, 3);
      const std::size_t k_syn = std::min<std::size_t>(reps, 10);
      const double uncached_s_per_rep =
          time_uncached_reps(scenario, k_full, {}, cli.trials());
      const double sequential_s_per_rep =
          time_sequential_reps(scenario, reps, {}, cli.trials());
      // Memoized synthesis costs microseconds at smoke scale: cycle the
      // same reps often enough that one timed pass spans milliseconds,
      // or the gated per-call number is clock-granularity noise.
      const std::size_t syn_calls = std::max<std::size_t>(k_syn, 32);
      const double syn_s_per_rep = bench::time_reps_best(
          [&](std::size_t i) { (void)scenario.synthesize(i % k_syn); },
          syn_calls, cli.trials());
      const double uncached_syn_s_per_rep = bench::time_reps_best(
          [&](std::size_t i) {
            (void)scenario.synthesize_uncached(i % k_syn);
          },
          syn_calls, cli.trials());

      auto& rec = json.add_record(chip2 ? "chip2" : "chip1");
      bench::BenchJson::add_metric(rec, "repetitions",
                                   static_cast<double>(reps));
      bench::BenchJson::add_metric(rec, "cycles",
                                   static_cast<double>(cli.cycles()));
      bench::BenchJson::add_metric(rec, "cpu_s_per_rep", cached_s_per_rep);
      bench::BenchJson::add_metric(
          rec, "items_per_sec",
          cached_s_per_rep > 0.0 ? 1.0 / cached_s_per_rep : 0.0);
      bench::BenchJson::add_metric(rec, "uncached_cpu_s_per_rep",
                                   uncached_s_per_rep);
      bench::BenchJson::add_metric(
          rec, "full_pipeline_speedup",
          cached_s_per_rep > 0.0 ? uncached_s_per_rep / cached_s_per_rep
                                 : 0.0);
      bench::BenchJson::add_metric(rec, "sequential_cpu_s_per_rep",
                                   sequential_s_per_rep);
      bench::BenchJson::add_metric(
          rec, "batched_study_speedup",
          cached_s_per_rep > 0.0 ? sequential_s_per_rep / cached_s_per_rep
                                 : 0.0);
      bench::BenchJson::add_metric(rec, "synthesis_cpu_s_per_rep",
                                   syn_s_per_rep);
      bench::BenchJson::add_metric(rec, "uncached_synthesis_cpu_s_per_rep",
                                   uncached_syn_s_per_rep);
      bench::BenchJson::add_metric(
          rec, "synthesis_speedup",
          syn_s_per_rep > 0.0 ? uncached_syn_s_per_rep / syn_s_per_rep
                              : 0.0);
      std::cout << "  [perf] batched " << cached_s_per_rep
                << " cpu-s/rep, sequential " << sequential_s_per_rep
                << " cpu-s/rep ("
                << (cached_s_per_rep > 0.0
                        ? sequential_s_per_rep / cached_s_per_rep
                        : 0.0)
                << "x), uncached " << uncached_s_per_rep
                << " cpu-s/rep; synthesis " << syn_s_per_rep << " vs "
                << uncached_syn_s_per_rep << " cpu-s/rep ("
                << (syn_s_per_rep > 0.0
                        ? uncached_syn_s_per_rep / syn_s_per_rep
                        : 0.0)
                << "x)\n";
    }
  }
  if (!cli.json_path().empty()) json.write(cli.json_path());
  return 0;
}
