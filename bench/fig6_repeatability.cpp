// Fig. 6 reproduction: repeatability of detection. 100 independent runs
// per chip; box plots (95 % boxes, as in the paper) of the correlation at
// the true phase vs all off-phase rotations. The paper's finding: the
// peak is present in all 100 repetitions on both chips.
#include <iostream>

#include "bench_common.h"
#include "sim/experiment.h"
#include "util/ascii_chart.h"
#include "util/csv.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv, {.reps = 100});
  const std::size_t reps = cli.reps();

  bench::print_header(
      "fig6_repeatability — detection repeated " + std::to_string(reps) +
          " times per chip (" + std::to_string(cli.threads()) +
          " worker threads)",
      "paper Fig. 6(a,b): 100 repetitions, 95% boxes, all detected");

  util::CsvWriter csv(cli.out_file("fig6_repeatability.csv"));
  csv.text_row({"chip", "rep", "in_phase_rho", "max_off_phase_rho",
                "detected"});

  for (const bool chip2 : {false, true}) {
    auto cfg = chip2 ? sim::chip2_default() : sim::chip1_default();
    cli.apply(cfg);
    // Each capture has its own trigger alignment in the lab: let the
    // phase vary per repetition (the paper's Fig. 6 aggregates the peak
    // wherever it lands).
    cfg.phase_offset.reset();
    sim::Scenario scenario(cfg);
    const auto result =
        sim::run_repeatability_study(scenario, reps, {}, cli.executor());

    const std::string chip = chip2 ? "chip II" : "chip I";
    std::cout << "\n--- " << chip << " (" << reps << " repetitions, "
              << cli.cycles() << " cycles each) ---\n";
    const double lo = std::min(result.off_phase.whisker_low, -0.005);
    const double hi = std::max(result.in_phase.whisker_high, 0.02);
    std::cout << util::box_plot_row("in-phase rho", result.in_phase, lo, hi)
              << "\n";
    std::cout << util::box_plot_row("off-phase rho", result.off_phase, lo,
                                    hi)
              << "\n";
    std::cout << "  in-phase:  median=" << result.in_phase.median
              << "  95% box=[" << result.in_phase.q_low << ", "
              << result.in_phase.q_high << "]\n";
    std::cout << "  off-phase: median=" << result.off_phase.median
              << "  95% box=[" << result.off_phase.q_low << ", "
              << result.off_phase.q_high << "]\n";
    std::cout << "  detections: " << result.detections << "/"
              << result.repetitions
              << (result.detections == result.repetitions
                      ? "  (all repetitions detected, as in the paper)"
                      : "  (!!! not all detected)")
              << "\n";

    for (std::size_t i = 0; i < result.samples.size(); ++i) {
      const auto& s = result.samples[i];
      csv.text_row({chip, std::to_string(i),
                    util::format_double(s.in_phase_rho, 8),
                    util::format_double(s.max_off_phase, 8),
                    s.detected ? "1" : "0"});
    }
  }
  return 0;
}
