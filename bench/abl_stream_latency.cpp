// Ablation: batch vs streaming detection — wall-clock latency to a
// decision and how much trace data each path holds at peak.
//
// The batch path materialises the full sample-rate waveform (cycles x
// samples_per_cycle doubles) plus the Y vector before the sweep even
// starts; the streaming pipeline holds a bounded window of chunks plus
// the O(P) rotation fold, and with early stop it answers before the
// trace ends. --json=PATH writes the comparison as a BenchJson record
// (BENCH_stream.json in the tier-1 smoke run).
#include <algorithm>
#include <chrono>
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "cpa/detector.h"
#include "detect/session.h"
#include "stream/pipeline.h"
#include "util/csv.h"

using namespace clockmark;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv, {.cycles = 150000});
  const auto chunk_cycles =
      static_cast<std::size_t>(cli.args().get_int("chunk", 4096));
  const auto queue_capacity =
      static_cast<std::size_t>(cli.args().get_int("queue", 8));
  cli.reject_unknown();
  bench::print_header(
      "abl_stream_latency — batch vs streaming detection",
      "extends paper Sec. IV (online variant of the 300k-cycle CPA)");

  sim::ScenarioConfig cfg = sim::chip1_default();
  cli.apply(cfg);
  const sim::Scenario scenario(cfg);
  const std::size_t spc = cfg.acquisition.waveform.samples_per_cycle;

  // ---- batch: materialise everything, then sweep -------------------
  // Every timed path below runs --trials times and keeps the fastest
  // wall-clock pass (the reports are deterministic, only the timing
  // varies); the tier-1 smoke uses 3 so the perf gate compares minima.
  const auto t_batch = std::chrono::steady_clock::now();
  const detect::Report batch = detect::Session().run(scenario);
  double batch_s = seconds_since(t_batch);
  for (std::size_t trial = 1; trial < cli.trials(); ++trial) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)detect::Session().run(scenario);
    batch_s = std::min(batch_s, seconds_since(t0));
  }
  // Peak trace data held: the sample-rate waveform plus Y.
  const std::size_t batch_bytes =
      cfg.trace_cycles * (spc + 1) * sizeof(double);

  // ---- streaming, early stop on ------------------------------------
  stream::StreamPipelineConfig pipe_cfg;
  pipe_cfg.queue_capacity = queue_capacity;
  const stream::StreamPipeline pipeline(pipe_cfg);

  const auto t_early = std::chrono::steady_clock::now();
  stream::ScenarioSource early_source(scenario, 0, chunk_cycles);
  const stream::StreamReport early =
      pipeline.run(early_source, early_source.pattern(), cli.executor());
  double early_s = seconds_since(t_early);
  for (std::size_t trial = 1; trial < cli.trials(); ++trial) {
    const auto t0 = std::chrono::steady_clock::now();
    stream::ScenarioSource source(scenario, 0, chunk_cycles);
    (void)pipeline.run(source, source.pattern(), cli.executor());
    early_s = std::min(early_s, seconds_since(t0));
  }

  // ---- streaming, run to the trace end ------------------------------
  stream::StreamPipelineConfig full_cfg = pipe_cfg;
  full_cfg.detector.early_stop = false;
  const stream::StreamPipeline full_pipeline(full_cfg);

  const auto t_full = std::chrono::steady_clock::now();
  stream::ScenarioSource full_source(scenario, 0, chunk_cycles);
  const stream::StreamReport full =
      full_pipeline.run(full_source, full_source.pattern(), cli.executor());
  double full_s = seconds_since(t_full);
  for (std::size_t trial = 1; trial < cli.trials(); ++trial) {
    const auto t0 = std::chrono::steady_clock::now();
    stream::ScenarioSource source(scenario, 0, chunk_cycles);
    (void)full_pipeline.run(source, source.pattern(), cli.executor());
    full_s = std::min(full_s, seconds_since(t0));
  }

  // Streaming's peak: the analog window of the chunk in flight plus the
  // queue, and the O(P) fold slots.
  const std::size_t stream_bytes =
      full.peak_buffered_bytes * (spc + 1) +
      full_source.pattern().size() * 2 * sizeof(double);

  const auto row = [](const char* name, bool detected, double secs,
                      std::size_t cycles, std::size_t bytes) {
    std::cout << std::setw(22) << name << std::setw(10)
              << (detected ? "yes" : "no") << std::setw(12)
              << std::setprecision(3) << std::fixed << secs << std::setw(12)
              << cycles << std::setw(16) << bytes << "\n";
  };
  std::cout << "\n" << std::setw(22) << "path" << std::setw(10) << "detected"
            << std::setw(12) << "seconds" << std::setw(12) << "cycles"
            << std::setw(16) << "bytes held" << "\n";
  row("batch", batch.detection.detected, batch_s, cfg.trace_cycles,
      batch_bytes);
  row("stream (early stop)", early.decision.detected, early_s,
      early.decision.decision_cycles, stream_bytes);
  row("stream (full trace)", full.decision.detected, full_s,
      full.decision.cycles, stream_bytes);

  const bool identical =
      full.decision.result.spectrum.rho == batch.detection.spectrum.rho;
  std::cout << "\nfull-stream spectrum vs batch: "
            << (identical ? "bit-identical" : "MISMATCH")
            << "; early decision used "
            << std::setprecision(1)
            << 100.0 * static_cast<double>(early.decision.decision_cycles) /
                   static_cast<double>(cfg.trace_cycles)
            << "% of the trace\n";

  util::CsvWriter csv(cli.out_file("abl_stream_latency.csv"));
  csv.text_row({"path", "detected", "seconds", "cycles", "bytes_held"});
  csv.text_row({"batch", batch.detection.detected ? "1" : "0",
                util::format_double(batch_s, 6),
                std::to_string(cfg.trace_cycles),
                std::to_string(batch_bytes)});
  csv.text_row({"stream_early", early.decision.detected ? "1" : "0",
                util::format_double(early_s, 6),
                std::to_string(early.decision.decision_cycles),
                std::to_string(stream_bytes)});
  csv.text_row({"stream_full", full.decision.detected ? "1" : "0",
                util::format_double(full_s, 6),
                std::to_string(full.decision.cycles),
                std::to_string(stream_bytes)});

  if (!cli.json_path().empty()) {
    bench::BenchJson json("abl_stream_latency", cli.threads());
    auto& rec = json.add_record("batch_vs_stream");
    bench::BenchJson::add_metric(rec, "batch_s", batch_s);
    bench::BenchJson::add_metric(rec, "stream_early_s", early_s);
    bench::BenchJson::add_metric(rec, "stream_full_s", full_s);
    // perf_gate-tracked aliases (the *_s names predate the gate's
    // suffix convention and stay for downstream parsers).
    bench::BenchJson::add_metric(rec, "batch_s_per_iter", batch_s);
    bench::BenchJson::add_metric(rec, "stream_early_s_per_iter", early_s);
    bench::BenchJson::add_metric(rec, "stream_full_s_per_iter", full_s);
    bench::BenchJson::add_metric(rec, "batch_bytes_held",
                                 static_cast<double>(batch_bytes));
    bench::BenchJson::add_metric(rec, "stream_bytes_held",
                                 static_cast<double>(stream_bytes));
    bench::BenchJson::add_metric(
        rec, "early_decision_cycles",
        static_cast<double>(early.decision.decision_cycles));
    bench::BenchJson::add_metric(
        rec, "early_fraction",
        static_cast<double>(early.decision.decision_cycles) /
            static_cast<double>(cfg.trace_cycles));
    bench::BenchJson::add_metric(rec, "bitwise_identical",
                                 identical ? 1.0 : 0.0);
    json.write(cli.json_path());
  }
  return identical && batch.detection.detected == full.decision.detected
             ? 0
             : 1;
}
