// Table II reproduction: number of load-circuit registers needed for a
// target detectable load power, N = P_load / (1.126 uW + 1.476 uW), and
// the resulting area-overhead increase N / (N + WGC registers) — which is
// exactly the area reduction the clock-modulation technique achieves by
// deleting the load circuit and keeping only the 12-register WGC.
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "power/tech65.h"
#include "util/csv.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  bench::print_header("table2_area_overhead — load circuit sizing",
                      "paper Table II");

  const power::TechLibrary lib = power::tsmc65lp_like();
  const std::size_t wgc_registers =
      static_cast<std::size_t>(cli.args().get_int("wgc", 12));
  cli.reject_unknown();

  struct Row {
    double p_load_mw;
    std::size_t paper_registers;
    double paper_overhead_pct;
  };
  const Row rows[] = {{0.25, 96, 88.9}, {0.5, 192, 94.1},
                      {1.0, 384, 96.9}, {1.5, 576, 98.0},
                      {5.0, 1921, 99.4}, {10.0, 3843, 99.7}};

  const double per_register_uw =
      (lib.flop_data_toggle_j + lib.clock_buffer_cycle_j) * lib.clock_hz *
      1e6;
  std::cout << "\nN = P_load / (" << std::fixed << std::setprecision(3)
            << lib.data_switching_power_w(1) * 1e6 << " uW + "
            << lib.clock_buffer_power_w(1) * 1e6 << " uW) = P_load / "
            << per_register_uw << " uW;  WGC = " << wgc_registers
            << " registers\n\n";

  util::CsvWriter csv(cli.out_file("table2_area_overhead.csv"));
  csv.text_row({"p_load_mw", "registers_measured", "registers_paper",
                "overhead_pct_measured", "overhead_pct_paper"});

  std::cout << std::setw(12) << "P_load[mW]" << std::setw(12) << "N(ours)"
            << std::setw(12) << "N(paper)" << std::setw(14) << "ovh%(ours)"
            << std::setw(14) << "ovh%(paper)" << "\n";
  std::cout << std::setprecision(1);
  for (const auto& row : rows) {
    const std::size_t n =
        power::load_circuit_registers_for_power(lib, row.p_load_mw * 1e-3);
    const double overhead =
        power::area_overhead_increase(n, wgc_registers) * 100.0;
    std::cout << std::setw(12) << row.p_load_mw << std::setw(12) << n
              << std::setw(12) << row.paper_registers << std::setw(14)
              << overhead << std::setw(14) << row.paper_overhead_pct
              << "\n";
    csv.row({row.p_load_mw, static_cast<double>(n),
             static_cast<double>(row.paper_registers), overhead,
             row.paper_overhead_pct});
  }

  std::cout << "\nheadline: at the test chips' 1.5 mW operating point the "
               "clock-modulation technique removes "
            << power::load_circuit_registers_for_power(lib, 1.5e-3)
            << " load registers and keeps only the " << wgc_registers
            << "-register WGC — a "
            << std::setprecision(0)
            << power::area_overhead_increase(
                   power::load_circuit_registers_for_power(lib, 1.5e-3),
                   wgc_registers) *
                   100.0
            << " % area overhead reduction (paper: 98 %)\n";
  return 0;
}
