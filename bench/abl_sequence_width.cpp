// Ablation: LFSR width (sequence period) vs detection. The chips use a
// 12-bit maximal-length LFSR (period 4095). Shorter sequences repeat more
// often within the trace — the correlation estimate is unchanged, but the
// rotation search space shrinks and very short periods start colliding
// with periodic program activity.
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "detect/session.h"
#include "util/csv.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv, {.cycles = 120000});
  cli.reject_unknown();
  const std::size_t cycles = cli.cycles();
  bench::print_header("abl_sequence_width — WGC LFSR width sweep",
                      "extends paper Sec. IV (12-bit LFSR on the chips)");

  util::CsvWriter csv(cli.out_file("abl_sequence_width.csv"));
  csv.text_row({"width", "period", "peak_rho", "peak_z", "isolation",
                "detected"});

  std::cout << "\n" << std::setw(7) << "width" << std::setw(9) << "period"
            << std::setw(12) << "peak rho" << std::setw(9) << "z"
            << std::setw(11) << "isolation" << std::setw(10) << "detected"
            << "\n";
  for (const unsigned width : {7u, 8u, 9u, 10u, 11u, 12u, 14u, 16u}) {
    auto cfg = sim::chip1_default();
    cfg.trace_cycles = cycles;
    cfg.watermark.wgc.width = width;
    cfg.phase_offset = (1u << width) / 2;  // mid-period peak
    sim::Scenario scenario(cfg);
    const detect::Report exp = detect::Session().run(scenario, 0);
    const auto& ss = exp.detection.spectrum;
    std::cout << std::setw(7) << width << std::setw(9)
              << ((1u << width) - 1) << std::setw(12) << std::fixed
              << std::setprecision(4) << ss.peak_value << std::setw(9)
              << std::setprecision(1) << ss.peak_z << std::setw(11)
              << std::setprecision(2) << ss.isolation() << std::setw(10)
              << (exp.detection.detected ? "yes" : "no") << "\n";
    csv.text_row({std::to_string(width), std::to_string((1u << width) - 1),
                  util::format_double(ss.peak_value, 6),
                  util::format_double(ss.peak_z, 6),
                  util::format_double(ss.isolation(), 6),
                  exp.detection.detected ? "1" : "0"});
  }
  return 0;
}
