// Ablation: detection quality vs trace length. The paper fixes 300,000
// cycles per correlation; this sweep shows how the peak z-score grows as
// sqrt(N) and where detection first becomes reliable.
#include <cmath>
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "detect/session.h"
#include "util/csv.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  cli.reject_unknown();
  bench::print_header("abl_trace_length — rho/z vs number of cycles",
                      "extends paper Sec. IV (fixed 300k cycles)");

  const std::size_t lengths[] = {8190,   16380,  40950,  81900,
                                 163800, 300000, 600000};

  util::CsvWriter csv(cli.out_file("abl_trace_length.csv"));
  csv.text_row({"cycles", "peak_rho", "peak_z", "noise_std", "detected"});

  std::cout << "\n" << std::setw(10) << "cycles" << std::setw(12)
            << "peak rho" << std::setw(10) << "z" << std::setw(14)
            << "noise sigma" << std::setw(12) << "1/sqrt(N)"
            << std::setw(10) << "detected" << "\n";
  for (const std::size_t n : lengths) {
    auto cfg = sim::chip1_default();
    cfg.trace_cycles = n;
    sim::Scenario scenario(cfg);
    const detect::Report exp = detect::Session().run(scenario, 0);
    const auto& ss = exp.detection.spectrum;
    std::cout << std::setw(10) << n << std::setw(12) << std::setprecision(4)
              << std::fixed << ss.peak_value << std::setw(10)
              << std::setprecision(1) << ss.peak_z << std::setw(14)
              << std::setprecision(5) << ss.noise_std << std::setw(12)
              << 1.0 / std::sqrt(static_cast<double>(n)) << std::setw(10)
              << (exp.detection.detected ? "yes" : "no") << "\n";
    csv.text_row({std::to_string(n), util::format_double(ss.peak_value, 6),
                  util::format_double(ss.peak_z, 6),
                  util::format_double(ss.noise_std, 6),
                  exp.detection.detected ? "1" : "0"});
  }
  std::cout << "\n(noise sigma tracks 1/sqrt(N): the off-peak correlation "
               "floor is pure estimation noise; rho itself is length-"
               "independent)\n";
  return 0;
}
