// Fig. 2 reproduction: functional simulation of the two watermark
// architectures. Top: the state-of-the-art load-circuit watermark (the
// load toggles once per enabled cycle). Bottom: the proposed clock-
// modulation watermark (clock buffers switch twice per cycle while
// WMARK = 1 — higher switching activity from the same WMARK stream).
#include <iostream>

#include "bench_common.h"
#include "rtl/simulator.h"
#include "rtl/vcd.h"
#include "util/ascii_chart.h"
#include "util/csv.h"
#include "watermark/clock_modulation.h"
#include "watermark/load_circuit.h"

using namespace clockmark;

namespace {

wgc::WgcConfig demo_wgc() {
  wgc::WgcConfig cfg;
  cfg.width = 5;  // short period so the waveform shows several WMARK flips
  cfg.seed = 0x1b;
  return cfg;
}

struct WaveCapture {
  std::vector<bool> clk;
  std::vector<bool> wmark;
  std::vector<bool> gated_clk_activity;  // clock edges reaching the load
  std::vector<std::size_t> data_toggles;
  std::vector<std::size_t> buffer_toggles;  // x2 per cycle per active buf
};

WaveCapture run_load_circuit(std::size_t cycles) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  watermark::LoadCircuitConfig cfg;
  cfg.wgc = demo_wgc();
  cfg.load_registers = 8;  // the paper's 8-bit example register
  const auto wm = build_load_circuit_watermark(nl, "wm", clk, cfg);
  rtl::Simulator sim(nl);
  sim.set_clock_source(clk);
  WaveCapture cap;
  for (std::size_t i = 0; i < cycles; ++i) {
    cap.clk.push_back(i % 2 == 0);  // rendering only
    cap.wmark.push_back(sim.net_value(wm.wmark));
    const auto& act = sim.step();
    cap.gated_clk_activity.push_back(act.total.active_icgs > 0);
    cap.data_toggles.push_back(act.total.flop_toggles);
    cap.buffer_toggles.push_back(2 * act.total.active_buffers);
  }
  return cap;
}

WaveCapture run_clock_modulation(std::size_t cycles,
                                 const std::string& vcd_path) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  watermark::ClockModConfig cfg;
  cfg.wgc = demo_wgc();
  cfg.words = 1;
  cfg.bits_per_word = 8;  // same 8 registers, now clock-modulated
  const auto wm = build_clock_modulation_watermark(nl, "wm", clk, cfg);
  rtl::Simulator sim(nl);
  sim.set_clock_source(clk);
  // Gate-level waveforms as a VCD artifact for GTKWave inspection.
  rtl::VcdWriter vcd(vcd_path, sim,
                     {{"wmark", wm.wmark},
                      {"gclk_w0", nl.cell(wm.bank.words[0].icg).output},
                      {"reg0_q", nl.cell(wm.flops[0]).output}});
  WaveCapture cap;
  for (std::size_t i = 0; i < cycles; ++i) {
    vcd.sample();
    cap.clk.push_back(i % 2 == 0);
    cap.wmark.push_back(sim.net_value(wm.wmark));
    const auto& act = sim.step();
    cap.gated_clk_activity.push_back(act.total.active_icgs > 0);
    cap.data_toggles.push_back(act.total.flop_toggles);
    cap.buffer_toggles.push_back(2 * act.total.active_buffers);
  }
  return cap;
}

void print_capture(const std::string& name, const WaveCapture& cap) {
  std::cout << "\n--- " << name << " ---\n";
  std::cout << util::digital_waveform(
      {{"WMARK", cap.wmark}, {"GCLK_EN", cap.gated_clk_activity}}, 32);
  std::cout << "per-cycle switching events (data toggles / clock-buffer "
               "edges):\n  cycle :";
  for (std::size_t i = 0; i < std::min<std::size_t>(cap.wmark.size(), 16);
       ++i) {
    std::cout << " " << i;
  }
  std::cout << "\n  data  :";
  for (std::size_t i = 0; i < std::min<std::size_t>(cap.wmark.size(), 16);
       ++i) {
    std::cout << " " << cap.data_toggles[i];
  }
  std::cout << "\n  clkbuf:";
  for (std::size_t i = 0; i < std::min<std::size_t>(cap.wmark.size(), 16);
       ++i) {
    std::cout << " " << cap.buffer_toggles[i];
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv, {.cycles = 32});
  cli.reject_unknown();
  const std::size_t cycles = cli.cycles();

  bench::print_header("fig2_waveforms — functional simulation",
                      "paper Fig. 2 (load circuit vs clock modulation)");

  const std::string vcd_path = cli.out_file("fig2_cm.vcd");
  const auto lc = run_load_circuit(cycles);
  const auto cm = run_clock_modulation(cycles, vcd_path);
  std::cout << "(gate-level VCD written to " << vcd_path << ")\n";
  print_capture("state of the art: load circuit (Fig. 1a)", lc);
  print_capture("proposed: clock modulation (Fig. 1b)", cm);

  // Headline of Fig. 2: during WMARK=1 cycles the clock-modulated block
  // produces more switching edges than the load circuit's data toggles.
  std::size_t lc_events = 0, cm_events = 0, active_cycles = 0;
  for (std::size_t i = 0; i < cycles; ++i) {
    if (!lc.wmark[i]) continue;
    ++active_cycles;
    lc_events += lc.data_toggles[i];
    cm_events += cm.buffer_toggles[i];
  }
  std::cout << "\nWMARK=1 cycles: " << active_cycles
            << "; load-circuit data toggles/cycle: "
            << (active_cycles ? lc_events / active_cycles : 0)
            << "; clock-modulation buffer edges/cycle: "
            << (active_cycles ? cm_events / active_cycles : 0)
            << "\n(clock buffers switch on both clock edges — the higher "
               "switching activity of Fig. 2)\n";

  util::CsvWriter csv(cli.out_file("fig2_waveforms.csv"));
  csv.header({"cycle", "wmark", "lc_data_toggles", "lc_buffer_edges",
              "cm_data_toggles", "cm_buffer_edges"});
  for (std::size_t i = 0; i < cycles; ++i) {
    csv.row({static_cast<double>(i), lc.wmark[i] ? 1.0 : 0.0,
             static_cast<double>(lc.data_toggles[i]),
             static_cast<double>(lc.buffer_toggles[i]),
             static_cast<double>(cm.data_toggles[i]),
             static_cast<double>(cm.buffer_toggles[i])});
  }
  return 0;
}
