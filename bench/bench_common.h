// Shared helpers for the bench binaries: output directory handling and a
// uniform header print.
#pragma once

#include <filesystem>
#include <iostream>
#include <string>

#include "util/args.h"

namespace clockmark::bench {

/// Resolves (and creates) the CSV output directory. Default:
/// ./bench_results, override with --out=<dir>.
inline std::string output_dir(const util::Args& args) {
  const std::string dir = args.get("out", "bench_results");
  std::filesystem::create_directories(dir);
  return dir;
}

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::cout << "====================================================\n"
            << title << "\n"
            << "reproduces: " << paper_ref << "\n"
            << "====================================================\n";
}

}  // namespace clockmark::bench
