// Shared CLI layer for the bench binaries. Every bench accepts the same
// core flags, parsed once here instead of per binary:
//
//   --threads=N   worker threads for parallel stages (0 = one per
//                 hardware thread; 1 = serial). Parallel runs are
//                 bit-identical to serial ones (runtime/seed.h).
//   --reps=N      repetitions where the bench repeats an experiment
//   --seed=S      master-seed override (0 = keep the scenario default)
//   --cycles=N    trace length per captured repetition
//   --out=DIR     CSV output directory (created on startup)
//   --json=PATH   machine-readable perf record (BenchJson below); empty
//                 (the default) writes nothing
//   --trials=N    best-of-N timing passes for the perf-record metrics
//                 (default 1; the tier-1 smoke uses 3 so the perf gate
//                 compares minima instead of single noisy samples)
//
// Bench-specific flags remain available through args().
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <system_error>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/executor.h"
#include "sim/scenario.h"
#include "util/args.h"

namespace clockmark::bench {

/// Process CPU time in seconds — the timing basis every bench reports
/// on. CPU time (not wall clock) keeps the perf records comparable
/// under background load; on the single-core CI box the two coincide
/// for serial runs anyway.
inline double cpu_seconds() {
  return static_cast<double>(std::clock()) /
         static_cast<double>(CLOCKS_PER_SEC);
}

/// Times `reps` calls of `fn` and returns CPU seconds per call. `fn`
/// may take the repetition index (std::size_t) or no argument.
template <typename F>
double time_reps(F&& fn, std::size_t reps) {
  const double t0 = cpu_seconds();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    if constexpr (std::is_invocable_v<F&, std::size_t>) {
      fn(rep);
    } else {
      fn();
    }
  }
  return (cpu_seconds() - t0) / static_cast<double>(reps);
}

/// Best-of-`trials` variant of time_reps. Scheduler preemption, cache
/// pollution from neighbouring processes and frequency shifts only ever
/// *add* CPU time, so the minimum over several passes is the stable
/// estimate a perf gate can hold a tight margin against — a single
/// sample on the shared CI box swings by tens of percent. trials <= 1
/// degenerates to one pass.
template <typename F>
double time_reps_best(F&& fn, std::size_t reps, std::size_t trials) {
  double best = time_reps(fn, reps);
  for (std::size_t trial = 1; trial < trials; ++trial) {
    best = std::min(best, time_reps(fn, reps));
  }
  return best;
}

/// Per-bench defaults for the shared flags (the paper's parameters).
struct CliDefaults {
  std::size_t reps = 1;
  std::size_t cycles = 300000;
  std::uint64_t seed = 0;
  std::size_t threads = 0;
  std::size_t trials = 1;
  std::string out = "bench_results";
};

class Cli {
 public:
  Cli(int argc, char** argv, const CliDefaults& defaults = {})
      : args_(argc, argv),
        reps_(static_cast<std::size_t>(args_.get_int(
            "reps", static_cast<std::int64_t>(defaults.reps)))),
        cycles_(static_cast<std::size_t>(args_.get_int(
            "cycles", static_cast<std::int64_t>(defaults.cycles)))),
        seed_(static_cast<std::uint64_t>(args_.get_int(
            "seed", static_cast<std::int64_t>(defaults.seed)))),
        trials_(static_cast<std::size_t>(args_.get_int(
            "trials", static_cast<std::int64_t>(defaults.trials)))),
        out_dir_(args_.get("out", defaults.out)),
        json_path_(args_.get("json", "")),
        executor_(std::make_unique<runtime::Executor>(
            static_cast<std::size_t>(args_.get_int(
                "threads", static_cast<std::int64_t>(defaults.threads))))) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir_, ec);
    if (ec) {
      std::cerr << "error: cannot create --out directory '" << out_dir_
                << "': " << ec.message() << "\n";
      std::exit(2);
    }
  }

  const util::Args& args() const { return args_; }

  /// Call after the last bench-specific args() read: exits with an error
  /// (and a did-you-mean hint) on any flag nobody asked about, so a typo
  /// like --thread=8 cannot silently run with defaults.
  void reject_unknown() const { args_.reject_unknown(); }

  std::size_t reps() const { return reps_; }
  std::size_t cycles() const { return cycles_; }
  std::uint64_t seed() const { return seed_; }
  /// Best-of-N passes for timed perf metrics (clamped to >= 1).
  std::size_t trials() const { return trials_ > 0 ? trials_ : 1; }
  std::size_t threads() const { return executor_->thread_count(); }
  const std::string& out_dir() const { return out_dir_; }
  std::string out_file(const std::string& name) const {
    return out_dir_ + "/" + name;
  }

  /// Where --json asked for the perf record; empty = not requested.
  const std::string& json_path() const { return json_path_; }

  /// Shared executor for the bench's parallel stages; single-threaded
  /// executors run everything inline, so passing this is always safe.
  runtime::Executor* executor() const { return executor_.get(); }

  /// Applies the shared flags to a scenario configuration: the trace
  /// length always, the master seed only when --seed was given.
  void apply(sim::ScenarioConfig& cfg) const {
    cfg.trace_cycles = cycles_;
    if (seed_ != 0) cfg.seed = seed_;
  }

 private:
  util::Args args_;
  std::size_t reps_;
  std::size_t cycles_;
  std::uint64_t seed_;
  std::size_t trials_;
  std::string out_dir_;
  std::string json_path_;
  std::unique_ptr<runtime::Executor> executor_;
};

/// Machine-readable perf record written by the --json flag. One record
/// per measured sub-benchmark; each record is a flat map of metric name
/// to double (items/sec, cpu-seconds per repetition, speedups, ...), so
/// the perf trajectory can be tracked across PRs without parsing bench
/// stdout.
class BenchJson {
 public:
  BenchJson(std::string bench, std::size_t threads)
      : bench_(std::move(bench)), threads_(threads) {}

  struct Record {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };

  Record& add_record(const std::string& name) {
    records_.push_back(Record{name, {}});
    return records_.back();
  }

  static void add_metric(Record& record, const std::string& key,
                         double value) {
    record.metrics.emplace_back(key, value);
  }

  /// Writes the record to `path` (parent directories created). Returns
  /// false (after printing to stderr) if the file cannot be written.
  bool write(const std::string& path) const {
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
      std::error_code ec;
      std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream out(path);
    if (!out) {
      std::cerr << "error: cannot write --json file '" << path << "'\n";
      return false;
    }
    out << "{\n"
        << "  \"bench\": \"" << bench_ << "\",\n"
        << "  \"threads\": " << threads_ << ",\n"
        << "  \"records\": [\n";
    for (std::size_t r = 0; r < records_.size(); ++r) {
      out << "    {\"name\": \"" << records_[r].name << "\"";
      for (const auto& [key, value] : records_[r].metrics) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        out << ", \"" << key << "\": " << buf;
      }
      out << "}" << (r + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.good();
  }

 private:
  std::string bench_;
  std::size_t threads_;
  std::vector<Record> records_;
};

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::cout << "====================================================\n"
            << title << "\n"
            << "reproduces: " << paper_ref << "\n"
            << "====================================================\n";
}

}  // namespace clockmark::bench
