// Shared CLI layer for the bench binaries. Every bench accepts the same
// core flags, parsed once here instead of per binary:
//
//   --threads=N   worker threads for parallel stages (0 = one per
//                 hardware thread; 1 = serial). Parallel runs are
//                 bit-identical to serial ones (runtime/seed.h).
//   --reps=N      repetitions where the bench repeats an experiment
//   --seed=S      master-seed override (0 = keep the scenario default)
//   --cycles=N    trace length per captured repetition
//   --out=DIR     CSV output directory (created on startup)
//
// Bench-specific flags remain available through args().
#pragma once

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <system_error>

#include "runtime/executor.h"
#include "sim/scenario.h"
#include "util/args.h"

namespace clockmark::bench {

/// Per-bench defaults for the shared flags (the paper's parameters).
struct CliDefaults {
  std::size_t reps = 1;
  std::size_t cycles = 300000;
  std::uint64_t seed = 0;
  std::size_t threads = 0;
  std::string out = "bench_results";
};

class Cli {
 public:
  Cli(int argc, char** argv, const CliDefaults& defaults = {})
      : args_(argc, argv),
        reps_(static_cast<std::size_t>(args_.get_int(
            "reps", static_cast<std::int64_t>(defaults.reps)))),
        cycles_(static_cast<std::size_t>(args_.get_int(
            "cycles", static_cast<std::int64_t>(defaults.cycles)))),
        seed_(static_cast<std::uint64_t>(args_.get_int(
            "seed", static_cast<std::int64_t>(defaults.seed)))),
        out_dir_(args_.get("out", defaults.out)),
        executor_(std::make_unique<runtime::Executor>(
            static_cast<std::size_t>(args_.get_int(
                "threads", static_cast<std::int64_t>(defaults.threads))))) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir_, ec);
    if (ec) {
      std::cerr << "error: cannot create --out directory '" << out_dir_
                << "': " << ec.message() << "\n";
      std::exit(2);
    }
  }

  const util::Args& args() const { return args_; }
  std::size_t reps() const { return reps_; }
  std::size_t cycles() const { return cycles_; }
  std::uint64_t seed() const { return seed_; }
  std::size_t threads() const { return executor_->thread_count(); }
  const std::string& out_dir() const { return out_dir_; }
  std::string out_file(const std::string& name) const {
    return out_dir_ + "/" + name;
  }

  /// Shared executor for the bench's parallel stages; single-threaded
  /// executors run everything inline, so passing this is always safe.
  runtime::Executor* executor() const { return executor_.get(); }

  /// Applies the shared flags to a scenario configuration: the trace
  /// length always, the master seed only when --seed was given.
  void apply(sim::ScenarioConfig& cfg) const {
    cfg.trace_cycles = cycles_;
    if (seed_ != 0) cfg.seed = seed_;
  }

 private:
  util::Args args_;
  std::size_t reps_;
  std::size_t cycles_;
  std::uint64_t seed_;
  std::string out_dir_;
  std::unique_ptr<runtime::Executor> executor_;
};

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::cout << "====================================================\n"
            << title << "\n"
            << "reproduces: " << paper_ref << "\n"
            << "====================================================\n";
}

}  // namespace clockmark::bench
