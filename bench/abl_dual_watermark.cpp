// Ablation: two coexisting watermarks keyed by Gold codes. The test-chip
// WGC contains *two* sequence generators; with a preferred-pair Gold
// family, two differently-keyed clock-modulation watermarks (e.g. two IP
// vendors on one SoC) can be embedded simultaneously and detected
// independently — each vendor's code finds its own peak and nobody
// else's.
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "cpa/detector.h"
#include "cpu/programs.h"
#include "measure/acquisition.h"
#include "sequence/gold.h"
#include "soc/chip1.h"
#include "util/csv.h"

using namespace clockmark;

namespace {

std::vector<double> tile_power(const std::vector<bool>& code,
                               std::size_t cycles, std::size_t phase,
                               double amplitude_w) {
  std::vector<double> p(cycles);
  for (std::size_t i = 0; i < cycles; ++i) {
    p[i] = code[(i + phase) % code.size()] ? amplitude_w : 0.0;
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv, {.cycles = 150000});
  cli.reject_unknown();
  const std::size_t cycles = cli.cycles();
  const unsigned width = 10;           // Gold family width (period 1023)
  const std::size_t period = 1023;
  const double amplitude = 1.5e-3;     // per-watermark modulated power

  bench::print_header(
      "abl_dual_watermark — two Gold-keyed watermarks on one die",
      "extension of the paper's two-generator WGC (Sec. IV)");

  // Three codes from the family: vendor A, vendor B, and an outsider's
  // key C that was never embedded.
  const auto code_a = sequence::gold_code(width, 3, period);
  const auto code_b = sequence::gold_code(width, 77, period);
  const auto code_c = sequence::gold_code(width, 500, period);

  soc::Chip1Config m0;
  m0.program = cpu::dhrystone_like_source();
  soc::Chip1Soc chip(m0);
  auto total = chip.run(cycles, "background");
  total += power::PowerTrace(tile_power(code_a, cycles, 400, amplitude),
                             total.clock_hz(), "wm_a");
  total += power::PowerTrace(tile_power(code_b, cycles, 900, amplitude),
                             total.clock_hz(), "wm_b");

  measure::AcquisitionConfig acq;
  acq.noise_seed = 0xD0A1;
  const auto y = measure::AcquisitionChain(acq).measure(total);

  const cpa::Detector detector;
  util::CsvWriter csv(cli.out_file("abl_dual_watermark.csv"));
  csv.text_row({"key", "embedded", "peak_rho", "peak_rotation", "z",
                "detected"});

  struct Probe {
    const char* name;
    const std::vector<bool>* code;
    bool embedded;
    std::size_t phase;
  };
  const Probe probes[] = {{"vendor A key", &code_a, true, 400},
                          {"vendor B key", &code_b, true, 900},
                          {"outsider key C", &code_c, false, 0}};

  std::cout << "\n" << std::setw(16) << "key" << std::setw(12)
            << "peak rho" << std::setw(10) << "rot" << std::setw(9) << "z"
            << std::setw(11) << "detected" << std::setw(10) << "expect"
            << "\n";
  bool all_correct = true;
  for (const auto& p : probes) {
    const auto result = detector.detect(
        y.per_cycle_power_w, cpa::to_model_pattern(*p.code));
    const auto& ss = result.spectrum;
    const bool correct =
        result.detected == p.embedded &&
        (!p.embedded ||
         (ss.peak_rotation + period - p.phase) % period <= 2 ||
         (p.phase + period - ss.peak_rotation) % period <= 2);
    all_correct = all_correct && correct;
    std::cout << std::setw(16) << p.name << std::setw(12) << std::fixed
              << std::setprecision(4) << ss.peak_value << std::setw(10)
              << ss.peak_rotation << std::setw(9) << std::setprecision(1)
              << ss.peak_z << std::setw(11)
              << (result.detected ? "yes" : "no") << std::setw(10)
              << (p.embedded ? "yes" : "no") << "\n";
    csv.text_row({p.name, p.embedded ? "1" : "0",
                  util::format_double(ss.peak_value, 6),
                  std::to_string(ss.peak_rotation),
                  util::format_double(ss.peak_z, 6),
                  result.detected ? "1" : "0"});
  }
  std::cout << "\n" << (all_correct
                            ? "both embedded keys detected at their phases; "
                              "the outsider key finds nothing — Gold cross-"
                              "correlation bounds hold through the power "
                              "side channel"
                            : "!!! unexpected detection outcome")
            << "\n";
  return all_correct ? 0 : 1;
}
