// Ablation: fused acquisition kernel vs the per-sample reference chain.
// Measures one full acquisition (waveform synthesis -> PDN -> shunt ->
// probe -> ADC -> per-cycle averaging) of a realistic chip trace on both
// paths and reports the speedup. The two paths are bit-identical
// (tests/test_measure_kernel.cpp); this bench tracks only the time.
#include <cstdlib>
#include <ctime>
#include <iostream>

#include "bench_common.h"
#include "measure/acquisition.h"
#include "sim/scenario.h"
#include "util/csv.h"

using namespace clockmark;

namespace {

double cpu_seconds() {
  return static_cast<double>(std::clock()) /
         static_cast<double>(CLOCKS_PER_SEC);
}

template <typename F>
double time_reps(F&& fn, std::size_t reps) {
  const double t0 = cpu_seconds();
  for (std::size_t rep = 0; rep < reps; ++rep) fn();
  return (cpu_seconds() - t0) / static_cast<double>(reps);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv, {.reps = 3});
  cli.reject_unknown();
  const std::size_t reps = cli.reps();
  bench::BenchJson json("abl_acq_speed", cli.threads());

  bench::print_header(
      "abl_acq_speed — fused acquisition kernel vs per-sample reference (" +
          std::to_string(cli.cycles()) + " cycles, " + std::to_string(reps) +
          " reps)",
      "perf ablation: same chain as paper Fig. 4(b), fused block kernel");

  util::CsvWriter csv(cli.out_file("abl_acq_speed.csv"));
  csv.text_row({"chip", "cycles", "samples_per_cycle", "ref_cpu_s_per_rep",
                "fused_cpu_s_per_rep", "speedup"});

  bool all_identical = true;
  for (const bool chip2 : {false, true}) {
    auto cfg = chip2 ? sim::chip2_default() : sim::chip1_default();
    cli.apply(cfg);
    cfg.phase_offset = 0;  // acquisition cost is phase-independent
    const sim::Scenario scenario(cfg);
    // One realistic device trace; the bench times acquisition only.
    const power::PowerTrace trace = scenario.synthesize(0).total_power;

    measure::AcquisitionChain chain(cfg.acquisition);
    const auto ref = chain.acquire_reference(trace);
    const auto fused = chain.measure(trace);
    const bool identical =
        ref.per_cycle_power_w == fused.per_cycle_power_w &&
        ref.mean_power_w == fused.mean_power_w &&
        ref.lsb_power_w == fused.lsb_power_w;
    all_identical = all_identical && identical;

    const double ref_s = time_reps(
        [&] { (void)chain.acquire_reference(trace).mean_power_w; }, reps);
    const double fused_s =
        time_reps([&] { (void)chain.measure(trace).mean_power_w; }, reps);
    const double speedup = fused_s > 0.0 ? ref_s / fused_s : 0.0;
    const auto spc = cfg.acquisition.waveform.samples_per_cycle;
    const double samples =
        static_cast<double>(trace.cycles()) * static_cast<double>(spc);

    const std::string chip = chip2 ? "chip II" : "chip I";
    std::cout << "\n--- " << chip << " (" << trace.cycles() << " cycles x "
              << spc << " samples/cycle) ---\n"
              << "  reference: " << ref_s << " cpu-s/rep\n"
              << "  fused:     " << fused_s << " cpu-s/rep  (" << speedup
              << "x, "
              << (fused_s > 0.0 ? samples / fused_s : 0.0) / 1.0e6
              << " Msamples/s)\n"
              << "  outputs bit-identical: " << (identical ? "yes" : "NO")
              << "\n";

    csv.text_row({chip, std::to_string(trace.cycles()), std::to_string(spc),
                  util::format_double(ref_s, 6),
                  util::format_double(fused_s, 6),
                  util::format_double(speedup, 4)});

    auto& rec = json.add_record(chip2 ? "chip2" : "chip1");
    bench::BenchJson::add_metric(rec, "cycles",
                                 static_cast<double>(trace.cycles()));
    bench::BenchJson::add_metric(rec, "samples_per_cycle",
                                 static_cast<double>(spc));
    bench::BenchJson::add_metric(rec, "ref_cpu_s_per_rep", ref_s);
    bench::BenchJson::add_metric(rec, "fused_cpu_s_per_rep", fused_s);
    bench::BenchJson::add_metric(rec, "speedup", speedup);
    bench::BenchJson::add_metric(
        rec, "items_per_sec", fused_s > 0.0 ? 1.0 / fused_s : 0.0);
    bench::BenchJson::add_metric(
        rec, "samples_per_sec", fused_s > 0.0 ? samples / fused_s : 0.0);
    bench::BenchJson::add_metric(rec, "bit_identical",
                                 identical ? 1.0 : 0.0);
  }

  if (!cli.json_path().empty()) json.write(cli.json_path());
  if (!all_identical) {
    std::cerr << "abl_acq_speed: fused and reference outputs differ\n";
    return 1;
  }
  return 0;
}
