// Ablation: acquisition-chain speed, two comparisons.
//
//   1. Fused acquisition kernel vs the per-sample reference chain: one
//      full acquisition (waveform synthesis -> PDN -> shunt -> probe ->
//      ADC -> per-cycle averaging) of a realistic chip trace on both
//      paths (records "chip1"/"chip2").
//   2. Batched multi-repetition acquisition vs the sequential per-rep
//      loop: R repetitions of the fig6-style study through
//      Scenario::run_batch + the shared cpa::SpectrumEngine vs the
//      historical run(rep) + compute_spread_spectrum loop (records
//      "batch_rR" for R in {4, 16, 64}).
//
// Every pair is bit-identical (tests/test_measure_kernel.cpp,
// tests/test_sim_batch.cpp) and additionally re-checked here before
// timing; the bench exits non-zero on any mismatch, so a drifting
// kernel can never publish a speedup.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "cpa/detector.h"
#include "cpa/repeatability.h"
#include "cpa/spread_spectrum.h"
#include "measure/acquisition.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "util/csv.h"

using namespace clockmark;

namespace {

// The pre-batching fig6 inner loop, reproduced verbatim as the
// sequential baseline: one memoized scenario repetition, one planless
// spread-spectrum sweep, one detector verdict.
cpa::RepeatabilityResult sequential_study(const sim::Scenario& scenario,
                                          std::size_t reps,
                                          const cpa::DetectorPolicy& policy) {
  const cpa::Detector detector(policy);
  std::vector<cpa::RepetitionOutcome> outcomes(reps);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const sim::ScenarioResult r = scenario.run(rep);
    outcomes[rep].spectrum = cpa::compute_spread_spectrum(
        r.acquisition.per_cycle_power_w, r.pattern,
        cpa::CorrelationMethod::kFft, policy.guard);
    outcomes[rep].true_rotation = r.true_rotation;
    outcomes[rep].detected = detector.decide(outcomes[rep].spectrum).detected;
  }
  return cpa::summarize_repetitions(outcomes, policy.guard);
}

bool studies_identical(const cpa::RepeatabilityResult& a,
                       const cpa::RepeatabilityResult& b) {
  if (a.samples.size() != b.samples.size()) return false;
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    if (a.samples[i].in_phase_rho != b.samples[i].in_phase_rho ||
        a.samples[i].max_off_phase != b.samples[i].max_off_phase ||
        a.samples[i].detected != b.samples[i].detected) {
      return false;
    }
  }
  return a.detections == b.detections;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv, {.reps = 3});
  cli.reject_unknown();
  const std::size_t reps = cli.reps();
  bench::BenchJson json("abl_acq_speed", cli.threads());

  bench::print_header(
      "abl_acq_speed — fused acquisition kernel vs per-sample reference (" +
          std::to_string(cli.cycles()) + " cycles, " + std::to_string(reps) +
          " reps)",
      "perf ablation: same chain as paper Fig. 4(b), fused block kernel");

  util::CsvWriter csv(cli.out_file("abl_acq_speed.csv"));
  csv.text_row({"chip", "cycles", "samples_per_cycle", "ref_cpu_s_per_rep",
                "fused_cpu_s_per_rep", "speedup"});

  bool all_identical = true;
  for (const bool chip2 : {false, true}) {
    auto cfg = chip2 ? sim::chip2_default() : sim::chip1_default();
    cli.apply(cfg);
    cfg.phase_offset = 0;  // acquisition cost is phase-independent
    const sim::Scenario scenario(cfg);
    // One realistic device trace; the bench times acquisition only.
    const power::PowerTrace trace = scenario.synthesize(0).total_power;

    measure::AcquisitionChain chain(cfg.acquisition);
    const auto ref = chain.acquire_reference(trace);
    const auto fused = chain.measure(trace);
    const bool identical =
        ref.per_cycle_power_w == fused.per_cycle_power_w &&
        ref.mean_power_w == fused.mean_power_w &&
        ref.lsb_power_w == fused.lsb_power_w;
    all_identical = all_identical && identical;

    const double ref_s = bench::time_reps_best(
        [&] { (void)chain.acquire_reference(trace).mean_power_w; }, reps,
        cli.trials());
    const double fused_s = bench::time_reps_best(
        [&] { (void)chain.measure(trace).mean_power_w; }, reps,
        cli.trials());
    const double speedup = fused_s > 0.0 ? ref_s / fused_s : 0.0;
    const auto spc = cfg.acquisition.waveform.samples_per_cycle;
    const double samples =
        static_cast<double>(trace.cycles()) * static_cast<double>(spc);

    const std::string chip = chip2 ? "chip II" : "chip I";
    std::cout << "\n--- " << chip << " (" << trace.cycles() << " cycles x "
              << spc << " samples/cycle) ---\n"
              << "  reference: " << ref_s << " cpu-s/rep\n"
              << "  fused:     " << fused_s << " cpu-s/rep  (" << speedup
              << "x, "
              << (fused_s > 0.0 ? samples / fused_s : 0.0) / 1.0e6
              << " Msamples/s)\n"
              << "  outputs bit-identical: " << (identical ? "yes" : "NO")
              << "\n";

    csv.text_row({chip, std::to_string(trace.cycles()), std::to_string(spc),
                  util::format_double(ref_s, 6),
                  util::format_double(fused_s, 6),
                  util::format_double(speedup, 4)});

    auto& rec = json.add_record(chip2 ? "chip2" : "chip1");
    bench::BenchJson::add_metric(rec, "cycles",
                                 static_cast<double>(trace.cycles()));
    bench::BenchJson::add_metric(rec, "samples_per_cycle",
                                 static_cast<double>(spc));
    bench::BenchJson::add_metric(rec, "ref_cpu_s_per_rep", ref_s);
    bench::BenchJson::add_metric(rec, "fused_cpu_s_per_rep", fused_s);
    bench::BenchJson::add_metric(rec, "speedup", speedup);
    bench::BenchJson::add_metric(
        rec, "items_per_sec", fused_s > 0.0 ? 1.0 / fused_s : 0.0);
    bench::BenchJson::add_metric(
        rec, "samples_per_sec", fused_s > 0.0 ? samples / fused_s : 0.0);
    bench::BenchJson::add_metric(rec, "bit_identical",
                                 identical ? 1.0 : 0.0);
  }

  // Batched multi-repetition acquisition: the fig6-style study (chip I,
  // per-repetition phases) at several repetition counts. R=4 is one
  // full SoA lane group, R=16/64 amortise the shared waveform work the
  // way the real studies do.
  util::CsvWriter batch_csv(cli.out_file("abl_acq_batch.csv"));
  batch_csv.text_row({"repetitions", "cycles", "sequential_cpu_s_per_rep",
                      "batched_cpu_s_per_rep", "speedup"});
  for (const std::size_t batch_reps : {std::size_t{4}, std::size_t{16},
                                       std::size_t{64}}) {
    auto cfg = sim::chip1_default();
    cli.apply(cfg);
    cfg.phase_offset.reset();  // fig6: the phase varies per repetition
    const sim::Scenario scenario(cfg);
    const cpa::DetectorPolicy policy;

    // Bit-identity gate (also warms the scenario's memoized caches so
    // the timed passes compare steady-state against steady-state).
    const auto seq_result = sequential_study(scenario, batch_reps, policy);
    const auto batch_result =
        sim::run_repeatability_study(scenario, batch_reps, policy, nullptr);
    const bool identical = studies_identical(seq_result, batch_result);
    all_identical = all_identical && identical;

    const double seq_s =
        bench::time_reps_best(
            [&] { (void)sequential_study(scenario, batch_reps, policy); },
            1, cli.trials()) /
        static_cast<double>(batch_reps);
    const double batch_s =
        bench::time_reps_best(
            [&] {
              (void)sim::run_repeatability_study(scenario, batch_reps,
                                                 policy, nullptr);
            },
            1, cli.trials()) /
        static_cast<double>(batch_reps);
    const double speedup = batch_s > 0.0 ? seq_s / batch_s : 0.0;

    std::cout << "\n--- batched study, R=" << batch_reps << " ("
              << cli.cycles() << " cycles/rep) ---\n"
              << "  sequential: " << seq_s << " cpu-s/rep\n"
              << "  batched:    " << batch_s << " cpu-s/rep  (" << speedup
              << "x)\n"
              << "  outputs bit-identical: " << (identical ? "yes" : "NO")
              << "\n";

    batch_csv.text_row({std::to_string(batch_reps),
                        std::to_string(cli.cycles()),
                        util::format_double(seq_s, 6),
                        util::format_double(batch_s, 6),
                        util::format_double(speedup, 4)});

    auto& rec = json.add_record("batch_r" + std::to_string(batch_reps));
    bench::BenchJson::add_metric(rec, "repetitions",
                                 static_cast<double>(batch_reps));
    bench::BenchJson::add_metric(rec, "cycles",
                                 static_cast<double>(cli.cycles()));
    bench::BenchJson::add_metric(rec, "sequential_cpu_s_per_rep", seq_s);
    bench::BenchJson::add_metric(rec, "batched_cpu_s_per_rep", batch_s);
    bench::BenchJson::add_metric(rec, "speedup", speedup);
    bench::BenchJson::add_metric(
        rec, "items_per_sec", batch_s > 0.0 ? 1.0 / batch_s : 0.0);
    bench::BenchJson::add_metric(rec, "bit_identical", identical ? 1.0 : 0.0);
  }

  if (!cli.json_path().empty()) json.write(cli.json_path());
  if (!all_identical) {
    std::cerr << "abl_acq_speed: batched and reference outputs differ\n";
    return 1;
  }
  return 0;
}
