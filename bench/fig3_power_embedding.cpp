// Fig. 3 reproduction: the watermark power signal is deeply embedded in
// the device total power. Three panels (as in the paper): embedded-system
// power, watermark power, device total power — rendered over a short
// window so the structure is visible.
#include <iostream>

#include "bench_common.h"
#include "sim/scenario.h"
#include "util/ascii_chart.h"
#include "util/csv.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv, {.cycles = 400});
  cli.reject_unknown();
  const std::size_t window = cli.cycles();

  bench::print_header("fig3_power_embedding — power trace composition",
                      "paper Fig. 3 (system / watermark / total power)");

  auto cfg = sim::chip1_default();
  cfg.trace_cycles = window;
  sim::Scenario scenario(cfg);
  const auto r = scenario.run(0);

  util::ChartOptions opts;
  opts.width = 100;
  opts.height = 9;
  opts.x_label = "clock cycle";
  std::cout << util::multi_panel_chart(
      {{"embedded system power (W)",
        std::vector<double>(r.background_power.values())},
       {"watermark power (W)",
        std::vector<double>(r.watermark_power.values())},
       {"device total power (W)",
        std::vector<double>(r.total_power.values())}},
      opts);

  const double wm_amp = scenario.characterization().mean_active_w -
                        scenario.characterization().mean_idle_w;
  std::cout << "\nwatermark amplitude: " << wm_amp * 1e3
            << " mW over a background of "
            << r.background_power.average_w() * 1e3
            << " mW (ratio " << wm_amp / r.background_power.average_w()
            << ") — a weak but deterministic signal, as in the paper\n";

  util::CsvWriter csv(cli.out_file("fig3_power_embedding.csv"));
  csv.header({"cycle", "system_w", "watermark_w", "total_w"});
  for (std::size_t i = 0; i < window; ++i) {
    csv.row({static_cast<double>(i), r.background_power[i],
             r.watermark_power[i], r.total_power[i]});
  }
  return 0;
}
