// Table I reproduction: power consumption of the placed-and-routed
// clock-modulated load circuit, measured by gate-level simulation +
// activity-based power estimation (our PrimeTime-PX equivalent).
// Rows: buffers-only (no data switching), then 256 / 512 / 1024 switching
// registers. Columns: dynamic, static, total, and the load circuit's
// share of total watermark dynamic power.
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "power/estimator.h"
#include "rtl/simulator.h"
#include "util/csv.h"
#include "watermark/clock_modulation.h"
#include "watermark/embedder.h"

using namespace clockmark;

namespace {

struct Row {
  std::string label;
  std::size_t switching;
  double paper_dynamic_mw;
  double paper_share_pct;
};

struct Measured {
  double dynamic_w = 0.0;   // load circuit (bank) dynamic
  double static_w = 0.0;    // load circuit leakage
  double share_pct = 0.0;   // of total watermark dynamic power
};

Measured measure_row(std::size_t switching_registers) {
  rtl::Netlist nl;
  const rtl::NetId clk = nl.add_net("clk");
  watermark::ClockModConfig cfg;  // 32 x 32, 12-bit WGC
  cfg.switching_registers = switching_registers;
  const auto wm =
      build_clock_modulation_watermark(nl, "wm", clk, cfg);

  // Average power over WMARK = 1 cycles only (the load circuit is
  // inert in the gated half; Table I reports the active-load power).
  rtl::Simulator sim(nl);
  sim.set_clock_source(clk);
  power::PowerEstimator est(nl, power::tsmc65lp_like());

  // Split the watermark module into "bank" (the load circuit: registers
  // + their clock network) and "everything else" (WGC + ICG overhead)
  // by cell identity: the WGC cells are known from the build result.
  std::vector<bool> is_wgc_cell(nl.cell_count(), false);
  for (const auto id : wm.wgc.flops) is_wgc_cell[id] = true;
  for (const auto id : wm.wgc.xor_gates) is_wgc_cell[id] = true;
  for (const auto id : wm.wgc.clock_cells) is_wgc_cell[id] = true;

  const std::size_t cycles = 4095;
  double total_dynamic_j = 0.0;
  double bank_dynamic_j = 0.0;
  std::size_t active_cycles = 0;
  for (std::size_t i = 0; i < cycles; ++i) {
    const bool wmark = sim.net_value(wm.wmark);
    const auto& act = sim.step();
    const double all = est.dynamic_cycle_energy(act.total);
    if (!wmark) continue;
    ++active_cycles;
    // The feedback inverters are a modelling artifact (the paper's
    // 1.126 uW per switching register already includes the downstream
    // load), so their energy is excluded everywhere.
    const double inverter_j = static_cast<double>(wm.inverters.size()) *
                              est.library().comb_toggle_j;
    total_dynamic_j += all - inverter_j;
    // Bank share: subtract the WGC's own switching. The WGC burns its
    // clock leaves every cycle + ~half its flops toggle + XOR gates.
    rtl::ModuleActivity wgc_act;
    wgc_act.active_buffers = wm.wgc.clock_cells.size();
    // Count actual WGC flop toggles this cycle is not directly split per
    // cell; approximate with the behavioural expectation (half toggle).
    wgc_act.flop_toggles = wm.wgc.flops.size() / 2;
    wgc_act.comb_toggles = wm.wgc.xor_gates.size();
    bank_dynamic_j += all - inverter_j - est.dynamic_cycle_energy(wgc_act) -
                      static_cast<double>(act.total.active_icgs) *
                          est.library().icg_active_cycle_j;
  }
  Measured m;
  const double t = static_cast<double>(active_cycles) /
                   est.library().clock_hz;
  const double bank_dyn_w = bank_dynamic_j / t;
  const double total_dyn_w = total_dynamic_j / t;
  m.dynamic_w = bank_dyn_w;
  m.share_pct = 100.0 * bank_dyn_w / total_dyn_w;
  // Static power of the register bank (1024 flops + their buffers).
  m.static_w = 1024 * est.library().flop_leak_w;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  cli.reject_unknown();
  bench::print_header("table1_load_power — placed-and-routed load power",
                      "paper Table I");

  const Row rows[] = {
      {"Clock Buffers Modulation / No Data Switching", 0, 1.51, 95.6},
      {"Clock Buffers Modulation / 256 Switching Registers", 256, 1.80,
       96.8},
      {"Clock Buffers Modulation / 512 Switching Registers", 512, 2.09,
       97.2},
      {"Clock Buffers Modulation / 1024 Switching Registers", 1024, 2.66,
       98.0},
  };

  util::CsvWriter csv(cli.out_file("table1_load_power.csv"));
  csv.text_row({"implementation", "dynamic_mw_measured",
                "dynamic_mw_paper", "static_uw_measured",
                "share_pct_measured", "share_pct_paper"});

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "\n"
            << std::left << std::setw(55) << "Load Circuit Implementation"
            << std::right << std::setw(10) << "dyn[mW]" << std::setw(10)
            << "paper" << std::setw(11) << "stat[uW]" << std::setw(9)
            << "share%" << std::setw(9) << "paper%" << "\n";
  for (const auto& row : rows) {
    const Measured m = measure_row(row.switching);
    std::cout << std::left << std::setw(55) << row.label << std::right
              << std::setw(10) << m.dynamic_w * 1e3 << std::setw(10)
              << row.paper_dynamic_mw << std::setw(11) << m.static_w * 1e6
              << std::setw(9) << m.share_pct << std::setw(9)
              << row.paper_share_pct << "\n";
    csv.text_row({row.label, util::format_double(m.dynamic_w * 1e3, 4),
                  util::format_double(row.paper_dynamic_mw, 4),
                  util::format_double(m.static_w * 1e6, 4),
                  util::format_double(m.share_pct, 4),
                  util::format_double(row.paper_share_pct, 4)});
  }
  std::cout << "\n(per-register constants: clock buffer 1.476 uW, data "
               "switching 1.126 uW at 10 MHz — the paper's measured "
               "values)\n";
  return 0;
}
