// Ablation: operating point (DVFS). The chips run at 10 MHz / 1.2 V;
// this sweep re-derives the technology library at other clock rates and
// voltages and re-runs the detection. Faster clocks give the scope fewer
// samples per cycle to average (500 MS/s fixed); lower voltage shrinks
// the watermark's CV^2 energy quadratically.
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "detect/session.h"
#include "util/csv.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv, {.cycles = 300000});
  cli.reject_unknown();
  const std::size_t cycles = cli.cycles();
  bench::print_header("abl_frequency — operating-point sweep",
                      "extends paper Sec. IV (10 MHz / 1.2 V fixed)");

  util::CsvWriter csv(cli.out_file("abl_frequency.csv"));
  csv.text_row({"clock_mhz", "vdd_v", "samples_per_cycle", "wm_active_mw",
                "peak_rho", "peak_z", "detected"});

  struct Point {
    double mhz;
    double vdd;
  };
  const Point points[] = {{2.0, 1.2},  {5.0, 1.2},  {10.0, 1.2},
                          {25.0, 1.2}, {50.0, 1.2}, {10.0, 1.0},
                          {10.0, 0.8}};

  std::cout << "\n" << std::setw(10) << "clock" << std::setw(8) << "vdd"
            << std::setw(10) << "smp/cyc" << std::setw(13) << "wm[mW]"
            << std::setw(12) << "peak rho" << std::setw(9) << "z"
            << std::setw(10) << "detected" << "\n";
  for (const auto& pt : points) {
    auto cfg = sim::chip1_default();
    cfg.trace_cycles = cycles;
    cfg.tech = cfg.tech.at_operating_point(pt.mhz * 1e6, pt.vdd);
    const double scope_rate = cfg.acquisition.scope.sample_rate_hz;
    cfg.acquisition.waveform.samples_per_cycle = std::max<std::size_t>(
        2, static_cast<std::size_t>(scope_rate / (pt.mhz * 1e6)));
    sim::Scenario scenario(cfg);
    const detect::Report exp = detect::Session().run(scenario, 0);
    const auto& ss = exp.detection.spectrum;
    const double wm_mw = scenario.characterization().mean_active_w * 1e3;
    std::cout << std::setw(7) << std::fixed << std::setprecision(0)
              << pt.mhz << "MHz" << std::setw(8) << std::setprecision(1)
              << pt.vdd << std::setw(10)
              << cfg.acquisition.waveform.samples_per_cycle
              << std::setw(13) << std::setprecision(3) << wm_mw
              << std::setw(12) << std::setprecision(4) << ss.peak_value
              << std::setw(9) << std::setprecision(1) << ss.peak_z
              << std::setw(10) << (exp.detection.detected ? "yes" : "no")
              << "\n";
    csv.text_row({util::format_double(pt.mhz, 4),
                  util::format_double(pt.vdd, 3),
                  std::to_string(cfg.acquisition.waveform.samples_per_cycle),
                  util::format_double(wm_mw, 5),
                  util::format_double(ss.peak_value, 6),
                  util::format_double(ss.peak_z, 6),
                  exp.detection.detected ? "1" : "0"});
  }
  std::cout << "\n(watermark power scales with f and V^2, but rho is set "
               "by the board's decoupling: slower clocks put more of the "
               "sequence energy below the PDN cutoff, so rho RISES as the "
               "clock drops; at the fastest point the PDN's memory spans "
               "tens of cycles and smears the peak across neighbouring "
               "rotations until the isolation criterion rejects it — the "
               "detectability limit is the board, not the silicon)\n";
  return 0;
}
