// Ablation: can an attacker recover the watermark key from the power
// side channel? Berlekamp-Massey breaks any LFSR from 2L *clean* output
// bits — so the question is whether the measured per-cycle power can be
// thresholded into a clean-enough WMARK stream. This bench estimates the
// per-cycle bit error rate of the best threshold classifier at several
// noise levels, then feeds the demodulated stream to Berlekamp-Massey.
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <iterator>
#include <vector>

#include "bench_common.h"
#include "sequence/berlekamp.h"
#include "sim/scenario.h"
#include "util/csv.h"

using namespace clockmark;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv, {.cycles = 60000});
  cli.reject_unknown();
  bench::print_header(
      "abl_key_recovery — Berlekamp-Massey vs the power side channel",
      "extends paper Sec. VI (key secrecy under measurement)");

  util::CsvWriter csv(cli.out_file("abl_key_recovery.csv"));
  csv.text_row({"probe", "scope_noise_mv", "bit_error_rate",
                "linear_complexity", "prediction_accuracy",
                "key_recovered"});

  std::cout << "\n" << std::setw(14) << "probe" << std::setw(12)
            << "noise[mV]" << std::setw(10) << "BER" << std::setw(14)
            << "lin. compl." << std::setw(12) << "pred. acc."
            << std::setw(14) << "key broken?" << "\n";

  struct Case {
    const char* probe;
    bool pdn;  // board-level measurement goes through the PDN filter
    double noise_mv;
  };
  // "die" = idealized on-die probe, no PDN decoupling in the path;
  // "board" = the paper's shunt-resistor setup.
  const Case cases[] = {{"die (ideal)", false, 0.0},
                        {"die (ideal)", false, 1.0},
                        {"board", true, 0.0},
                        {"board", true, 1.0},
                        {"board", true, 4.0},
                        {"board", true, 9.0}};

  struct Row {
    double ber = 0.0;
    std::size_t linear_complexity = 0;
    double prediction_accuracy = 0.0;
    bool exact = false;
  };
  // Each case is an independent capture + demodulation + Berlekamp-
  // Massey attack: fan them out over the worker threads.
  const auto attack_case = [&](std::size_t index) -> Row {
    const auto& [probe, pdn, noise_mv] = cases[index];
    auto cfg = sim::chip1_default();
    cli.apply(cfg);
    cfg.acquisition.enable_pdn_filter = pdn;
    cfg.acquisition.scope.noise_v_rms = noise_mv * 1e-3;
    cfg.acquisition.probe.noise_v_rms = 0.0;
    if (!pdn) {
      // The idealized on-die probe also skips the 8-bit quantiser.
      cfg.acquisition.scope.resolution_bits = 16;
    }
    // The attacker's best case: they even know the phase is 0.
    cfg.phase_offset = 0;
    const sim::Scenario scenario(cfg);
    const auto r = scenario.run(0);

    // Demodulate with the attacker's best strategy: fold the trace by
    // the (assumed known) sequence period, average each phase bin over
    // all its occurrences to beat down background noise, then threshold
    // the folded profile at its median.
    const auto& y = r.acquisition.per_cycle_power_w;
    const auto& ch = scenario.characterization();
    const std::size_t period = ch.period;
    std::vector<double> folded(period, 0.0);
    std::vector<std::size_t> counts(period, 0);
    for (std::size_t i = 0; i < y.size(); ++i) {
      folded[i % period] += y[i];
      ++counts[i % period];
    }
    for (std::size_t p = 0; p < period; ++p) {
      if (counts[p] > 0) folded[p] /= static_cast<double>(counts[p]);
    }
    std::vector<double> sorted(folded);
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    const double threshold = sorted[sorted.size() / 2];
    std::vector<bool> demodulated(period);
    for (std::size_t p = 0; p < period; ++p) {
      demodulated[p] = folded[p] > threshold;
    }

    std::size_t errors = 0;
    for (std::size_t p = 0; p < period; ++p) {
      if (demodulated[p] != ch.wmark_bits[p]) ++errors;
    }
    Row row;
    row.ber = static_cast<double>(errors) / static_cast<double>(period);

    const auto recovery = sequence::attempt_key_recovery(
        demodulated, period / 2, cfg.watermark.wgc.width);
    row.linear_complexity = recovery.recovered.length;
    row.prediction_accuracy = recovery.prediction_accuracy;
    row.exact = recovery.exact;
    return row;
  };

  const std::vector<Row> rows = cli.executor()->parallel_map<Row>(
      std::size(cases), attack_case);

  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& [probe, pdn, noise_mv] = cases[i];
    const Row& row = rows[i];
    std::cout << std::setw(14) << probe << std::setw(12) << std::fixed
              << std::setprecision(2) << noise_mv << std::setw(10)
              << std::setprecision(3) << row.ber << std::setw(14)
              << row.linear_complexity << std::setw(12)
              << std::setprecision(3) << row.prediction_accuracy
              << std::setw(14) << (row.exact ? "YES" : "no") << "\n";
    csv.text_row({probe, util::format_double(noise_mv, 4),
                  util::format_double(row.ber, 6),
                  std::to_string(row.linear_complexity),
                  util::format_double(row.prediction_accuracy, 6),
                  row.exact ? "1" : "0"});
  }

  std::cout
      << "\n(with an ideal noiseless probe the WMARK stream demodulates "
         "cleanly and Berlekamp-Massey recovers the 12-bit key from ~24 "
         "bits — but at the bench's realistic noise the per-cycle BER "
         "approaches 0.5, the measured linear complexity explodes, and "
         "the key stays safe; CPA still detects because it integrates "
         "over all 300k cycles instead of deciding per cycle)\n";
  return 0;
}
