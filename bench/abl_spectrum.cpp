// Ablation: spectral view of the supply current. An m-sequence-modulated
// watermark spreads its energy over a comb of lines at multiples of
// f_clk / P — a spread-spectrum signature far below the background, which
// is exactly why time-domain inspection misses it and CPA (a matched
// filter) finds it. Compares the power spectrum of the per-cycle trace
// with the watermark active vs inactive.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "dsp/fft.h"
#include "dsp/window.h"
#include "sim/scenario.h"
#include "util/ascii_chart.h"
#include "util/csv.h"

using namespace clockmark;

namespace {

std::vector<double> spectrum_db(const std::vector<double>& trace) {
  // Hann-windowed, mean-removed power spectrum in dB.
  std::vector<double> x = trace;
  double mean = 0.0;
  for (const double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  for (auto& v : x) v -= mean;
  const auto w = dsp::make_window(dsp::WindowKind::kHann, x.size());
  dsp::apply_window(x, w);
  auto p = dsp::power_spectrum(x);
  for (auto& v : p) v = 10.0 * std::log10(v + 1e-30);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv, {.cycles = 32768});
  cli.reject_unknown();
  const std::size_t cycles = cli.cycles();
  bench::print_header("abl_spectrum — supply-current spectra",
                      "spread-spectrum view of the Sec. III embedding");

  util::CsvWriter csv(cli.out_file("abl_spectrum.csv"));
  csv.text_row({"bin", "active_db", "inactive_db"});

  std::vector<std::vector<double>> spectra;
  for (const bool active : {true, false}) {
    auto cfg = sim::chip1_default();
    cfg.trace_cycles = cycles;
    cfg.watermark_active = active;
    sim::Scenario scenario(cfg);
    const auto r = scenario.run(0);
    spectra.push_back(spectrum_db(r.acquisition.per_cycle_power_w));
  }

  util::ChartOptions opts;
  opts.width = 100;
  opts.height = 10;
  opts.x_label = "frequency bin (0 .. f_clk/2)";
  std::cout << util::multi_panel_chart(
      {{"watermark ACTIVE — measured per-cycle power spectrum (dB)",
        spectra[0]},
       {"watermark INACTIVE", spectra[1]}},
      opts);

  // Aggregate: total in-band energy difference.
  double active_sum = 0.0, inactive_sum = 0.0;
  const std::size_t bins = std::min(spectra[0].size(), spectra[1].size());
  for (std::size_t k = 1; k < bins; ++k) {
    active_sum += std::pow(10.0, spectra[0][k] / 10.0);
    inactive_sum += std::pow(10.0, spectra[1][k] / 10.0);
    csv.row({static_cast<double>(k), spectra[0][k], spectra[1][k]});
  }
  std::cout << "\nbroadband (AC) energy ratio active/inactive: "
            << active_sum / inactive_sum
            << "  — the watermark raises the floor only slightly; no "
               "single line stands out (spread spectrum), so CPA's "
               "matched filter is needed to pull it out\n";
  return 0;
}
